//! Cross-crate integration: the paper's workloads running end to end on
//! both substrates, validated against the sequential baselines.

use hal::prelude::*;
use hal_workloads::cholesky::{self, CholeskyConfig, Variant};
use hal_workloads::fib::{self, FibConfig, Placement};
use hal_workloads::matmul::{self, MatmulConfig};
use std::time::Duration;

#[test]
fn fib_correct_across_partition_sizes() {
    for p in [1usize, 2, 5, 16] {
        let (v, _) = fib::run_sim(
            MachineConfig::builder(p).load_balancing(p > 1).build().unwrap(),
            FibConfig {
                n: 15,
                grain: 4,
                placement: Placement::Local,
            },
        );
        assert_eq!(v, hal_baselines::fib_iter(15), "P={p}");
    }
}

#[test]
fn fib_identical_result_under_all_placements() {
    for placement in [Placement::Local, Placement::RoundRobin, Placement::Random] {
        let (v, _) = fib::run_sim(
            MachineConfig::new(4),
            FibConfig {
                n: 14,
                grain: 3,
                placement,
            },
        );
        assert_eq!(v, hal_baselines::fib_iter(14), "{placement:?}");
    }
}

#[test]
fn fib_threaded_matches_simulated() {
    let mut program = Program::new();
    let id = fib::register(&mut program);
    let cfg = FibConfig {
        n: 16,
        grain: 6,
        placement: Placement::RoundRobin,
    };
    let r = hal::thread_run(
        MachineConfig::new(3),
        program,
        Duration::from_secs(30),
        move |ctx| fib::bootstrap(ctx, id, cfg),
    );
    assert!(!r.timed_out);
    assert_eq!(
        r.value("fib").unwrap().as_int() as u64,
        hal_baselines::fib_iter(16)
    );
}

#[test]
fn all_cholesky_variants_agree_with_each_other() {
    let fro: Vec<f64> = Variant::all()
        .into_iter()
        .map(|variant| {
            let (fro, _) = cholesky::run_sim(
                MachineConfig::new(4),
                CholeskyConfig {
                    n: 16,
                    variant,
                    per_flop_ns: 100,
                    seed: 11,
                },
                false,
            );
            fro
        })
        .collect();
    for w in fro.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-9,
            "variants disagree: {fro:?}"
        );
    }
}

#[test]
fn cholesky_result_independent_of_partition_size() {
    let run = |p| {
        cholesky::run_sim(
            MachineConfig::new(p),
            CholeskyConfig {
                n: 20,
                variant: Variant::BP,
                per_flop_ns: 100,
                seed: 5,
            },
            false,
        )
        .0
    };
    let f1 = run(1);
    for p in [2usize, 3, 7, 20] {
        assert!((run(p) - f1).abs() < 1e-9, "P={p}");
    }
}

#[test]
fn matmul_result_independent_of_seed_machine_and_grid_shape() {
    // Same matrices via (grid, block) pairs with equal n must agree.
    let f_a = matmul::run_sim(
        MachineConfig::builder(4).seed(1).build().unwrap(),
        MatmulConfig {
            grid: 2,
            block: 12,
            per_flop_ns: 50,
            seed_a: 3,
            seed_b: 4,
        },
        false,
    )
    .0;
    let f_b = matmul::run_sim(
        MachineConfig::builder(16).seed(77).build().unwrap(),
        MatmulConfig {
            grid: 2,
            block: 12,
            per_flop_ns: 50,
            seed_a: 3,
            seed_b: 4,
        },
        false,
    )
    .0;
    assert!((f_a - f_b).abs() < 1e-9);
}

#[test]
fn pipelined_cholesky_beats_global_sync_at_scale() {
    // The Table 1 headline, as a guarded regression test.
    let run = |variant| {
        cholesky::run_sim(
            MachineConfig::new(8),
            CholeskyConfig {
                n: 48,
                variant,
                per_flop_ns: 120,
                seed: 9,
            },
            false,
        )
        .1
        .makespan
    };
    let bp = run(Variant::BP);
    let seq = run(Variant::Seq);
    let bcast = run(Variant::Bcast);
    assert!(bp < seq, "BP {bp} !< Seq {seq}");
    assert!(bp < bcast, "BP {bp} !< Bcast {bcast}");
}

#[test]
fn load_balancing_scales_fib_with_partition_size() {
    let run = |p| {
        fib::run_sim(
            MachineConfig::builder(p).load_balancing(true).seed(3).build().unwrap(),
            FibConfig {
                n: 20,
                grain: 8,
                placement: Placement::Local,
            },
        )
        .1
        .makespan
    };
    let t1 = run(1);
    let t8 = run(8);
    assert!(
        t8.as_nanos() * 3 < t1.as_nanos(),
        "8 nodes should be >3x faster: {t8} vs {t1}"
    );
}

#[test]
fn matmul_scaling_with_nodes() {
    let run = |p| {
        matmul::run_sim(
            MachineConfig::new(p),
            MatmulConfig {
                grid: 4,
                block: 24,
                per_flop_ns: 100,
                seed_a: 1,
                seed_b: 2,
            },
            false,
        )
        .1
        .makespan
    };
    let t1 = run(1);
    let t16 = run(16);
    assert!(
        t16.as_nanos() * 4 < t1.as_nanos(),
        "16 nodes should be >4x faster: {t16} vs {t1}"
    );
}

#[test]
fn fib_33_reproduces_the_papers_849_seconds_on_one_node() {
    // The paper's two fib(33) anchors, end to end: the call tree is
    // 11,405,773 actors' worth of work, and an optimized C version takes
    // 8.49 s on one 33 MHz SPARC — which is exactly what the cost model
    // charges when the runtime elides creations below the grain.
    let (v, r) = fib::run_sim(
        MachineConfig::new(1),
        FibConfig {
            n: 33,
            grain: 20,
            placement: Placement::Local,
        },
    );
    assert_eq!(v, hal_baselines::fib_iter(33));
    assert_eq!(hal_baselines::call_tree_nodes(33), 11_405_773);
    let secs = r.makespan.as_secs_f64();
    assert!(
        (8.4..8.8).contains(&secs),
        "1-node virtual time {secs:.3}s should sit just above the paper's 8.49s C time"
    );
}

#[test]
fn fib_33_scales_on_64_nodes_with_load_balancing() {
    let (v, r) = fib::run_sim(
        MachineConfig::builder(64).load_balancing(true).build().unwrap(),
        FibConfig {
            n: 33,
            grain: 20,
            placement: Placement::Local,
        },
    );
    assert_eq!(v, hal_baselines::fib_iter(33));
    let secs = r.makespan.as_secs_f64();
    assert!(
        secs < 8.49 / 20.0,
        "64 nodes should be >20x faster than the 1-node 8.49s: got {secs:.3}s"
    );
}
