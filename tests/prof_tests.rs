//! Host-time profiler invariants (PR 6):
//!
//! * profiling is **invisible** to the deterministic surface — reports,
//!   span exports, and metrics exports are identical with the profiler
//!   on or off, at K = 1 and K = 7;
//! * with profiling on, every shard's ledger telescopes exactly:
//!   `sync + stall + inject + execute + queue + other == wall` (the
//!   ledger is contiguous by construction, `sync` being the fused-window
//!   boundary handshake added with the barrier-elision executor);
//! * the sequential instant-network loop produces the same profile
//!   shape as a single shard, so seq/par attribution is comparable.

use hal::prelude::*;
use hal_am::LinkModel;
use hal_kernel::ProfReport;
use hal_workloads::fib::{self, FibConfig, Placement};

fn fib_cfg() -> FibConfig {
    FibConfig {
        n: 16,
        grain: 4,
        placement: Placement::Random,
    }
}

fn machine(k: usize, prof: bool) -> MachineConfig {
    MachineConfig::builder(8)
        .seed(7)
        .parallelism(k)
        .observe(ObserveOpts::none().trace(true).metrics(true).prof(prof))
        .build()
        .unwrap()
}

/// Every deterministic export, rendered to its artifact bytes.
fn deterministic_bytes(r: &SimReport) -> (String, String) {
    let spans = hal_kernel::span::SpanReport::build(r.trace.as_ref().expect("trace on"));
    let metrics = r
        .metrics
        .as_ref()
        .expect("metrics on")
        .to_json(r.makespan.as_nanos());
    (spans.to_json(), metrics)
}

#[test]
fn profiling_does_not_perturb_the_deterministic_surface() {
    for k in [1usize, 7] {
        let (v_off, off) = fib::run_sim(machine(k, false), fib_cfg());
        let (v_on, on) = fib::run_sim(machine(k, true), fib_cfg());
        assert_eq!(v_off, v_on, "K={k}");
        assert!(off.prof.is_none(), "K={k}: prof off must record nothing");
        assert!(on.prof.is_some(), "K={k}: prof on must record a profile");
        // SimReport equality deliberately ignores `prof`.
        assert_eq!(off, on, "K={k}: reports must be identical modulo prof");
        let (spans_off, metrics_off) = deterministic_bytes(&off);
        let (spans_on, metrics_on) = deterministic_bytes(&on);
        assert_eq!(spans_off, spans_on, "K={k}: span artifact bytes changed");
        assert_eq!(metrics_off, metrics_on, "K={k}: metrics artifact bytes changed");
    }
}

fn assert_ledger_telescopes(p: &ProfReport, what: &str) {
    assert!(!p.shards.is_empty(), "{what}: no shard ledgers");
    for s in &p.shards {
        let attributed = s.sync_ns + s.stall_ns + s.inject_ns + s.execute_ns + s.queue_ns;
        assert!(
            attributed <= s.wall_ns,
            "{what} shard {}: phases ({attributed} ns) exceed wall ({} ns)",
            s.shard,
            s.wall_ns
        );
        let sum = attributed + s.other_ns();
        assert_eq!(
            sum, s.wall_ns,
            "{what} shard {}: attribution must telescope to wall exactly",
            s.shard
        );
        assert!(s.windows > 0, "{what} shard {}: no windows recorded", s.shard);
        assert!(
            s.fused_windows <= s.windows,
            "{what} shard {}: fused count exceeds window count",
            s.shard
        );
        assert_eq!(
            s.recs.len() as u64 + s.windows_truncated,
            s.windows,
            "{what} shard {}: window records inconsistent",
            s.shard
        );
        if s.windows_truncated == 0 {
            assert_eq!(
                s.recs.iter().filter(|w| w.fused).count() as u64,
                s.fused_windows,
                "{what} shard {}: per-window fused flags disagree with the total",
                s.shard
            );
        }
    }
    let events: u64 = p.shards.iter().map(|s| s.events).sum();
    assert!(events > 0, "{what}: profiled run executed no events");
    let t = p.totals();
    let parts = t.sync_ns + t.stall_ns + t.inject_ns + t.execute_ns + t.queue_ns + t.other_ns;
    assert_eq!(parts, t.wall_ns, "{what}: totals must telescope too");
}

#[test]
fn windowed_shard_ledgers_sum_to_wall_time() {
    for k in [1usize, 2, 7] {
        let (_, r) = fib::run_sim(machine(k, true), fib_cfg());
        let p = r.prof.as_ref().expect("prof on");
        assert_eq!(p.mode, "windowed", "K={k}");
        assert_eq!(p.k, k, "K={k}");
        assert_eq!(p.shards.len(), k, "K={k}: one ledger per shard");
        for (i, s) in p.shards.iter().enumerate() {
            assert_eq!(s.shard, i, "K={k}: ledgers ordered by shard id");
        }
        assert_ledger_telescopes(p, &format!("K={k}"));
        if k > 1 {
            let c = p.coordinator.as_ref().expect("windowed runs have a coordinator ledger");
            assert!(c.windows > 0, "K={k}: coordinator saw no barriers");
        }
        // The fused/watermark surface must reach the artifact layer:
        // the JSON carries the per-run sync fraction and fused-window
        // counts the perf gate and summarizer read.
        let json = p.to_json();
        assert!(json.contains("\"sync_frac\""), "K={k}: sync_frac missing from prof JSON");
        assert!(json.contains("\"fused_windows\""), "K={k}: fused_windows missing from prof JSON");
        assert!(p.summary().contains("fused="), "K={k}: summary lost the fused-window count");
    }
}

#[test]
fn sequential_instant_loop_records_a_single_comparable_track() {
    let cfg = MachineConfig::builder(4)
        .seed(7)
        .link(LinkModel::instant())
        .prof()
        .build()
        .unwrap();
    let (v, r) = fib::run_sim(cfg, fib_cfg());
    assert_eq!(v, hal_baselines::fib_iter(16));
    let p = r.prof.as_ref().expect("prof on");
    assert_eq!(p.mode, "sequential");
    assert_eq!(p.k, 1);
    assert!(p.coordinator.is_none(), "no barrier ledger in the sequential loop");
    assert_eq!(p.shards.len(), 1);
    assert_ledger_telescopes(p, "sequential");
    // The summary names a top overhead source like any windowed profile.
    let s = p.summary();
    assert!(s.contains("top overhead:"), "{s}");
    assert!(s.contains("mode=sequential"), "{s}");
}
