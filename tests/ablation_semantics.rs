//! Ablation switches change *performance*, never *semantics*: every
//! workload must compute identical results under every combination of
//! disabled mechanisms. (The benches measure the cost; these tests pin
//! the meaning.)

use hal::prelude::*;
use hal_kernel::SimMachine;
use hal::OptFlags;
use hal_workloads::cholesky::{self, CholeskyConfig, Variant};
use hal_workloads::fib::{self, FibConfig, Placement};
use hal_workloads::matmul::{self, MatmulConfig};

fn all_flag_variants() -> Vec<OptFlags> {
    let on = OptFlags::default();
    vec![
        on,
        OptFlags { aliases: false, ..on },
        OptFlags { name_caching: false, ..on },
        OptFlags { collective_bcast: false, ..on },
        OptFlags { fir_chase: false, ..on },
        OptFlags {
            aliases: false,
            name_caching: false,
            collective_bcast: false,
            fir_chase: false,
        },
    ]
}

#[test]
fn fib_result_invariant_under_all_ablations() {
    for (i, opt) in all_flag_variants().into_iter().enumerate() {
        for flow in [true, false] {
            let (v, _) = fib::run_sim(
                MachineConfig::builder(4)
                    .opt(opt)
                    .flow_control(flow)
                    .load_balancing(true).build().unwrap(),
                FibConfig {
                    n: 15,
                    grain: 4,
                    placement: Placement::Local,
                },
            );
            assert_eq!(v, hal_baselines::fib_iter(15), "variant {i}, flow={flow}");
        }
    }
}

#[test]
fn cholesky_result_invariant_under_all_ablations() {
    let reference = {
        let mut a = hal_baselines::random_spd(16, 8);
        hal_baselines::cholesky_seq(&mut a, 16);
        let mut fro = 0.0;
        for i in 0..16 {
            for j in 0..=i {
                fro += a[i * 16 + j] * a[i * 16 + j];
            }
        }
        fro.sqrt()
    };
    for (i, opt) in all_flag_variants().into_iter().enumerate() {
        let (fro, _) = cholesky::run_sim(
            MachineConfig::builder(4).opt(opt).build().unwrap(),
            CholeskyConfig {
                n: 16,
                variant: Variant::BP,
                per_flop_ns: 10,
                seed: 8,
            },
            false,
        );
        assert!((fro - reference).abs() < 1e-9, "variant {i}: {fro} vs {reference}");
    }
}

#[test]
fn matmul_result_invariant_under_all_ablations() {
    let mut expect = None;
    for (i, opt) in all_flag_variants().into_iter().enumerate() {
        let (fro, _) = matmul::run_sim(
            MachineConfig::builder(4).opt(opt).build().unwrap(),
            MatmulConfig {
                grid: 2,
                block: 6,
                per_flop_ns: 10,
                seed_a: 5,
                seed_b: 6,
            },
            false,
        );
        match expect {
            None => expect = Some(fro),
            Some(e) => assert!((fro - e).abs() < 1e-9, "variant {i}"),
        }
    }
}

#[test]
fn migration_chases_deliver_exactly_once_without_fir() {
    // The whole-message-forwarding alternative must still be exactly-once.
    struct Nomad {
        hops: i64,
        probes: i64,
    }
    impl Behavior for Nomad {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            match msg.selector {
                0 => {
                    if self.hops > 0 {
                        self.hops -= 1;
                        let me = ctx.me();
                        let next = ((ctx.node() as usize + 1) % ctx.nodes()) as u16;
                        ctx.send(me, 0, vec![]);
                        ctx.migrate(next);
                    }
                }
                1 => {
                    self.probes += 1;
                    ctx.report("probe", Value::Int(self.probes));
                }
                _ => unreachable!(),
            }
        }
    }
    struct Spray {
        target: MailAddr,
    }
    impl Behavior for Spray {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            for _ in 0..10 {
                ctx.send(self.target, 1, vec![]);
            }
        }
    }
    fn make_spray(args: &[Value]) -> Box<dyn Behavior> {
        Box::new(Spray {
            target: args[0].as_addr(),
        })
    }

    let mut program = Program::new();
    let spray = program.behavior("spray", make_spray);
    let opt = OptFlags {
        fir_chase: false,
        ..OptFlags::default()
    };
    let mut m = SimMachine::new(MachineConfig::builder(6).opt(opt).build().unwrap(), program.build());
    m.with_ctx(0, |ctx| {
        let nomad = ctx.create_local(Box::new(Nomad { hops: 12, probes: 0 }));
        ctx.send(nomad, 0, vec![]);
        let s = ctx.create_on(3, spray, vec![Value::Addr(nomad)]);
        ctx.send(s, 0, vec![]);
    });
    let r = m.run().unwrap();
    assert_eq!(r.values("probe").len(), 10, "exactly-once even when forwarding whole messages");
    assert!(r.stats.get("fir.sent") == 0, "no FIRs in the ablated mode");
}

#[test]
fn timeline_recording_is_consistent_with_makespan() {
    let mut program = Program::new();
    let id = fib::register(&mut program);
    let mut m = SimMachine::new(
        MachineConfig::builder(4).timeline().load_balancing(true).build().unwrap(),
        program.build(),
    );
    m.with_ctx(0, |ctx| {
        fib::bootstrap(
            ctx,
            id,
            FibConfig {
                n: 16,
                grain: 6,
                placement: Placement::Local,
            },
        )
    });
    let r = m.run().unwrap();
    let tl = m.timeline();
    assert!(!tl.spans.is_empty(), "spans were recorded");
    for s in &tl.spans {
        assert!(s.end > s.start);
        assert!(
            s.end.as_nanos() <= r.makespan.as_nanos(),
            "span beyond makespan"
        );
        assert!((s.node as usize) < 4);
    }
    let utils = tl.utilization(4, r.makespan);
    assert!(utils.iter().all(|&u| (0.0..=1.0).contains(&u)));
    assert!(utils[0] > 0.0, "node 0 did work");
}
