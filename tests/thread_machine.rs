//! Thread-machine integration: groups, broadcasts, collectives, and the
//! workloads under genuine OS-thread concurrency — the same programs the
//! simulator runs, with no shared-memory shortcuts available.

use hal::collectives::{self, Op};
use hal::prelude::*;
use hal_kernel::group::members_on;
use std::time::Duration;

#[test]
fn groups_and_broadcast_across_threads() {
    struct Member {
        index: i64,
        reply_to: MailAddr,
    }
    impl Behavior for Member {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.send(self.reply_to, 0, vec![Value::Int(self.index)]);
        }
    }
    fn make_member(args: &[Value]) -> Box<dyn Behavior> {
        let n = args.len();
        Box::new(Member {
            reply_to: args[0].as_addr(),
            index: args[n - 2].as_int(),
        })
    }
    struct Counter {
        expected: i64,
        sum: i64,
        seen: i64,
    }
    impl Behavior for Counter {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            self.sum += msg.args[0].as_int();
            self.seen += 1;
            if self.seen == self.expected {
                ctx.report("sum", Value::Int(self.sum));
                ctx.stop();
            }
        }
    }

    let count = 24u32;
    let mut program = Program::new();
    let member = program.behavior("member", make_member);
    let report = hal::thread_run(
        MachineConfig::new(4),
        program,
        Duration::from_secs(30),
        move |ctx| {
            let counter = ctx.create_local(Box::new(Counter {
                expected: count as i64,
                sum: 0,
                seen: 0,
            }));
            let g = ctx.grpnew(member, count, vec![Value::Addr(counter)]);
            ctx.broadcast(g, 0, vec![]);
        },
    );
    assert!(!report.timed_out);
    let expect: i64 = (0..count as i64).sum();
    assert_eq!(report.value("sum"), Some(&Value::Int(expect)));
}

#[test]
fn tree_reduction_across_threads() {
    let nodes = 3usize;
    let mut program = Program::new();
    let combiner = collectives::register(&mut program);
    let report = hal::thread_run(
        MachineConfig::new(nodes),
        program,
        Duration::from_secs(30),
        move |ctx| {
            let jc = ctx.create_join(
                1,
                vec![],
                Box::new(|ctx, mut vals| {
                    ctx.report("reduced", vals.pop().unwrap());
                    ctx.stop();
                }),
            );
            let locals = vec![2usize; nodes];
            let combiners =
                collectives::tree_reduce(ctx, combiner, Op::SumInt, &locals, ctx.cont_slot(jc, 0));
            for (node, c) in combiners.iter().enumerate() {
                for i in 0..2 {
                    collectives::contribute(ctx, *c, (node * 10 + i) as i64);
                }
            }
        },
    );
    assert!(!report.timed_out);
    let expect: i64 = (0..nodes).flat_map(|n| (0..2).map(move |i| (n * 10 + i) as i64)).sum();
    assert_eq!(report.value("reduced"), Some(&Value::Int(expect)));
}

#[test]
fn cholesky_bp_runs_threaded() {
    use hal_workloads::cholesky::{self, CholeskyConfig, Variant};
    let mut program = Program::new();
    let id = cholesky::register(&mut program);
    let cfg = CholeskyConfig {
        n: 12,
        variant: Variant::BP,
        per_flop_ns: 10,
        seed: 31,
    };
    let report = hal::thread_run(
        MachineConfig::new(3),
        program,
        Duration::from_secs(30),
        move |ctx| cholesky::bootstrap(ctx, id, cfg, false),
    );
    assert!(!report.timed_out);
    // Same matrix as the simulator would factor: compare norms.
    let mut a = hal_baselines::random_spd(12, 31);
    hal_baselines::cholesky_seq(&mut a, 12);
    let mut fro = 0.0;
    for i in 0..12 {
        for j in 0..=i {
            fro += a[i * 12 + j] * a[i * 12 + j];
        }
    }
    let got = report.value("chol_fro").expect("completed").as_float();
    assert!((got - fro.sqrt()).abs() < 1e-9);
}

#[test]
fn member_ranges_cover_thread_partition() {
    // The same block mapping drives both machines; sanity-check the
    // partition used by the threaded group tests above.
    let count = 24u32;
    let p = 4usize;
    let total: usize = (0..p)
        .map(|n| members_on(n as u16, count, p, Mapping::Block).count())
        .sum();
    assert_eq!(total, count as usize);
}
