//! Property-based tests (proptest) over the runtime's core invariants:
//! exactly-once delivery under arbitrary migration/send interleavings,
//! join-continuation counting, group mappings, codec roundtrips, and
//! numeric agreement of the distributed workloads with their sequential
//! references — for arbitrary inputs, not hand-picked ones.

use hal::prelude::*;
use hal_kernel::Mapping;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Exactly-once delivery under random migrations and probes
// ---------------------------------------------------------------------

/// Walks a scripted hop list; counts probes; reports the count when
/// asked.
struct Nomad {
    hops: Vec<u16>,
    probes: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("got", Value::Int(1));
            }
            _ => unreachable!(),
        }
    }
}

struct Spray {
    target: MailAddr,
    n: i64,
}
impl Behavior for Spray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for _ in 0..self.n {
            ctx.send(self.target, 1, vec![]);
        }
    }
}
fn make_spray(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Spray {
        target: args[0].as_addr(),
        n: args[1].as_int(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any migration path + any spread of probes from any node: every
    /// probe is delivered exactly once, and the machine drains.
    #[test]
    fn exactly_once_delivery_under_arbitrary_migration(
        hops in prop::collection::vec(0u16..6, 0..12),
        probes in 1i64..24,
        prober_node in 0u16..6,
        seed in 0u64..u64::MAX,
    ) {
        let mut program = Program::new();
        let spray = program.behavior("spray", make_spray);
        let mut m = SimMachine::new(MachineConfig::new(6).with_seed(seed), program.build());
        m.with_ctx(0, |ctx| {
            let nomad = ctx.create_local(Box::new(Nomad {
                hops: hops.clone(),
                probes: 0,
            }));
            ctx.send(nomad, 0, vec![]);
            let s = ctx.create_on(
                prober_node,
                spray,
                vec![Value::Addr(nomad), Value::Int(probes)],
            );
            ctx.send(s, 0, vec![]);
        });
        let r = m.run();
        prop_assert_eq!(r.values("got").len() as i64, probes);
        // Drained: no FIRs left outstanding anywhere.
        for node in 0..6u16 {
            prop_assert_eq!(m.kernel(node).fir_table().outstanding(), 0);
        }
    }

    /// Determinism: identical seeds give identical virtual outcomes.
    #[test]
    fn machine_is_deterministic(
        hops in prop::collection::vec(0u16..4, 0..6),
        seed in 0u64..u64::MAX,
    ) {
        let run = || {
            let mut program = Program::new();
            let spray = program.behavior("spray", make_spray);
            let mut m = SimMachine::new(
                MachineConfig::new(4).with_seed(seed).with_load_balancing(true),
                program.build(),
            );
            m.with_ctx(0, |ctx| {
                let nomad = ctx.create_local(Box::new(Nomad { hops: hops.clone(), probes: 0 }));
                ctx.send(nomad, 0, vec![]);
                let s = ctx.create_on(1, spray, vec![Value::Addr(nomad), Value::Int(5)]);
                ctx.send(s, 0, vec![]);
            });
            let r = m.run();
            (r.makespan, r.events, r.stats.get("net.packets"))
        };
        prop_assert_eq!(run(), run());
    }
}

// ---------------------------------------------------------------------
// Group mapping properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// home_node/members_on are exact inverses for both mappings.
    #[test]
    fn group_mappings_partition(count in 1u32..400, p in 1usize..40) {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            let mut owner = vec![None; count as usize];
            for node in 0..p {
                for i in hal_kernel::group::members_on(node as u16, count, p, mapping) {
                    prop_assert!(owner[i as usize].is_none(), "member {i} owned twice");
                    owner[i as usize] = Some(node as u16);
                    prop_assert_eq!(
                        hal_kernel::group::home_node(i, count, p, mapping),
                        node as u16
                    );
                }
            }
            prop_assert!(owner.iter().all(|o| o.is_some()));
        }
    }

    /// GroupId encoding roundtrips.
    #[test]
    fn group_id_roundtrip(creator in 0u16..u16::MAX, counter in 0u16..0x7FFF, count in 0u32..u32::MAX) {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            let g = GroupId::new(creator, counter, count, mapping);
            prop_assert_eq!(g.creator(), creator);
            prop_assert_eq!(g.count(), count);
            prop_assert_eq!(g.mapping(), mapping);
        }
    }
}

// ---------------------------------------------------------------------
// Broadcast tree properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The spanning tree reaches every node exactly once from any root.
    #[test]
    fn bcast_tree_spans(p in 1usize..300, root_raw in 0usize..300) {
        let root = (root_raw % p) as u16;
        let mut reached = vec![false; p];
        let mut stack = vec![root];
        reached[root as usize] = true;
        let mut sends = 0usize;
        while let Some(n) = stack.pop() {
            for c in hal_am::bcast::children(n, root, p) {
                prop_assert!(!reached[c as usize], "node {c} reached twice");
                reached[c as usize] = true;
                sends += 1;
                stack.push(c);
            }
        }
        prop_assert!(reached.iter().all(|&r| r));
        prop_assert_eq!(sends, p - 1, "minimum spanning tree uses p-1 sends");
    }
}

// ---------------------------------------------------------------------
// Workload numerics on arbitrary inputs
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Distributed Cholesky equals the sequential factorization for any
    /// seed, size, variant, and partition.
    #[test]
    fn cholesky_matches_reference(
        n in 2usize..14,
        seed in 0u64..1_000_000,
        p in 1usize..6,
        variant_idx in 0usize..4,
    ) {
        use hal_workloads::cholesky::{run_sim, extract_l, CholeskyConfig, Variant};
        let variant = Variant::all()[variant_idx];
        let (_, report) = run_sim(
            MachineConfig::new(p),
            CholeskyConfig { n, variant, per_flop_ns: 10, seed },
            true,
        );
        let l = extract_l(&report, n);
        let mut a = hal_baselines::random_spd(n, seed);
        hal_baselines::cholesky_seq(&mut a, n);
        for i in 0..n {
            for j in 0..=i {
                prop_assert!(
                    (l[i * n + j] - a[i * n + j]).abs() < 1e-9,
                    "{variant:?} ({i},{j})"
                );
            }
        }
    }

    /// Systolic matmul equals the naive kernel for any grid/block/seed.
    #[test]
    fn matmul_matches_reference(
        grid in 1usize..5,
        block in 1usize..7,
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        p in 1usize..5,
    ) {
        use hal_workloads::matmul::{assemble, extract_c, run_sim, MatmulConfig};
        use hal_baselines::gemm;
        let cfg = MatmulConfig { grid, block, per_flop_ns: 10, seed_a, seed_b };
        let (_, report) = run_sim(MachineConfig::new(p), cfg, true);
        let c = extract_c(&report, cfg);
        let n = cfg.n();
        let a = assemble(seed_a, grid, block);
        let b = assemble(seed_b, grid, block);
        let mut expect = vec![0.0; n * n];
        gemm::matmul_naive(&a, &b, &mut expect, n);
        prop_assert!(gemm::max_abs_diff(&c, &expect) < 1e-9);
    }

    /// fib workload equals the closed form for any grain/placement/P.
    #[test]
    fn fib_matches_reference(
        n in 1u64..15,
        grain in 0u64..10,
        p in 1usize..6,
        lb in any::<bool>(),
        placement_idx in 0usize..3,
    ) {
        use hal_workloads::fib::{run_sim, FibConfig, Placement};
        let placement = [Placement::Local, Placement::RoundRobin, Placement::Random][placement_idx];
        let (v, _) = run_sim(
            MachineConfig::new(p).with_load_balancing(lb),
            FibConfig { n, grain, placement },
        );
        prop_assert_eq!(v, hal_baselines::fib_iter(n));
    }
}

// ---------------------------------------------------------------------
// Value codec
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// f64 packing roundtrips bit-exactly.
    #[test]
    fn f64_pack_roundtrip(data in prop::collection::vec(any::<f64>(), 0..64)) {
        let packed = hal_workloads::pack_f64(&data);
        let back = hal_workloads::unpack_f64(&packed);
        prop_assert_eq!(back.len(), data.len());
        for (a, b) in back.iter().zip(&data) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
    }
}
