//! Randomized tests over the runtime's core invariants: exactly-once
//! delivery under arbitrary migration/send interleavings, determinism,
//! group mappings, codec roundtrips, and numeric agreement of the
//! distributed workloads with their sequential references — for
//! randomly drawn inputs, not hand-picked ones.
//!
//! Inputs come from the workspace's deterministic [`SplitMix64`] stream
//! (seeded per case), keeping tier-1 verification offline; failures
//! reproduce from the printed case number.

use hal::prelude::*;
use hal_kernel::SimMachine;
use hal_des::SplitMix64;
use hal_kernel::Mapping;

fn range(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + rng.next_u64() % (hi - lo)
}

// ---------------------------------------------------------------------
// Exactly-once delivery under random migrations and probes
// ---------------------------------------------------------------------

/// Walks a scripted hop list; counts probes; reports the count when
/// asked.
struct Nomad {
    hops: Vec<u16>,
    probes: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("got", Value::Int(1));
            }
            _ => unreachable!(),
        }
    }
}

struct Spray {
    target: MailAddr,
    n: i64,
}
impl Behavior for Spray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for _ in 0..self.n {
            ctx.send(self.target, 1, vec![]);
        }
    }
}
fn make_spray(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Spray {
        target: args[0].as_addr(),
        n: args[1].as_int(),
    })
}

/// Any migration path + any spread of probes from any node: every probe
/// is delivered exactly once, and the machine drains.
#[test]
fn exactly_once_delivery_under_arbitrary_migration() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0x10_0001 + case);
        let n_hops = range(&mut rng, 0, 12) as usize;
        let hops: Vec<u16> = (0..n_hops).map(|_| range(&mut rng, 0, 6) as u16).collect();
        let probes = range(&mut rng, 1, 24) as i64;
        let prober_node = range(&mut rng, 0, 6) as u16;
        let seed = rng.next_u64();

        let mut program = Program::new();
        let spray = program.behavior("spray", make_spray);
        let mut m = SimMachine::new(MachineConfig::builder(6).seed(seed).build().unwrap(), program.build());
        m.with_ctx(0, |ctx| {
            let nomad = ctx.create_local(Box::new(Nomad {
                hops: hops.clone(),
                probes: 0,
            }));
            ctx.send(nomad, 0, vec![]);
            let s = ctx.create_on(
                prober_node,
                spray,
                vec![Value::Addr(nomad), Value::Int(probes)],
            );
            ctx.send(s, 0, vec![]);
        });
        let r = m.run().unwrap();
        assert_eq!(r.values("got").len() as i64, probes, "case {case}");
        // Drained: no FIRs left outstanding anywhere.
        for node in 0..6u16 {
            assert_eq!(m.kernel(node).fir_table().outstanding(), 0, "case {case}");
        }
    }
}

/// Determinism: identical seeds give identical virtual outcomes.
#[test]
fn machine_is_deterministic() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x10_0002 + case);
        let n_hops = range(&mut rng, 0, 6) as usize;
        let hops: Vec<u16> = (0..n_hops).map(|_| range(&mut rng, 0, 4) as u16).collect();
        let seed = rng.next_u64();

        let run = || {
            let mut program = Program::new();
            let spray = program.behavior("spray", make_spray);
            let mut m = SimMachine::new(
                MachineConfig::builder(4).seed(seed).load_balancing(true).build().unwrap(),
                program.build(),
            );
            m.with_ctx(0, |ctx| {
                let nomad = ctx.create_local(Box::new(Nomad { hops: hops.clone(), probes: 0 }));
                ctx.send(nomad, 0, vec![]);
                let s = ctx.create_on(1, spray, vec![Value::Addr(nomad), Value::Int(5)]);
                ctx.send(s, 0, vec![]);
            });
            let r = m.run().unwrap();
            (r.makespan, r.events, r.stats.get("net.packets"))
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

// ---------------------------------------------------------------------
// Group mapping properties
// ---------------------------------------------------------------------

/// home_node/members_on are exact inverses for both mappings.
#[test]
fn group_mappings_partition() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0x10_0003 + case);
        let count = range(&mut rng, 1, 400) as u32;
        let p = range(&mut rng, 1, 40) as usize;
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            let mut owner = vec![None; count as usize];
            for node in 0..p {
                for i in hal_kernel::group::members_on(node as u16, count, p, mapping) {
                    assert!(
                        owner[i as usize].is_none(),
                        "case {case}: member {i} owned twice"
                    );
                    owner[i as usize] = Some(node as u16);
                    assert_eq!(
                        hal_kernel::group::home_node(i, count, p, mapping),
                        node as u16,
                        "case {case}"
                    );
                }
            }
            assert!(owner.iter().all(|o| o.is_some()), "case {case}");
        }
    }
}

/// GroupId encoding roundtrips.
#[test]
fn group_id_roundtrip() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0x10_0004 + case);
        let creator = range(&mut rng, 0, u16::MAX as u64) as u16;
        let counter = range(&mut rng, 0, 0x7FFF) as u16;
        let count = rng.next_u64() as u32;
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            let g = GroupId::new(creator, counter, count, mapping);
            assert_eq!(g.creator(), creator, "case {case}");
            assert_eq!(g.count(), count, "case {case}");
            assert_eq!(g.mapping(), mapping, "case {case}");
        }
    }
}

// ---------------------------------------------------------------------
// Broadcast tree properties
// ---------------------------------------------------------------------

/// The spanning tree reaches every node exactly once from any root.
#[test]
fn bcast_tree_spans() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0x10_0005 + case);
        let p = range(&mut rng, 1, 300) as usize;
        let root = (range(&mut rng, 0, 300) as usize % p) as u16;
        let mut reached = vec![false; p];
        let mut stack = vec![root];
        reached[root as usize] = true;
        let mut sends = 0usize;
        while let Some(n) = stack.pop() {
            for c in hal_am::bcast::children(n, root, p) {
                assert!(!reached[c as usize], "case {case}: node {c} reached twice");
                reached[c as usize] = true;
                sends += 1;
                stack.push(c);
            }
        }
        assert!(reached.iter().all(|&r| r), "case {case}");
        assert_eq!(sends, p - 1, "case {case}: minimum spanning tree uses p-1 sends");
    }
}

// ---------------------------------------------------------------------
// Workload numerics on arbitrary inputs
// ---------------------------------------------------------------------

/// Distributed Cholesky equals the sequential factorization for any
/// seed, size, variant, and partition.
#[test]
fn cholesky_matches_reference() {
    use hal_workloads::cholesky::{run_sim, extract_l, CholeskyConfig, Variant};
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x10_0006 + case);
        let n = range(&mut rng, 2, 14) as usize;
        let seed = range(&mut rng, 0, 1_000_000);
        let p = range(&mut rng, 1, 6) as usize;
        let variant = Variant::all()[range(&mut rng, 0, 4) as usize];
        let (_, report) = run_sim(
            MachineConfig::new(p),
            CholeskyConfig { n, variant, per_flop_ns: 10, seed },
            true,
        );
        let l = extract_l(&report, n);
        let mut a = hal_baselines::random_spd(n, seed);
        hal_baselines::cholesky_seq(&mut a, n);
        for i in 0..n {
            for j in 0..=i {
                assert!(
                    (l[i * n + j] - a[i * n + j]).abs() < 1e-9,
                    "case {case}: {variant:?} ({i},{j})"
                );
            }
        }
    }
}

/// Systolic matmul equals the naive kernel for any grid/block/seed.
#[test]
fn matmul_matches_reference() {
    use hal_baselines::gemm;
    use hal_workloads::matmul::{assemble, extract_c, run_sim, MatmulConfig};
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x10_0007 + case);
        let grid = range(&mut rng, 1, 5) as usize;
        let block = range(&mut rng, 1, 7) as usize;
        let seed_a = range(&mut rng, 0, 1_000_000);
        let seed_b = range(&mut rng, 0, 1_000_000);
        let p = range(&mut rng, 1, 5) as usize;
        let cfg = MatmulConfig { grid, block, per_flop_ns: 10, seed_a, seed_b };
        let (_, report) = run_sim(MachineConfig::new(p), cfg, true);
        let c = extract_c(&report, cfg);
        let n = cfg.n();
        let a = assemble(seed_a, grid, block);
        let b = assemble(seed_b, grid, block);
        let mut expect = vec![0.0; n * n];
        gemm::matmul_naive(&a, &b, &mut expect, n);
        assert!(gemm::max_abs_diff(&c, &expect) < 1e-9, "case {case}");
    }
}

/// fib workload equals the closed form for any grain/placement/P.
#[test]
fn fib_matches_reference() {
    use hal_workloads::fib::{run_sim, FibConfig, Placement};
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x10_0008 + case);
        let n = range(&mut rng, 1, 15);
        let grain = range(&mut rng, 0, 10);
        let p = range(&mut rng, 1, 6) as usize;
        let lb = rng.next_u64() & 1 == 1;
        let placement =
            [Placement::Local, Placement::RoundRobin, Placement::Random][range(&mut rng, 0, 3) as usize];
        let (v, _) = run_sim(
            MachineConfig::builder(p).load_balancing(lb).build().unwrap(),
            FibConfig { n, grain, placement },
        );
        assert_eq!(v, hal_baselines::fib_iter(n), "case {case}");
    }
}

// ---------------------------------------------------------------------
// Value codec
// ---------------------------------------------------------------------

/// f64 packing roundtrips bit-exactly.
#[test]
fn f64_pack_roundtrip() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0x10_0009 + case);
        let n = range(&mut rng, 0, 64) as usize;
        let data: Vec<f64> = (0..n).map(|_| f64::from_bits(rng.next_u64())).collect();
        let packed = hal_workloads::pack_f64(&data);
        let back = hal_workloads::unpack_f64(&packed);
        assert_eq!(back.len(), data.len(), "case {case}");
        for (a, b) in back.iter().zip(&data) {
            assert!(a.to_bits() == b.to_bits(), "case {case}");
        }
    }
}
