//! The kernel flight recorder: structured event tracing.
//!
//! The paper argues about *mechanism costs* — FIR chases, alias
//! round trips, pending-queue stalls — but its tables only show
//! aggregate times. The flight recorder makes the mechanisms visible:
//! when enabled (via [`crate::MachineConfigBuilder::trace`]), every kernel
//! records a typed [`KernelEvent`] stream into a bounded per-node
//! [`TraceRing`], stamped with the node's virtual clock. At report time
//! the machine merges the rings into one time-ordered [`TraceReport`]
//! that can
//!
//! * derive latency histograms ([`crate::hist`]) — message delivery
//!   split by path (local / remote / migrated-chase), FIR chain length,
//!   alias-resolution latency, pending-queue residency;
//! * export Chrome trace-event JSON loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev) (one track per node, delivery
//!   latencies as duration slices, protocol events as instants).
//!
//! Recording is off by default and the disabled path is a single
//! `Option` check per hook — `table2_primitives` numbers are unchanged
//! with tracing off.

use crate::addr::AddrKey;
use hal_am::NodeId;
use hal_des::VirtualTime;
use std::collections::HashMap;

/// How a delivered message reached its receiver's mail queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryPath {
    /// Sender and receiver were on the same node.
    Local,
    /// One network hop to a correctly believed location.
    Remote,
    /// The receiver had migrated: the message waited out an FIR chase
    /// or was forwarded along the migration chain.
    Migrated,
}

/// One structured kernel event. Variants mirror the paper's protocol
/// vocabulary (§4–§7) so a trace reads like the flowcharts.
#[derive(Clone, Debug, PartialEq)]
pub enum KernelEvent {
    /// An actor-level send left `send_to_addr` (stamped with a
    /// node-unique message id).
    MessageSent {
        /// Node-unique message id (node in the high bits).
        id: u64,
        /// Destination identity key.
        key: AddrKey,
        /// The sender believed the receiver was remote.
        remote: bool,
    },
    /// A message reached its receiver's mail queue.
    MessageDelivered {
        /// Id stamped at send time.
        id: u64,
        /// Virtual nanoseconds between send and enqueue.
        latency_ns: u64,
        /// How it got here.
        path: DeliveryPath,
    },
    /// An FIR left this node chasing `key` (§4.3).
    FirSent {
        /// The chased identity key.
        key: AddrKey,
        /// Next hop of the chase.
        to: NodeId,
    },
    /// A message joined an already-running chase instead of sending
    /// another FIR (§4.3's duplicate suppression).
    FirSuppressed {
        /// The chased identity key.
        key: AddrKey,
    },
    /// An FIR reply arrived: tables repaired, buffered messages
    /// released, askers answered (§4.3).
    FirReplyPropagated {
        /// The located identity key.
        key: AddrKey,
        /// Where the actor actually is.
        node: NodeId,
        /// Chain nodes still waiting that we forwarded the answer to.
        askers: u32,
        /// Buffered messages released directly to `node`.
        released: u32,
    },
    /// An actor completed a migration hop (recorded at the arrival
    /// node).
    ActorMigrated {
        /// The actor's primary identity key.
        key: AddrKey,
        /// The node it left.
        from: NodeId,
        /// Its migration-hop count after this move.
        epoch: u32,
    },
    /// A remote creation minted an alias and fired the request (§5).
    AliasCreated {
        /// The alias key.
        key: AddrKey,
        /// The node asked to create the actor.
        target: NodeId,
    },
    /// The requester learned the alias's real descriptor (the §5
    /// background NameInfo landed).
    AliasResolved {
        /// The alias key.
        key: AddrKey,
        /// Virtual nanoseconds from mint to resolution.
        latency_ns: u64,
    },
    /// A message's handler finished executing (recorded at the end of
    /// dispatch, stamped with the handler's charged cost). Together
    /// with [`KernelEvent::MessageSent`] and
    /// [`KernelEvent::MessageDelivered`] this closes the message
    /// lifecycle span: send → wire → queue → execute.
    MessageExecuted {
        /// Id stamped at send time.
        id: u64,
        /// Virtual nanoseconds between mail-queue enqueue and dispatch
        /// (0 for inline fast-path dispatch, which never enqueues).
        queued_ns: u64,
        /// Charged virtual nanoseconds of handler execution.
        run_ns: u64,
    },
    /// A message failed its synchronization constraint and was parked
    /// in the pending queue (§6.1).
    PendingEnqueued {
        /// The message's trace id.
        id: u64,
    },
    /// A parked message became enabled and was dispatched by the
    /// pending-queue rescan (§6.1).
    PendingRescanned {
        /// The message's trace id.
        id: u64,
        /// Virtual nanoseconds it sat in the pending queue.
        residency_ns: u64,
    },
    /// An idle node polled a random victim for work (§7.2).
    StealRequest {
        /// The polled victim.
        victim: NodeId,
    },
    /// A victim granted work to a thief (one event per donated actor).
    StealGrant {
        /// The node receiving the actor.
        thief: NodeId,
    },
    /// A node finished its garbage-collection sweep (§9).
    GcSweep {
        /// Actors freed on this node.
        freed: u64,
        /// Actors still live on this node.
        live: u64,
    },
    /// The reliable layer discarded an inbound packet as a duplicate
    /// (retransmit racing an ack, or a fabric-duplicated copy).
    Drop {
        /// The sending node.
        src: NodeId,
        /// The duplicate's per-link sequence number.
        seq: u64,
    },
    /// The reliable layer re-sent an unacked packet after its
    /// retransmit timeout.
    Retransmit {
        /// The peer the packet is addressed to.
        peer: NodeId,
        /// The re-sent packet's per-link sequence number.
        seq: u64,
    },
    /// The FIR watchdog re-issued a chase whose reply never arrived.
    FirTimeout {
        /// The chased identity key.
        key: AddrKey,
        /// How many times this chase has been re-issued.
        retries: u32,
    },
    /// An actor was installed in this node's name table under `key`
    /// (local creation, the remote side of a §5 creation, or a group
    /// member install). The protocol checker anchors its
    /// creation-happens-before-delivery pass here.
    ActorCreated {
        /// The identity key registered for the new actor.
        key: AddrKey,
    },
    /// This node's name table gained newer locality information for
    /// `key` — an FIR reply or §4.3 location gossip (NameInfo) landed
    /// and actually advanced the descriptor's epoch. Stale gossip that
    /// is ignored does not produce this event.
    NameRepaired {
        /// The repaired identity key.
        key: AddrKey,
        /// Where the actor is now believed to live.
        node: NodeId,
        /// The descriptor's new location epoch.
        epoch: u32,
    },
    /// The reliable layer released one in-order packet to the kernel
    /// (exactly-once delivery point of the (link, seq) stream).
    RelDelivered {
        /// The sending node.
        src: NodeId,
        /// The released per-link sequence number.
        seq: u64,
    },
}

impl KernelEvent {
    /// Short stable name (Chrome trace + summary tables).
    pub fn name(&self) -> &'static str {
        match self {
            KernelEvent::MessageSent { .. } => "MessageSent",
            KernelEvent::MessageDelivered { .. } => "MessageDelivered",
            KernelEvent::MessageExecuted { .. } => "MessageExecuted",
            KernelEvent::FirSent { .. } => "FirSent",
            KernelEvent::FirSuppressed { .. } => "FirSuppressed",
            KernelEvent::FirReplyPropagated { .. } => "FirReplyPropagated",
            KernelEvent::ActorMigrated { .. } => "ActorMigrated",
            KernelEvent::AliasCreated { .. } => "AliasCreated",
            KernelEvent::AliasResolved { .. } => "AliasResolved",
            KernelEvent::PendingEnqueued { .. } => "PendingEnqueued",
            KernelEvent::PendingRescanned { .. } => "PendingRescanned",
            KernelEvent::StealRequest { .. } => "StealRequest",
            KernelEvent::StealGrant { .. } => "StealGrant",
            KernelEvent::GcSweep { .. } => "GcSweep",
            KernelEvent::Drop { .. } => "Drop",
            KernelEvent::Retransmit { .. } => "Retransmit",
            KernelEvent::FirTimeout { .. } => "FirTimeout",
            KernelEvent::ActorCreated { .. } => "ActorCreated",
            KernelEvent::NameRepaired { .. } => "NameRepaired",
            KernelEvent::RelDelivered { .. } => "RelDelivered",
        }
    }
}

/// A [`KernelEvent`] stamped with where and when it happened.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual time on the recording node.
    pub time: VirtualTime,
    /// The recording node.
    pub node: NodeId,
    /// Per-node execution order, assigned by [`TraceRing::push`].
    ///
    /// Virtual time alone cannot recover a node's execution order: a
    /// handler that `charge`s cost advances the local clock past the
    /// timestamps of events already queued behind it, so a node's
    /// timestamps are not monotone in execution order. Consumers that
    /// care about causality (the protocol checker's replay) sort each
    /// node's events by `seq`, never by `time`.
    pub seq: u64,
    /// Lifecycle span this event belongs to (0 = none). Message events
    /// use the message's trace id; FIR-chase events share one span per
    /// chase episode; alias events share one span per remote creation.
    pub span: u64,
    /// Causal parent span (0 = none): for a [`KernelEvent::MessageSent`]
    /// the span of the message whose handler issued the send, for an
    /// opening chase/alias event the message or handler that triggered
    /// it. Spans plus parents form the causal DAG walked by the
    /// critical-path analyzer (`hal-profile`).
    pub parent: u64,
    /// What happened.
    pub event: KernelEvent,
}

impl TraceEvent {
    /// Event at `time` on `node` with no span attribution (seq is
    /// assigned by [`TraceRing::push`]).
    pub fn at(time: VirtualTime, node: NodeId, event: KernelEvent) -> Self {
        TraceEvent { time, node, seq: 0, span: 0, parent: 0, event }
    }

    /// Attach a span id.
    #[must_use]
    pub fn with_span(mut self, span: u64) -> Self {
        self.span = span;
        self
    }

    /// Attach a causal parent span.
    #[must_use]
    pub fn with_parent(mut self, parent: u64) -> Self {
        self.parent = parent;
        self
    }
}

/// Per-message metadata riding inside [`crate::Msg`] while tracing is
/// on. Never serialized: [`crate::Msg::wire_bytes`] ignores it, so the
/// cost model and the small/bulk split are identical with tracing on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceTag {
    /// Node-unique message id.
    pub id: u64,
    /// Virtual time at the sender when the send was issued.
    pub sent_at: VirtualTime,
    /// Path flags ([`TraceTag::REMOTE`], [`TraceTag::CHASED`]).
    pub flags: u8,
}

impl TraceTag {
    /// The sender resolved the receiver to another node.
    pub const REMOTE: u8 = 1;
    /// The message was buffered behind an FIR chase or forwarded along
    /// a migration chain.
    pub const CHASED: u8 = 2;

    /// The delivery path these flags describe.
    pub fn path(&self) -> DeliveryPath {
        if self.flags & Self::CHASED != 0 {
            DeliveryPath::Migrated
        } else if self.flags & Self::REMOTE != 0 {
            DeliveryPath::Remote
        } else {
            DeliveryPath::Local
        }
    }
}

/// A bounded ring of trace events: pushes past the capacity overwrite
/// the oldest entries (a *flight recorder*, not an unbounded log).
#[derive(Clone, Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the logical start once the ring has wrapped.
    head: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
    /// Next [`TraceEvent::seq`] — total pushes so far.
    next_seq: u64,
}

impl TraceRing {
    /// Ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity,
            head: 0,
            dropped: 0,
            next_seq: 0,
        }
    }

    /// Record an event, overwriting the oldest if full. The event's
    /// `seq` is assigned here (callers leave it 0): rings are per-node,
    /// so push order *is* the node's execution order.
    pub fn push(&mut self, mut ev: TraceEvent) {
        ev.seq = self.next_seq;
        self.next_seq += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held, oldest first.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate events oldest first (accounting for wraparound).
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter())
    }
}

/// Per-kernel recorder state: the ring plus the latency-tracking maps
/// that turn single events into durations. Boxed behind an `Option` in
/// the kernel so the disabled path costs one pointer test.
#[derive(Debug)]
pub struct Recorder {
    /// The bounded event buffer.
    pub ring: TraceRing,
    next_msg_seq: u64,
    node_bits: u64,
    /// Alias key -> mint time (for [`KernelEvent::AliasResolved`]).
    pub(crate) alias_born: HashMap<AddrKey, VirtualTime>,
    /// Trace id -> park time (for [`KernelEvent::PendingRescanned`]).
    pub(crate) pending_since: HashMap<u64, VirtualTime>,
    /// Span of the message whose handler is currently executing on this
    /// node (0 between dispatches). Sends stamp it as their causal
    /// parent.
    pub(crate) current_span: u64,
    /// Trace id -> enqueue time (for
    /// [`KernelEvent::MessageExecuted::queued_ns`]).
    pub(crate) delivered_at: HashMap<u64, VirtualTime>,
    /// Chased key -> the chase episode's span id (minted when the chase
    /// opens, shared by every hop, popped when the reply propagates).
    pub(crate) chase_span: HashMap<AddrKey, u64>,
    /// Alias key -> the remote-creation span id (mint → install →
    /// resolve).
    pub(crate) alias_span: HashMap<AddrKey, u64>,
    /// (peer, link seq) -> the message span riding that reliable-layer
    /// packet, so retransmits show up as retry sub-events of the span.
    pub(crate) rel_span: HashMap<(NodeId, u64), u64>,
}

impl Recorder {
    /// Default ring capacity per node.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Recorder for `node` with the given ring capacity.
    pub fn new(node: NodeId, capacity: usize) -> Self {
        Recorder {
            ring: TraceRing::new(capacity),
            next_msg_seq: 0,
            node_bits: (node as u64) << 48,
            alias_born: HashMap::new(),
            pending_since: HashMap::new(),
            current_span: 0,
            delivered_at: HashMap::new(),
            chase_span: HashMap::new(),
            alias_span: HashMap::new(),
            rel_span: HashMap::new(),
        }
    }

    /// Mint a node-unique message id.
    pub fn next_msg_id(&mut self) -> u64 {
        self.next_msg_seq += 1;
        self.node_bits | self.next_msg_seq
    }
}

/// A typed, non-fatal anomaly of a run — carried alongside the event
/// stream (never ring-buffered, never dropped) so downstream consumers
/// (hal-check, metrics) can see conditions that have no per-node event
/// of their own. Warnings derive from canonical admission order, so
/// they are deterministic across `--parallel K` like everything else in
/// the report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceWarning {
    /// What happened.
    pub kind: WarningKind,
    /// Virtual time of the anomaly.
    pub t: VirtualTime,
    /// Source node involved.
    pub src: NodeId,
    /// Destination node involved.
    pub dst: NodeId,
}

/// Warning taxonomy (see [`TraceWarning`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarningKind {
    /// Chaos duplicated a packet whose envelope is a one-shot payload
    /// with no clonable representation: the duplicate could not be
    /// materialized and was counted (`net.fault_dup_unclonable`) and
    /// discarded instead of silently lost.
    DupCloneFailed,
}

impl WarningKind {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            WarningKind::DupCloneFailed => "dup_clone_failed",
        }
    }
}

/// The merged, time-ordered trace of a whole run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceReport {
    /// All surviving events, ordered by (time, node).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wraparound, summed over nodes.
    pub dropped: u64,
    /// Typed non-fatal anomalies (bounded at the source), time-ordered.
    pub warnings: Vec<TraceWarning>,
}

impl TraceReport {
    /// Merge per-node recorders into one ordered report.
    pub fn merge<'a>(recorders: impl Iterator<Item = &'a Recorder>) -> Self {
        let mut events = Vec::new();
        let mut dropped = 0;
        for r in recorders {
            events.extend(r.ring.iter().cloned());
            dropped += r.ring.dropped();
        }
        events.sort_by_key(|e| (e.time, e.node, e.seq));
        TraceReport {
            events,
            dropped,
            warnings: Vec::new(),
        }
    }

    /// Count of events with the given stable name.
    pub fn count(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.event.name() == name).count()
    }

    /// Derive the standard latency histograms ([`crate::hist`]).
    pub fn histograms(&self) -> crate::hist::TraceHists {
        crate::hist::derive(&self.events)
    }

    /// Human-readable summary: event counts plus the derived latency
    /// histograms.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut counts: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.event.name()).or_insert(0) += 1;
        }
        let mut out = String::from("flight recorder summary\n");
        let _ = writeln!(out, "  events recorded: {} (dropped: {})", self.events.len(), self.dropped);
        for (name, n) in counts {
            let _ = writeln!(out, "  {name:<20} {n:>8}");
        }
        out.push('\n');
        out.push_str(&crate::hist::render(&self.histograms()));
        out
    }

    /// Serialize as Chrome trace-event JSON (the `chrome://tracing` /
    /// Perfetto format): one `pid` per machine, one `tid` per node,
    /// deliveries as duration slices (`ph:"X"` spanning send→enqueue),
    /// everything else as thread-scoped instants (`ph:"i"`). Message
    /// lifecycle spans additionally render as an async track (`ph:"b"`
    /// at send, `ph:"e"` at handler completion, keyed by span id) so
    /// Perfetto draws each message's whole life as one arc even when it
    /// crosses nodes.
    pub fn chrome_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut nodes: Vec<NodeId> = self.events.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, line: &str| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(line);
        };
        for n in nodes {
            push(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{n},\
                     \"args\":{{\"name\":\"node {n}\"}}}}"
                ),
            );
        }
        for e in &self.events {
            let ts_us = e.time.as_nanos() as f64 / 1e3;
            let tid = e.node;
            // The async "message lifecycle" track: one begin/end pair
            // per span id, opened at send and closed at handler
            // completion. Unbalanced pairs (ring wrap, still-in-flight
            // messages) are tolerated by the viewers.
            match &e.event {
                KernelEvent::MessageSent { id, .. } => {
                    let start_us = ts_us;
                    push(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"msg\",\"cat\":\"span\",\"ph\":\"b\",\"id\":{id},\
                             \"pid\":0,\"tid\":{tid},\"ts\":{start_us:.3},\
                             \"args\":{{\"parent\":{}}}}}",
                            e.parent
                        ),
                    );
                }
                KernelEvent::MessageExecuted { id, .. } => {
                    push(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"msg\",\"cat\":\"span\",\"ph\":\"e\",\"id\":{id},\
                             \"pid\":0,\"tid\":{tid},\"ts\":{ts_us:.3}}}"
                        ),
                    );
                }
                _ => {}
            }
            let line = match &e.event {
                KernelEvent::MessageDelivered { id, latency_ns, path } => {
                    // A slice spanning the delivery latency, ending at
                    // the enqueue instant.
                    let dur_us = *latency_ns as f64 / 1e3;
                    let start_us = ts_us - dur_us;
                    format!(
                        "{{\"name\":\"deliver:{path:?}\",\"cat\":\"delivery\",\"ph\":\"X\",\
                         \"pid\":0,\"tid\":{tid},\"ts\":{start_us:.3},\"dur\":{dur_us:.3},\
                         \"args\":{{\"id\":{id}}}}}"
                    )
                }
                ev => {
                    let args = match ev {
                        KernelEvent::MessageSent { id, key, remote } => format!(
                            "{{\"id\":{id},\"key\":\"{key:?}\",\"remote\":{remote}}}"
                        ),
                        KernelEvent::FirSent { key, to } => {
                            format!("{{\"key\":\"{key:?}\",\"to\":{to}}}")
                        }
                        KernelEvent::FirSuppressed { key } => format!("{{\"key\":\"{key:?}\"}}"),
                        KernelEvent::FirReplyPropagated { key, node, askers, released } => format!(
                            "{{\"key\":\"{key:?}\",\"node\":{node},\"askers\":{askers},\
                             \"released\":{released}}}"
                        ),
                        KernelEvent::ActorMigrated { key, from, epoch } => format!(
                            "{{\"key\":\"{key:?}\",\"from\":{from},\"epoch\":{epoch}}}"
                        ),
                        KernelEvent::AliasCreated { key, target } => {
                            format!("{{\"key\":\"{key:?}\",\"target\":{target}}}")
                        }
                        KernelEvent::AliasResolved { key, latency_ns } => {
                            format!("{{\"key\":\"{key:?}\",\"latency_ns\":{latency_ns}}}")
                        }
                        KernelEvent::MessageExecuted { id, queued_ns, run_ns } => {
                            format!("{{\"id\":{id},\"queued_ns\":{queued_ns},\"run_ns\":{run_ns}}}")
                        }
                        KernelEvent::PendingEnqueued { id } => format!("{{\"id\":{id}}}"),
                        KernelEvent::PendingRescanned { id, residency_ns } => {
                            format!("{{\"id\":{id},\"residency_ns\":{residency_ns}}}")
                        }
                        KernelEvent::StealRequest { victim } => {
                            format!("{{\"victim\":{victim}}}")
                        }
                        KernelEvent::StealGrant { thief } => format!("{{\"thief\":{thief}}}"),
                        KernelEvent::GcSweep { freed, live } => {
                            format!("{{\"freed\":{freed},\"live\":{live}}}")
                        }
                        KernelEvent::Drop { src, seq } => {
                            format!("{{\"src\":{src},\"seq\":{seq}}}")
                        }
                        KernelEvent::Retransmit { peer, seq } => {
                            format!("{{\"peer\":{peer},\"seq\":{seq}}}")
                        }
                        KernelEvent::FirTimeout { key, retries } => {
                            format!("{{\"key\":\"{key:?}\",\"retries\":{retries}}}")
                        }
                        KernelEvent::ActorCreated { key } => format!("{{\"key\":\"{key:?}\"}}"),
                        KernelEvent::NameRepaired { key, node, epoch } => format!(
                            "{{\"key\":\"{key:?}\",\"node\":{node},\"epoch\":{epoch}}}"
                        ),
                        KernelEvent::RelDelivered { src, seq } => {
                            format!("{{\"src\":{src},\"seq\":{seq}}}")
                        }
                        KernelEvent::MessageDelivered { .. } => unreachable!("handled above"),
                    };
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"kernel\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":0,\"tid\":{tid},\"ts\":{ts_us:.3},\"args\":{args}}}",
                        e.event.name()
                    )
                }
            };
            push(&mut out, &mut first, &line);
        }
        let _ = write!(out, "\n],\"displayTimeUnit\":\"ns\"}}");
        out
    }

    /// Write the Chrome trace JSON to `path`, creating parent
    /// directories as needed.
    pub fn write_chrome(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.chrome_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DescriptorId;

    fn ev(ns: u64, node: NodeId) -> TraceEvent {
        TraceEvent::at(
            VirtualTime::from_nanos(ns),
            node,
            KernelEvent::StealRequest { victim: 0 },
        )
    }

    #[test]
    fn ring_holds_events_below_capacity() {
        let mut r = TraceRing::new(4);
        for i in 0..3 {
            r.push(ev(i, 0));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let times: Vec<u64> = r.iter().map(|e| e.time.as_nanos()).collect();
        assert_eq!(times, vec![0, 1, 2]);
    }

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_drops() {
        let mut r = TraceRing::new(4);
        for i in 0..10 {
            r.push(ev(i, 0));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        // Oldest-first iteration across the wrap point.
        let times: Vec<u64> = r.iter().map(|e| e.time.as_nanos()).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_capacity_one_keeps_latest() {
        let mut r = TraceRing::new(1);
        r.push(ev(1, 0));
        r.push(ev(2, 0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().time.as_nanos(), 2);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn merge_orders_across_nodes() {
        let mut a = Recorder::new(0, 16);
        let mut b = Recorder::new(1, 16);
        a.ring.push(ev(5, 0));
        a.ring.push(ev(9, 0));
        b.ring.push(ev(3, 1));
        b.ring.push(ev(7, 1));
        let merged = TraceReport::merge([&a, &b].into_iter());
        let times: Vec<u64> = merged.events.iter().map(|e| e.time.as_nanos()).collect();
        assert_eq!(times, vec![3, 5, 7, 9]);
        assert_eq!(merged.dropped, 0);
    }

    #[test]
    fn msg_ids_are_node_unique() {
        let mut a = Recorder::new(3, 16);
        let id1 = a.next_msg_id();
        let id2 = a.next_msg_id();
        assert_ne!(id1, id2);
        assert_eq!(id1 >> 48, 3);
    }

    #[test]
    fn tag_path_classification() {
        let t = |flags| TraceTag { id: 0, sent_at: VirtualTime::ZERO, flags };
        assert_eq!(t(0).path(), DeliveryPath::Local);
        assert_eq!(t(TraceTag::REMOTE).path(), DeliveryPath::Remote);
        assert_eq!(t(TraceTag::CHASED).path(), DeliveryPath::Migrated);
        assert_eq!(t(TraceTag::REMOTE | TraceTag::CHASED).path(), DeliveryPath::Migrated);
    }

    #[test]
    fn chrome_json_is_well_formed_enough() {
        let mut r = Recorder::new(0, 16);
        r.ring.push(
            TraceEvent::at(
                VirtualTime::from_nanos(1_000),
                0,
                KernelEvent::MessageSent {
                    id: 7,
                    key: AddrKey { birthplace: 0, index: DescriptorId(1) },
                    remote: true,
                },
            )
            .with_span(7),
        );
        r.ring.push(
            TraceEvent::at(
                VirtualTime::from_nanos(2_000),
                0,
                KernelEvent::MessageDelivered {
                    id: 7,
                    latency_ns: 1_000,
                    path: DeliveryPath::Remote,
                },
            )
            .with_span(7),
        );
        r.ring.push(
            TraceEvent::at(
                VirtualTime::from_nanos(2_300),
                0,
                KernelEvent::MessageExecuted { id: 7, queued_ns: 100, run_ns: 200 },
            )
            .with_span(7),
        );
        r.ring.push(TraceEvent::at(
            VirtualTime::from_nanos(2_500),
            0,
            KernelEvent::FirSent {
                key: AddrKey { birthplace: 0, index: DescriptorId(1) },
                to: 3,
            },
        ));
        let report = TraceReport::merge([&r].into_iter());
        let json = report.chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"dur\":1.000"), "{json}");
        assert!(json.contains("FirSent"), "{json}");
        // The async lifecycle track: a begin at send, an end at execute.
        assert!(json.contains("\"ph\":\"b\",\"id\":7"), "{json}");
        assert!(json.contains("\"ph\":\"e\",\"id\":7"), "{json}");
        assert!(json.ends_with("\"displayTimeUnit\":\"ns\"}"));
        // Balanced braces — cheap structural sanity check.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }
}
