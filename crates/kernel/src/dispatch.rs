//! The dispatcher: per-node ready queue (§3).
//!
//! "The dispatcher provides the data structures that are necessary for
//! scheduling actors; the responsibility to actually schedule actors is
//! delegated to individual actors. When an actor completes its execution,
//! it obtains another actor from the dispatcher and yields control to it.
//! This allows the scheduling to be performed without context switching."
//!
//! The ready queue holds plain actor ids; the kernel's step function pops
//! one and runs it to (quantum) completion on the same stack. Collective
//! scheduling of broadcasts (§6.4) works by enqueueing all local group
//! members consecutively so they run back-to-back.

use crate::addr::ActorId;
use std::collections::VecDeque;

/// Per-node ready queue.
#[derive(Default)]
pub struct Dispatcher {
    ready: VecDeque<ActorId>,
    dispatched_total: u64,
}

impl Dispatcher {
    /// Empty dispatcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an actor to the ready queue. Callers must maintain the
    /// "scheduled at most once" invariant via the actor record's
    /// `scheduled` flag.
    #[inline]
    pub fn push(&mut self, id: ActorId) {
        self.ready.push_back(id);
    }

    /// Push an actor to the *front* of the queue — used by collective
    /// scheduling to keep a broadcast quantum contiguous even if other
    /// work was already queued.
    #[inline]
    pub fn push_front(&mut self, id: ActorId) {
        self.ready.push_front(id);
    }

    /// Next actor to run.
    #[inline]
    pub fn pop(&mut self) -> Option<ActorId> {
        let id = self.ready.pop_front();
        if id.is_some() {
            self.dispatched_total += 1;
        }
        id
    }

    /// Pick a victim for work stealing: the *back* of the queue (coldest
    /// work, most likely a large untouched subtree — the classic
    /// steal-from-the-tail heuristic).
    pub fn steal_candidate(&mut self) -> Option<ActorId> {
        self.ready.pop_back()
    }

    /// Take up to half the ready queue (capped) from the tail — the
    /// work-splitting rule of receiver-initiated random polling (Kumar,
    /// Grama & Rao): a loaded victim donates half its pending work.
    pub fn steal_half(&mut self, cap: usize) -> Vec<ActorId> {
        let take = (self.ready.len() / 2).min(cap);
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            if let Some(id) = self.ready.pop_back() {
                out.push(id);
            }
        }
        out
    }

    /// Number of ready actors.
    #[inline]
    pub fn len(&self) -> usize {
        self.ready.len()
    }

    /// True when nothing is ready.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }

    /// Total dispatches (diagnostics).
    pub fn dispatched_total(&self) -> u64 {
        self.dispatched_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut d = Dispatcher::new();
        d.push(ActorId(1));
        d.push(ActorId(2));
        d.push(ActorId(3));
        assert_eq!(d.pop(), Some(ActorId(1)));
        assert_eq!(d.pop(), Some(ActorId(2)));
        assert_eq!(d.pop(), Some(ActorId(3)));
        assert_eq!(d.pop(), None);
        assert_eq!(d.dispatched_total(), 3);
    }

    #[test]
    fn steal_takes_from_the_tail() {
        let mut d = Dispatcher::new();
        d.push(ActorId(1));
        d.push(ActorId(2));
        d.push(ActorId(3));
        assert_eq!(d.steal_candidate(), Some(ActorId(3)));
        assert_eq!(d.pop(), Some(ActorId(1)));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn push_front_jumps_the_queue() {
        let mut d = Dispatcher::new();
        d.push(ActorId(1));
        d.push_front(ActorId(2));
        assert_eq!(d.pop(), Some(ActorId(2)));
        assert_eq!(d.pop(), Some(ActorId(1)));
    }

    #[test]
    fn empty_dispatcher_reports_empty() {
        let mut d = Dispatcher::new();
        assert!(d.is_empty());
        assert_eq!(d.steal_candidate(), None);
        d.push(ActorId(0));
        assert!(!d.is_empty());
    }
}
