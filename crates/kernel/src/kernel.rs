//! The per-node runtime kernel (§3, Fig. 2).
//!
//! "The kernel serves as a passive substrate on which individual actors
//! execute. Because each actor executes kernel functions as part of its
//! own computation, both actor methods and kernel functions may be
//! executed on the same stack assigned to the actor, eliminating the need
//! for context switching between the actor and the kernel."
//!
//! [`Kernel`] owns one node's name server, actor heap, dispatcher, join
//! table, FIR table, group table, balancer, and bulk/flow state, and is
//! driven from outside by a *machine* (simulated or threaded) that feeds
//! it packets and step requests. All outbound traffic goes through the
//! [`NetOut`] abstraction so the identical kernel code runs on both
//! substrates.
//!
//! [`Ctx`] is the actor interface of Fig. 2 — the surface "exported to
//! the compiler". Behaviors receive a `Ctx` in every dispatch and use it
//! to send, create, become, broadcast, request/reply, and migrate.

use crate::actor::{ActorRecord, ActorSlab, Behavior};
use crate::addr::{ActorId, AddrKey, BehaviorId, DescriptorId, GroupId, JcId, MailAddr, Mapping, Selector};
use crate::balance::Balancer;
use crate::cost::CostModel;
use crate::descriptor::Locality;
use crate::dispatch::Dispatcher;
use crate::error::MachineError;
use crate::fir::FirTable;
use crate::gc::{CoordState, GcState, MarkBatches};
use crate::group::{home_node, members_on, GroupTable};
use crate::join::{JoinFn, JoinTable};
use crate::message::{ContRef, Msg, Target, Value};
use crate::metrics::{Metrics, Sample};
use crate::name_server::{NameServer, Resolution};
use crate::registry::BehaviorRegistry;
use crate::trace::{KernelEvent, Recorder, TraceEvent, TraceTag};
use crate::wire::{ActorImage, KMsg};
use hal_am::{
    bcast, AmEnvelope, BulkSender, FaultPlan, FlowControl, NodeId, Packet, RelReceiver, RelSender,
    RetxDecision, RxOutcome, MAX_SMALL_BYTES, REL_HEADER,
};
use hal_des::{StatSet, VirtualDuration, VirtualTime};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Outbound network interface the kernel writes to. Implemented by the
/// simulated network and by thread-mode endpoints.
pub trait NetOut {
    /// Inject an envelope from `src` to `dst` at virtual time `now`.
    fn inject(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        env: AmEnvelope<KMsg>,
        wire_bytes: usize,
    );

    /// Schedule a self-addressed timer event on `node` at `fire_at`
    /// (chaos subsystem: retransmit timeouts, FIR watchdogs). Timers
    /// bypass the link resource model and fault layer entirely.
    fn schedule(&mut self, fire_at: VirtualTime, node: NodeId, env: AmEnvelope<KMsg>);
}

impl NetOut for hal_am::SimNetwork<KMsg> {
    fn inject(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        env: AmEnvelope<KMsg>,
        wire_bytes: usize,
    ) {
        hal_am::SimNetwork::inject(self, now, src, dst, env, wire_bytes);
    }

    fn schedule(&mut self, fire_at: VirtualTime, node: NodeId, env: AmEnvelope<KMsg>) {
        hal_am::SimNetwork::schedule(self, fire_at, node, env);
    }
}

impl NetOut for hal_am::ThreadEndpoint<KMsg> {
    fn inject(
        &mut self,
        _now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        env: AmEnvelope<KMsg>,
        wire_bytes: usize,
    ) {
        debug_assert_eq!(src, self.node());
        self.send(dst, env, wire_bytes);
    }

    fn schedule(&mut self, _fire_at: VirtualTime, _node: NodeId, _env: AmEnvelope<KMsg>) {
        // Thread mode has no virtual clock to fire against; fault
        // injection (the only timer producer) is simulation-only.
        panic!("timers require the simulated network");
    }
}

/// Ablation switches for the paper's individual design choices. All
/// default to the paper's design; each `false` selects the alternative
/// the paper argues against, so benches can measure what every choice
/// buys.
#[derive(Clone, Copy, Debug)]
pub struct OptFlags {
    /// §5: alias-based latency hiding for remote creation. When off,
    /// the requester *blocks* for the full creation round trip (the
    /// stock-hardware alternative the paper rejects; split-phase would
    /// need cheap context switches the CM-5 lacked).
    pub aliases: bool,
    /// §4.1: receivers reply with their descriptor index so senders
    /// cache it and later deliveries skip the receiver's name table.
    /// When off, every delivery pays the receiving-side hash lookup and
    /// no NameInfo gossip flows.
    pub name_caching: bool,
    /// §6.4: collective scheduling of broadcasts — all local members of
    /// a group are delivered consecutively under one dispatch charge.
    /// When off, each member delivery pays a full dispatch.
    pub collective_bcast: bool,
    /// §4.3: locate migrated actors with small FIR messages, buffering
    /// the originals. When off, the node manager forwards the *entire
    /// message* along the forward chain — the alternative the paper
    /// rejects because it multiplies bulk traffic.
    pub fir_chase: bool,
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags {
            aliases: true,
            name_caching: true,
            collective_bcast: true,
            fir_chase: true,
        }
    }
}

/// Static configuration of one kernel.
#[derive(Clone)]
pub struct KernelConfig {
    /// This node's id.
    pub me: NodeId,
    /// Partition size.
    pub nodes: usize,
    /// Virtual-time cost model.
    pub cost: CostModel,
    /// Receiver-initiated random-polling load balancing (§7.2).
    pub load_balancing: bool,
    /// Three-phase bulk flow control (§6.5). Disabling it is the Table 1
    /// ablation: bulk data is injected eagerly.
    pub flow_control: bool,
    /// Messages an actor may process per scheduling quantum.
    pub quantum: usize,
    /// Depth bound for compiler-controlled stack-based scheduling (§6.3).
    pub max_stack_depth: u32,
    /// Machine seed (per-node RNG streams derive from it).
    pub seed: u64,
    /// Ablation switches (paper design by default).
    pub opt: OptFlags,
    /// Enable the flight recorder ([`crate::trace`]). Off by default;
    /// the disabled path is a single pointer test per hook.
    pub trace: bool,
    /// Enable the live metrics registry ([`crate::metrics`]). Off by
    /// default; like tracing, the disabled path is one pointer test.
    pub metrics: bool,
    /// Seeded fault plan (chaos subsystem). [`FaultPlan::none`] runs the
    /// byte-identical fault-free fast path.
    pub faults: FaultPlan,
    /// Always wrap outbound envelopes in the reliable (seq + ack +
    /// retransmit) protocol and arm FIR watchdogs, even with no fault
    /// plan. The live backend sets this: real transports have no
    /// deterministic delivery oracle, so the PR 3 reliable layer *is*
    /// its wire protocol. Simulated machines leave it off — there the
    /// reliable layer engages only under a chaos plan.
    pub force_reliable: bool,
}

impl KernelConfig {
    /// Reasonable defaults for `nodes` nodes.
    pub fn new(me: NodeId, nodes: usize) -> Self {
        KernelConfig {
            me,
            nodes,
            cost: CostModel::cm5(),
            load_balancing: false,
            flow_control: true,
            quantum: 16,
            max_stack_depth: 64,
            seed: 0x5EED,
            opt: OptFlags::default(),
            trace: false,
            metrics: false,
            faults: FaultPlan::none(),
            force_reliable: false,
        }
    }
}

/// The per-node kernel.
pub struct Kernel {
    cfg: KernelConfig,
    /// Virtual clock: all primitive costs accumulate here.
    pub clock: VirtualTime,
    names: NameServer,
    actors: ActorSlab,
    joins: JoinTable,
    firs: FirTable,
    groups: GroupTable,
    dispatcher: Dispatcher,
    /// Load-balancer policy state (public: the machine consults it for
    /// idle-node poll scheduling).
    pub balancer: Balancer,
    registry: Arc<BehaviorRegistry>,
    bulk_tx: BulkSender<KMsg>,
    flow: FlowControl,
    /// Self-addressed kernel messages (never touch the network).
    loopback: VecDeque<KMsg>,
    /// Messages for keys this node knows nothing about yet (e.g. alias
    /// traffic racing the creation request).
    unknown_buffer: HashMap<AddrKey, Vec<Msg>>,
    /// (sender, key) pairs already sent a NameInfo cache reply — a
    /// sender bursting messages before our first reply lands must not
    /// trigger one reply per message.
    advised: std::collections::HashSet<(NodeId, AddrKey)>,
    /// Garbage-collection state (§9 future work).
    pub(crate) gc: GcState,
    /// Coordinator of the in-flight collection.
    gc_coordinator: NodeId,
    /// Coordinator-side accumulator of live counts during sweep.
    gc_live_total: u64,
    /// Depth of inline (stack-based) dispatch currently active.
    stack_depth: u32,
    /// Freelist of spent `Vec<Value>` argument buffers. Creation paths
    /// build one arg vector per actor (group creation builds one per
    /// *member*); recycling them turns that per-create heap churn into
    /// a pop/push on this stack.
    args_pool: Vec<Vec<Value>>,
    /// Set by `Ctx::stop` or an incoming Halt.
    pub stopped: bool,
    /// Counters; the machine merges these into its report.
    pub stats: StatSet,
    /// Values posted by actors via `Ctx::report` (harness results).
    pub reports: Vec<(String, Value)>,
    /// Flight recorder ([`crate::trace`]); `None` when tracing is off,
    /// boxed so the common case carries one cold pointer.
    recorder: Option<Box<Recorder>>,
    /// Live metrics registry ([`crate::metrics`]); `None` when metrics
    /// are off, boxed like the recorder.
    metrics: Option<Box<Metrics>>,
    /// Reliable-delivery sender state (per-peer unacked queues). Only
    /// touched when the fault plan is active and `reliable` is on.
    rel_tx: RelSender<KMsg>,
    /// Reliable-delivery receiver state (per-peer dedup + holdback).
    rel_rx: RelReceiver<KMsg>,
    /// This node's pause windows from the fault plan, sorted by start.
    pauses: Vec<(VirtualTime, VirtualTime)>,
    /// First typed error hit on a public kernel path; stops the machine
    /// and surfaces through `SimMachine::run`.
    pub(crate) failed: Option<MachineError>,
}

impl Kernel {
    /// Build a kernel over a shared behavior registry.
    pub fn new(cfg: KernelConfig, registry: Arc<BehaviorRegistry>) -> Self {
        let balancer = Balancer::new(cfg.load_balancing, cfg.seed, cfg.me);
        let recorder = cfg
            .trace
            .then(|| Box::new(Recorder::new(cfg.me, Recorder::DEFAULT_CAPACITY)));
        let metrics = cfg.metrics.then(|| Box::new(Metrics::new(cfg.me)));
        Kernel {
            recorder,
            metrics,
            names: NameServer::new(cfg.me),
            actors: ActorSlab::new(),
            joins: JoinTable::new(),
            firs: FirTable::new(),
            groups: GroupTable::new(),
            dispatcher: Dispatcher::new(),
            balancer,
            registry,
            bulk_tx: BulkSender::new(cfg.me),
            flow: FlowControl::new(),
            loopback: VecDeque::new(),
            unknown_buffer: HashMap::new(),
            advised: std::collections::HashSet::new(),
            gc: GcState::default(),
            gc_coordinator: 0,
            gc_live_total: 0,
            stack_depth: 0,
            args_pool: Vec::new(),
            stopped: false,
            clock: VirtualTime::ZERO,
            stats: StatSet::new(),
            reports: Vec::new(),
            rel_tx: RelSender::new(),
            rel_rx: RelReceiver::new(),
            pauses: cfg.faults.pauses_for(cfg.me),
            failed: None,
            cfg,
        }
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.cfg.me
    }

    /// Partition size.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Advance the virtual clock by a primitive's cost.
    #[inline]
    fn charge(&mut self, d: VirtualDuration) {
        self.clock += d;
        if let Some(m) = self.metrics.as_deref_mut() {
            m.busy_ns += d.as_nanos();
        }
    }

    /// Bound on [`Kernel::args_pool`]: beyond this, spent buffers are
    /// simply dropped (a burst of group creations must not pin memory
    /// forever).
    const ARGS_POOL_MAX: usize = 64;

    /// An empty argument buffer with at least `cap` capacity, reusing a
    /// pooled allocation when one is available.
    #[inline]
    fn take_args(&mut self, cap: usize) -> Vec<Value> {
        match self.args_pool.pop() {
            Some(mut v) => {
                v.reserve(cap);
                v
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Return a spent argument buffer to the pool.
    #[inline]
    fn recycle_args(&mut self, mut v: Vec<Value>) {
        if self.args_pool.len() < Self::ARGS_POOL_MAX {
            v.clear();
            self.args_pool.push(v);
        }
    }

    /// Does this node have runnable work (ready actors or self-addressed
    /// kernel messages)?
    pub fn has_work(&self) -> bool {
        !self.dispatcher.is_empty() || !self.loopback.is_empty()
    }

    /// Number of ready actors (machine-level idle/steal decisions).
    pub fn ready_len(&self) -> usize {
        self.dispatcher.len()
    }

    /// Live actors on this node.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Total actors ever created on this node.
    pub fn actors_created(&self) -> u64 {
        self.actors.created_total()
    }

    /// Read-only access to the name server (tests, diagnostics).
    pub fn name_server(&self) -> &NameServer {
        &self.names
    }

    /// Read-only access to the FIR table (tests, diagnostics).
    pub fn fir_table(&self) -> &FirTable {
        &self.firs
    }

    /// The flight recorder, if tracing is enabled.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_deref()
    }

    /// The live metrics registry, if metrics are enabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_deref()
    }

    /// Sample the metrics gauges if a cadence boundary was crossed.
    /// Called from the two points where per-node state settles — the
    /// end of `step` and the end of `deliver` — whose sequence is
    /// identical at any executor parallelism, so the timeseries is too.
    #[inline]
    fn metrics_tick(&mut self) {
        if self.metrics.is_none() {
            return;
        }
        let template = Sample {
            at_ns: 0,
            pending_depth: 0, // filled from the live gauge below
            name_entries: self.names.table_entries() as u32,
            inflight_firs: self.firs.outstanding() as u32,
            ready: self.dispatcher.len() as u32,
            unknown_buffered: self.unknown_buffer.values().map(Vec::len).sum::<usize>() as u32,
        };
        let now = self.clock.as_nanos();
        let m = self.metrics.as_deref_mut().expect("checked above");
        let template = Sample { pending_depth: m.pending_depth, ..template };
        m.advance(now, template);
    }

    /// Adjust the live pending-queue-depth gauge (park/rescan/migration
    /// sites).
    #[inline]
    fn metrics_pending(&mut self, delta: i64) {
        if let Some(m) = self.metrics.as_deref_mut() {
            m.pending_depth = (i64::from(m.pending_depth) + delta).max(0) as u32;
        }
    }

    /// The shared behavior registry (the loaded program image).
    pub fn registry(&self) -> &BehaviorRegistry {
        &self.registry
    }

    /// Audit this node's leftover protocol state — see [`crate::audit`].
    /// Exact (computed from live kernel tables, not the bounded trace
    /// ring) and meaningful at any time, though the interesting moment
    /// is after a run drained.
    pub fn quiescence_audit(&self) -> crate::audit::NodeAudit {
        let mut stranded_pending = 0u64;
        let mut stranded_keys = Vec::new();
        for aid in self.actors.live_ids() {
            if let Some(rec) = self.actors.get(aid) {
                if !rec.pendq.is_empty() {
                    stranded_pending += rec.pendq.len() as u64;
                    stranded_keys.push(rec.addr.key);
                }
            }
        }
        crate::audit::NodeAudit {
            node: self.cfg.me,
            stranded_pending,
            stranded_keys,
            unresolved_joins: self.joins.pending() as u64,
            outstanding_firs: self.firs.outstanding() as u64,
            unknown_buffered: self.unknown_buffer.values().map(|v| v.len() as u64).sum(),
        }
    }

    /// Record one trace event at the current clock. Callers on hot
    /// paths guard with `self.recorder.is_some()` so event construction
    /// is skipped entirely when tracing is off.
    #[inline]
    fn trace_event(&mut self, event: KernelEvent) {
        self.trace_event_span(event, 0, 0);
    }

    /// Record one trace event with lifecycle-span attribution (see
    /// [`TraceEvent::span`]).
    #[inline]
    fn trace_event_span(&mut self, event: KernelEvent, span: u64, parent: u64) {
        if let Some(r) = self.recorder.as_deref_mut() {
            let time = self.clock;
            let node = self.cfg.me;
            r.ring.push(TraceEvent { time, node, seq: 0, span, parent, event });
        }
    }

    /// Stamp an outgoing actor message with a trace tag (first send
    /// only) and record the `MessageSent` event. No-op when tracing is
    /// off or the message is already stamped (re-sends keep their id so
    /// end-to-end latency spans the whole journey).
    fn trace_stamp_send(&mut self, msg: &mut Msg, key: AddrKey, remote: bool) {
        let Some(r) = self.recorder.as_deref_mut() else {
            return;
        };
        match msg.trace.as_mut() {
            None => {
                let id = r.next_msg_id();
                let time = self.clock;
                let node = self.cfg.me;
                // The causal parent: the message whose handler is
                // executing right now (0 at bootstrap / between
                // dispatches). This edge is what makes spans a DAG.
                let parent = r.current_span;
                msg.trace = Some(TraceTag {
                    id,
                    sent_at: time,
                    flags: if remote { TraceTag::REMOTE } else { 0 },
                });
                r.ring.push(TraceEvent {
                    time,
                    node,
                    seq: 0,
                    span: id,
                    parent,
                    event: KernelEvent::MessageSent { id, key, remote },
                });
            }
            Some(tag) if remote => tag.flags |= TraceTag::REMOTE,
            Some(_) => {}
        }
    }

    /// Latency from a tag's send time to now, robust against the
    /// loosely synchronized clocks of thread mode.
    #[inline]
    fn trace_latency_ns(&self, tag: &TraceTag) -> u64 {
        self.clock.as_nanos().saturating_sub(tag.sent_at.as_nanos())
    }

    // ------------------------------------------------------------------
    // Outbound path
    // ------------------------------------------------------------------

    /// Send a kernel message to `dst`, choosing the small or bulk path by
    /// wire size (§6.5). Local destinations loop back without touching
    /// the network.
    fn net_send(&mut self, net: &mut dyn NetOut, dst: NodeId, kmsg: KMsg) {
        if dst == self.cfg.me {
            self.loopback.push_back(kmsg);
            return;
        }
        self.charge(self.cfg.cost.net_send_overhead);
        let wire = kmsg.wire_bytes();
        self.stats.bump("net.sends");
        if wire <= MAX_SMALL_BYTES {
            self.inject_env(net, dst, AmEnvelope::Small(kmsg), wire + 16);
        } else if self.cfg.flow_control {
            // Three-phase protocol: announce, park the payload, wait for
            // the grant.
            let (_tag, req) = self.bulk_tx.begin(dst, kmsg, wire);
            self.stats.bump("net.bulk_requests");
            self.inject_env(net, dst, req, 16);
        } else {
            // Ablation: eager injection of bulk data (no grant). The
            // receiver will not run flow control either (same config
            // machine-wide).
            let env = AmEnvelope::BulkData {
                tag: 0,
                body: kmsg,
                bytes: wire,
            };
            self.stats.bump("net.bulk_eager");
            self.inject_env(net, dst, env, wire + 16);
        }
    }

    /// True when the fault plan can corrupt link traffic — the gate for
    /// both reliable wrapping and the FIR watchdog.
    #[inline]
    fn chaos_on(&self) -> bool {
        self.cfg.faults.link_faults()
    }

    /// True when outbound envelopes must travel under the reliable
    /// (seq + ack + retransmit) protocol: either a chaos plan that can
    /// corrupt the link, or a live transport that demands it outright.
    #[inline]
    fn rel_on(&self) -> bool {
        self.cfg.force_reliable || (self.chaos_on() && self.cfg.faults.reliable)
    }

    /// Record a typed failure and stop the machine. Only the first
    /// failure is kept; later ones are consequences of a dead machine.
    pub(crate) fn fail(&mut self, e: MachineError) {
        if self.failed.is_none() {
            self.failed = Some(e);
        }
        self.stopped = true;
    }

    /// Every kernel envelope leaves through here. Validates the
    /// destination, and — when the fault plan is live and `reliable` is
    /// on — wraps the envelope in [`AmEnvelope::Rel`], parks a
    /// retransmittable copy, and arms the per-peer retransmit timer.
    fn inject_env(&mut self, net: &mut dyn NetOut, dst: NodeId, env: AmEnvelope<KMsg>, wire: usize) {
        if (dst as usize) >= self.cfg.nodes {
            self.fail(MachineError::InvalidNode {
                node: dst,
                nodes: self.cfg.nodes,
            });
            return;
        }
        if !self.rel_on() {
            net.inject(self.clock, self.cfg.me, dst, env, wire);
            return;
        }
        // Note which message span (if any) rides this reliable packet,
        // so a later retransmit shows up as a retry on that span.
        let span = if self.recorder.is_some() {
            match &env {
                AmEnvelope::Small(KMsg::Deliver { msg, .. })
                | AmEnvelope::BulkData { body: KMsg::Deliver { msg, .. }, .. } => {
                    msg.trace.map_or(0, |t| t.id)
                }
                _ => 0,
            }
        } else {
            0
        };
        let ticket = self.rel_tx.register(dst, env, wire);
        if span != 0 {
            if let Some(r) = self.recorder.as_deref_mut() {
                r.rel_span.insert((dst, ticket.seq), span);
            }
        }
        net.inject(
            self.clock,
            self.cfg.me,
            dst,
            AmEnvelope::Rel {
                seq: ticket.seq,
                body: ticket.payload,
                bytes: wire,
            },
            wire + REL_HEADER,
        );
        if ticket.arm_timer {
            net.schedule(
                self.clock + self.cfg.faults.rto,
                self.cfg.me,
                AmEnvelope::Timer(KMsg::RetxTimer { peer: dst }),
            );
        }
    }

    /// Exponential backoff for retransmissions: `rto << attempt`, capped
    /// at `rto_max`.
    fn retx_delay(&self, attempt: u32) -> VirtualDuration {
        let ns = self
            .cfg
            .faults
            .rto
            .as_nanos()
            .checked_shl(attempt.min(16))
            .unwrap_or(u64::MAX)
            .min(self.cfg.faults.rto_max.as_nanos());
        VirtualDuration::from_nanos(ns)
    }

    // ------------------------------------------------------------------
    // Inbound path
    // ------------------------------------------------------------------

    /// Handle one arriving packet. The machine sets `self.clock` to at
    /// least the arrival time before calling. Node-manager work executes
    /// immediately on the current stack (the paper's "steals the
    /// processor").
    pub fn handle_packet(&mut self, net: &mut dyn NetOut, pkt: Packet<KMsg>) {
        debug_assert_eq!(pkt.dst, self.cfg.me);
        match pkt.body {
            // Timers are local clock events, not network traffic: no
            // receive overhead, no recv counter.
            AmEnvelope::Timer(body) => {
                self.handle_timer(net, body);
                self.drain_loopback(net);
                return;
            }
            body => {
                self.charge(self.cfg.cost.net_recv_overhead);
                self.stats.bump("net.recvs");
                match body {
                    AmEnvelope::Rel { seq, body, bytes } => {
                        let cum_before = self.rel_rx.cum(pkt.src);
                        match self.rel_rx.on_data(pkt.src, seq, body, bytes) {
                            RxOutcome::Duplicate => {
                                self.stats.bump("rel.dup_dropped");
                                self.trace_event(KernelEvent::Drop { src: pkt.src, seq });
                            }
                            RxOutcome::Deliver(envs) => {
                                if self.recorder.is_some() {
                                    // The holdback released the in-order
                                    // prefix (cum_before, cum_after]: one
                                    // exactly-once point per sequence
                                    // number on this link.
                                    let cum_after = self.rel_rx.cum(pkt.src);
                                    for s in (cum_before + 1)..=cum_after {
                                        self.trace_event(KernelEvent::RelDelivered {
                                            src: pkt.src,
                                            seq: s,
                                        });
                                    }
                                }
                                for env in envs {
                                    self.stats.bump("rel.delivered");
                                    self.handle_envelope(net, pkt.src, env);
                                }
                            }
                        }
                        // Ack every Rel arrival (duplicates included —
                        // the ack that retired the original may itself
                        // have been lost). Cumulative, so idempotent.
                        let cum = self.rel_rx.cum(pkt.src);
                        self.charge(self.cfg.cost.net_send_overhead);
                        self.stats.bump("rel.acks");
                        if let Some(m) = self.metrics.as_deref_mut() {
                            m.link_ack(pkt.src);
                        }
                        net.inject(
                            self.clock,
                            self.cfg.me,
                            pkt.src,
                            AmEnvelope::RelAck { cum },
                            16 + REL_HEADER,
                        );
                    }
                    AmEnvelope::RelAck { cum } => {
                        self.rel_tx.on_ack(pkt.src, cum);
                    }
                    env => self.handle_envelope(net, pkt.src, env),
                }
            }
        }
        self.drain_loopback(net);
    }

    /// Dispatch one unwrapped envelope (either straight off the wire on
    /// the fault-free fast path, or released in order by the reliable
    /// receiver).
    fn handle_envelope(&mut self, net: &mut dyn NetOut, src: NodeId, env: AmEnvelope<KMsg>) {
        match env {
            AmEnvelope::Small(k) => self.handle_kmsg(net, src, k),
            AmEnvelope::BulkRequest { tag, bytes: _ } => {
                if let Some(grant) = self.flow.on_request(src, tag) {
                    self.net_send_ctl(net, grant.to, AmEnvelope::BulkAck { tag: grant.tag });
                }
            }
            AmEnvelope::BulkAck { tag } => {
                let (dst, data, bytes) = self.bulk_tx.on_ack(tag);
                self.charge(self.cfg.cost.net_send_overhead);
                self.inject_env(net, dst, data, bytes + 16);
            }
            AmEnvelope::BulkData { tag, body, bytes } => {
                if self.cfg.flow_control {
                    // Granted transfer: the receiver pre-posted a buffer
                    // when it issued the ack, so reception is a single
                    // copy out of the network interface.
                    self.charge(VirtualDuration::from_nanos(bytes as u64 * 10));
                    self.handle_kmsg(net, src, body);
                    if let Some(next) = self.flow.on_data_complete(src, tag) {
                        self.net_send_ctl(net, next.to, AmEnvelope::BulkAck { tag: next.tag });
                    }
                } else {
                    // Ablation (§6.5): unexpected bulk data. Active
                    // messages are unbuffered, so data arriving without a
                    // grant must be bounce-buffered — allocation plus an
                    // extra copy while the NI drains into memory. This is
                    // the receiver-side cost the three-phase protocol
                    // exists to avoid.
                    self.stats.bump("net.bulk_unexpected");
                    self.charge(VirtualDuration::from_nanos(5_000 + bytes as u64 * 30));
                    self.handle_kmsg(net, src, body);
                }
            }
            AmEnvelope::Rel { .. } | AmEnvelope::RelAck { .. } | AmEnvelope::Timer(_) => {
                unreachable!("reliability framing cannot nest")
            }
        }
    }

    /// Send a protocol control envelope (acks) — small, fixed size.
    fn net_send_ctl(&mut self, net: &mut dyn NetOut, dst: NodeId, env: AmEnvelope<KMsg>) {
        self.charge(self.cfg.cost.net_send_overhead);
        self.inject_env(net, dst, env, 16);
    }

    // ------------------------------------------------------------------
    // Chaos timers (retransmit timeouts, FIR watchdog)
    // ------------------------------------------------------------------

    /// Would delivering this timer do nothing? Checked by the machine
    /// *before* clock mutation so stale timers (work already acked, FIR
    /// already answered) cost zero virtual time.
    pub fn timer_stale(&self, body: &KMsg) -> bool {
        match body {
            KMsg::RetxTimer { peer } => !self.rel_tx.has_unacked(*peer),
            KMsg::FirTimer { key } => !self.firs.is_pending(*key),
            _ => false,
        }
    }

    /// Retire a stale timer: disarm the peer's retransmit state so the
    /// next `register` arms a fresh timer.
    pub fn expire_timer(&mut self, body: &KMsg) {
        self.stats.bump("rel.timers_expired");
        if let KMsg::RetxTimer { peer } = body {
            self.rel_tx.expire(*peer);
        }
    }

    /// A live timer fired.
    fn handle_timer(&mut self, net: &mut dyn NetOut, body: KMsg) {
        match body {
            KMsg::RetxTimer { peer } => match self.rel_tx.timer_fired(peer) {
                RetxDecision::Stale => {}
                RetxDecision::Retransmit { copies, attempt } => {
                    for (seq, payload, bytes) in copies {
                        self.charge(self.cfg.cost.net_send_overhead);
                        self.stats.bump("rel.retransmits");
                        if let Some(m) = self.metrics.as_deref_mut() {
                            m.link_retransmit(peer);
                        }
                        let span = self
                            .recorder
                            .as_deref()
                            .and_then(|r| r.rel_span.get(&(peer, seq)).copied())
                            .unwrap_or(0);
                        self.trace_event_span(KernelEvent::Retransmit { peer, seq }, span, 0);
                        net.inject(
                            self.clock,
                            self.cfg.me,
                            peer,
                            AmEnvelope::Rel {
                                seq,
                                body: payload,
                                bytes,
                            },
                            bytes + REL_HEADER,
                        );
                    }
                    net.schedule(
                        self.clock + self.retx_delay(attempt),
                        self.cfg.me,
                        AmEnvelope::Timer(KMsg::RetxTimer { peer }),
                    );
                }
            },
            KMsg::FirTimer { key } => {
                if !self.firs.is_pending(key) {
                    return; // reply arrived first; let the watchdog die
                }
                let retries = self.firs.note_reissue(key);
                self.stats.bump("fir.reissued");
                let span = self
                    .recorder
                    .as_deref()
                    .and_then(|r| r.chase_span.get(&key).copied())
                    .unwrap_or(0);
                self.trace_event_span(KernelEvent::FirTimeout { key, retries }, span, 0);
                // Re-chase from current knowledge: our best guess if we
                // have one, else the birthplace (which always learns of
                // migrations, §4.3).
                let next = match self.names.resolve(key) {
                    Resolution::Remote { node, .. } => node,
                    Resolution::Local(_) => return, // arrived here; chase is moot
                    Resolution::Unknown => key.birthplace,
                };
                if next != self.cfg.me {
                    self.net_send(net, next, KMsg::Fir { key, span });
                    net.schedule(
                        self.clock + self.cfg.faults.fir_timeout,
                        self.cfg.me,
                        AmEnvelope::Timer(KMsg::FirTimer { key }),
                    );
                }
            }
            other => unreachable!("not a timer: {other:?}"),
        }
    }

    /// Process self-addressed kernel messages until none remain.
    fn drain_loopback(&mut self, net: &mut dyn NetOut) {
        while let Some(k) = self.loopback.pop_front() {
            let me = self.cfg.me;
            self.handle_kmsg(net, me, k);
        }
    }

    /// Node-manager message handling (§3): deliveries, creations, FIRs,
    /// replies, migrations, steals, group traffic.
    fn handle_kmsg(&mut self, net: &mut dyn NetOut, src: NodeId, k: KMsg) {
        match k {
            KMsg::Deliver { target, msg } => self.handle_deliver(net, src, target, msg),
            KMsg::NameInfo { key, node, index, epoch } => {
                if let Some(r) = self.recorder.as_deref_mut() {
                    // If this NameInfo answers a §5 alias creation, the
                    // mint-to-resolution window just closed.
                    if let Some(born) = r.alias_born.remove(&key) {
                        let latency_ns =
                            self.clock.as_nanos().saturating_sub(born.as_nanos());
                        let span = r.alias_span.remove(&key).unwrap_or(0);
                        let time = self.clock;
                        let me = self.cfg.me;
                        r.ring.push(TraceEvent {
                            time,
                            node: me,
                            seq: 0,
                            span,
                            parent: 0,
                            event: KernelEvent::AliasResolved { key, latency_ns },
                        });
                    }
                }
                self.repair_descriptor(key, node, index, epoch)
            }
            KMsg::Create {
                alias,
                behavior,
                init,
                requester,
                span,
            } => self.handle_create(net, alias, behavior, init, requester, span),
            KMsg::Fir { key, span } => self.handle_fir(net, src, key, span),
            KMsg::FirFound { key, node, index, epoch } => {
                self.handle_fir_found(net, key, node, index, epoch)
            }
            KMsg::Reply { jc, slot, value, span } => self.fill_join(net, jc, slot, value, span),
            KMsg::MigrateArrive { image, from, stolen } => {
                self.handle_migrate_arrive(net, image, from, stolen)
            }
            KMsg::StealRequest { thief } => self.handle_steal_request(net, thief),
            KMsg::StealNone => {
                let now = self.clock;
                self.balancer.poll_failed(now, self.cfg.cost.steal_poll_interval);
            }
            KMsg::GrpCreate {
                group,
                behavior,
                init,
                root,
            } => self.handle_grp_create(net, group, behavior, init, root),
            KMsg::GrpBcast { group, msg, root } => self.handle_grp_bcast(net, group, msg, root),
            KMsg::GcBegin { coordinator, root } => self.handle_gc_begin(net, coordinator, root),
            KMsg::GcRoundGo { root } => self.handle_gc_round(net, root),
            KMsg::GcMark { keys } => self.gc.incoming.extend(keys),
            KMsg::GcRoundDone { activity } => self.handle_gc_round_done(net, activity),
            KMsg::GcSweepCmd { root } => self.handle_gc_sweep(net, root),
            KMsg::GcSwept { freed, live } => self.handle_gc_swept(net, freed, live),
            KMsg::Halt => self.stopped = true,
            KMsg::RetxTimer { .. } | KMsg::FirTimer { .. } => {
                unreachable!("timers are dispatched at the packet layer")
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault-plan pauses & the canonical delivery entry point
    // ------------------------------------------------------------------

    /// Shift a would-be execution time out of this node's pause windows
    /// (fault plan `node_pauses`). Applied at execution entry only —
    /// never in scheduling keys — so both executors shift identically.
    pub fn pause_shift(&self, mut t: VirtualTime) -> VirtualTime {
        for &(from, until) in &self.pauses {
            if t >= from && t < until {
                t = until;
            }
        }
        t
    }

    /// Deliver one queued packet with the paper's interrupt semantics
    /// (§3): the handler logically runs at arrival time, and whatever
    /// method it interrupted slips by the handler's CPU time. Returns
    /// the `(start, end)` handler span for the timeline, or `None` for a
    /// stale chaos timer (retired for free, without touching the clock).
    pub fn deliver(
        &mut self,
        net: &mut dyn NetOut,
        t: VirtualTime,
        pkt: Packet<KMsg>,
    ) -> Option<(VirtualTime, VirtualTime)> {
        if let AmEnvelope::Timer(body) = &pkt.body {
            if self.timer_stale(body) {
                self.expire_timer(body);
                return None;
            }
        }
        let t = self.pause_shift(t);
        let busy_until = self.clock;
        self.clock = t;
        self.handle_packet(net, pkt);
        let handler_time = self.clock.since(t);
        self.clock = self.clock.max(busy_until + handler_time);
        self.metrics_tick();
        Some((t, t + handler_time))
    }

    // ------------------------------------------------------------------
    // Message delivery (Fig. 3)
    // ------------------------------------------------------------------

    /// Send `msg` to mail address `to` from this node (the generic send
    /// of Fig. 3, sender side).
    fn send_to_addr(&mut self, net: &mut dyn NetOut, to: MailAddr, mut msg: Msg) {
        self.charge(self.cfg.cost.locality_check);
        match self.names.resolve(to.key) {
            Resolution::Local(aid) => {
                if self.recorder.is_some() {
                    self.trace_stamp_send(&mut msg, to.key, false);
                }
                self.charge(self.cfg.cost.local_send);
                self.stats.bump("msgs.local");
                self.enqueue_local(aid, msg);
            }
            Resolution::Remote { node, remote_index } => {
                if self.recorder.is_some() {
                    self.trace_stamp_send(&mut msg, to.key, true);
                }
                if self.firs.is_pending(to.key) {
                    // We already know our guess is stale; park with the
                    // FIR instead of bouncing off the old node again.
                    if let Some(tag) = msg.trace.as_mut() {
                        tag.flags |= TraceTag::CHASED;
                    }
                    self.firs.buffer(to.key, msg);
                    self.stats.bump("fir.buffered_at_send");
                    return;
                }
                self.stats.bump("msgs.remote");
                let dst_desc = if self.cfg.opt.name_caching {
                    remote_index
                } else {
                    None
                };
                self.net_send(
                    net,
                    node,
                    KMsg::Deliver {
                        target: Target::Addr {
                            key: to.key,
                            dst_desc,
                            route_hint: to.default_route(),
                        },
                        msg,
                    },
                );
            }
            Resolution::Unknown => {
                // First contact: allocate a best-guess descriptor toward
                // the default route and send there (§4.1).
                assert!(
                    to.key.birthplace != self.cfg.me,
                    "dangling local mail address {:?}",
                    to
                );
                if self.recorder.is_some() {
                    self.trace_stamp_send(&mut msg, to.key, true);
                }
                let route = to.default_route();
                let d = self.names.alloc_remote(route, None, 0);
                self.names.bind(to.key, d);
                self.stats.bump("msgs.remote");
                self.stats.bump("name.first_contact");
                self.net_send(
                    net,
                    route,
                    KMsg::Deliver {
                        target: Target::Addr {
                            key: to.key,
                            dst_desc: None,
                            route_hint: route,
                        },
                        msg,
                    },
                );
            }
        }
    }

    /// Receiver side of the generic send (Fig. 3): the node manager
    /// locates the actor or starts an FIR chase.
    fn handle_deliver(&mut self, net: &mut dyn NetOut, src: NodeId, target: Target, msg: Msg) {
        match target {
            Target::Addr {
                key,
                dst_desc,
                route_hint,
            } => {
                // Cached-descriptor fast path: no name-table lookup.
                if let Some(d) = dst_desc {
                    if self.names.descriptor_live(d) {
                        match self.names.descriptor(d).locality {
                            Locality::Local(aid) => {
                                self.stats.bump("deliver.cached_hit");
                                self.enqueue_local(aid, msg);
                                return;
                            }
                            Locality::Remote { node, remote_index } => {
                                // Migrated away since the sender cached us.
                                self.stats.bump("deliver.cached_stale");
                                self.forward_or_chase(net, key, msg, node, remote_index);
                                return;
                            }
                        }
                    }
                }
                self.charge(self.cfg.cost.name_lookup);
                match self.names.resolve(key) {
                    Resolution::Local(aid) => {
                        // Reply with our descriptor index so the sender
                        // skips our name table next time (§4.1).
                        if self.cfg.opt.name_caching
                            && dst_desc.is_none()
                            && src != self.cfg.me
                            && self.advised.insert((src, key))
                        {
                            let d = self.names.descriptor_for(key).expect("just resolved");
                            let epoch = self.actor_epoch(aid);
                            self.net_send(
                                net,
                                src,
                                KMsg::NameInfo {
                                    key,
                                    node: self.cfg.me,
                                    index: d,
                                    epoch,
                                },
                            );
                        }
                        self.enqueue_local(aid, msg);
                    }
                    Resolution::Remote { node, remote_index } => {
                        self.stats.bump("deliver.migrated");
                        self.forward_or_chase(net, key, msg, node, remote_index);
                    }
                    Resolution::Unknown => {
                        // Alias traffic racing the creation request, or a
                        // chase overtaking a migration: park until the
                        // key becomes known.
                        assert!(
                            key.birthplace != self.cfg.me || route_hint != self.cfg.me,
                            "undeliverable message to dangling key {key:?}"
                        );
                        self.stats.bump("deliver.unknown_parked");
                        self.unknown_buffer.entry(key).or_default().push(msg);
                    }
                }
            }
            Target::Member { group, index } => self.deliver_member(net, group, index, msg),
        }
    }

    /// A message arrived here for an actor that has moved on. If our
    /// information is *confirmed* (we hold the descriptor index on the
    /// believed node — i.e. that node itself told us the actor arrived),
    /// the location is known and the message is forwarded directly
    /// (§4.3: "once the location is known, the original message is sent
    /// directly to the node where the receiver resides"). Confirmed
    /// pointers are strictly epoch-increasing, so forwarding is acyclic.
    /// Unconfirmed history pointers trigger the FIR chase instead.
    fn forward_or_chase(
        &mut self,
        net: &mut dyn NetOut,
        key: AddrKey,
        mut msg: Msg,
        node: NodeId,
        remote_index: Option<DescriptorId>,
    ) {
        // Any message that lands here is behind a migration: its
        // eventual delivery should count in the `migrated` latency
        // column.
        if let Some(tag) = msg.trace.as_mut() {
            tag.flags |= TraceTag::CHASED;
        }
        if std::env::var("HAL_FIR_TRACE").is_ok() {
            eprintln!("[{}] node {} forward_or_chase key={key:?} to={node} confirmed={}", self.clock, self.cfg.me, remote_index.is_some());
        }
        if !self.cfg.opt.fir_chase {
            // Ablation: forward the entire message along the chain (§4.3's
            // rejected alternative — bulk payloads traverse every hop).
            self.stats.bump("deliver.forwarded_whole");
            self.net_send(
                net,
                node,
                KMsg::Deliver {
                    target: Target::Addr {
                        key,
                        dst_desc: remote_index,
                        route_hint: node,
                    },
                    msg,
                },
            );
            return;
        }
        if self.firs.is_pending(key) {
            // A chase is already running; join it.
            self.stats.bump("fir.suppressed");
            let span = self
                .recorder
                .as_deref()
                .and_then(|r| r.chase_span.get(&key).copied())
                .unwrap_or(0);
            self.trace_event_span(KernelEvent::FirSuppressed { key }, span, 0);
            self.firs.buffer(key, msg);
            return;
        }
        match remote_index {
            Some(idx) => {
                self.stats.bump("deliver.forwarded");
                self.net_send(
                    net,
                    node,
                    KMsg::Deliver {
                        target: Target::Addr {
                            key,
                            dst_desc: Some(idx),
                            route_hint: node,
                        },
                        msg,
                    },
                );
            }
            None => self.fir_chase(net, key, msg, node),
        }
    }

    /// Park `msg` and (unless one is already outstanding) send an FIR
    /// toward `next_hop` (§4.3: "instead of forwarding the entire message
    /// the node manager sends a special forwarding information request").
    fn fir_chase(&mut self, net: &mut dyn NetOut, key: AddrKey, msg: Msg, next_hop: NodeId) {
        if std::env::var("HAL_FIR_TRACE").is_ok() {
            eprintln!("[{}] node {} fir_chase key={key:?} next={next_hop}", self.clock, self.cfg.me);
        }
        self.charge(self.cfg.cost.fir_handle);
        if self.firs.need_location(key) {
            self.stats.bump("fir.sent");
            // Open a chase span: every hop of this episode (here and on
            // relaying nodes) shares it, parented by the message that
            // triggered the chase.
            let (span, parent) = match self.recorder.as_deref_mut() {
                Some(r) => {
                    let span = r.next_msg_id();
                    r.chase_span.insert(key, span);
                    (span, msg.trace.map_or(0, |t| t.id))
                }
                None => (0, 0),
            };
            self.trace_event_span(KernelEvent::FirSent { key, to: next_hop }, span, parent);
            self.net_send(net, next_hop, KMsg::Fir { key, span });
            self.arm_fir_watchdog(net, key);
        } else {
            self.stats.bump("fir.suppressed");
            let span = self
                .recorder
                .as_deref()
                .and_then(|r| r.chase_span.get(&key).copied())
                .unwrap_or(0);
            self.trace_event_span(KernelEvent::FirSuppressed { key }, span, 0);
        }
        self.firs.buffer(key, msg);
    }

    /// An FIR arrived from `src` looking for `key`. `span` is the chase
    /// episode's span id, adopted by every relay so all hops of one
    /// chase share a single span.
    fn handle_fir(&mut self, net: &mut dyn NetOut, src: NodeId, key: AddrKey, span: u64) {
        if std::env::var("HAL_FIR_TRACE").is_ok() {
            eprintln!("[{}] node {} handle_fir key={key:?} from={src} resolve={:?}", self.clock, self.cfg.me, self.names.resolve(key));
        }
        self.charge(self.cfg.cost.fir_handle);
        self.stats.bump("fir.handled");
        match self.names.resolve(key) {
            Resolution::Local(aid) => {
                let d = self.names.descriptor_for(key).expect("just resolved");
                let epoch = self.actor_epoch(aid);
                self.net_send(
                    net,
                    src,
                    KMsg::FirFound {
                        key,
                        node: self.cfg.me,
                        index: d,
                        epoch,
                    },
                );
            }
            Resolution::Remote { node, .. } => {
                if self.firs.is_pending(key) {
                    self.firs.add_asker(key, src);
                } else {
                    self.firs.need_location(key);
                    self.firs.add_asker(key, src);
                    if span != 0 {
                        if let Some(r) = self.recorder.as_deref_mut() {
                            r.chase_span.insert(key, span);
                        }
                    }
                    self.trace_event_span(KernelEvent::FirSent { key, to: node }, span, 0);
                    self.net_send(net, node, KMsg::Fir { key, span });
                    self.arm_fir_watchdog(net, key);
                }
            }
            Resolution::Unknown => {
                // We know nothing (e.g. the actor is migrating toward us
                // and the FIR overtook the bulk transfer). Park the
                // question: if the actor arrives here, install completes
                // the FIR; otherwise fall back to the birthplace chain.
                assert!(
                    key.birthplace != self.cfg.me,
                    "FIR for dangling local key {key:?}"
                );
                if self.firs.is_pending(key) {
                    self.firs.add_asker(key, src);
                } else {
                    self.firs.need_location(key);
                    self.firs.add_asker(key, src);
                    if span != 0 {
                        if let Some(r) = self.recorder.as_deref_mut() {
                            r.chase_span.insert(key, span);
                        }
                    }
                    self.trace_event_span(
                        KernelEvent::FirSent { key, to: key.birthplace },
                        span,
                        0,
                    );
                    self.net_send(net, key.birthplace, KMsg::Fir { key, span });
                    self.arm_fir_watchdog(net, key);
                }
            }
        }
    }

    /// Under a live fault plan an FIR (or its reply) can be eaten by the
    /// link; arm a watchdog so the chase is re-issued instead of wedging
    /// the buffered messages forever.
    fn arm_fir_watchdog(&mut self, net: &mut dyn NetOut, key: AddrKey) {
        if self.chaos_on() || self.cfg.force_reliable {
            net.schedule(
                self.clock + self.cfg.faults.fir_timeout,
                self.cfg.me,
                AmEnvelope::Timer(KMsg::FirTimer { key }),
            );
        }
    }

    /// The FIR reply: repair our table, release parked messages, and
    /// propagate back along the chain.
    fn handle_fir_found(
        &mut self,
        net: &mut dyn NetOut,
        key: AddrKey,
        node: NodeId,
        index: DescriptorId,
        epoch: u32,
    ) {
        if std::env::var("HAL_FIR_TRACE").is_ok() {
            eprintln!("[{}] node {} fir_found key={key:?} at={node} epoch={epoch}", self.clock, self.cfg.me);
        }
        self.charge(self.cfg.cost.fir_handle);
        self.stats.bump("fir.found");
        self.repair_descriptor(key, node, index, epoch);
        if let Some(m) = self.metrics.as_deref_mut() {
            // The located epoch is the forward-chain length behind this
            // chase — the paper's "how far did the actor get" number.
            m.chain_epochs.observe(u64::from(epoch));
        }
        if let Some(pending) = self.firs.complete(key) {
            let span = self
                .recorder
                .as_deref_mut()
                .and_then(|r| r.chase_span.remove(&key))
                .unwrap_or(0);
            self.trace_event_span(
                KernelEvent::FirReplyPropagated {
                    key,
                    node,
                    askers: pending.askers.len() as u32,
                    released: pending.buffered.len() as u32,
                },
                span,
                0,
            );
            for asker in pending.askers {
                self.net_send(net, asker, KMsg::FirFound { key, node, index, epoch });
            }
            for msg in pending.buffered {
                // "Once the location is known, the original message is
                // sent directly to the node where the receiver resides."
                self.stats.bump("fir.flushed");
                self.net_send(
                    net,
                    node,
                    KMsg::Deliver {
                        target: Target::Addr {
                            key,
                            dst_desc: Some(index),
                            route_hint: node,
                        },
                        msg,
                    },
                );
            }
        }
    }

    /// The location epoch of a local actor (its migration hop count).
    fn actor_epoch(&self, aid: ActorId) -> u32 {
        self.actors.get(aid).map(|r| r.hops).unwrap_or(0)
    }

    /// Location gossip: update our descriptor for `key` unless we hold
    /// newer information. Local knowledge is authoritative, and gossip
    /// from an older epoch never overwrites a newer belief — this keeps
    /// forward chains strictly epoch-increasing, so FIR chases terminate
    /// even under arbitrarily reordered gossip.
    fn repair_descriptor(&mut self, key: AddrKey, node: NodeId, index: DescriptorId, epoch: u32) {
        let repaired = match self.names.descriptor_for(key) {
            Some(d) => {
                let desc = self.names.descriptor_mut(d);
                match desc.locality {
                    Locality::Local(_) => false, // authoritative; ignore gossip
                    Locality::Remote { .. } => {
                        if epoch >= desc.epoch {
                            desc.locality = Locality::Remote {
                                node,
                                remote_index: Some(index),
                            };
                            desc.epoch = epoch;
                            true
                        } else {
                            false
                        }
                    }
                }
            }
            None => {
                let d = self.names.alloc_remote(node, Some(index), epoch);
                self.names.bind(key, d);
                true
            }
        };
        if repaired && self.recorder.is_some() {
            self.trace_event(KernelEvent::NameRepaired { key, node, epoch });
        }
    }

    /// Enqueue a message for a local actor, scheduling it if idle.
    fn enqueue_local(&mut self, aid: ActorId, msg: Msg) {
        self.charge(self.cfg.cost.constraint_check);
        if self.recorder.is_some() {
            if let Some(tag) = msg.trace {
                let latency_ns = self.trace_latency_ns(&tag);
                if let Some(r) = self.recorder.as_deref_mut() {
                    // Enqueue time, for MessageExecuted's queued_ns.
                    r.delivered_at.insert(tag.id, self.clock);
                }
                self.trace_event_span(
                    KernelEvent::MessageDelivered {
                        id: tag.id,
                        latency_ns,
                        path: tag.path(),
                    },
                    tag.id,
                    0,
                );
            }
        }
        if self.actors.enqueue(aid, msg) {
            self.dispatcher.push(aid);
        }
    }

    // ------------------------------------------------------------------
    // Creation (§5)
    // ------------------------------------------------------------------

    /// Install a behavior as a new local actor; returns its id and
    /// ordinary mail address.
    fn install_actor(&mut self, behavior: Box<dyn Behavior>) -> (ActorId, MailAddr) {
        let aid = self.actors.insert(ActorRecord::new(behavior));
        let d = self.names.alloc_local(aid, 0);
        let addr = MailAddr::ordinary(self.cfg.me, d);
        let rec = self.actors.get_mut(aid).expect("just inserted");
        rec.addr = addr;
        rec.keys.push(addr.key);
        self.stats.bump("actors.created");
        if self.recorder.is_some() {
            self.trace_event(KernelEvent::ActorCreated { key: addr.key });
        }
        (aid, addr)
    }

    /// Local creation: the `new` primitive when the target is this node.
    fn create_local(&mut self, behavior: Box<dyn Behavior>) -> MailAddr {
        self.charge(self.cfg.cost.local_creation);
        let (_aid, addr) = self.install_actor(behavior);
        addr
    }

    /// Remote creation with alias-based latency hiding (§5): mint the
    /// alias, fire off the request, and return immediately.
    fn create_remote(
        &mut self,
        net: &mut dyn NetOut,
        node: NodeId,
        behavior: BehaviorId,
        init: Vec<Value>,
    ) -> MailAddr {
        debug_assert_ne!(node, self.cfg.me);
        self.charge(self.cfg.cost.remote_creation_request);
        if !self.cfg.opt.aliases {
            // Ablation: no aliases means the creating actor must wait
            // for the new actor's real mail address to come back — a
            // full round trip of stall on top of the request cost (§5's
            // rejected alternative on stock hardware).
            self.charge(self.cfg.cost.remote_creation_rtt_stall);
            self.stats.bump("actors.remote_blocking");
        }
        self.stats.bump("actors.remote_requests");
        let d = self.names.alloc_remote(node, None, 0);
        let alias = MailAddr::alias(self.cfg.me, d, node, behavior);
        let mut span = 0;
        if let Some(r) = self.recorder.as_deref_mut() {
            // Open an alias-creation span: mint (here) → install (at
            // the target) → resolve (the NameInfo landing back here),
            // parented by the requesting handler's message.
            span = r.next_msg_id();
            let parent = r.current_span;
            r.alias_born.insert(alias.key, self.clock);
            r.alias_span.insert(alias.key, span);
            let time = self.clock;
            let me = self.cfg.me;
            r.ring.push(TraceEvent {
                time,
                node: me,
                seq: 0,
                span,
                parent,
                event: KernelEvent::AliasCreated { key: alias.key, target: node },
            });
        }
        self.net_send(
            net,
            node,
            KMsg::Create {
                alias: alias.key,
                behavior,
                init,
                requester: self.cfg.me,
                span,
            },
        );
        alias
    }

    /// Remote side of a creation request. `span` is the requester's
    /// alias-creation span (0 when tracing is off there).
    fn handle_create(
        &mut self,
        net: &mut dyn NetOut,
        alias: AddrKey,
        behavior: BehaviorId,
        init: Vec<Value>,
        requester: NodeId,
        span: u64,
    ) {
        self.charge(self.cfg.cost.remote_creation_work);
        let Some(b) = self.registry.try_create(behavior, &init) else {
            self.recycle_args(init);
            self.fail(MachineError::UnknownBehavior {
                behavior,
                node: self.cfg.me,
            });
            return;
        };
        self.recycle_args(init);
        let (aid, addr) = self.install_actor(b);
        // Register the alias alongside the ordinary address ("registers
        // the actor in its local name table with the received alias").
        let d = addr.key.index;
        self.names.bind(alias, d);
        if self.recorder.is_some() {
            // The alias key now names a live actor too — deliveries
            // through it are legitimate from this point on. Carries the
            // requester's span: this is the "install" leg of the alias
            // lifecycle (mint → install → resolve).
            self.trace_event_span(KernelEvent::ActorCreated { key: alias }, span, 0);
        }
        self.actors
            .get_mut(aid)
            .expect("just installed")
            .keys
            .push(alias);
        self.flush_unknown(alias, aid);
        self.flush_unknown(addr.key, aid);
        self.complete_local_fir(net, alias, d, 0);
        self.complete_local_fir(net, addr.key, d, 0);
        // Cache our descriptor index back at the requester ("as
        // background processing").
        // Observe the moment the actor exists — the paper's "actual
        // creation" latency (20.83 us end to end).
        self.stats.observe("create.remote_actual_ns", self.clock.as_nanos());
        self.net_send(
            net,
            requester,
            KMsg::NameInfo {
                key: alias,
                node: self.cfg.me,
                index: d,
                epoch: 0,
            },
        );
        self.stats.bump("actors.remote_created");
    }

    /// Deliver any messages parked for a previously unknown key.
    fn flush_unknown(&mut self, key: AddrKey, aid: ActorId) {
        if let Some(msgs) = self.unknown_buffer.remove(&key) {
            for msg in msgs {
                self.enqueue_local(aid, msg);
            }
        }
    }

    /// If this node was chasing `key` with an FIR, the chase ends here:
    /// the actor just became local. Answer askers, deliver parked mail.
    fn complete_local_fir(
        &mut self,
        net: &mut dyn NetOut,
        key: AddrKey,
        index: DescriptorId,
        epoch: u32,
    ) {
        if let Some(pending) = self.firs.complete(key) {
            let me = self.cfg.me;
            let span = self
                .recorder
                .as_deref_mut()
                .and_then(|r| r.chase_span.remove(&key))
                .unwrap_or(0);
            // The chase ends here because the actor became local: same
            // terminal event as a reply arriving, so the checker sees
            // every opened chase close.
            self.trace_event_span(
                KernelEvent::FirReplyPropagated {
                    key,
                    node: me,
                    askers: pending.askers.len() as u32,
                    released: pending.buffered.len() as u32,
                },
                span,
                0,
            );
            for asker in pending.askers {
                self.net_send(net, asker, KMsg::FirFound { key, node: me, index, epoch });
            }
            if !pending.buffered.is_empty() {
                if let Resolution::Local(aid) = self.names.resolve(key) {
                    for msg in pending.buffered {
                        self.enqueue_local(aid, msg);
                    }
                } else {
                    unreachable!("complete_local_fir on non-local key");
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Join continuations (§6.2)
    // ------------------------------------------------------------------

    /// Fill a join slot; fire the continuation if complete. `span` is
    /// the span of the message whose handler produced the reply; sends
    /// issued by the fired continuation are parented by it so the
    /// causal chain survives the join.
    fn fill_join(&mut self, net: &mut dyn NetOut, jc: JcId, slot: u16, value: Value, span: u64) {
        self.charge(self.cfg.cost.join_fill);
        if let Some(fired) = self.joins.fill(jc, slot, value) {
            self.charge(self.cfg.cost.join_fire);
            self.stats.bump("joins.fired");
            let saved = if let Some(r) = self.recorder.as_deref_mut() {
                let saved = r.current_span;
                r.current_span = span;
                saved
            } else {
                0
            };
            let mut ctx = Ctx {
                k: self,
                net,
                ident: Ident::Continuation,
                customer: None,
                become_to: None,
                migrate_to: None,
            };
            (fired.func)(&mut ctx, fired.values);
            debug_assert!(ctx.become_to.is_none(), "continuations cannot become");
            debug_assert!(ctx.migrate_to.is_none(), "continuations cannot migrate");
            if let Some(r) = self.recorder.as_deref_mut() {
                r.current_span = saved;
            }
        }
    }

    /// Route a reply to a continuation reference.
    fn send_reply(&mut self, net: &mut dyn NetOut, cont: ContRef, value: Value) {
        let span = self.recorder.as_deref().map_or(0, |r| r.current_span);
        match cont {
            ContRef::Join { node, jc, slot } => {
                if node == self.cfg.me {
                    self.fill_join(net, jc, slot, value, span);
                } else {
                    self.stats.bump("replies.remote");
                    self.net_send(net, node, KMsg::Reply { jc, slot, value, span });
                }
            }
            ContRef::Actor { addr, selector } => {
                self.send_to_addr(net, addr, Msg::new(selector, vec![value]));
            }
        }
    }

    // ------------------------------------------------------------------
    // Migration + load balancing
    // ------------------------------------------------------------------

    /// Ship actor `aid` to `dst`. The actor must be checked in and not
    /// scheduled (callers arrange this). `stolen` marks steal-reply
    /// migrations so the thief can clear its poll state.
    fn migrate_out(&mut self, net: &mut dyn NetOut, aid: ActorId, dst: NodeId, stolen: bool) {
        self.charge(self.cfg.cost.migrate_fixed);
        let rec = self.actors.remove(aid);
        // Every local descriptor for the actor becomes a forward pointer
        // — the migration history of §4.3 — stamped with the epoch the
        // actor will have after this hop.
        let next_epoch = rec.hops + 1;
        for &key in &rec.keys {
            if let Some(d) = self.names.descriptor_for(key) {
                let desc = self.names.descriptor_mut(d);
                desc.locality = Locality::Remote {
                    node: dst,
                    remote_index: None,
                };
                desc.epoch = next_epoch;
            }
        }
        self.stats.bump("migrations.out");
        self.metrics_pending(-(rec.pendq.len() as i64));
        let image = ActorImage {
            behavior: rec.behavior,
            mailq: rec.mailq.into(),
            pendq: rec.pendq.into(),
            keys: rec.keys,
            group: rec.group,
            hops: next_epoch,
        };
        self.net_send(
            net,
            dst,
            KMsg::MigrateArrive {
                image,
                from: self.cfg.me,
                stolen,
            },
        );
    }

    /// An actor arrives (migration or steal).
    fn handle_migrate_arrive(
        &mut self,
        net: &mut dyn NetOut,
        image: ActorImage,
        from: NodeId,
        stolen: bool,
    ) {
        self.charge(self.cfg.cost.migrate_fixed);
        self.stats.bump("migrations.in");
        if stolen {
            self.balancer.poll_succeeded();
        }
        let primary = image.keys[0];
        let epoch = image.hops;
        if self.recorder.is_some() {
            self.trace_event(KernelEvent::ActorMigrated { key: primary, from, epoch });
        }
        self.metrics_pending(image.pendq.len() as i64);
        let aid = self.actors.insert(ActorRecord {
            behavior: image.behavior,
            addr: MailAddr::ordinary(primary.birthplace, primary.index),
            mailq: image.mailq.into(),
            pendq: image.pendq.into(),
            scheduled: false,
            keys: image.keys,
            group: image.group,
            hops: epoch,
        });
        self.stats.bump("actors.created"); // arrival installs a record
        let keys = self.actors.get(aid).expect("just inserted").keys.clone();
        // Keys born here resolve through the arena fast path: their
        // original descriptor must become Local *in place* (allocating a
        // fresh one would leave an orphan that other nodes could cache
        // and later resolve to a recycled actor slot). Foreign keys bind
        // to one shared fresh descriptor.
        let mut shared: Option<DescriptorId> = None;
        for key in &keys {
            if key.birthplace == self.cfg.me && self.names.descriptor_live(key.index) {
                let desc = self.names.descriptor_mut(key.index);
                desc.locality = Locality::Local(aid);
                desc.epoch = epoch;
            } else {
                let d = *shared.get_or_insert_with(|| self.names.alloc_local(aid, epoch));
                self.names.bind(*key, d);
            }
        }
        for key in &keys {
            self.flush_unknown(*key, aid);
            let idx = self
                .names
                .descriptor_for(*key)
                .expect("key just registered");
            self.complete_local_fir(net, *key, idx, epoch);
        }
        // Cache the new location at the birthplace and the old node
        // (§4.3 "cached in its birthplace node as well as in the old
        // node").
        let me = self.cfg.me;
        let primary_key = keys[0];
        let primary_desc = self
            .names
            .descriptor_for(primary_key)
            .expect("primary key just registered");
        if primary_key.birthplace != me {
            self.net_send(
                net,
                primary_key.birthplace,
                KMsg::NameInfo {
                    key: primary_key,
                    node: me,
                    index: primary_desc,
                    epoch,
                },
            );
        }
        if from != me && from != primary_key.birthplace {
            self.net_send(
                net,
                from,
                KMsg::NameInfo {
                    key: primary_key,
                    node: me,
                    index: primary_desc,
                    epoch,
                },
            );
        }
        // Schedule if it carried work.
        let rec = self.actors.get_mut(aid).expect("just inserted");
        if !rec.mailq.is_empty() || !rec.pendq.is_empty() {
            rec.scheduled = true;
            self.dispatcher.push(aid);
        }
    }

    /// Idle-node action: send a steal request to a random victim (§7.2).
    /// The machine calls this when the node is idle and `may_poll`.
    pub fn send_steal_poll(&mut self, net: &mut dyn NetOut) {
        debug_assert!(self.balancer.may_poll(self.clock));
        let victim = self.balancer.start_poll(self.cfg.me, self.cfg.nodes);
        self.stats.bump("steal.polls");
        self.trace_event(KernelEvent::StealRequest { victim });
        self.net_send(net, victim, KMsg::StealRequest { thief: self.cfg.me });
    }

    /// Victim side of a steal: donate up to half the ready queue
    /// (Kumar/Grama/Rao work splitting) or decline. Work is taken from
    /// the tail — the coldest, largest-subtree end. Group members are
    /// stealable too: their home-node entry keeps a mail address, and
    /// descriptors forward.
    fn handle_steal_request(&mut self, net: &mut dyn NetOut, thief: NodeId) {
        self.charge(self.cfg.cost.steal_handle);
        let batch = self.dispatcher.steal_half(16);
        if batch.is_empty() {
            self.stats.bump("steal.denied");
            self.net_send(net, thief, KMsg::StealNone);
            return;
        }
        for aid in batch {
            if let Some(rec) = self.actors.get_mut(aid) {
                rec.scheduled = false;
                self.stats.bump("steal.granted");
                self.trace_event(KernelEvent::StealGrant { thief });
                self.migrate_out(net, aid, thief, true);
            }
        }
    }

    // ------------------------------------------------------------------
    // Groups (§2.2, §6.4)
    // ------------------------------------------------------------------

    /// `grpnew`: mint the group, create local members, fan out along the
    /// spanning tree. Returns the id immediately.
    fn grpnew(
        &mut self,
        net: &mut dyn NetOut,
        behavior: BehaviorId,
        count: u32,
        init: Vec<Value>,
        mapping: Mapping,
    ) -> GroupId {
        let group = self.groups.mint(self.cfg.me, count, mapping);
        let me = self.cfg.me;
        self.handle_grp_create(net, group, behavior, init, me);
        group
    }

    fn handle_grp_create(
        &mut self,
        net: &mut dyn NetOut,
        group: GroupId,
        behavior: BehaviorId,
        init: Vec<Value>,
        root: NodeId,
    ) {
        // Relay down the tree first so subtree creation overlaps ours.
        for child in bcast::children(self.cfg.me, root, self.cfg.nodes) {
            self.net_send(
                net,
                child,
                KMsg::GrpCreate {
                    group,
                    behavior,
                    init: init.clone(),
                    root,
                },
            );
        }
        let count = group.count();
        let mut members = Vec::new();
        for idx in members_on(self.cfg.me, count, self.cfg.nodes, group.mapping()) {
            self.charge(self.cfg.cost.local_creation);
            // One pooled buffer per member instead of a fresh clone of
            // `init` — group creation is the kernel's hottest
            // allocation site (one vector per member per node).
            let mut args = self.take_args(init.len() + 3);
            args.extend_from_slice(&init);
            args.push(Value::Group(group));
            args.push(Value::Int(idx as i64));
            args.push(Value::Int(count as i64));
            let Some(b) = self.registry.try_create(behavior, &args) else {
                self.recycle_args(args);
                self.fail(MachineError::UnknownBehavior {
                    behavior,
                    node: self.cfg.me,
                });
                return;
            };
            self.recycle_args(args);
            let (aid, addr) = self.install_actor(b);
            self.actors.get_mut(aid).expect("just installed").group = Some((group, idx));
            members.push((idx, addr));
        }
        self.recycle_args(init);
        self.stats.add("groups.members_created", members.len() as u64);
        let (parked_member, parked_bcast) = self.groups.install(group, members);
        for (idx, msg) in parked_member {
            self.deliver_member(net, group, idx, msg);
        }
        for msg in parked_bcast {
            self.deliver_bcast_local(net, group, msg);
        }
    }

    /// Route a message to group member `index` (home-node resolution).
    fn deliver_member(&mut self, net: &mut dyn NetOut, group: GroupId, index: u32, msg: Msg) {
        let home = home_node(index, group.count(), self.cfg.nodes, group.mapping());
        if home == self.cfg.me {
            if let Some(addr) = self.groups.member(group, index) {
                self.send_to_addr(net, addr, msg);
            } else if self.groups.known(group) {
                panic!("group {group:?} installed without member {index}");
            } else {
                self.groups.park_member(group, index, msg);
            }
        } else {
            self.net_send(
                net,
                home,
                KMsg::Deliver {
                    target: Target::Member { group, index },
                    msg,
                },
            );
        }
    }

    /// Broadcast to a group from this node.
    fn broadcast(&mut self, net: &mut dyn NetOut, group: GroupId, msg: Msg) {
        let me = self.cfg.me;
        self.stats.bump("bcast.initiated");
        self.handle_grp_bcast(net, group, msg, me);
    }

    fn handle_grp_bcast(&mut self, net: &mut dyn NetOut, group: GroupId, msg: Msg, root: NodeId) {
        for child in bcast::children(self.cfg.me, root, self.cfg.nodes) {
            self.net_send(
                net,
                child,
                KMsg::GrpBcast {
                    group,
                    msg: msg.clone(),
                    root,
                },
            );
        }
        if self.groups.known(group) {
            self.deliver_bcast_local(net, group, msg);
        } else {
            self.groups.park_bcast(group, msg);
        }
    }

    /// Collective scheduling (§6.4): deliver a broadcast to every local
    /// member consecutively — one dispatch charge for the whole quantum
    /// rather than one per message.
    fn deliver_bcast_local(&mut self, net: &mut dyn NetOut, group: GroupId, msg: Msg) {
        let members = self.groups.local_members(group);
        if members.is_empty() {
            return;
        }
        if self.cfg.opt.collective_bcast {
            // One dispatch for the whole local quantum (§6.4).
            self.charge(self.cfg.cost.dispatch);
        }
        self.stats.add("bcast.local_deliveries", members.len() as u64);
        let last = members.len() - 1;
        let mut msg = Some(msg);
        for (i, (_idx, addr)) in members.into_iter().enumerate() {
            if !self.cfg.opt.collective_bcast {
                // Ablation: every member delivery is its own scheduling
                // event.
                self.charge(self.cfg.cost.dispatch);
                self.charge(self.cfg.cost.local_send);
            }
            // Members homed here are usually still local; if one migrated
            // the normal descriptor path forwards it.
            self.charge(self.cfg.cost.constraint_check);
            // The last member takes the message itself; only the first
            // `len - 1` deliveries pay for a clone.
            let mut m = if i == last {
                msg.take().expect("taken once")
            } else {
                msg.as_ref().expect("not yet taken").clone()
            };
            match self.names.resolve(addr.key) {
                Resolution::Local(aid) => {
                    // Collective deliveries bypass send_to_addr, so each
                    // member's copy is stamped here — a broadcast is N
                    // logical sends, one fresh id per member, keeping the
                    // checker's exactly-once pass meaningful.
                    if self.recorder.is_some() && m.trace.is_none() {
                        self.trace_stamp_send(&mut m, addr.key, false);
                        if let Some(tag) = m.trace {
                            let latency_ns = self.trace_latency_ns(&tag);
                            if let Some(r) = self.recorder.as_deref_mut() {
                                r.delivered_at.insert(tag.id, self.clock);
                            }
                            self.trace_event_span(
                                KernelEvent::MessageDelivered {
                                    id: tag.id,
                                    latency_ns,
                                    path: tag.path(),
                                },
                                tag.id,
                                0,
                            );
                        }
                    }
                    if self.actors.enqueue(aid, m) {
                        self.dispatcher.push(aid);
                    }
                }
                _ => self.send_to_addr(net, addr, m),
            }
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection (§9 future work)
    // ------------------------------------------------------------------

    /// Coordinator entry point: start a distributed collection from this
    /// node. The machine calls this at a quiescent point.
    pub fn start_gc(&mut self, net: &mut dyn NetOut) {
        assert!(
            self.joins.pending() == 0,
            "GC requires quiescence without pending join continuations"
        );
        self.gc.coord = Some(CoordState {
            awaiting: self.cfg.nodes,
            round_activity: 0,
            rounds: 0,
            freed: 0,
        });
        let me = self.cfg.me;
        // Deliver to ourselves through the loopback so the coordinator
        // node follows the identical code path as everyone else.
        self.loopback.push_back(KMsg::GcBegin {
            coordinator: me,
            root: me,
        });
        self.drain_loopback(net);
    }

    /// Where a traced mail address should be marked: locally now, or at
    /// the believed owner. Returns the number of *new* local marks.
    fn gc_trace_addr(&mut self, addr: MailAddr, work: &mut Vec<ActorId>, out: &mut MarkBatches) -> u64 {
        match self.names.resolve(addr.key) {
            Resolution::Local(aid) => {
                if self.gc.mark(aid) {
                    work.push(aid);
                    1
                } else {
                    0
                }
            }
            Resolution::Remote { node, .. } => {
                out.push(node, addr.key);
                0
            }
            Resolution::Unknown => {
                out.push(addr.default_route(), addr.key);
                0
            }
        }
    }

    /// Trace from the current worklist to a local fixpoint; batch remote
    /// references. Returns new local marks.
    fn gc_trace(&mut self, mut work: Vec<ActorId>, out: &mut MarkBatches) -> u64 {
        let mut new_marks = 0;
        while let Some(aid) = work.pop() {
            let refs = match self.actors.get(aid) {
                Some(rec) => rec.behavior.acquaintances(),
                None => continue,
            };
            for addr in refs {
                new_marks += self.gc_trace_addr(addr, &mut work, out);
            }
        }
        new_marks
    }

    /// Local roots: pinned actors, actors with queued work, and group
    /// members (externally reachable by `(group, index)`).
    fn gc_roots(&mut self) -> Vec<ActorId> {
        let mut roots: Vec<ActorId> = Vec::new();
        for aid in self.actors.live_ids() {
            let rec = self.actors.get(aid).expect("live id");
            let is_root = self.gc.pinned.contains(&aid)
                || rec.scheduled
                || !rec.mailq.is_empty()
                || !rec.pendq.is_empty()
                || rec.group.is_some();
            if is_root {
                roots.push(aid);
            }
        }
        roots
    }

    fn gc_flush_batches(&mut self, net: &mut dyn NetOut, out: MarkBatches) -> u64 {
        let mut forwarded = 0;
        for (node, keys) in out.drain() {
            forwarded += keys.len() as u64;
            self.net_send(net, node, KMsg::GcMark { keys });
        }
        forwarded
    }

    fn handle_gc_begin(&mut self, net: &mut dyn NetOut, coordinator: NodeId, root: NodeId) {
        for child in bcast::children(self.cfg.me, root, self.cfg.nodes) {
            self.net_send(net, child, KMsg::GcBegin { coordinator, root });
        }
        assert!(
            self.joins.pending() == 0,
            "GC requires quiescence without pending join continuations"
        );
        let was_active = self.gc.active;
        let coord = self.gc.coord.take();
        self.gc.begin();
        self.gc.coord = coord;
        debug_assert!(!was_active, "nested collection");
        self.gc_coordinator = coordinator;
        let roots: Vec<ActorId> = self.gc_roots();
        let mut newly = Vec::new();
        for aid in roots {
            if self.gc.mark(aid) {
                newly.push(aid);
            }
        }
        let mut out = MarkBatches::default();
        let mut activity = newly.len() as u64;
        activity += self.gc_trace(newly, &mut out);
        activity += self.gc_flush_batches(net, out);
        self.net_send(net, coordinator, KMsg::GcRoundDone { activity });
    }

    fn handle_gc_round(&mut self, net: &mut dyn NetOut, root: NodeId) {
        for child in bcast::children(self.cfg.me, root, self.cfg.nodes) {
            self.net_send(net, child, KMsg::GcRoundGo { root });
        }
        let incoming = std::mem::take(&mut self.gc.incoming);
        let mut out = MarkBatches::default();
        let mut work = Vec::new();
        let mut activity = 0u64;
        for key in incoming {
            match self.names.resolve(key) {
                Resolution::Local(aid) => {
                    if self.gc.mark(aid) {
                        work.push(aid);
                        activity += 1;
                    }
                }
                Resolution::Remote { node, .. } => {
                    out.push(node, key);
                }
                Resolution::Unknown => {
                    // At the birthplace an unknown key means the actor is
                    // already gone; elsewhere, ask the birthplace.
                    if key.birthplace != self.cfg.me {
                        out.push(key.birthplace, key);
                    }
                }
            }
        }
        activity += self.gc_trace(work, &mut out);
        activity += self.gc_flush_batches(net, out);
        let coordinator = self.gc_coordinator;
        self.net_send(net, coordinator, KMsg::GcRoundDone { activity });
    }

    fn handle_gc_round_done(&mut self, _net: &mut dyn NetOut, activity: u64) {
        let me = self.cfg.me;
        let nodes = self.cfg.nodes;
        let coord = self.gc.coord.as_mut().expect("round report at non-coordinator");
        coord.awaiting -= 1;
        coord.round_activity += activity;
        if coord.awaiting > 0 {
            return;
        }
        if coord.round_activity > 0 {
            coord.awaiting = nodes;
            coord.round_activity = 0;
            coord.rounds += 1;
            self.loopback.push_back(KMsg::GcRoundGo { root: me });
        } else {
            coord.awaiting = nodes;
            self.loopback.push_back(KMsg::GcSweepCmd { root: me });
        }
    }

    fn handle_gc_sweep(&mut self, net: &mut dyn NetOut, root: NodeId) {
        for child in bcast::children(self.cfg.me, root, self.cfg.nodes) {
            self.net_send(net, child, KMsg::GcSweepCmd { root });
        }
        let mut freed = 0u64;
        for aid in self.actors.live_ids() {
            if self.gc.marked.contains(&aid) {
                continue;
            }
            let rec = self.actors.remove(aid);
            for key in &rec.keys {
                if key.birthplace == self.cfg.me {
                    if self.names.descriptor_live(key.index) {
                        self.names.free_descriptor(key.index);
                    }
                } else if let Some(d) = self.names.unbind(*key) {
                    if self.names.descriptor_live(d) {
                        self.names.free_descriptor(d);
                    }
                }
            }
            freed += 1;
        }
        self.stats.add("gc.freed", freed);
        self.gc.active = false;
        let live = self.actors.len() as u64;
        if self.recorder.is_some() {
            self.trace_event(KernelEvent::GcSweep { freed, live });
        }
        let coordinator = self.gc_coordinator;
        self.net_send(net, coordinator, KMsg::GcSwept { freed, live });
    }

    fn handle_gc_swept(&mut self, _net: &mut dyn NetOut, freed: u64, live: u64) {
        let coord = self.gc.coord.as_mut().expect("sweep report at non-coordinator");
        coord.awaiting -= 1;
        coord.freed += freed;
        self.gc_live_total += live;
        if coord.awaiting == 0 {
            let rounds = coord.rounds;
            let freed = coord.freed;
            let live = self.gc_live_total;
            self.gc_live_total = 0;
            self.reports.push(("gc_freed".into(), Value::Int(freed as i64)));
            self.reports.push(("gc_rounds".into(), Value::Int(rounds as i64)));
            self.reports.push(("gc_live".into(), Value::Int(live as i64)));
        }
    }

    // ------------------------------------------------------------------
    // Scheduling (§6.3)
    // ------------------------------------------------------------------

    /// Bootstrap: create an actor on this node before the machine runs
    /// (the front-end loading a program) and optionally hand it an
    /// initial message.
    pub fn bootstrap(&mut self, behavior: Box<dyn Behavior>, initial: Option<Msg>) -> MailAddr {
        let (aid, addr) = self.install_actor(behavior);
        if let Some(msg) = initial {
            self.enqueue_local(aid, msg);
        }
        addr
    }

    /// Run one scheduling step: drain loopback work, then execute one
    /// ready actor for up to a quantum of messages. Returns `true` if any
    /// work was done.
    pub fn step(&mut self, net: &mut dyn NetOut) -> bool {
        if !self.pauses.is_empty() {
            self.clock = self.pause_shift(self.clock);
        }
        if !self.loopback.is_empty() {
            self.drain_loopback(net);
            self.metrics_tick();
            return true;
        }
        let Some(aid) = self.dispatcher.pop() else {
            return false;
        };
        self.charge(self.cfg.cost.dispatch);
        self.run_actor(net, aid);
        self.drain_loopback(net);
        self.metrics_tick();
        true
    }

    /// Execute up to `quantum` enabled messages on actor `aid`, with
    /// pending-queue rescans after each method (§6.1).
    fn run_actor(&mut self, net: &mut dyn NetOut, aid: ActorId) {
        let Some(mut rec) = self.actors.checkout(aid) else {
            // Stolen or migrated between scheduling and execution.
            return;
        };
        rec.scheduled = false;
        let mut processed = 0usize;
        let mut migrate_req: Option<NodeId> = None;

        loop {
            if processed >= self.cfg.quantum || migrate_req.is_some() {
                break;
            }
            let Some(msg) = rec.mailq.pop_front() else {
                break;
            };
            self.charge(self.cfg.cost.constraint_check);
            if rec.behavior.enabled(msg.selector, &msg.args) {
                processed += 1;
                let mreq = self.execute_message(net, aid, &mut rec, msg);
                if mreq.is_some() {
                    migrate_req = mreq;
                }
                // Pending rescan: "Whenever an actor completes its method
                // execution, it examines whether or not it has pending
                // messages" — dispatch newly enabled ones immediately.
                if migrate_req.is_none() {
                    let m2 = self.rescan_pending(net, aid, &mut rec);
                    if m2.is_some() {
                        migrate_req = m2;
                    }
                }
            } else {
                self.stats.bump("sync.deferred");
                self.metrics_pending(1);
                if let Some(r) = self.recorder.as_deref_mut() {
                    if let Some(tag) = msg.trace {
                        r.pending_since.insert(tag.id, self.clock);
                        let time = self.clock;
                        let me = self.cfg.me;
                        r.ring.push(TraceEvent {
                            time,
                            node: me,
                            seq: 0,
                            span: tag.id,
                            parent: 0,
                            event: KernelEvent::PendingEnqueued { id: tag.id },
                        });
                    }
                }
                rec.pendq.push_back(msg);
            }
        }
        // A migration-free actor with nothing processed but a nonempty
        // pendq still deserves one rescan (e.g. scheduled by arrival of
        // state-changing messages that all went to pendq — nothing to do,
        // but harmless and keeps semantics uniform).
        if processed == 0 && migrate_req.is_none() && !rec.pendq.is_empty() {
            let m2 = self.rescan_pending(net, aid, &mut rec);
            if m2.is_some() {
                migrate_req = m2;
            }
        }

        let more = !rec.mailq.is_empty();
        self.actors.checkin(aid, rec);
        if let Some(dst) = migrate_req {
            if dst == self.cfg.me {
                // Degenerate migration to self: just reschedule.
                if let Some(r) = self.actors.get_mut(aid) {
                    if (!r.mailq.is_empty() || !r.pendq.is_empty()) && !r.scheduled {
                        r.scheduled = true;
                        self.dispatcher.push(aid);
                    }
                }
            } else {
                self.migrate_out(net, aid, dst, false);
            }
            return;
        }
        // checkin may have merged new arrivals; reschedule if needed.
        let rec = self.actors.get_mut(aid).expect("just checked in");
        if (more || !rec.mailq.is_empty()) && !rec.scheduled {
            rec.scheduled = true;
            self.dispatcher.push(aid);
        }
    }

    /// Dispatch every currently enabled pending message, repeatedly,
    /// until none is enabled. Returns a migration request if one arose.
    fn rescan_pending(
        &mut self,
        net: &mut dyn NetOut,
        aid: ActorId,
        rec: &mut ActorRecord,
    ) -> Option<NodeId> {
        loop {
            let mut fired = false;
            let mut i = 0;
            while i < rec.pendq.len() {
                self.charge(self.cfg.cost.constraint_check);
                let enabled = {
                    let m = &rec.pendq[i];
                    rec.behavior.enabled(m.selector, &m.args)
                };
                if enabled {
                    let msg = rec.pendq.remove(i).expect("index in range");
                    self.stats.bump("sync.resumed");
                    self.metrics_pending(-1);
                    if let Some(r) = self.recorder.as_deref_mut() {
                        if let Some(tag) = msg.trace {
                            // A message parked on another node can be
                            // re-enabled here after its actor migrated
                            // with its pending queue: the park time
                            // lives in the other node's recorder, so
                            // residency falls back to zero. The event
                            // itself must still fire — the checker's
                            // liveness pass pairs every PendingEnqueued
                            // with a PendingRescanned.
                            let residency_ns = r
                                .pending_since
                                .remove(&tag.id)
                                .map(|parked| {
                                    self.clock.as_nanos().saturating_sub(parked.as_nanos())
                                })
                                .unwrap_or(0);
                            let time = self.clock;
                            let me = self.cfg.me;
                            r.ring.push(TraceEvent {
                                time,
                                node: me,
                                seq: 0,
                                span: tag.id,
                                parent: 0,
                                event: KernelEvent::PendingRescanned {
                                    id: tag.id,
                                    residency_ns,
                                },
                            });
                        }
                    }
                    fired = true;
                    let mreq = self.execute_message(net, aid, rec, msg);
                    if mreq.is_some() {
                        return mreq;
                    }
                } else {
                    i += 1;
                }
            }
            if !fired {
                return None;
            }
        }
    }

    /// Invoke one method on a checked-out actor record. Returns the
    /// migration destination if the method requested one.
    fn execute_message(
        &mut self,
        net: &mut dyn NetOut,
        aid: ActorId,
        rec: &mut ActorRecord,
        msg: Msg,
    ) -> Option<NodeId> {
        self.charge(self.cfg.cost.method_invoke);
        self.stats.bump("msgs.processed");
        // Span bookkeeping: the dispatched message becomes the current
        // span, so every send the handler issues is parented by it.
        let tag = msg.trace;
        let exec_start = self.clock;
        let saved = if let Some(r) = self.recorder.as_deref_mut() {
            let saved = r.current_span;
            r.current_span = tag.map_or(0, |t| t.id);
            saved
        } else {
            0
        };
        let mut ctx = Ctx {
            ident: Ident::Actor {
                aid,
                addr: rec.addr,
            },
            customer: msg.customer,
            become_to: None,
            migrate_to: None,
            k: self,
            net,
        };
        rec.behavior.dispatch(&mut ctx, msg);
        let become_to = ctx.become_to.take();
        let migrate_to = ctx.migrate_to.take();
        if let Some(b) = become_to {
            rec.behavior = b;
        }
        if self.recorder.is_some() {
            if let Some(tag) = tag {
                let run_ns = self.clock.since(exec_start).as_nanos();
                let queued_ns = self
                    .recorder
                    .as_deref_mut()
                    .and_then(|r| r.delivered_at.remove(&tag.id))
                    .map_or(0, |at| exec_start.since(at).as_nanos());
                self.trace_event_span(
                    KernelEvent::MessageExecuted { id: tag.id, queued_ns, run_ns },
                    tag.id,
                    0,
                );
            }
            if let Some(r) = self.recorder.as_deref_mut() {
                r.current_span = saved;
            }
        }
        migrate_to
    }

    /// Compiler fast path (§6.3): locality check + inline static dispatch
    /// on the current stack, when the receiver is local, enabled, idle,
    /// and the depth bound permits. Falls back to the generic send.
    /// Returns `true` if the fast path was taken.
    fn send_fast(&mut self, net: &mut dyn NetOut, to: MailAddr, msg: Msg) -> bool {
        self.charge(self.cfg.cost.locality_check);
        if self.stack_depth >= self.cfg.max_stack_depth {
            self.stats.bump("fast.depth_fallback");
            self.send_after_check(net, to, msg);
            return false;
        }
        match self.names.resolve(to.key) {
            Resolution::Local(aid) => {
                // The runtime "additionally checks if the recipient actor
                // is in a state in which it is enabled to process the
                // message" — and that it has no queued messages (queue
                // jumping would break the actor's arrival order).
                let ok = match self.actors.get(aid) {
                    Some(rec) => {
                        rec.mailq.is_empty()
                            && rec.pendq.is_empty()
                            && rec.behavior.enabled(msg.selector, &msg.args)
                    }
                    None => false, // running: fall back to queueing
                };
                if !ok {
                    self.charge(self.cfg.cost.local_send);
                    self.stats.bump("fast.state_fallback");
                    self.enqueue_local(aid, msg);
                    return false;
                }
                self.charge(self.cfg.cost.local_send_fast);
                self.stats.bump("fast.inline");
                let mut rec = self.actors.checkout(aid).expect("checked above");
                self.stack_depth += 1;
                let mreq = self.execute_message(net, aid, &mut rec, msg);
                let m2 = if mreq.is_none() {
                    self.rescan_pending(net, aid, &mut rec)
                } else {
                    mreq
                };
                self.stack_depth -= 1;
                let has_more = !rec.mailq.is_empty();
                self.actors.checkin(aid, rec);
                if let Some(dst) = m2 {
                    if dst != self.cfg.me {
                        self.migrate_out(net, aid, dst, false);
                        return true;
                    }
                }
                if has_more {
                    let rec = self.actors.get_mut(aid).expect("just checked in");
                    if !rec.scheduled {
                        rec.scheduled = true;
                        self.dispatcher.push(aid);
                    }
                }
                true
            }
            _ => {
                self.send_after_check(net, to, msg);
                false
            }
        }
    }

    /// The generic send minus the locality check (already charged).
    fn send_after_check(&mut self, net: &mut dyn NetOut, to: MailAddr, msg: Msg) {
        // send_to_addr re-checks; refund the duplicate check so fast-path
        // fallbacks are not double-charged.
        match self.names.resolve(to.key) {
            Resolution::Local(aid) => {
                self.charge(self.cfg.cost.local_send);
                self.stats.bump("msgs.local");
                self.enqueue_local(aid, msg);
            }
            _ => self.send_to_addr(net, to, msg),
        }
    }
}

/// Who is currently executing.
enum Ident {
    /// An actor method.
    Actor {
        /// Its slab id.
        aid: ActorId,
        /// Its primary address.
        addr: MailAddr,
    },
    /// A join continuation body.
    Continuation,
    /// Machine bootstrap code.
    System,
}

/// The actor interface (Fig. 2's top layer): everything a behavior can
/// ask of the kernel during a method execution.
pub struct Ctx<'a> {
    k: &'a mut Kernel,
    net: &'a mut dyn NetOut,
    ident: Ident,
    customer: Option<ContRef>,
    become_to: Option<Box<dyn Behavior>>,
    migrate_to: Option<NodeId>,
}

impl<'a> Ctx<'a> {
    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.k.cfg.me
    }

    /// Partition size.
    pub fn nodes(&self) -> usize {
        self.k.cfg.nodes
    }

    /// Current virtual time on this node.
    pub fn now(&self) -> VirtualTime {
        self.k.clock
    }

    /// Charge user compute time to the node clock (simulation of the
    /// method body's real work, e.g. a block matrix multiply).
    pub fn charge(&mut self, d: VirtualDuration) {
        self.k.charge(d);
    }

    /// The executing actor's mail address.
    ///
    /// # Panics
    /// Panics when called from a continuation or bootstrap context.
    pub fn me(&self) -> MailAddr {
        match self.ident {
            Ident::Actor { addr, .. } => addr,
            _ => panic!("Ctx::me outside an actor method"),
        }
    }

    /// The reply destination of the current message, if it was a request.
    pub fn customer(&self) -> Option<ContRef> {
        self.customer
    }

    /// Asynchronous send (the actor `send` primitive).
    pub fn send(&mut self, to: MailAddr, selector: Selector, args: Vec<Value>) {
        self.k.send_to_addr(self.net, to, Msg::new(selector, args));
    }

    /// Send a fully formed message (continuation reference included).
    pub fn send_msg(&mut self, to: MailAddr, msg: Msg) {
        self.k.send_to_addr(self.net, to, msg);
    }

    /// Compiler fast path (§6.3): inline local dispatch when legal, else
    /// the generic send. Returns whether the inline path ran.
    pub fn send_fast(&mut self, to: MailAddr, selector: Selector, args: Vec<Value>) -> bool {
        self.k.send_fast(self.net, to, Msg::new(selector, args))
    }

    /// `request`: asynchronous send whose reply fills `cont`.
    pub fn request(&mut self, to: MailAddr, selector: Selector, args: Vec<Value>, cont: ContRef) {
        self.k
            .send_to_addr(self.net, to, Msg::request(selector, args, cont));
    }

    /// `reply`: answer the current message's customer.
    ///
    /// # Panics
    /// Panics if the current message carried no continuation.
    pub fn reply(&mut self, value: Value) {
        let cont = self
            .customer
            .take()
            .expect("reply without a customer continuation");
        self.k.send_reply(self.net, cont, value);
    }

    /// Answer an explicit continuation reference (for forwarded or stored
    /// customers).
    pub fn reply_to(&mut self, cont: ContRef, value: Value) {
        self.k.send_reply(self.net, cont, value);
    }

    /// Create a join continuation with `arity` slots, `prefilled` known
    /// values, and body `func` (§6.2). Combine with [`Ctx::cont_slot`] to
    /// build reply targets.
    pub fn create_join(
        &mut self,
        arity: u16,
        prefilled: Vec<(u16, Value)>,
        func: JoinFn,
    ) -> JcId {
        let creator = match self.ident {
            Ident::Actor { aid, .. } => Some(aid),
            _ => None,
        };
        self.k.joins.create(arity, prefilled, func, creator)
    }

    /// A continuation reference filling `slot` of `jc` on this node.
    pub fn cont_slot(&self, jc: JcId, slot: u16) -> ContRef {
        ContRef::Join {
            node: self.k.cfg.me,
            jc,
            slot,
        }
    }

    /// `new`: create an actor on this node from a behavior object.
    pub fn create_local(&mut self, behavior: Box<dyn Behavior>) -> MailAddr {
        self.k.create_local(behavior)
    }

    /// `new @ node`: create an actor on `node` (alias latency hiding when
    /// remote, §5). Placement is explicit, as HAL allows ("placement
    /// specification for dynamically created objects").
    pub fn create_on(&mut self, node: NodeId, behavior: BehaviorId, init: Vec<Value>) -> MailAddr {
        if node == self.k.cfg.me {
            let b = self.k.registry.create(behavior, &init);
            self.k.recycle_args(init);
            self.k.create_local(b)
        } else {
            self.k.create_remote(self.net, node, behavior, init)
        }
    }

    /// `grpnew`: create a group of `count` actors of `behavior` spread
    /// over the partition; returns immediately with the group id. Each
    /// member's factory receives `init ++ [Group(id), Int(index),
    /// Int(count)]`.
    pub fn grpnew(&mut self, behavior: BehaviorId, count: u32, init: Vec<Value>) -> GroupId {
        self.k.grpnew(self.net, behavior, count, init, Mapping::Block)
    }

    /// `grpnew` with an explicit member-distribution mapping (Table 1's
    /// block vs cyclic column placement).
    pub fn grpnew_mapped(
        &mut self,
        behavior: BehaviorId,
        count: u32,
        init: Vec<Value>,
        mapping: Mapping,
    ) -> GroupId {
        self.k.grpnew(self.net, behavior, count, init, mapping)
    }

    /// Broadcast to every member of `group` (§6.4).
    pub fn broadcast(&mut self, group: GroupId, selector: Selector, args: Vec<Value>) {
        self.k.broadcast(self.net, group, Msg::new(selector, args));
    }

    /// Send to one member of a group by index.
    pub fn send_member(&mut self, group: GroupId, index: u32, selector: Selector, args: Vec<Value>) {
        self.k
            .deliver_member(self.net, group, index, Msg::new(selector, args));
    }

    /// Send a request to one member of a group.
    pub fn request_member(
        &mut self,
        group: GroupId,
        index: u32,
        selector: Selector,
        args: Vec<Value>,
        cont: ContRef,
    ) {
        self.k
            .deliver_member(self.net, group, index, Msg::request(selector, args, cont));
    }

    /// `become`: replace this actor's behavior after the current method
    /// returns.
    pub fn become_behavior(&mut self, behavior: Box<dyn Behavior>) {
        assert!(
            matches!(self.ident, Ident::Actor { .. }),
            "become outside an actor method"
        );
        self.become_to = Some(behavior);
    }

    /// Ask the kernel to migrate this actor to `node` after the current
    /// method returns.
    pub fn migrate(&mut self, node: NodeId) {
        assert!(
            matches!(self.ident, Ident::Actor { .. }),
            "migrate outside an actor method"
        );
        self.migrate_to = Some(node);
    }

    /// Post a named result for the harness to read from the machine
    /// report.
    pub fn report(&mut self, key: impl Into<String>, value: Value) {
        self.k.reports.push((key.into(), value));
    }

    /// Stop the whole machine: sets the local stop flag and broadcasts
    /// Halt to every other node.
    pub fn stop(&mut self) {
        self.k.stopped = true;
        for n in 0..self.k.cfg.nodes as NodeId {
            if n != self.k.cfg.me {
                self.k.net_send(self.net, n, KMsg::Halt);
            }
        }
    }

    /// Node-local statistics (incrementing workload-specific counters).
    pub fn stats(&mut self) -> &mut StatSet {
        &mut self.k.stats
    }

    /// Pin a *local* actor as a garbage-collection root (the analog of
    /// an address held outside the actor system). Panics if the actor
    /// does not live on this node.
    pub fn pin(&mut self, addr: MailAddr) {
        match self.k.names.resolve(addr.key) {
            Resolution::Local(aid) => {
                self.k.gc.pinned.insert(aid);
            }
            other => panic!("pin of non-local actor ({other:?})"),
        }
    }

    /// Remove a pin (the external reference was dropped); the actor
    /// becomes collectable if nothing else reaches it.
    pub fn unpin(&mut self, addr: MailAddr) {
        if let Resolution::Local(aid) = self.k.names.resolve(addr.key) {
            self.k.gc.pinned.remove(&aid);
        }
    }
}

/// Run a closure in a bootstrap (`System`) context against a kernel —
/// how machines let harness code create the initial actors.
pub fn with_system_ctx<R>(
    kernel: &mut Kernel,
    net: &mut dyn NetOut,
    f: impl FnOnce(&mut Ctx<'_>) -> R,
) -> R {
    let mut ctx = Ctx {
        k: kernel,
        net,
        ident: Ident::System,
        customer: None,
        become_to: None,
        migrate_to: None,
    };
    let r = f(&mut ctx);
    debug_assert!(ctx.become_to.is_none());
    debug_assert!(ctx.migrate_to.is_none());
    r
}
