//! Conservative time-window parallel executor for the simulated machine.
//!
//! The sequential reference in [`crate::machine`] advances the globally
//! earliest action one at a time. This module runs the same simulation
//! in bounded **windows**: the link model guarantees every injection at
//! time `now` arrives no earlier than `now + inject_overhead + latency`
//! (the *lookahead* `L`), so if the machine's nodes are sharded across
//! host threads, each shard can execute every action with `t < end` of a
//! window `[m·L, (m+1)·L)` without ever seeing a packet another shard
//! produced inside the same window — those arrive at `≥ end` by
//! construction. Cross-shard sends are therefore *staged* during the
//! window and replayed against the shared [`LinkState`] at the barrier,
//! in the canonical order the sequential executor would have admitted
//! them. For a fixed seed the resulting [`crate::machine::SimReport`] is
//! bit-identical for every shard count, and `K = 1` is the reference.
//!
//! Determinism rests on three facts:
//!
//! 1. Every executed action has a globally unique [`ActionKey`] (time,
//!    rank, tie-breaker) except back-to-back zero-cost steps of one
//!    node, which live on one shard and are kept adjacent by a stable
//!    sort — so sorting the staged injections by producing-action key
//!    reconstructs the exact sequential admission order.
//! 2. Window planning uses only barrier-aggregated global state
//!    (earliest queue head, earliest ready clock, poll candidates), so
//!    every shard count computes the same window sequence.
//! 3. All mutable per-node state (kernel, RNG, recorder) stays on its
//!    owning shard; the only shared state — the link resource model —
//!    is touched exclusively at barriers.

use crate::error::MachineError;
use crate::kernel::{Kernel, NetOut};
use crate::prof::{CoordClock, ProfReport, ShardClock, ShardProf};
use crate::timeline::SpanKind;
use crate::wire::KMsg;
use hal_am::{AmEnvelope, Fate, LinkModel, LinkState, NodeId, Packet};
use hal_des::{EventQueue, VirtualTime};
use std::sync::mpsc;
use std::time::Instant;

/// Lookahead of a link model in nanoseconds: no injection at `now` can
/// arrive before `now + inject_overhead + latency` (transmission time
/// and resource contention only push arrivals later). Zero means the
/// windowed executor cannot run and the caller must fall back to the
/// sequential instant-network loop.
pub(crate) fn lookahead_ns(link: &LinkModel) -> u64 {
    (link.inject_overhead + link.latency).as_nanos()
}

/// Canonical order of simulation actions — the windowed equivalent of
/// the sequential executor's `(time, rank, index)` tie-break: packet
/// deliveries first (tied on global admission sequence), then dispatcher
/// steps by node id, then load-balance polls by node id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) struct ActionKey {
    t: VirtualTime,
    rank: u8,
    tie: u64,
}

const RANK_NET: u8 = 0;
const RANK_STEP: u8 = 1;
const RANK_POLL: u8 = 2;

/// One network operation a kernel performed inside a window, parked
/// until the barrier replays it against the shared [`LinkState`].
pub(crate) struct Staged {
    key: ActionKey,
    op: StagedOp,
}

/// What was staged: an ordinary injection (admitted — with fault fate —
/// at the barrier) or a chaos timer (which takes a tie-break sequence
/// number from the shared counter but no resources or faults).
enum StagedOp {
    Send {
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        env: AmEnvelope<KMsg>,
        wire: usize,
    },
    Timer {
        fire_at: VirtualTime,
        node: NodeId,
        env: AmEnvelope<KMsg>,
    },
}

/// The [`NetOut`] a shard hands its kernels: sends are recorded, not
/// admitted. Kernels never observe network resource state, so deferring
/// admission to the barrier is invisible to them.
#[derive(Default)]
struct StageNet {
    cur: Option<ActionKey>,
    buf: Vec<Staged>,
}

impl NetOut for StageNet {
    fn inject(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        env: AmEnvelope<KMsg>,
        wire_bytes: usize,
    ) {
        self.buf.push(Staged {
            key: self.cur.expect("staged inject outside an action"),
            op: StagedOp::Send {
                now,
                src,
                dst,
                env,
                wire: wire_bytes,
            },
        });
    }

    fn schedule(&mut self, fire_at: VirtualTime, node: NodeId, env: AmEnvelope<KMsg>) {
        self.buf.push(Staged {
            key: self.cur.expect("staged timer outside an action"),
            op: StagedOp::Timer { fire_at, node, env },
        });
    }
}

/// A timeline span tagged with the key of the action that produced it,
/// so shard-local spans merge back into canonical order.
type KeyedSpan = (ActionKey, NodeId, VirtualTime, VirtualTime, SpanKind);

/// What a shard reports at a window barrier.
pub(crate) struct Summary {
    staged: Vec<Staged>,
    events: u64,
    stopped: bool,
    queue_head: Option<(VirtualTime, u64)>,
    ready_min_clock: Option<VirtualTime>,
    /// `(node, max(next_poll_at, clock))` for every idle node that could
    /// send a load-balance poll.
    idle_polls: Vec<(NodeId, VirtualTime)>,
}

/// A window assignment from the coordinator.
pub(crate) struct WindowCmd {
    end: VirtualTime,
    arrivals: Vec<(VirtualTime, u64, Packet<KMsg>)>,
    /// Poll fire times for this shard's idle nodes, sorted by
    /// `(time, node)`.
    polls: Vec<(VirtualTime, NodeId)>,
    /// Remaining global event budget (u64::MAX when the valve is off).
    budget: u64,
}

/// One shard: the kernels of every node `n` with `n % stride == id`,
/// plus their slice of the pending-packet queue.
pub(crate) struct Shard {
    id: usize,
    stride: usize,
    kernels: Vec<Kernel>,
    queue: EventQueue<Packet<KMsg>>,
    stage: StageNet,
    spans: Vec<KeyedSpan>,
    record_timeline: bool,
}

impl Shard {
    fn node_of(&self, local: usize) -> NodeId {
        (self.id + local * self.stride) as NodeId
    }

    /// Describe the shard's current frontier without executing anything.
    fn summarize(&mut self) -> Summary {
        let mut ready_min_clock: Option<VirtualTime> = None;
        let mut idle_polls = Vec::new();
        for (i, k) in self.kernels.iter().enumerate() {
            if k.has_work() {
                let c = k.clock;
                if ready_min_clock.is_none_or(|m| c < m) {
                    ready_min_clock = Some(c);
                }
            } else if let Some(t0) = k.balancer.poll_ready_at() {
                idle_polls.push((self.node_of(i), t0.max(k.clock)));
            }
        }
        Summary {
            staged: std::mem::take(&mut self.stage.buf),
            events: 0,
            stopped: self.kernels.iter().any(|k| k.stopped),
            queue_head: self.queue.peek(),
            ready_min_clock,
            idle_polls,
        }
    }

    /// Execute every action of this shard with `t < cmd.end`, staging
    /// all sends, then summarize the new frontier. When profiling, the
    /// window's host time is attributed phase by phase into `clock`.
    fn run_window(&mut self, cmd: WindowCmd, clock: &mut Option<ShardClock>) -> Summary {
        let arrivals = cmd.arrivals.len() as u64;
        for (t, seq, pkt) in cmd.arrivals {
            self.queue.push_at(t, seq, pkt);
        }
        if let Some(c) = clock.as_mut() {
            c.inject(arrivals, self.queue.len() as u64);
        }
        let end = cmd.end;
        let mut events = 0u64;
        let mut poll_idx = 0usize;
        loop {
            if events >= cmd.budget {
                // Out of global event budget: abort the window quietly —
                // the coordinator detects the exhausted valve at the
                // barrier and records the typed MaxEvents error there
                // (a shard thread must not fail with its own message).
                break;
            }
            // Globally minimal candidate with t < end.
            let mut best: Option<(ActionKey, Cand)> = None;
            let mut consider = |key: ActionKey, c: Cand| {
                if best.as_ref().is_none_or(|(b, _)| key < *b) {
                    best = Some((key, c));
                }
            };
            if let Some((t, seq)) = self.queue.peek() {
                if t < end {
                    consider(
                        ActionKey {
                            t,
                            rank: RANK_NET,
                            tie: seq,
                        },
                        Cand::Net,
                    );
                }
            }
            for (i, k) in self.kernels.iter().enumerate() {
                if k.has_work() && k.clock < end {
                    consider(
                        ActionKey {
                            t: k.clock,
                            rank: RANK_STEP,
                            tie: self.node_of(i) as u64,
                        },
                        Cand::Step(i),
                    );
                }
            }
            if let Some(&(tf, node)) = cmd.polls.get(poll_idx) {
                consider(
                    ActionKey {
                        t: tf,
                        rank: RANK_POLL,
                        tie: node as u64,
                    },
                    Cand::Poll(node, tf),
                );
            }
            let Some((key, cand)) = best.take() else {
                break; // frontier reached the window end
            };
            events += 1;
            match cand {
                Cand::Net => {
                    let (t, _, pkt) = self.queue.pop_seq().expect("candidate said Net");
                    self.exec_net(key, t, pkt);
                    // Batch-drain every packet arriving at the same
                    // instant: deliveries (rank 0) win all ties at `t`,
                    // and no in-window send can arrive before `end`, so
                    // the scan above cannot change the verdict.
                    while self.queue.peek_time() == Some(t) {
                        if events >= cmd.budget {
                            break;
                        }
                        let (_, seq, pkt) = self.queue.pop_seq().expect("peeked");
                        events += 1;
                        self.exec_net(
                            ActionKey {
                                t,
                                rank: RANK_NET,
                                tie: seq,
                            },
                            t,
                            pkt,
                        );
                    }
                }
                Cand::Step(i) => {
                    self.stage.cur = Some(key);
                    let k = &mut self.kernels[i];
                    let before = k.clock;
                    k.step(&mut self.stage);
                    if self.record_timeline {
                        let after = self.kernels[i].clock;
                        self.spans
                            .push((key, self.node_of(i), before, after, SpanKind::Compute));
                    }
                }
                Cand::Poll(node, tf) => {
                    poll_idx += 1;
                    let i = (node as usize) / self.stride;
                    let k = &mut self.kernels[i];
                    // The poll was scheduled at the previous barrier; the
                    // node's state may have moved since (a delivered
                    // packet gave it work, a steal reply rescheduled the
                    // backoff). Fire only if the poll is still live.
                    if k.has_work() {
                        continue;
                    }
                    let Some(t0) = k.balancer.poll_ready_at() else {
                        continue;
                    };
                    if t0 > tf {
                        continue;
                    }
                    k.clock = k.clock.max(tf);
                    self.stage.cur = Some(key);
                    k.send_steal_poll(&mut self.stage);
                }
            }
        }
        if let Some(c) = clock.as_mut() {
            c.execute(events);
        }
        let mut s = self.summarize();
        s.events = events;
        if let Some(c) = clock.as_mut() {
            c.queue(s.staged.len() as u64);
            c.window();
        }
        s
    }

    fn exec_net(&mut self, key: ActionKey, t: VirtualTime, pkt: Packet<KMsg>) {
        let node = pkt.dst;
        let i = (node as usize) / self.stride;
        debug_assert_eq!((node as usize) % self.stride, self.id);
        self.stage.cur = Some(key);
        let k = &mut self.kernels[i];
        // Interrupt semantics (§3), identical to the sequential loop;
        // stale chaos timers are retired for free inside `deliver`.
        if let Some((start, end)) = k.deliver(&mut self.stage, t, pkt) {
            if self.record_timeline {
                self.spans.push((key, node, start, end, SpanKind::Handler));
            }
        }
    }
}

enum Cand {
    Net,
    Step(usize),
    Poll(NodeId, VirtualTime),
}

/// Everything the windowed run hands back to [`crate::machine::SimMachine`].
pub(crate) struct EngineOut {
    /// Kernels in node order.
    pub kernels: Vec<Kernel>,
    /// The link resource state (seq counter, FIFO/NI/eject state, stats).
    pub link: LinkState,
    /// Packets still in flight (stop mid-run leaves some).
    pub pending: Vec<(VirtualTime, u64, Packet<KMsg>)>,
    /// Total events dispatched, including the count carried in.
    pub events: u64,
    /// Timeline spans in canonical action order (empty unless recording).
    pub spans: Vec<(NodeId, VirtualTime, VirtualTime, SpanKind)>,
    /// Engine-level failure (the event valve), surfaced as a typed error
    /// instead of a cross-thread panic.
    pub error: Option<MachineError>,
    /// Host-time profile of the run, when profiling was requested.
    pub prof: Option<ProfReport>,
}

/// Barrier-side state: the shared link resources plus window planning.
struct Coordinator {
    link: LinkState,
    window_ns: u64,
    shards: usize,
    lb: bool,
    max_events: u64,
    events: u64,
    /// Lower bound on the next window index — windows strictly increase.
    next_window: u64,
    /// Per-shard arrivals replayed at the last barrier, awaiting the
    /// next window command.
    inbox: Vec<Vec<(VirtualTime, u64, Packet<KMsg>)>>,
    /// Set when the event valve blows; ends the run and surfaces as
    /// [`MachineError::MaxEvents`].
    error: Option<MachineError>,
}

impl Coordinator {
    /// Merge the shard summaries, replay staged sends in canonical
    /// order, and plan the next window. `None` means the run is over
    /// (drained, a kernel stopped the machine, or the event valve blew
    /// — see [`Coordinator::error`]).
    fn barrier(
        &mut self,
        summaries: &mut [Summary],
        clock: &mut Option<CoordClock>,
    ) -> Option<Vec<WindowCmd>> {
        if let Some(c) = clock.as_mut() {
            c.enter();
        }
        for s in summaries.iter() {
            self.events += s.events;
        }
        // Replay staged injections in the order the sequential executor
        // would have admitted them: actions sort by unique ActionKey;
        // equal keys (repeated zero-cost steps of one node) come from
        // one shard in execution order, which the stable sort preserves.
        let mut staged: Vec<Staged> = Vec::new();
        for s in summaries.iter_mut() {
            staged.append(&mut s.staged);
        }
        staged.sort_by_key(|s| s.key);
        let staged_count = staged.len() as u64;
        for st in staged {
            match st.op {
                StagedOp::Send {
                    now,
                    src,
                    dst,
                    env,
                    wire,
                } => {
                    // Mirror `SimNetwork::inject` exactly: the fault
                    // fate decided at admission governs what (if
                    // anything) reaches the destination's queue.
                    let adm = self.link.admit(now, src, dst, wire);
                    let ib = &mut self.inbox[(dst as usize) % self.shards];
                    match adm.fate {
                        Fate::Dropped => {}
                        Fate::Deliver => {
                            ib.push((adm.arrival, adm.seq, Packet { src, dst, body: env }));
                        }
                        Fate::Duplicated { arrival, seq } => {
                            if let Some(copy) = env.try_clone() {
                                ib.push((arrival, seq, Packet { src, dst, body: copy }));
                            }
                            ib.push((adm.arrival, adm.seq, Packet { src, dst, body: env }));
                        }
                    }
                }
                StagedOp::Timer { fire_at, node, env } => {
                    // Mirror `SimNetwork::schedule`: same counter, no
                    // resources, no faults.
                    let seq = self.link.next_event_seq();
                    self.inbox[(node as usize) % self.shards].push((
                        fire_at,
                        seq,
                        Packet {
                            src: node,
                            dst: node,
                            body: env,
                        },
                    ));
                }
            }
        }
        if let Some(c) = clock.as_mut() {
            c.replay(staged_count);
        }
        if summaries.iter().any(|s| s.stopped) {
            if let Some(c) = clock.as_mut() {
                c.plan();
            }
            return None;
        }
        if self.max_events > 0 && self.events >= self.max_events {
            self.error = Some(MachineError::MaxEvents {
                limit: self.max_events,
            });
            if let Some(c) = clock.as_mut() {
                c.plan();
            }
            return None;
        }
        // Earliest pending action anywhere decides the next window.
        let mut t_next: Option<VirtualTime> = None;
        let mut consider = |t: VirtualTime| {
            if t_next.is_none_or(|m| t < m) {
                t_next = Some(t);
            }
        };
        for s in summaries.iter() {
            if let Some((t, _)) = s.queue_head {
                consider(t);
            }
            if let Some(t) = s.ready_min_clock {
                consider(t);
            }
        }
        for ib in &self.inbox {
            for &(t, _, _) in ib {
                consider(t);
            }
        }
        // Idle nodes may poll only while ready work exists somewhere —
        // the same gate as the sequential executor, evaluated at the
        // barrier.
        let work_exists = summaries.iter().any(|s| s.ready_min_clock.is_some());
        if self.lb && work_exists {
            for s in summaries.iter() {
                for &(_, cand) in &s.idle_polls {
                    consider(cand);
                }
            }
        }
        let Some(t_next) = t_next else {
            // Nothing pending anywhere: the run has drained.
            if let Some(c) = clock.as_mut() {
                c.plan();
            }
            return None;
        };
        let m = (t_next.as_nanos() / self.window_ns).max(self.next_window);
        self.next_window = m + 1;
        let start = VirtualTime::from_nanos(m * self.window_ns);
        let end = VirtualTime::from_nanos((m + 1) * self.window_ns);
        let budget = if self.max_events > 0 {
            self.max_events - self.events
        } else {
            u64::MAX
        };
        let mut cmds: Vec<WindowCmd> = self
            .inbox
            .iter_mut()
            .map(|ib| WindowCmd {
                end,
                arrivals: std::mem::take(ib),
                polls: Vec::new(),
                budget,
            })
            .collect();
        if self.lb && work_exists {
            for s in summaries.iter() {
                for &(node, cand) in &s.idle_polls {
                    let tf = cand.max(start);
                    if tf < end {
                        cmds[(node as usize) % self.shards].polls.push((tf, node));
                    }
                }
            }
            for c in &mut cmds {
                c.polls.sort_unstable();
            }
        }
        if let Some(c) = clock.as_mut() {
            c.plan();
        }
        Some(cmds)
    }
}

/// Split `kernels` (node order) round-robin into `k` shards and
/// distribute the pending packets by destination.
fn make_shards(
    kernels: Vec<Kernel>,
    pending: Vec<(VirtualTime, u64, Packet<KMsg>)>,
    k: usize,
    record_timeline: bool,
) -> Vec<Shard> {
    let nodes = kernels.len();
    let mut shards: Vec<Shard> = (0..k)
        .map(|id| Shard {
            id,
            stride: k,
            kernels: Vec::with_capacity(nodes.div_ceil(k)),
            queue: EventQueue::with_capacity((nodes * 64 / k).max(64)),
            stage: StageNet::default(),
            spans: Vec::new(),
            record_timeline,
        })
        .collect();
    for (n, kernel) in kernels.into_iter().enumerate() {
        shards[n % k].kernels.push(kernel);
    }
    for (t, seq, pkt) in pending {
        shards[(pkt.dst as usize) % k].queue.push_at(t, seq, pkt);
    }
    shards
}

/// Reassemble machine state from the finished shards.
fn assemble(mut shards: Vec<Shard>, link: LinkState, events: u64) -> EngineOut {
    let k = shards.len();
    let nodes: usize = shards.iter().map(|s| s.kernels.len()).sum();
    let mut slots: Vec<Option<Kernel>> = (0..nodes).map(|_| None).collect();
    let mut pending = Vec::new();
    let mut keyed_spans: Vec<KeyedSpan> = Vec::new();
    for shard in &mut shards {
        for (i, kernel) in shard.kernels.drain(..).enumerate() {
            slots[shard.id + i * k] = Some(kernel);
        }
        while let Some(e) = shard.queue.pop_seq() {
            pending.push(e);
        }
        debug_assert!(shard.stage.buf.is_empty(), "staged sends left unreplayed");
        keyed_spans.append(&mut shard.spans);
    }
    keyed_spans.sort_by_key(|(key, ..)| *key);
    EngineOut {
        kernels: slots.into_iter().map(|s| s.expect("node missing")).collect(),
        link,
        pending,
        events,
        spans: keyed_spans
            .into_iter()
            .map(|(_, n, a, b, kind)| (n, a, b, kind))
            .collect(),
        error: None,
        prof: None,
    }
}

/// Engine entry point: run the windowed simulation over `k` shards.
///
/// `pending` and `events0` carry state from a previous run on the same
/// machine (e.g. [`crate::machine::SimMachine::collect_garbage`] runs
/// the machine twice).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    kernels: Vec<Kernel>,
    link: LinkState,
    pending: Vec<(VirtualTime, u64, Packet<KMsg>)>,
    events0: u64,
    k: usize,
    lb: bool,
    max_events: u64,
    record_timeline: bool,
    record_prof: bool,
) -> EngineOut {
    let window_ns = lookahead_ns(&link.model());
    assert!(window_ns > 0, "windowed executor needs nonzero lookahead");
    let nodes = kernels.len();
    let k = k.clamp(1, nodes.max(1));
    let lb = lb && nodes > 1;
    // Shared monotonic anchor: every shard ledger and the Chrome host
    // timeline stamp times relative to this instant, so the per-thread
    // tracks line up.
    let anchor = Instant::now();
    let mut coord_clock = record_prof.then(|| CoordClock::new(anchor));
    let mut coord = Coordinator {
        link,
        window_ns,
        shards: k,
        lb,
        max_events,
        events: events0,
        next_window: 0,
        inbox: (0..k).map(|_| Vec::new()).collect(),
        error: None,
    };
    let mut shards = make_shards(kernels, pending, k, record_timeline);
    if k == 1 {
        // Inline driver — this is the reference the threaded path must
        // match bit for bit. Everything runs on one thread, so from the
        // shard ledger's perspective the coordinator's barrier work is
        // the window-barrier stall, exactly like a worker blocked on
        // its command channel.
        let mut clock = record_prof.then(|| ShardClock::new(0, anchor));
        let mut summaries = vec![shards[0].summarize()];
        if let Some(c) = clock.as_mut() {
            c.queue(0); // initial frontier probe
        }
        loop {
            let Some(mut cmds) = coord.barrier(&mut summaries, &mut coord_clock) else {
                break;
            };
            if let Some(c) = clock.as_mut() {
                c.stall();
            }
            summaries = vec![shards[0].run_window(cmds.pop().expect("one shard"), &mut clock)];
        }
        let events = coord.events;
        let mut out = assemble(shards, coord.link, events);
        out.pending.extend(drain_inbox(&mut coord.inbox));
        out.error = coord.error;
        out.prof = clock.map(|c| ProfReport {
            mode: "windowed",
            k: 1,
            host_cores: host_cores(),
            wall_ns: anchor.elapsed().as_nanos() as u64,
            coordinator: coord_clock.map(CoordClock::finish),
            shards: vec![c.finish()],
        });
        return out;
    }

    let (shards, shard_profs): (Vec<Shard>, Vec<Option<ShardProf>>) =
        std::thread::scope(|scope| {
            let mut cmd_txs = Vec::with_capacity(k);
            let (sum_tx, sum_rx) = mpsc::channel::<(usize, Summary)>();
            let mut handles = Vec::with_capacity(k);
            for (id, mut shard) in shards.into_iter().enumerate() {
                let (cmd_tx, cmd_rx) = mpsc::channel::<WindowCmd>();
                cmd_txs.push(cmd_tx);
                let sum_tx = sum_tx.clone();
                handles.push(scope.spawn(move || {
                    let mut clock = record_prof.then(|| ShardClock::new(id, anchor));
                    // Initial probe so the coordinator can plan window 0.
                    let s0 = shard.summarize();
                    if let Some(c) = clock.as_mut() {
                        c.queue(0);
                    }
                    if sum_tx.send((id, s0)).is_err() {
                        return (shard, clock.map(ShardClock::finish));
                    }
                    while let Ok(cmd) = cmd_rx.recv() {
                        if let Some(c) = clock.as_mut() {
                            c.stall();
                        }
                        let s = shard.run_window(cmd, &mut clock);
                        if sum_tx.send((id, s)).is_err() {
                            break;
                        }
                    }
                    (shard, clock.map(ShardClock::finish))
                }));
            }
            drop(sum_tx);
            let collect = |rx: &mpsc::Receiver<(usize, Summary)>| -> Vec<Summary> {
                let mut slots: Vec<Option<Summary>> = (0..k).map(|_| None).collect();
                for _ in 0..k {
                    let (id, s) = rx.recv().expect("shard died mid-window");
                    slots[id] = Some(s);
                }
                slots.into_iter().map(|s| s.expect("summary")).collect()
            };
            let mut summaries = collect(&sum_rx);
            while let Some(cmds) = coord.barrier(&mut summaries, &mut coord_clock) {
                for (tx, cmd) in cmd_txs.iter().zip(cmds) {
                    tx.send(cmd).expect("shard hung up");
                }
                summaries = collect(&sum_rx);
            }
            // Closing the command channels tells the workers to exit with
            // their shard state.
            drop(cmd_txs);
            handles
                .into_iter()
                .map(|h| h.join().expect("shard panicked"))
                .unzip()
        });
    let events = coord.events;
    let mut out = assemble(shards, coord.link, events);
    out.pending.extend(drain_inbox(&mut coord.inbox));
    out.error = coord.error;
    if record_prof {
        out.prof = Some(ProfReport {
            mode: "windowed",
            k,
            host_cores: host_cores(),
            wall_ns: anchor.elapsed().as_nanos() as u64,
            coordinator: coord_clock.map(CoordClock::finish),
            shards: shard_profs.into_iter().flatten().collect(),
        });
    }
    out
}

/// Host cores visible to this process (affinity/cgroup aware).
pub(crate) fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Arrivals replayed at the final barrier but never delivered (the run
/// stopped): they go back into the machine's network queue.
fn drain_inbox(
    inbox: &mut [Vec<(VirtualTime, u64, Packet<KMsg>)>],
) -> Vec<(VirtualTime, u64, Packet<KMsg>)> {
    let mut out = Vec::new();
    for ib in inbox {
        out.append(ib);
    }
    out
}
