//! Barrier-elision conservative parallel executor for the simulated
//! machine.
//!
//! The sequential reference in [`crate::machine`] advances the globally
//! earliest action one at a time. This module runs the same simulation
//! in bounded **windows**: the link model guarantees every injection at
//! time `now` arrives no earlier than `now + inject_overhead + latency`
//! (the *lookahead* `L`), so if the machine's nodes are sharded across
//! host threads, each shard can execute every action with `t < end` of a
//! window `[m·L, (m+1)·L)` without ever seeing a packet another shard
//! produced inside the same window — those arrive at `≥ end` by
//! construction. Cross-shard sends are *staged* during the window and
//! replayed against the shared [`LinkState`] in the canonical order the
//! sequential executor would have admitted them. For a fixed seed the
//! resulting [`crate::machine::SimReport`] is bit-identical for every
//! shard count, and `K = 1` is the reference.
//!
//! # Fused windows and watermark channels
//!
//! The first generation of this executor (PR 2) ran a full coordinator
//! round-trip per window: every shard sent a summary over an mpsc
//! channel to a coordinator thread, which replayed staged sends and
//! mailed back the next `WindowCmd` — two channel hops and a thread
//! wake-up per shard per window, even when nothing was staged. The
//! host-time profiler (PR 6) measured the result: 91–99 % of shard wall
//! time was window-barrier stall on an oversubscribed host.
//!
//! This generation elides that coordination wherever the lookahead
//! proves it cannot matter:
//!
//! * **Watermark channels.** Each shard owns a published *slot* (a
//!   cache-line of atomics, double-buffered by boundary parity): its
//!   **watermark** — a lower bound on the earliest virtual time at which
//!   any of its *parked* (staged but not yet replayed) operations can
//!   arrive (`u64::MAX` when nothing is parked; a send staged at `now`
//!   cannot arrive before `now + L`, a chaos timer fires exactly at
//!   `fire_at`) — plus its local frontier (earliest queue head / ready
//!   kernel clock), its earliest idle-node poll candidate, and
//!   ready/stopped bits.
//! * **Fused multi-window scheduling.** At each window boundary the
//!   shards meet at a lightweight spin-then-block barrier, read every
//!   slot, and evaluate one pure decision function. When the global
//!   watermark `W = min over shards` satisfies `W ≥ end` of the next
//!   planned window, *no* parked injection can land inside that window —
//!   an arrival exactly at `end` belongs to the following window, since
//!   windows are half-open `[start, end)` — so every shard proceeds
//!   directly into it. Runs of such windows execute back to back with a
//!   single barrier wait between them and **zero** coordinator
//!   involvement: no replay, no planning message, no channel hop.
//! * **Elected coordination.** When the watermark does bite (or a
//!   kernel stopped, or the event valve is armed), the shards fall back
//!   to a *coordinated* boundary: each deposits its staged buffer into a
//!   shared pool, shard 0 — on its own thread, there is no separate
//!   coordinator thread any more — sorts the pool by [`ActionKey`],
//!   replays it against the shared [`LinkState`] (global sequence
//!   numbers, chaos draws, resource arithmetic), routes admitted packets
//!   into per-shard inbox buffers, plans the next window, and the
//!   barrier releases everyone to merge their own inboxes. Receivers
//!   merge injections themselves; the canonical `(VirtualTime, seq)`
//!   event-queue order makes the merge order irrelevant.
//! * **Buffer reuse.** The staged buffers, per-shard inboxes, arrival
//!   scratch, poll lists and idle-poll candidate lists are all recycled
//!   across windows — the steady state allocates nothing per window.
//!
//! # Why determinism survives
//!
//! 1. Every executed action has a globally unique [`ActionKey`] (time,
//!    rank, tie-breaker) except back-to-back zero-cost steps of one
//!    node, which live on one shard, are deposited contiguously, and
//!    are kept adjacent by a stable sort — so sorting the staged pool
//!    reconstructs the exact sequential admission order no matter how
//!    many fused windows the operations were parked across, and no
//!    matter in which order shards deposited their buffers (cross-shard
//!    keys never tie: step/poll ties are node ids, delivery ties are
//!    globally unique sequence numbers).
//! 2. Parking staged operations across fused windows never reorders
//!    admission: coordinated boundaries drain the *entire* pool, so
//!    replay batches are ordered by window, and [`LinkState::admit`]
//!    outcomes depend only on the total admission order — which is the
//!    same canonical order whether the pool is drained every window or
//!    once per fused batch.
//! 3. The fused/coordinate decision and the window plan are pure
//!    functions of barrier-aggregated deterministic simulation state
//!    (the published slots), so every shard count takes the same
//!    decisions and runs the same window sequence. Fusing never changes
//!    that sequence either: a window is only fused when every parked
//!    arrival lands at or beyond its end, so the parked arrivals could
//!    not have lowered the plan's `t_next` anyway.
//! 4. All mutable per-node state (kernel, RNG, recorder) stays on its
//!    owning shard; the only shared state — the link resource model —
//!    is touched exclusively by the elected replayer at coordinated
//!    boundaries.

use crate::error::MachineError;
use crate::kernel::{Kernel, NetOut};
use crate::prof::{CoordClock, ProfReport, ShardClock, ShardProf};
use crate::timeline::SpanKind;
use crate::wire::KMsg;
use hal_am::{AmEnvelope, Fate, LinkModel, LinkState, NodeId, Packet};
use hal_des::{EventQueue, VirtualTime};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Lookahead of a link model in nanoseconds: no injection at `now` can
/// arrive before `now + inject_overhead + latency` (transmission time
/// and resource contention only push arrivals later). Zero means the
/// windowed executor cannot run and the caller must fall back to the
/// sequential instant-network loop.
pub(crate) fn lookahead_ns(link: &LinkModel) -> u64 {
    (link.inject_overhead + link.latency).as_nanos()
}

/// Canonical order of simulation actions — the windowed equivalent of
/// the sequential executor's `(time, rank, index)` tie-break: packet
/// deliveries first (tied on global admission sequence), then dispatcher
/// steps by node id, then load-balance polls by node id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) struct ActionKey {
    t: VirtualTime,
    rank: u8,
    tie: u64,
}

const RANK_NET: u8 = 0;
const RANK_STEP: u8 = 1;
const RANK_POLL: u8 = 2;

/// Published-slot sentinel: "nothing pending" / "nothing parked".
const NONE_NS: u64 = u64::MAX;

/// One network operation a kernel performed inside a window, parked
/// until a coordinated boundary replays it against the shared
/// [`LinkState`].
pub(crate) struct Staged {
    key: ActionKey,
    op: StagedOp,
}

/// What was staged: an ordinary injection (admitted — with fault fate —
/// at replay) or a chaos timer (which takes a tie-break sequence number
/// from the shared counter but no resources or faults).
enum StagedOp {
    Send {
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        env: AmEnvelope<KMsg>,
        wire: usize,
    },
    Timer {
        fire_at: VirtualTime,
        node: NodeId,
        env: AmEnvelope<KMsg>,
    },
}

/// The [`NetOut`] a shard hands its kernels: sends are recorded, not
/// admitted. Kernels never observe network resource state, so deferring
/// admission to a coordinated boundary is invisible to them.
///
/// The buffer persists across fused windows (operations *park* here
/// until the next coordinated boundary); `wm`/`scanned` incrementally
/// maintain the shard's watermark — the earliest virtual time at which
/// any parked operation could arrive — so each boundary only scans the
/// entries staged since the last one.
#[derive(Default)]
struct StageNet {
    cur: Option<ActionKey>,
    buf: Vec<Staged>,
    /// Earliest possible arrival over everything in `buf`
    /// ([`NONE_NS`] when empty).
    wm: u64,
    /// Entries of `buf` already folded into `wm`.
    scanned: usize,
}

impl StageNet {
    fn new() -> Self {
        StageNet {
            wm: NONE_NS,
            ..StageNet::default()
        }
    }

    /// Forget the (now replayed) buffer's watermark. The buffer itself
    /// is drained by the replayer via `Vec::append`, which keeps its
    /// capacity here for reuse.
    fn reset(&mut self) {
        debug_assert!(self.buf.is_empty(), "reset with staged ops parked");
        self.wm = NONE_NS;
        self.scanned = 0;
    }
}

impl NetOut for StageNet {
    fn inject(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        env: AmEnvelope<KMsg>,
        wire_bytes: usize,
    ) {
        self.buf.push(Staged {
            key: self.cur.expect("staged inject outside an action"),
            op: StagedOp::Send {
                now,
                src,
                dst,
                env,
                wire: wire_bytes,
            },
        });
    }

    fn schedule(&mut self, fire_at: VirtualTime, node: NodeId, env: AmEnvelope<KMsg>) {
        self.buf.push(Staged {
            key: self.cur.expect("staged timer outside an action"),
            op: StagedOp::Timer { fire_at, node, env },
        });
    }
}

/// A timeline span tagged with the key of the action that produced it,
/// so shard-local spans merge back into canonical order.
type KeyedSpan = (ActionKey, NodeId, VirtualTime, VirtualTime, SpanKind);

/// What a shard's boundary probe found (the data it publishes to its
/// watermark slot).
struct Probe {
    /// Earliest possible arrival of this shard's parked staged ops
    /// ([`NONE_NS`] when none are parked).
    watermark: u64,
    /// Earliest pending local action: queue head or ready kernel clock.
    frontier: u64,
    /// Earliest idle-node poll candidate (`max(next_poll_at, clock)`).
    poll_min: u64,
    /// Some kernel has ready work.
    has_ready: bool,
    /// Some kernel stopped the machine.
    stopped: bool,
    /// Operations staged since the previous boundary (profiling).
    staged_new: u64,
}

/// One shard: the kernels of every node `n` with `n % stride == id`,
/// plus their slice of the pending-packet queue and its reusable
/// per-window scratch buffers.
pub(crate) struct Shard {
    id: usize,
    stride: usize,
    kernels: Vec<Kernel>,
    queue: EventQueue<Packet<KMsg>>,
    stage: StageNet,
    spans: Vec<KeyedSpan>,
    record_timeline: bool,
    /// Arrivals taken from this shard's inbox at the last coordinated
    /// boundary, merged into `queue` at window start. Swapped (not
    /// reallocated) with the shared inbox so both sides keep capacity.
    arrivals: Vec<(VirtualTime, u64, Packet<KMsg>)>,
    /// Poll fire times planned for the current window, sorted by
    /// `(time, node)`. Reused across windows.
    polls: Vec<(VirtualTime, NodeId)>,
    /// `(node, max(next_poll_at, clock))` for every idle node that could
    /// send a load-balance poll, from the latest boundary probe. Reused.
    idle_polls: Vec<(NodeId, VirtualTime)>,
    /// Events executed by the last window (drained into the shared
    /// counter at the next boundary).
    win_events: u64,
}

impl Shard {
    fn node_of(&self, local: usize) -> NodeId {
        (self.id + local * self.stride) as NodeId
    }

    /// Probe the shard's frontier without executing anything: refresh
    /// the idle-poll candidates and the parked-op watermark, and report
    /// what the boundary decision needs. `window_ns` is the lookahead
    /// `L` (a send staged at `now` cannot arrive before `now + L`).
    fn probe(&mut self, window_ns: u64) -> Probe {
        let mut ready_min: u64 = NONE_NS;
        let mut poll_min: u64 = NONE_NS;
        self.idle_polls.clear();
        for (i, k) in self.kernels.iter().enumerate() {
            if k.has_work() {
                ready_min = ready_min.min(k.clock.as_nanos());
            } else if let Some(t0) = k.balancer.poll_ready_at() {
                let cand = t0.max(k.clock);
                poll_min = poll_min.min(cand.as_nanos());
                self.idle_polls.push((self.node_of(i), cand));
            }
        }
        let mut frontier = ready_min;
        if let Some((t, _)) = self.queue.peek() {
            frontier = frontier.min(t.as_nanos());
        }
        let staged_new = (self.stage.buf.len() - self.stage.scanned) as u64;
        for s in &self.stage.buf[self.stage.scanned..] {
            let bound = match &s.op {
                StagedOp::Send { now, .. } => now.as_nanos().saturating_add(window_ns),
                StagedOp::Timer { fire_at, .. } => fire_at.as_nanos(),
            };
            self.stage.wm = self.stage.wm.min(bound);
        }
        self.stage.scanned = self.stage.buf.len();
        Probe {
            watermark: self.stage.wm,
            frontier,
            poll_min,
            has_ready: ready_min != NONE_NS,
            stopped: self.kernels.iter().any(|k| k.stopped),
            staged_new,
        }
    }

    /// Plan this shard's load-balance polls for window `[start, end)`
    /// from the latest boundary probe's idle candidates. `active` is the
    /// global gate (`lb && ready work exists somewhere`), evaluated the
    /// same way on every shard.
    fn plan_polls(&mut self, start: VirtualTime, end: VirtualTime, active: bool) {
        self.polls.clear();
        if !active {
            return;
        }
        for i in 0..self.idle_polls.len() {
            let (node, cand) = self.idle_polls[i];
            let tf = cand.max(start);
            if tf < end {
                self.polls.push((tf, node));
            }
        }
        self.polls.sort_unstable();
    }

    /// Execute every action of this shard with `t < end`, staging all
    /// sends. Arrivals merged at the last coordinated boundary are
    /// drained into the local queue first. When profiling, the window's
    /// host time is attributed phase by phase into `clock`.
    fn run_window(&mut self, end: VirtualTime, budget: u64, clock: &mut Option<ShardClock>) {
        let arrivals = self.arrivals.len() as u64;
        for (t, seq, pkt) in self.arrivals.drain(..) {
            self.queue.push_at(t, seq, pkt);
        }
        if let Some(c) = clock.as_mut() {
            c.inject(arrivals, self.queue.len() as u64);
        }
        let mut events = 0u64;
        let mut poll_idx = 0usize;
        loop {
            if events >= budget {
                // Out of global event budget: abort the window quietly —
                // the replayer detects the exhausted valve at the next
                // coordinated boundary and records the typed MaxEvents
                // error there (a shard thread must not fail with its own
                // message).
                break;
            }
            // Globally minimal candidate with t < end.
            let mut best: Option<(ActionKey, Cand)> = None;
            let mut consider = |key: ActionKey, c: Cand| {
                if best.as_ref().is_none_or(|(b, _)| key < *b) {
                    best = Some((key, c));
                }
            };
            if let Some((t, seq)) = self.queue.peek() {
                if t < end {
                    consider(
                        ActionKey {
                            t,
                            rank: RANK_NET,
                            tie: seq,
                        },
                        Cand::Net,
                    );
                }
            }
            for (i, k) in self.kernels.iter().enumerate() {
                if k.has_work() && k.clock < end {
                    consider(
                        ActionKey {
                            t: k.clock,
                            rank: RANK_STEP,
                            tie: self.node_of(i) as u64,
                        },
                        Cand::Step(i),
                    );
                }
            }
            if let Some(&(tf, node)) = self.polls.get(poll_idx) {
                consider(
                    ActionKey {
                        t: tf,
                        rank: RANK_POLL,
                        tie: node as u64,
                    },
                    Cand::Poll(node, tf),
                );
            }
            let Some((key, cand)) = best.take() else {
                break; // frontier reached the window end
            };
            events += 1;
            match cand {
                Cand::Net => {
                    let (t, _, pkt) = self.queue.pop_seq().expect("candidate said Net");
                    self.exec_net(key, t, pkt);
                    // Batch-drain every packet arriving at the same
                    // instant: deliveries (rank 0) win all ties at `t`,
                    // and no in-window send can arrive before `end`, so
                    // the scan above cannot change the verdict.
                    while self.queue.peek_time() == Some(t) {
                        if events >= budget {
                            break;
                        }
                        let (_, seq, pkt) = self.queue.pop_seq().expect("peeked");
                        events += 1;
                        self.exec_net(
                            ActionKey {
                                t,
                                rank: RANK_NET,
                                tie: seq,
                            },
                            t,
                            pkt,
                        );
                    }
                }
                Cand::Step(i) => {
                    self.stage.cur = Some(key);
                    let k = &mut self.kernels[i];
                    let before = k.clock;
                    k.step(&mut self.stage);
                    if self.record_timeline {
                        let after = self.kernels[i].clock;
                        self.spans
                            .push((key, self.node_of(i), before, after, SpanKind::Compute));
                    }
                }
                Cand::Poll(node, tf) => {
                    poll_idx += 1;
                    let i = (node as usize) / self.stride;
                    let k = &mut self.kernels[i];
                    // The poll was planned at the previous boundary; the
                    // node's state may have moved since (a delivered
                    // packet gave it work, a steal reply rescheduled the
                    // backoff). Fire only if the poll is still live.
                    if k.has_work() {
                        continue;
                    }
                    let Some(t0) = k.balancer.poll_ready_at() else {
                        continue;
                    };
                    if t0 > tf {
                        continue;
                    }
                    k.clock = k.clock.max(tf);
                    self.stage.cur = Some(key);
                    k.send_steal_poll(&mut self.stage);
                }
            }
        }
        self.win_events = events;
        if let Some(c) = clock.as_mut() {
            c.execute(events);
        }
    }

    fn exec_net(&mut self, key: ActionKey, t: VirtualTime, pkt: Packet<KMsg>) {
        let node = pkt.dst;
        let i = (node as usize) / self.stride;
        debug_assert_eq!((node as usize) % self.stride, self.id);
        self.stage.cur = Some(key);
        let k = &mut self.kernels[i];
        // Interrupt semantics (§3), identical to the sequential loop;
        // stale chaos timers are retired for free inside `deliver`.
        if let Some((start, end)) = k.deliver(&mut self.stage, t, pkt) {
            if self.record_timeline {
                self.spans.push((key, node, start, end, SpanKind::Handler));
            }
        }
    }
}

enum Cand {
    Net,
    Step(usize),
    Poll(NodeId, VirtualTime),
}

/// One shard's published watermark slot: a cache line of atomics,
/// written by its owner before each barrier and read by everyone after.
/// Slots are double-buffered by boundary parity so a shard racing ahead
/// to boundary `b + 1` never clobbers values a slower shard is still
/// reading for boundary `b` (the barrier bounds the skew to one
/// boundary).
#[repr(align(64))]
struct Slot {
    watermark: AtomicU64,
    frontier: AtomicU64,
    poll_min: AtomicU64,
    flags: AtomicU8,
}

const FLAG_READY: u8 = 1;
const FLAG_STOPPED: u8 = 2;

impl Slot {
    fn new() -> Self {
        Slot {
            watermark: AtomicU64::new(NONE_NS),
            frontier: AtomicU64::new(NONE_NS),
            poll_min: AtomicU64::new(NONE_NS),
            flags: AtomicU8::new(0),
        }
    }
}

/// Reusable spin-then-block barrier for the shard threads. Shards on a
/// host with enough cores spin briefly before parking on the condvar;
/// oversubscribed runs go straight to blocking. Poisoned when a shard
/// thread panics, so the survivors fail fast instead of deadlocking.
struct SpinBarrier {
    n: usize,
    spin: bool,
    arrived: AtomicUsize,
    generation: AtomicU64,
    poisoned: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

const SPIN_ROUNDS: u32 = 4096;

impl SpinBarrier {
    fn new(n: usize, spin: bool) -> Self {
        SpinBarrier {
            n,
            spin,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn check(&self) {
        assert!(
            !self.poisoned.load(Ordering::Acquire),
            "a shard thread panicked mid-window"
        );
    }

    /// Mark the barrier dead and wake every parked waiter (called from a
    /// panicking shard's drop guard).
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let _guard = self.lock.lock();
        self.cv.notify_all();
    }

    fn wait(&self) {
        if self.n == 1 {
            return;
        }
        self.check();
        let g = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver releases the generation. The count is reset
            // *before* the generation bump: no thread can re-enter for
            // the next generation until the bump is visible.
            self.arrived.store(0, Ordering::Release);
            {
                let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
                self.generation.store(g.wrapping_add(1), Ordering::Release);
            }
            self.cv.notify_all();
            return;
        }
        if self.spin {
            for _ in 0..SPIN_ROUNDS {
                if self.generation.load(Ordering::Acquire) != g {
                    return;
                }
                std::hint::spin_loop();
            }
        }
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.generation.load(Ordering::Acquire) == g {
            self.check();
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Sets the poison flag if the owning shard thread unwinds, so peers
/// blocked at the barrier fail fast instead of hanging.
struct PanicGuard<'a>(&'a SpinBarrier);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// The plan the elected replayer publishes at a coordinated boundary.
#[derive(Clone, Copy)]
enum Plan {
    /// End the run (drained, a kernel stopped, or the event valve blew).
    Exit,
    /// Run window `index` with the given remaining event budget.
    Window {
        index: u64,
        budget: u64,
        work_exists: bool,
    },
}

/// The globally shared state guarded by one mutex: the link resource
/// model, the staged-op pool, the per-shard inboxes and the current
/// plan. Touched only at coordinated boundaries, where the barrier
/// already serializes access.
struct CoordShared {
    link: LinkState,
    /// Deposited staged operations, sorted and drained by the replayer.
    /// Reused across boundaries.
    staged: Vec<Staged>,
    /// Admitted packets routed per destination shard, swapped out by
    /// each shard after the plan barrier. Reused across boundaries.
    inboxes: Vec<Vec<(VirtualTime, u64, Packet<KMsg>)>>,
    plan: Plan,
    /// Set when the event valve blows; surfaced as
    /// [`MachineError::MaxEvents`].
    error: Option<MachineError>,
}

/// What a boundary decision sees: the aggregated published slots.
struct View {
    watermark: u64,
    t_next: u64,
    work_exists: bool,
    stopped: bool,
}

/// What the shards agreed to do at a boundary.
enum Boundary {
    /// Run is over (fully drained, nothing parked anywhere).
    Exit,
    /// Run `window` back to back — no replay, no planning, no
    /// coordinator: nothing parked anywhere can arrive before its end.
    Fused { window: u64 },
    /// Fall back to a coordinated boundary: deposit staged ops, let
    /// shard 0 replay and plan.
    Coordinate,
}

/// Everything the shard threads share.
struct SharedSync {
    k: usize,
    window_ns: u64,
    lb: bool,
    max_events: u64,
    /// Total events executed (seeded with the carry-in count).
    events: AtomicU64,
    /// Double-buffered watermark slots: `slots[boundary & 1][shard]`.
    slots: [Vec<Slot>; 2],
    barrier: SpinBarrier,
    coord: Mutex<CoordShared>,
}

impl SharedSync {
    fn new(k: usize, window_ns: u64, lb: bool, max_events: u64, events0: u64, link: LinkState) -> Self {
        let mk = |_| (0..k).map(|_| Slot::new()).collect::<Vec<_>>();
        SharedSync {
            k,
            window_ns,
            lb,
            max_events,
            events: AtomicU64::new(events0),
            slots: [mk(0), mk(1)],
            barrier: SpinBarrier::new(k, k <= host_cores()),
            coord: Mutex::new(CoordShared {
                link,
                staged: Vec::new(),
                inboxes: (0..k).map(|_| Vec::new()).collect(),
                plan: Plan::Exit,
                error: None,
            }),
        }
    }

    fn publish(&self, parity: usize, shard: usize, p: &Probe) {
        let s = &self.slots[parity][shard];
        s.watermark.store(p.watermark, Ordering::Release);
        s.frontier.store(p.frontier, Ordering::Release);
        s.poll_min.store(p.poll_min, Ordering::Release);
        let mut flags = 0u8;
        if p.has_ready {
            flags |= FLAG_READY;
        }
        if p.stopped {
            flags |= FLAG_STOPPED;
        }
        s.flags.store(flags, Ordering::Release);
    }

    /// Aggregate the published slots of boundary `parity`. Idle nodes
    /// may poll only while ready work exists somewhere — the same gate
    /// as the sequential executor, evaluated identically on every shard.
    fn gather(&self, parity: usize) -> View {
        let mut watermark = NONE_NS;
        let mut frontier = NONE_NS;
        let mut poll_min = NONE_NS;
        let mut work_exists = false;
        let mut stopped = false;
        for s in &self.slots[parity] {
            watermark = watermark.min(s.watermark.load(Ordering::Acquire));
            frontier = frontier.min(s.frontier.load(Ordering::Acquire));
            poll_min = poll_min.min(s.poll_min.load(Ordering::Acquire));
            let flags = s.flags.load(Ordering::Acquire);
            work_exists |= flags & FLAG_READY != 0;
            stopped |= flags & FLAG_STOPPED != 0;
        }
        let t_next = if self.lb && work_exists {
            frontier.min(poll_min)
        } else {
            frontier
        };
        View {
            watermark,
            t_next,
            work_exists,
            stopped,
        }
    }

    /// The boundary decision — a pure function of the published slots
    /// and the (identically replicated) window floor, so every shard
    /// computes the same answer without communicating.
    fn decide(&self, v: &View, next_window: u64) -> Boundary {
        if v.stopped {
            // A coordinated boundary replays parked ops before exiting,
            // so stop-mid-run leaves nothing staged.
            return Boundary::Coordinate;
        }
        if v.t_next == NONE_NS {
            return if v.watermark == NONE_NS {
                Boundary::Exit // fully drained
            } else {
                Boundary::Coordinate // only parked ops remain: replay reveals the frontier
            };
        }
        if self.max_events > 0 {
            // The event valve needs a global count check per window;
            // coordinated boundaries preserve the exact legacy
            // semantics.
            return Boundary::Coordinate;
        }
        let window = (v.t_next / self.window_ns).max(next_window);
        let end = (window + 1).saturating_mul(self.window_ns);
        // `>=` is deliberate: windows are half-open `[start, end)`, so a
        // parked arrival at exactly `end` belongs to the *next* window
        // and cannot be missed by fusing this one.
        if v.watermark >= end {
            Boundary::Fused { window }
        } else {
            Boundary::Coordinate
        }
    }

    /// The elected replayer's half of a coordinated boundary: replay the
    /// deposited pool in canonical order against the shared link state,
    /// route admitted packets to the destination shards' inboxes, and
    /// plan the next window (or the exit).
    fn replay_and_plan(
        &self,
        g: &mut CoordShared,
        parity: usize,
        next_window: u64,
        clock: &mut Option<CoordClock>,
    ) {
        if let Some(c) = clock.as_mut() {
            c.enter();
        }
        let CoordShared {
            link,
            staged,
            inboxes,
            plan,
            error,
        } = g;
        // Replay staged injections in the order the sequential executor
        // would have admitted them: actions sort by unique ActionKey;
        // equal keys (repeated zero-cost steps of one node) come from
        // one shard in one contiguous deposit, which the stable sort
        // preserves.
        staged.sort_by_key(|s| s.key);
        let replayed = staged.len() as u64;
        for st in staged.drain(..) {
            match st.op {
                StagedOp::Send {
                    now,
                    src,
                    dst,
                    env,
                    wire,
                } => {
                    // Mirror `SimNetwork::inject` exactly: the fault
                    // fate decided at admission governs what (if
                    // anything) reaches the destination's inbox.
                    let adm = link.admit(now, src, dst, wire);
                    let ib = &mut inboxes[(dst as usize) % self.k];
                    match adm.fate {
                        Fate::Dropped => {}
                        Fate::Deliver => {
                            ib.push((adm.arrival, adm.seq, Packet { src, dst, body: env }));
                        }
                        Fate::Duplicated { arrival, seq } => {
                            // A duplicate of an unclonable payload cannot
                            // be materialized; count it instead of
                            // dropping it silently (hal-check and the
                            // metrics artifact surface the counter).
                            match env.try_clone() {
                                Some(copy) => {
                                    ib.push((arrival, seq, Packet { src, dst, body: copy }));
                                }
                                None => link.note_dup_clone_failed(arrival, src, dst),
                            }
                            ib.push((adm.arrival, adm.seq, Packet { src, dst, body: env }));
                        }
                    }
                }
                StagedOp::Timer { fire_at, node, env } => {
                    // Mirror `SimNetwork::schedule`: same counter, no
                    // resources, no faults.
                    let seq = link.next_event_seq();
                    inboxes[(node as usize) % self.k].push((
                        fire_at,
                        seq,
                        Packet {
                            src: node,
                            dst: node,
                            body: env,
                        },
                    ));
                }
            }
        }
        if let Some(c) = clock.as_mut() {
            c.replay(replayed);
        }
        let finish = |plan: &mut Plan, p: Plan, clock: &mut Option<CoordClock>| {
            *plan = p;
            if let Some(c) = clock.as_mut() {
                c.plan();
            }
        };
        let view = self.gather(parity);
        if view.stopped {
            return finish(plan, Plan::Exit, clock);
        }
        let events = self.events.load(Ordering::Relaxed);
        if self.max_events > 0 && events >= self.max_events {
            *error = Some(MachineError::MaxEvents {
                limit: self.max_events,
            });
            return finish(plan, Plan::Exit, clock);
        }
        // Earliest pending action anywhere — published frontiers, gated
        // poll candidates, and the arrivals just replayed — decides the
        // next window.
        let mut t_next = view.t_next;
        for ib in inboxes {
            for &(t, _, _) in &*ib {
                t_next = t_next.min(t.as_nanos());
            }
        }
        if t_next == NONE_NS {
            // Nothing pending anywhere: the run has drained.
            return finish(plan, Plan::Exit, clock);
        }
        let index = (t_next / self.window_ns).max(next_window);
        let budget = if self.max_events > 0 {
            self.max_events - events
        } else {
            u64::MAX
        };
        finish(
            plan,
            Plan::Window {
                index,
                budget,
                work_exists: view.work_exists,
            },
            clock,
        );
    }
}

/// One shard thread's run loop, from the initial frontier probe to the
/// agreed exit. Shard 0 doubles as the elected replayer at coordinated
/// boundaries (and owns the coordinator ledger when profiling).
fn drive(
    shard: &mut Shard,
    sync: &SharedSync,
    record_prof: bool,
    anchor: Instant,
    coord_clock: &mut Option<CoordClock>,
) -> Option<ShardProf> {
    let _guard = PanicGuard(&sync.barrier);
    let me = shard.id;
    let mut clock = record_prof.then(|| ShardClock::new(me, anchor));
    let mut next_window: u64 = 0;
    let mut parity = 0usize;
    let mut first = true;
    loop {
        let probe = shard.probe(sync.window_ns);
        if let Some(c) = clock.as_mut() {
            c.queue(probe.staged_new);
            if !first {
                c.window();
            }
        }
        first = false;
        sync.publish(parity, me, &probe);
        let win_events = std::mem::take(&mut shard.win_events);
        if win_events > 0 {
            sync.events.fetch_add(win_events, Ordering::Relaxed);
        }
        sync.barrier.wait();
        let view = sync.gather(parity);
        let decision = sync.decide(&view, next_window);
        if let Some(c) = clock.as_mut() {
            c.sync();
        }
        let (index, budget, work_exists) = match decision {
            Boundary::Exit => break,
            Boundary::Fused { window } => {
                if let Some(c) = clock.as_mut() {
                    c.mark_fused();
                }
                (window, u64::MAX, view.work_exists)
            }
            Boundary::Coordinate => {
                {
                    let mut g = sync.coord.lock().expect("coordinator state poisoned");
                    g.staged.append(&mut shard.stage.buf);
                }
                shard.stage.reset();
                sync.barrier.wait();
                if me == 0 {
                    let mut g = sync.coord.lock().expect("coordinator state poisoned");
                    sync.replay_and_plan(&mut g, parity, next_window, coord_clock);
                }
                sync.barrier.wait();
                let plan = {
                    let mut g = sync.coord.lock().expect("coordinator state poisoned");
                    debug_assert!(shard.arrivals.is_empty(), "arrivals not drained");
                    std::mem::swap(&mut g.inboxes[me], &mut shard.arrivals);
                    g.plan
                };
                if let Some(c) = clock.as_mut() {
                    c.stall();
                }
                match plan {
                    Plan::Exit => {
                        // Arrivals replayed at the final boundary but
                        // never delivered (the run stopped) go back into
                        // the local queue; `assemble` returns them to
                        // the machine's pending set.
                        for (t, seq, pkt) in shard.arrivals.drain(..) {
                            shard.queue.push_at(t, seq, pkt);
                        }
                        break;
                    }
                    Plan::Window {
                        index,
                        budget,
                        work_exists,
                    } => (index, budget, work_exists),
                }
            }
        };
        next_window = index + 1;
        parity ^= 1;
        let start = VirtualTime::from_nanos(index * sync.window_ns);
        let end = VirtualTime::from_nanos((index + 1) * sync.window_ns);
        shard.plan_polls(start, end, sync.lb && work_exists);
        shard.run_window(end, budget, &mut clock);
    }
    clock.map(ShardClock::finish)
}

/// Everything the windowed run hands back to [`crate::machine::SimMachine`].
pub(crate) struct EngineOut {
    /// Kernels in node order.
    pub kernels: Vec<Kernel>,
    /// The link resource state (seq counter, FIFO/NI/eject state, stats).
    pub link: LinkState,
    /// Packets still in flight (stop mid-run leaves some).
    pub pending: Vec<(VirtualTime, u64, Packet<KMsg>)>,
    /// Total events dispatched, including the count carried in.
    pub events: u64,
    /// Timeline spans in canonical action order (empty unless recording).
    pub spans: Vec<(NodeId, VirtualTime, VirtualTime, SpanKind)>,
    /// Engine-level failure (the event valve), surfaced as a typed error
    /// instead of a cross-thread panic.
    pub error: Option<MachineError>,
    /// Host-time profile of the run, when profiling was requested.
    pub prof: Option<ProfReport>,
}

/// Split `kernels` (node order) round-robin into `k` shards and
/// distribute the pending packets by destination.
fn make_shards(
    kernels: Vec<Kernel>,
    pending: Vec<(VirtualTime, u64, Packet<KMsg>)>,
    k: usize,
    record_timeline: bool,
) -> Vec<Shard> {
    let nodes = kernels.len();
    let mut shards: Vec<Shard> = (0..k)
        .map(|id| Shard {
            id,
            stride: k,
            kernels: Vec::with_capacity(nodes.div_ceil(k)),
            queue: EventQueue::with_capacity((nodes * 64 / k).max(64)),
            stage: StageNet::new(),
            spans: Vec::new(),
            record_timeline,
            arrivals: Vec::new(),
            polls: Vec::new(),
            idle_polls: Vec::new(),
            win_events: 0,
        })
        .collect();
    for (n, kernel) in kernels.into_iter().enumerate() {
        shards[n % k].kernels.push(kernel);
    }
    for (t, seq, pkt) in pending {
        shards[(pkt.dst as usize) % k].queue.push_at(t, seq, pkt);
    }
    shards
}

/// Reassemble machine state from the finished shards.
fn assemble(mut shards: Vec<Shard>, link: LinkState, events: u64) -> EngineOut {
    let k = shards.len();
    let nodes: usize = shards.iter().map(|s| s.kernels.len()).sum();
    let mut slots: Vec<Option<Kernel>> = (0..nodes).map(|_| None).collect();
    let mut pending = Vec::new();
    let mut keyed_spans: Vec<KeyedSpan> = Vec::new();
    for shard in &mut shards {
        for (i, kernel) in shard.kernels.drain(..).enumerate() {
            slots[shard.id + i * k] = Some(kernel);
        }
        while let Some(e) = shard.queue.pop_seq() {
            pending.push(e);
        }
        debug_assert!(shard.stage.buf.is_empty(), "staged sends left unreplayed");
        keyed_spans.append(&mut shard.spans);
    }
    keyed_spans.sort_by_key(|(key, ..)| *key);
    EngineOut {
        kernels: slots.into_iter().map(|s| s.expect("node missing")).collect(),
        link,
        pending,
        events,
        spans: keyed_spans
            .into_iter()
            .map(|(_, n, a, b, kind)| (n, a, b, kind))
            .collect(),
        error: None,
        prof: None,
    }
}

/// Engine entry point: run the windowed simulation over `k` shards.
///
/// `pending` and `events0` carry state from a previous run on the same
/// machine (e.g. [`crate::machine::SimMachine::collect_garbage`] runs
/// the machine twice).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    kernels: Vec<Kernel>,
    link: LinkState,
    pending: Vec<(VirtualTime, u64, Packet<KMsg>)>,
    events0: u64,
    k: usize,
    lb: bool,
    max_events: u64,
    record_timeline: bool,
    record_prof: bool,
) -> EngineOut {
    let window_ns = lookahead_ns(&link.model());
    assert!(window_ns > 0, "windowed executor needs nonzero lookahead");
    let nodes = kernels.len();
    let k = k.clamp(1, nodes.max(1));
    let lb = lb && nodes > 1;
    // Shared monotonic anchor: every shard ledger and the Chrome host
    // timeline stamp times relative to this instant, so the per-thread
    // tracks line up.
    let anchor = Instant::now();
    let mut coord_clock = record_prof.then(|| CoordClock::new(anchor));
    let mut shards = make_shards(kernels, pending, k, record_timeline);
    let sync = SharedSync::new(k, window_ns, lb, max_events, events0, link);
    let shard_profs: Vec<Option<ShardProf>> = if k == 1 {
        // Everything inline on the calling thread: the barrier is a
        // no-op and coordinated boundaries are plain function calls —
        // this is the reference the threaded path must match bit for
        // bit.
        vec![drive(
            &mut shards[0],
            &sync,
            record_prof,
            anchor,
            &mut coord_clock,
        )]
    } else {
        std::thread::scope(|scope| {
            let sync_ref = &sync;
            let mut iter = shards.iter_mut();
            let shard0 = iter.next().expect("k >= 1");
            let handles: Vec<_> = iter
                .map(|shard| {
                    scope.spawn(move || {
                        let mut no_coord: Option<CoordClock> = None;
                        drive(shard, sync_ref, record_prof, anchor, &mut no_coord)
                    })
                })
                .collect();
            // Shard 0 runs on the calling thread — there is no separate
            // coordinator thread, so K shards occupy exactly K threads.
            let p0 = drive(shard0, sync_ref, record_prof, anchor, &mut coord_clock);
            let mut profs = vec![p0];
            for h in handles {
                profs.push(h.join().expect("shard panicked"));
            }
            profs
        })
    };
    let events = sync.events.load(Ordering::Relaxed);
    let coord = sync
        .coord
        .into_inner()
        .expect("coordinator state poisoned");
    let mut out = assemble(shards, coord.link, events);
    // Belt and braces: every exit path drains the inboxes through the
    // shards, so these are empty — but a leftover packet must never be
    // silently dropped.
    for mut ib in coord.inboxes {
        out.pending.append(&mut ib);
    }
    out.error = coord.error;
    if record_prof {
        out.prof = Some(ProfReport {
            mode: "windowed",
            k,
            host_cores: host_cores(),
            wall_ns: anchor.elapsed().as_nanos() as u64,
            coordinator: coord_clock.map(CoordClock::finish),
            shards: shard_profs.into_iter().flatten().collect(),
        });
    }
    out
}

/// Host cores visible to this process (affinity/cgroup aware).
pub(crate) fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
