//! Deterministic live-metrics registry: counters plus gauges sampled on
//! a virtual-time cadence.
//!
//! The flight recorder ([`crate::trace`]) answers "what happened to this
//! message"; the metrics registry answers "what did the node look like
//! while it happened" — pending-queue depth, name-table occupancy,
//! in-flight FIR chases, ready-queue length, per-link
//! retransmit/ack counts, forward-chain length distribution, and the
//! node's charged busy time (its shard-utilization numerator).
//!
//! Everything here is driven by *virtual* time and per-node kernel
//! state, never host clocks, so a run's [`MetricsReport`] is
//! bit-identical at any `--parallel K`: the windowed executor replays
//! the same per-node sequence of `step`/`deliver` calls at the same
//! virtual clock values regardless of host threads. Sampling is
//! allocation-light: one bounded `Vec<Sample>` per node (overflow is
//! counted, not stored) and a handful of integer gauges bumped inline.

use hal_am::NodeId;
use hal_des::Histogram;
use std::collections::BTreeMap;

/// One gauge snapshot, taken when the node's virtual clock first
/// crosses a cadence boundary. `at_ns` is the *boundary* (so sample
/// timestamps line up across nodes), the gauge values are the node
/// state at the crossing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sample {
    /// The cadence boundary this sample represents, in virtual ns.
    pub at_ns: u64,
    /// Messages parked in pending queues (§6.1) on this node.
    pub pending_depth: u32,
    /// Name-table entries (key → descriptor bindings) on this node.
    pub name_entries: u32,
    /// FIR chases opened here and not yet answered (§4.3).
    pub inflight_firs: u32,
    /// Ready (scheduled) actors on this node.
    pub ready: u32,
    /// Messages parked for keys this node has never heard of (§5 alias
    /// traffic racing its creation).
    pub unknown_buffered: u32,
}

/// Per-link reliable-delivery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStat {
    /// Packets re-sent to this peer after a retransmit timeout.
    pub retransmits: u64,
    /// Cumulative acks sent to this peer.
    pub acks: u64,
}

/// Per-kernel metrics state. Boxed behind an `Option` in the kernel so
/// the disabled path costs one pointer test per hook, exactly like the
/// flight recorder.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    node: NodeId,
    cadence_ns: u64,
    next_sample_at: u64,
    samples: Vec<Sample>,
    samples_dropped: u64,
    /// Live gauge: messages currently parked in pending queues here
    /// (maintained at park/rescan/migration sites).
    pub(crate) pending_depth: u32,
    /// Charged virtual busy time (every `charge` accumulates here) —
    /// the numerator of this node's utilization.
    pub(crate) busy_ns: u64,
    /// Per-peer reliable-layer counters.
    pub(crate) links: BTreeMap<NodeId, LinkStat>,
    /// Distribution of forward-chain lengths (location epochs observed
    /// when FIR replies land, §4.3): how long the migration chains
    /// behind chases actually were.
    pub(crate) chain_epochs: Histogram,
}

impl Metrics {
    /// Default gauge-sampling cadence: one sample per 100 µs of virtual
    /// time.
    pub const DEFAULT_CADENCE_NS: u64 = 100_000;
    /// Samples kept per node; crossings beyond this are counted in
    /// `samples_dropped` instead of stored.
    pub const MAX_SAMPLES: usize = 4096;

    /// Fresh metrics state for `node`.
    pub fn new(node: NodeId) -> Self {
        Metrics {
            node,
            cadence_ns: Self::DEFAULT_CADENCE_NS,
            next_sample_at: 0,
            samples: Vec::new(),
            samples_dropped: 0,
            pending_depth: 0,
            busy_ns: 0,
            links: BTreeMap::new(),
            chain_epochs: Histogram::default(),
        }
    }

    /// Record one gauge snapshot per cadence boundary crossed by
    /// `now_ns`. `template` carries the current gauge values; each
    /// emitted sample gets the boundary timestamp.
    #[inline]
    pub(crate) fn advance(&mut self, now_ns: u64, template: Sample) {
        while self.next_sample_at <= now_ns {
            if self.samples.len() < Self::MAX_SAMPLES {
                self.samples.push(Sample {
                    at_ns: self.next_sample_at,
                    ..template
                });
            } else {
                self.samples_dropped += 1;
            }
            self.next_sample_at += self.cadence_ns;
        }
    }

    /// Bump the retransmit counter for `peer`.
    pub(crate) fn link_retransmit(&mut self, peer: NodeId) {
        self.links.entry(peer).or_default().retransmits += 1;
    }

    /// Bump the ack counter for `peer`.
    pub(crate) fn link_ack(&mut self, peer: NodeId) {
        self.links.entry(peer).or_default().acks += 1;
    }

    /// The samples recorded so far (oldest first).
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The node this state belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

/// One node's slice of a finished run's metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeMetrics {
    /// The node.
    pub node: NodeId,
    /// Gauge timeseries, oldest first.
    pub samples: Vec<Sample>,
    /// Cadence crossings beyond [`Metrics::MAX_SAMPLES`].
    pub samples_dropped: u64,
    /// Total charged virtual busy time on this node.
    pub busy_ns: u64,
    /// Named counters (e.g. `trace.dropped_events`, folded in by the
    /// machine at report time).
    pub counters: BTreeMap<String, u64>,
    /// Per-peer reliable-layer counters.
    pub links: BTreeMap<NodeId, LinkStat>,
    /// Forward-chain length distribution (log2 buckets).
    pub chain_epochs: Histogram,
}

/// The merged metrics of a whole run. Lives in
/// [`crate::SimReport::metrics`] when metrics were enabled; serialized
/// as `results/METRICS_<bin>.json` by the bench harness.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsReport {
    /// Sampling cadence shared by every node.
    pub cadence_ns: u64,
    /// Per-node metrics, ordered by node id.
    pub nodes: Vec<NodeMetrics>,
}

impl MetricsReport {
    /// Merge per-node metrics states into one report.
    pub fn merge<'a>(states: impl Iterator<Item = &'a Metrics>) -> Self {
        let mut nodes: Vec<NodeMetrics> = states
            .map(|m| NodeMetrics {
                node: m.node,
                samples: m.samples.clone(),
                samples_dropped: m.samples_dropped,
                busy_ns: m.busy_ns,
                counters: BTreeMap::new(),
                links: m.links.clone(),
                chain_epochs: m.chain_epochs.clone(),
            })
            .collect();
        nodes.sort_by_key(|n| n.node);
        MetricsReport {
            cadence_ns: Metrics::DEFAULT_CADENCE_NS,
            nodes,
        }
    }

    /// Per-node utilization: charged busy time over the run's makespan
    /// (the virtual analog of executor shard utilization — identical at
    /// any host parallelism by construction).
    pub fn utilization(&self, makespan_ns: u64) -> Vec<(NodeId, f64)> {
        self.nodes
            .iter()
            .map(|n| {
                let u = if makespan_ns == 0 {
                    0.0
                } else {
                    n.busy_ns as f64 / makespan_ns as f64
                };
                (n.node, u)
            })
            .collect()
    }

    /// Set a machine-wide named counter. Stored on the first node's
    /// slice (counters are summed across nodes on read).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        if let Some(n) = self.nodes.first_mut() {
            n.counters.insert(name.to_string(), value);
        }
    }

    /// Sum of a named counter across nodes.
    pub fn counter(&self, name: &str) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.counters.get(name).copied().unwrap_or(0))
            .sum()
    }

    /// One-screen human summary: the last gauge snapshot per node plus
    /// utilization — what the console's `top` command prints.
    pub fn summary(&self, makespan_ns: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "node   util%  pending  names  firs  ready  unknown  retx  acks\n",
        );
        for n in &self.nodes {
            let util = if makespan_ns == 0 {
                0.0
            } else {
                100.0 * n.busy_ns as f64 / makespan_ns as f64
            };
            let last = n.samples.last().copied().unwrap_or(Sample {
                at_ns: 0,
                pending_depth: 0,
                name_entries: 0,
                inflight_firs: 0,
                ready: 0,
                unknown_buffered: 0,
            });
            let (retx, acks) = n
                .links
                .values()
                .fold((0u64, 0u64), |(r, a), l| (r + l.retransmits, a + l.acks));
            let _ = writeln!(
                out,
                "{:<5} {:>6.1} {:>8} {:>6} {:>5} {:>6} {:>8} {:>5} {:>5}",
                n.node,
                util,
                last.pending_depth,
                last.name_entries,
                last.inflight_firs,
                last.ready,
                last.unknown_buffered,
                retx,
                acks
            );
        }
        if self.counter("trace.dropped_events") > 0 {
            let _ = writeln!(
                out,
                "trace ring dropped {} event(s) — histograms/spans are partial",
                self.counter("trace.dropped_events")
            );
        }
        if self.counter("metrics.dropped_samples") > 0 {
            let _ = writeln!(
                out,
                "metrics sampler dropped {} gauge sample(s) — timeseries are partial",
                self.counter("metrics.dropped_samples")
            );
        }
        let chains: Histogram = self.nodes.iter().fold(Histogram::default(), |mut h, n| {
            h.merge(&n.chain_epochs);
            h
        });
        if chains.count() > 0 {
            let _ = writeln!(
                out,
                "forward-chain lengths: {} chases, mean {:.2}, max {}",
                chains.count(),
                chains.mean(),
                chains.max()
            );
        }
        out
    }

    /// Serialize as JSON (dependency-free, like the bench records).
    /// Contains virtual-time facts only — byte-identical across
    /// `--parallel K`.
    pub fn to_json(&self, makespan_ns: u64) -> String {
        use std::fmt::Write as _;
        let mut nodes = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                nodes.push_str(",\n");
            }
            let mut samples = String::new();
            for (j, s) in n.samples.iter().enumerate() {
                if j > 0 {
                    samples.push_str(", ");
                }
                let _ = write!(
                    samples,
                    "[{}, {}, {}, {}, {}, {}]",
                    s.at_ns,
                    s.pending_depth,
                    s.name_entries,
                    s.inflight_firs,
                    s.ready,
                    s.unknown_buffered
                );
            }
            let mut counters = String::new();
            for (j, (k, v)) in n.counters.iter().enumerate() {
                if j > 0 {
                    counters.push_str(", ");
                }
                let _ = write!(counters, "\"{k}\": {v}");
            }
            let mut links = String::new();
            for (j, (peer, l)) in n.links.iter().enumerate() {
                if j > 0 {
                    links.push_str(", ");
                }
                let _ = write!(
                    links,
                    "{{\"peer\": {peer}, \"retransmits\": {}, \"acks\": {}}}",
                    l.retransmits, l.acks
                );
            }
            let util = if makespan_ns == 0 {
                0.0
            } else {
                n.busy_ns as f64 / makespan_ns as f64
            };
            let chain_buckets = histogram_json(&n.chain_epochs);
            let _ = write!(
                nodes,
                "    {{\n      \"node\": {},\n      \"busy_ns\": {},\n      \"utilization\": {:.6},\n      \
                 \"samples_dropped\": {},\n      \"counters\": {{{}}},\n      \"links\": [{}],\n      \
                 \"chain_epochs\": {},\n      \
                 \"samples\": [{}]\n    }}",
                n.node, n.busy_ns, util, n.samples_dropped, counters, links, chain_buckets, samples
            );
        }
        format!(
            "{{\n  \"cadence_ns\": {},\n  \"makespan_ns\": {},\n  \
             \"sample_fields\": [\"at_ns\", \"pending_depth\", \"name_entries\", \"inflight_firs\", \"ready\", \"unknown_buffered\"],\n  \
             \"nodes\": [\n{}\n  ]\n}}\n",
            self.cadence_ns, makespan_ns, nodes
        )
    }
}

/// Serialize a log2 histogram: moments plus the non-empty buckets as
/// `[bucket_index, count]` pairs.
pub(crate) fn histogram_json(h: &Histogram) -> String {
    use std::fmt::Write as _;
    let mut buckets = String::new();
    for (i, &c) in h.bucket_counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !buckets.is_empty() {
            buckets.push_str(", ");
        }
        let _ = write!(buckets, "[{i}, {c}]");
    }
    format!(
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}, \"log2_buckets\": [{}]}}",
        h.count(),
        h.sum(),
        h.max(),
        h.mean(),
        buckets
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> Sample {
        Sample {
            at_ns: 0,
            pending_depth: 2,
            name_entries: 5,
            inflight_firs: 1,
            ready: 3,
            unknown_buffered: 0,
        }
    }

    #[test]
    fn advance_emits_one_sample_per_boundary() {
        let mut m = Metrics::new(0);
        m.advance(0, template()); // boundary 0
        assert_eq!(m.samples().len(), 1);
        m.advance(Metrics::DEFAULT_CADENCE_NS * 3 + 5, template());
        assert_eq!(m.samples().len(), 4); // boundaries 0, 1c, 2c, 3c
        assert_eq!(m.samples()[3].at_ns, Metrics::DEFAULT_CADENCE_NS * 3);
        // No boundary crossed: no new sample.
        m.advance(Metrics::DEFAULT_CADENCE_NS * 3 + 10, template());
        assert_eq!(m.samples().len(), 4);
    }

    #[test]
    fn sample_overflow_is_counted_not_stored() {
        let mut m = Metrics::new(0);
        let far = Metrics::DEFAULT_CADENCE_NS * (Metrics::MAX_SAMPLES as u64 + 10);
        m.advance(far, template());
        assert_eq!(m.samples().len(), Metrics::MAX_SAMPLES);
        assert_eq!(m.samples_dropped, 11);
    }

    #[test]
    fn report_json_and_utilization() {
        let mut m = Metrics::new(1);
        m.busy_ns = 500;
        m.link_ack(0);
        m.link_retransmit(0);
        m.chain_epochs.observe(3);
        m.advance(0, template());
        let mut rep = MetricsReport::merge([&m].into_iter());
        rep.nodes[0]
            .counters
            .insert("trace.dropped_events".into(), 7);
        let u = rep.utilization(1000);
        assert_eq!(u, vec![(1, 0.5)]);
        let json = rep.to_json(1000);
        assert!(json.contains("\"busy_ns\": 500"), "{json}");
        assert!(json.contains("\"retransmits\": 1"), "{json}");
        assert!(json.contains("trace.dropped_events"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let top = rep.summary(1000);
        assert!(top.contains("50.0"), "{top}");
        assert!(top.contains("dropped 7"), "{top}");
    }
}
