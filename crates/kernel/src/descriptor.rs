//! Locality descriptors and their per-node arena (§4.1).
//!
//! "An actor's locality descriptor contains information about the actor's
//! current locality. Specifically, if the actor is local, it has a
//! reference to the actor. On the other hand, if the actor is remote, it
//! contains the remote node address as well as the memory address of the
//! actor's locality descriptor on the remote node."
//!
//! Descriptors are the indirection that buys location transparency: mail
//! addresses never change, descriptors do. The arena replaces raw heap
//! addresses with stable indices ([`DescriptorId`]) — same O(1) access,
//! memory-safe.

use crate::addr::{ActorId, DescriptorId};
use hal_am::NodeId;

/// What a node currently believes about an actor's location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Locality {
    /// The actor lives on this node: a direct reference.
    Local(ActorId),
    /// Best guess (§4.2): the actor is on `node`; if we have exchanged
    /// messages, `remote_index` caches the descriptor index on that node
    /// so delivery there skips the name table.
    Remote {
        /// Believed current (or next-hop) node.
        node: NodeId,
        /// Cached descriptor index on `node`, if known.
        remote_index: Option<DescriptorId>,
    },
}

/// One locality descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalityDescriptor {
    /// Current locality belief.
    pub locality: Locality,
    /// Epoch of this belief: the actor's migration hop count at the time
    /// the information was generated. Location gossip (NameInfo /
    /// FirFound) carries an epoch, and a node never lets older gossip
    /// overwrite newer knowledge — this makes forward chains strictly
    /// epoch-increasing, so FIR chases are acyclic and terminate even
    /// under arbitrarily reordered gossip.
    pub epoch: u32,
}

/// A per-node arena of locality descriptors with index reuse.
///
/// Indices are stable for the descriptor's lifetime; freed slots go on a
/// free list (the paper notes descriptor reclamation ties into their
/// distributed GC work — we expose `free` but the kernel only reclaims on
/// actor destruction).
#[derive(Default, Debug)]
pub struct DescriptorArena {
    slots: Vec<Option<LocalityDescriptor>>,
    free: Vec<u32>,
    live: usize,
}

impl DescriptorArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a descriptor, returning its stable id.
    pub fn alloc(&mut self, d: LocalityDescriptor) -> DescriptorId {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(d);
            DescriptorId(idx)
        } else {
            self.slots.push(Some(d));
            DescriptorId((self.slots.len() - 1) as u32)
        }
    }

    /// Read a descriptor.
    ///
    /// # Panics
    /// Panics on a dangling id — descriptors referenced by live mail
    /// addresses must exist; a miss is a kernel bug, not a user error.
    pub fn get(&self, id: DescriptorId) -> &LocalityDescriptor {
        self.slots[id.0 as usize]
            .as_ref()
            .expect("dangling DescriptorId")
    }

    /// Mutable access to a descriptor.
    pub fn get_mut(&mut self, id: DescriptorId) -> &mut LocalityDescriptor {
        self.slots[id.0 as usize]
            .as_mut()
            .expect("dangling DescriptorId")
    }

    /// Check liveness without panicking (diagnostics).
    pub fn contains(&self, id: DescriptorId) -> bool {
        self.slots
            .get(id.0 as usize)
            .map(|s| s.is_some())
            .unwrap_or(false)
    }

    /// Release a descriptor for reuse.
    pub fn free(&mut self, id: DescriptorId) {
        let slot = &mut self.slots[id.0 as usize];
        assert!(slot.is_some(), "double free of DescriptorId");
        *slot = None;
        self.free.push(id.0);
        self.live -= 1;
    }

    /// Number of live descriptors.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no descriptors are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local(a: u32) -> LocalityDescriptor {
        LocalityDescriptor {
            locality: Locality::Local(ActorId(a)),
            epoch: 0,
        }
    }

    #[test]
    fn alloc_get_roundtrip() {
        let mut arena = DescriptorArena::new();
        let id = arena.alloc(local(7));
        assert_eq!(arena.get(id).locality, Locality::Local(ActorId(7)));
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_reused() {
        let mut arena = DescriptorArena::new();
        let a = arena.alloc(local(1));
        let b = arena.alloc(local(2));
        assert_eq!(a, DescriptorId(0));
        assert_eq!(b, DescriptorId(1));
        arena.free(a);
        let c = arena.alloc(local(3));
        assert_eq!(c, DescriptorId(0), "freed slot is reused");
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn update_in_place() {
        let mut arena = DescriptorArena::new();
        let id = arena.alloc(local(1));
        arena.get_mut(id).locality = Locality::Remote {
            node: 4,
            remote_index: Some(DescriptorId(9)),
        };
        assert_eq!(
            arena.get(id).locality,
            Locality::Remote {
                node: 4,
                remote_index: Some(DescriptorId(9))
            }
        );
    }

    #[test]
    fn contains_reports_liveness() {
        let mut arena = DescriptorArena::new();
        let id = arena.alloc(local(1));
        assert!(arena.contains(id));
        arena.free(id);
        assert!(!arena.contains(id));
        assert!(!arena.contains(DescriptorId(99)));
    }

    #[test]
    #[should_panic(expected = "dangling")]
    fn dangling_get_panics() {
        let mut arena = DescriptorArena::new();
        let id = arena.alloc(local(1));
        arena.free(id);
        let _ = arena.get(id);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut arena = DescriptorArena::new();
        let id = arena.alloc(local(1));
        arena.free(id);
        arena.free(id);
    }
}
