//! The per-node name server: descriptor arena + local name table (§4.2).
//!
//! "Each kernel maintains its own (local) name table, and name
//! translation from a mail address to the location information is
//! performed by consulting the local name table only; i.e., it does not
//! require inter-processor communication to get a receiver's actual
//! location. Name tables are implemented as hash tables whose entries are
//! actor locality descriptors."
//!
//! Two properties matter:
//!
//! 1. **Birthplace fast path** — when `key.birthplace == me`, the mail
//!    address literally *is* the descriptor index; resolution is an array
//!    access, no hash lookup (the paper's "use of real addresses in mail
//!    addresses").
//! 2. **Best-guess consistency** — entries for remote actors may be
//!    stale after migration; the FIR machinery (§4.3) repairs them on
//!    demand. The name server itself never blocks or communicates.

use crate::addr::{ActorId, AddrKey, DescriptorId};
use crate::descriptor::{DescriptorArena, Locality, LocalityDescriptor};
use hal_am::NodeId;
use std::collections::HashMap;

/// The result of a locality check, distinguishing how the answer was
/// found (the cost model charges differently for fast-path vs hashed
/// lookups).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Actor is local: direct reference.
    Local(ActorId),
    /// Best guess: remote node, with an optional cached remote
    /// descriptor index.
    Remote {
        /// Believed location.
        node: NodeId,
        /// Cached descriptor index on that node.
        remote_index: Option<DescriptorId>,
    },
    /// The node has no descriptor for this key at all.
    Unknown,
}

/// Per-node name server.
pub struct NameServer {
    me: NodeId,
    arena: DescriptorArena,
    table: HashMap<AddrKey, DescriptorId>,
    /// Lookups served by the birthplace fast path (diagnostics).
    pub fast_hits: u64,
    /// Lookups that went through the hash table (diagnostics).
    pub hash_lookups: u64,
}

impl NameServer {
    /// Name server for node `me`.
    pub fn new(me: NodeId) -> Self {
        NameServer {
            me,
            arena: DescriptorArena::new(),
            table: HashMap::new(),
            fast_hits: 0,
            hash_lookups: 0,
        }
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Allocate a descriptor for a locally created actor and return its
    /// id — which becomes the `index` of the actor's ordinary mail
    /// address (§4.1: "a locality descriptor is allocated and assigned to
    /// an actor when it is created").
    pub fn alloc_local(&mut self, actor: ActorId, epoch: u32) -> DescriptorId {
        self.arena.alloc(LocalityDescriptor {
            locality: Locality::Local(actor),
            epoch,
        })
    }

    /// Allocate a descriptor recording a best guess about a remote actor
    /// (sender-side caching, or an alias minted at request time).
    pub fn alloc_remote(
        &mut self,
        node: NodeId,
        remote_index: Option<DescriptorId>,
        epoch: u32,
    ) -> DescriptorId {
        self.arena.alloc(LocalityDescriptor {
            locality: Locality::Remote { node, remote_index },
            epoch,
        })
    }

    /// Bind an additional key to an existing descriptor. Used for:
    /// non-birthplace keys cached locally; alias registration on the
    /// creating node ("registers the actor in its local name table with
    /// the received alias", §5); migrated-in actors re-registering all
    /// their keys.
    pub fn bind(&mut self, key: AddrKey, desc: DescriptorId) {
        debug_assert!(self.arena.contains(desc));
        self.table.insert(key, desc);
    }

    /// Resolve a key to this node's descriptor for it, if any.
    ///
    /// Birthplace keys resolve by direct index (no hashing); foreign keys
    /// go through the hash table.
    pub fn descriptor_for(&mut self, key: AddrKey) -> Option<DescriptorId> {
        if key.birthplace == self.me {
            self.fast_hits += 1;
            // The address embeds the descriptor index directly. A miss
            // here (freed descriptor) would be a dangling address.
            if self.arena.contains(key.index) {
                Some(key.index)
            } else {
                None
            }
        } else {
            self.hash_lookups += 1;
            self.table.get(&key).copied()
        }
    }

    /// Full locality check: what this node believes about `key`,
    /// using only local information (the paper's headline property).
    pub fn resolve(&mut self, key: AddrKey) -> Resolution {
        match self.descriptor_for(key) {
            None => Resolution::Unknown,
            Some(d) => match self.arena.get(d).locality {
                Locality::Local(a) => Resolution::Local(a),
                Locality::Remote { node, remote_index } => Resolution::Remote { node, remote_index },
            },
        }
    }

    /// Direct descriptor access.
    pub fn descriptor(&self, id: DescriptorId) -> &LocalityDescriptor {
        self.arena.get(id)
    }

    /// Mutate a descriptor (migration updates, FIR repairs, caching).
    pub fn descriptor_mut(&mut self, id: DescriptorId) -> &mut LocalityDescriptor {
        self.arena.get_mut(id)
    }

    /// Whether a descriptor id is live (used to validate `dst_desc`
    /// hints arriving from the network).
    pub fn descriptor_live(&self, id: DescriptorId) -> bool {
        self.arena.contains(id)
    }

    /// Number of live descriptors (diagnostics).
    pub fn descriptors(&self) -> usize {
        self.arena.len()
    }

    /// Number of hash-table entries (diagnostics).
    pub fn table_entries(&self) -> usize {
        self.table.len()
    }

    /// Remove a foreign-key binding (garbage collection of a freed
    /// actor's name-table entries). Returns the descriptor it pointed
    /// to, if any.
    pub fn unbind(&mut self, key: AddrKey) -> Option<DescriptorId> {
        self.table.remove(&key)
    }

    /// Free a descriptor (the actor it described has been collected).
    pub fn free_descriptor(&mut self, id: DescriptorId) {
        self.arena.free(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MailAddr;

    #[test]
    fn birthplace_key_resolves_without_hashing() {
        let mut ns = NameServer::new(2);
        let d = ns.alloc_local(ActorId(0), 0);
        let addr = MailAddr::ordinary(2, d);
        assert_eq!(ns.resolve(addr.key), Resolution::Local(ActorId(0)));
        assert_eq!(ns.fast_hits, 1);
        assert_eq!(ns.hash_lookups, 0);
        assert_eq!(ns.table_entries(), 0, "no table entry needed at birthplace");
    }

    #[test]
    fn foreign_key_uses_hash_table() {
        let mut ns = NameServer::new(0);
        // Node 0 caches a guess about an actor born on node 3.
        let d = ns.alloc_remote(3, None, 0);
        let key = AddrKey {
            birthplace: 3,
            index: DescriptorId(17),
        };
        ns.bind(key, d);
        assert_eq!(
            ns.resolve(key),
            Resolution::Remote {
                node: 3,
                remote_index: None
            }
        );
        assert_eq!(ns.hash_lookups, 1);
        assert_eq!(ns.fast_hits, 0);
    }

    #[test]
    fn unknown_foreign_key() {
        let mut ns = NameServer::new(0);
        let key = AddrKey {
            birthplace: 9,
            index: DescriptorId(0),
        };
        assert_eq!(ns.resolve(key), Resolution::Unknown);
    }

    #[test]
    fn caching_remote_index_is_visible() {
        let mut ns = NameServer::new(0);
        let d = ns.alloc_remote(3, None, 0);
        let key = AddrKey {
            birthplace: 3,
            index: DescriptorId(4),
        };
        ns.bind(key, d);
        // NameInfo arrives: cache the remote descriptor index.
        if let Locality::Remote { remote_index, .. } = &mut ns.descriptor_mut(d).locality {
            *remote_index = Some(DescriptorId(4));
        }
        assert_eq!(
            ns.resolve(key),
            Resolution::Remote {
                node: 3,
                remote_index: Some(DescriptorId(4))
            }
        );
    }

    #[test]
    fn two_keys_one_descriptor() {
        // Alias + ordinary key on the creating node resolve identically.
        let mut ns = NameServer::new(5);
        let d = ns.alloc_local(ActorId(1), 0);
        let ordinary = AddrKey {
            birthplace: 5,
            index: d,
        };
        let alias = AddrKey {
            birthplace: 1,
            index: DescriptorId(0),
        };
        ns.bind(alias, d);
        assert_eq!(ns.resolve(ordinary), Resolution::Local(ActorId(1)));
        assert_eq!(ns.resolve(alias), Resolution::Local(ActorId(1)));
    }
}
