//! Kernel-level wire messages — everything node managers say to each
//! other.
//!
//! Each variant corresponds to a handler the kernel registers with the
//! active-message layer (§3: requests to a node manager "are delivered in
//! the form of a message: upon receiving a request, it steals the
//! processor from the actor that is currently executing, processes the
//! request using that actor's stack frame and subsequently resumes the
//! actor's execution").

use crate::actor::Behavior;
use crate::addr::{AddrKey, BehaviorId, DescriptorId, GroupId, JcId};
use crate::message::{Msg, Target, Value};
use hal_am::NodeId;

/// A migrating actor's transferable image: behavior plus queues and
/// identity. Moves by value between kernels — nodes never share memory.
pub struct ActorImage {
    /// The behavior object (moved, not copied — the actor exists exactly
    /// once at any time).
    pub behavior: Box<dyn Behavior>,
    /// Unprocessed mail queue, carried along (§4.3 delivers in-flight
    /// messages via FIR instead, but messages already queued at the old
    /// node travel with the actor).
    pub mailq: Vec<Msg>,
    /// Pending (constraint-disabled) messages.
    pub pendq: Vec<Msg>,
    /// All keys naming this actor (ordinary address + alias).
    pub keys: Vec<AddrKey>,
    /// Group membership, if any.
    pub group: Option<(GroupId, u32)>,
    /// Migration hop count *after* this move (the location epoch of the
    /// arrival).
    pub hops: u32,
}

impl ActorImage {
    /// Approximate wire size: behaviors serialize to a few hundred bytes
    /// of state in practice; queued messages dominate. We charge a fixed
    /// behavior-image size plus the exact message sizes — enough for the
    /// cost model to route migrations through the bulk path.
    pub fn wire_bytes(&self) -> usize {
        const BEHAVIOR_IMAGE: usize = 256;
        BEHAVIOR_IMAGE
            + self.mailq.iter().map(Msg::wire_bytes).sum::<usize>()
            + self.pendq.iter().map(Msg::wire_bytes).sum::<usize>()
            + self.keys.len() * 16
    }
}

/// Kernel wire protocol.
pub enum KMsg {
    /// Deliver an actor message (Fig. 3 generic send).
    Deliver {
        /// Addressed target (mail address key or group member).
        target: Target,
        /// The message.
        msg: Msg,
    },
    /// Location caching: "actor `key` has descriptor `index` on `node`"
    /// (§4.1's reply of the locality descriptor's memory address, and
    /// §4.3's birthplace/old-node updates after migration).
    NameInfo {
        /// The actor's key.
        key: AddrKey,
        /// Node the actor currently lives on.
        node: NodeId,
        /// Descriptor index on that node.
        index: DescriptorId,
        /// Location epoch of this information (migration hop count).
        epoch: u32,
    },
    /// Remote creation request (§5): the requester already continues,
    /// holding the alias.
    Create {
        /// Alias minted on the requesting node.
        alias: AddrKey,
        /// Behavior template to instantiate.
        behavior: BehaviorId,
        /// Constructor arguments.
        init: Vec<Value>,
        /// Requesting node (for the NameInfo cache reply).
        requester: NodeId,
        /// Lifecycle span of this creation (diagnostic only, like
        /// [`crate::trace::TraceTag`]: excluded from `wire_bytes`).
        span: u64,
    },
    /// Forwarding-information request (§4.3). The asker is the packet's
    /// source; each relay records it for the reply path.
    Fir {
        /// The actor being located.
        key: AddrKey,
        /// The chase episode's span, shared by every hop (diagnostic
        /// only: excluded from `wire_bytes`).
        span: u64,
    },
    /// FIR reply propagating back along the forward chain.
    FirFound {
        /// The actor.
        key: AddrKey,
        /// Where it actually lives.
        node: NodeId,
        /// Its descriptor index there.
        index: DescriptorId,
        /// Location epoch of this information.
        epoch: u32,
    },
    /// A reply filling one join-continuation slot (§6.2).
    Reply {
        /// Continuation on the destination node.
        jc: JcId,
        /// Slot to fill.
        slot: u16,
        /// The reply value.
        value: Value,
        /// Span of the replying message's handler, adopted by sends the
        /// fired continuation issues (diagnostic only: excluded from
        /// `wire_bytes`).
        span: u64,
    },
    /// An actor arriving by migration (or by work stealing).
    MigrateArrive {
        /// The actor image.
        image: ActorImage,
        /// The node it left (gets a NameInfo so its forward pointer
        /// becomes a one-hop guess).
        from: NodeId,
        /// True when this migration answers a steal poll (§7.2): the
        /// thief clears its outstanding-poll state on arrival.
        stolen: bool,
    },
    /// Idle node asking a random victim for work (§7.2).
    StealRequest {
        /// The idle (requesting) node.
        thief: NodeId,
    },
    /// Victim's empty-handed answer (work, when found, arrives as
    /// [`KMsg::MigrateArrive`]).
    StealNone,
    /// `grpnew` fan-out along the node spanning tree (§2.2).
    GrpCreate {
        /// The group being created (member count is inside the id).
        group: GroupId,
        /// Behavior template for every member.
        behavior: BehaviorId,
        /// Shared constructor arguments (each member also receives its
        /// index and the member count, appended by the kernel).
        init: Vec<Value>,
        /// Root of this fan-out tree.
        root: NodeId,
    },
    /// Broadcast to a group, relayed along the spanning tree (§6.4).
    GrpBcast {
        /// The group.
        group: GroupId,
        /// Message delivered to every member.
        msg: Msg,
        /// Root of this fan-out tree.
        root: NodeId,
    },
    /// Garbage collection (§9 future work): begin a collection —
    /// compute roots, trace locally, report to the coordinator.
    GcBegin {
        /// Coordinating node (collector of reports).
        coordinator: NodeId,
        /// Spanning-tree root of this relay (== coordinator).
        root: NodeId,
    },
    /// Start the next synchronous mark round.
    GcRoundGo {
        /// Spanning-tree root of this relay.
        root: NodeId,
    },
    /// Remote reachability: "these actors are reachable" (batched keys).
    GcMark {
        /// Keys owned (believed owned) by the destination node.
        keys: Vec<AddrKey>,
    },
    /// A node's end-of-round report to the coordinator.
    GcRoundDone {
        /// New marks plus forwarded keys this round (0 = quiesced).
        activity: u64,
    },
    /// Sweep command: free everything unmarked.
    GcSweepCmd {
        /// Spanning-tree root of this relay.
        root: NodeId,
    },
    /// A node's sweep report.
    GcSwept {
        /// Actors freed on the node.
        freed: u64,
        /// Actors still live on the node.
        live: u64,
    },
    /// Stop the machine (thread mode shutdown; also honored by the
    /// simulator).
    Halt,
    /// Self-addressed timer: the reliable-delivery retransmit timeout
    /// for one peer fired (chaos subsystem only; never crosses a link).
    RetxTimer {
        /// The peer whose unacked queue should be inspected.
        peer: NodeId,
    },
    /// Self-addressed timer: the FIR watchdog for one chased actor
    /// fired (chaos subsystem only; never crosses a link).
    FirTimer {
        /// The actor key whose FIR may need re-issuing.
        key: AddrKey,
    },
}

impl KMsg {
    /// Wire size for the cost model and the small/bulk split.
    pub fn wire_bytes(&self) -> usize {
        const KEY: usize = 16;
        match self {
            KMsg::Deliver { msg, .. } => KEY + 8 + msg.wire_bytes(),
            KMsg::NameInfo { .. } => KEY + 8,
            KMsg::Create { init, .. } => {
                KEY + 8 + init.iter().map(Value::wire_bytes).sum::<usize>()
            }
            KMsg::Fir { .. } => KEY,
            KMsg::FirFound { .. } => KEY + 8,
            KMsg::Reply { value, .. } => 8 + value.wire_bytes(),
            KMsg::MigrateArrive { image, .. } => image.wire_bytes(),
            KMsg::StealRequest { .. } | KMsg::StealNone | KMsg::Halt => 4,
            KMsg::GrpCreate { init, .. } => {
                KEY + 8 + init.iter().map(Value::wire_bytes).sum::<usize>()
            }
            KMsg::GrpBcast { msg, .. } => KEY + msg.wire_bytes(),
            KMsg::GcBegin { .. } | KMsg::GcRoundGo { .. } | KMsg::GcSweepCmd { .. } => 8,
            KMsg::GcMark { keys } => 4 + keys.len() * 16,
            KMsg::GcRoundDone { .. } | KMsg::GcSwept { .. } => 12,
            // Timers never cross a link; they have no wire cost.
            KMsg::RetxTimer { .. } => 4,
            KMsg::FirTimer { .. } => KEY,
        }
    }
}

impl std::fmt::Debug for KMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KMsg::Deliver { target, msg } => {
                write!(f, "Deliver({target:?}, sel={})", msg.selector)
            }
            KMsg::NameInfo { key, node, .. } => write!(f, "NameInfo({key:?} on {node})"),
            KMsg::Create { alias, .. } => write!(f, "Create(alias {alias:?})"),
            KMsg::Fir { key, .. } => write!(f, "Fir({key:?})"),
            KMsg::FirFound { key, node, .. } => write!(f, "FirFound({key:?} on {node})"),
            KMsg::Reply { jc, slot, .. } => write!(f, "Reply(jc{} slot{slot})", jc.0),
            KMsg::MigrateArrive { from, stolen, .. } => {
                write!(f, "MigrateArrive(from {from}, stolen={stolen})")
            }
            KMsg::StealRequest { thief } => write!(f, "StealRequest({thief})"),
            KMsg::StealNone => write!(f, "StealNone"),
            KMsg::GrpCreate { group, .. } => write!(f, "GrpCreate({group:?})"),
            KMsg::GrpBcast { group, .. } => write!(f, "GrpBcast({group:?})"),
            KMsg::Halt => write!(f, "Halt"),
            KMsg::GcBegin { coordinator, .. } => write!(f, "GcBegin(coord {coordinator})"),
            KMsg::GcRoundGo { .. } => write!(f, "GcRoundGo"),
            KMsg::GcMark { keys } => write!(f, "GcMark({} keys)", keys.len()),
            KMsg::GcRoundDone { activity } => write!(f, "GcRoundDone({activity})"),
            KMsg::GcSweepCmd { .. } => write!(f, "GcSweepCmd"),
            KMsg::GcSwept { freed, live } => write!(f, "GcSwept(freed {freed}, live {live})"),
            KMsg::RetxTimer { peer } => write!(f, "RetxTimer(peer {peer})"),
            KMsg::FirTimer { key } => write!(f, "FirTimer({key:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Msg;

    struct Nop;
    impl Behavior for Nop {
        fn dispatch(&mut self, _ctx: &mut crate::kernel::Ctx<'_>, _msg: Msg) {}
    }

    #[test]
    fn control_messages_are_small() {
        assert!(KMsg::StealNone.wire_bytes() <= hal_am::MAX_SMALL_BYTES);
        assert!(KMsg::Halt.wire_bytes() <= hal_am::MAX_SMALL_BYTES);
        assert!(
            KMsg::Fir {
                key: AddrKey {
                    birthplace: 0,
                    index: DescriptorId(0)
                },
                span: 0
            }
            .wire_bytes()
                <= hal_am::MAX_SMALL_BYTES
        );
    }

    #[test]
    fn migration_image_is_bulk_sized() {
        let image = ActorImage {
            behavior: Box::new(Nop),
            mailq: vec![],
            pendq: vec![],
            keys: vec![],
            group: None,
            hops: 1,
        };
        let k = KMsg::MigrateArrive { image, from: 0, stolen: false };
        assert!(k.wire_bytes() > hal_am::MAX_SMALL_BYTES);
    }

    #[test]
    fn deliver_size_scales_with_payload() {
        let small = KMsg::Deliver {
            target: Target::Member { group: GroupId::new(0, 0, 1, crate::addr::Mapping::Block), index: 0 },
            msg: Msg::new(0, vec![]),
        };
        let big = KMsg::Deliver {
            target: Target::Member { group: GroupId::new(0, 0, 1, crate::addr::Mapping::Block), index: 0 },
            msg: Msg::new(0, vec![Value::Bytes(hal_am::Bytes::from(vec![0u8; 1024]))]),
        };
        assert!(big.wire_bytes() > small.wire_bytes() + 1000);
    }
}
