//! The live backend: real kernels on host threads, real time, reliable
//! links.
//!
//! Where [`crate::machine::SimMachine`] advances a virtual clock under a
//! cost model, this machine runs one kernel per OS thread over
//! [`hal_am::thread_network_bounded`] mpsc links and anchors every
//! kernel's clock to the **host monotonic clock**: at the top of each
//! loop iteration a node sets `clock = max(clock, elapsed-since-start)`.
//! Virtual nanoseconds therefore *are* host nanoseconds, which makes
//! three things work unchanged:
//!
//! * the PR 3 reliable layer's RTO / FIR-watchdog timers (virtual-time
//!   deadlines) fire at real wall deadlines — `KernelConfig::
//!   force_reliable` turns the layer on unconditionally, so seq/ack/
//!   retransmit + in-order holdback is the live wire protocol even
//!   though mpsc channels happen not to drop packets;
//! * `Ctx::now()` measures real time, so latency instrumentation
//!   written for the simulator (e.g. the serving front-end's
//!   `now() - sent_at`) is meaningful on both backends;
//! * migration, aliases, and FIR chases run the exact same kernel code
//!   paths — the backends differ only below [`crate::kernel::NetOut`].
//!
//! Chaos timers need a place to live without a DES heap: [`LiveNet`]
//! pairs the thread endpoint with a local binary heap of `(fire_at,
//! seq)` deadlines, popped once the anchored clock passes them.
//!
//! Termination is explicit (`Ctx::stop` → Halt broadcast), with a
//! wall-clock watchdog as the livelock valve — the live analog of
//! `max_events`. The result is a genuine [`SimReport`] (merged stats
//! including the thread-network's backpressure counters, per-node
//! clocks, reports, optional merged trace, quiescence audit) so
//! hal-check and the artifact tooling ingest live runs unchanged; only
//! virtual-time *determinism* is absent, which downstream consumers
//! must not assume (the perf gate relaxes its exact comparisons for
//! reports tagged live).

use crate::backend::{Backend, BackendKind, Job};
use crate::error::MachineError;
use crate::kernel::{with_system_ctx, Ctx, Kernel, KernelConfig, NetOut};
use crate::machine::{MachineConfig, SimReport};
use crate::registry::BehaviorRegistry;
use crate::wire::KMsg;
use hal_am::{
    thread_network, thread_network_bounded, AmEnvelope, FaultPlan, NodeId, Packet,
    ThreadEndpoint, ThreadNetStats,
};
use hal_des::{StatSet, VirtualDuration, VirtualTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reliable-layer timer tuning for live kernels. The simulated defaults
/// (100 µs RTO) are CM-5-scale; a host thread descheduled by the OS can
/// easily stall a millisecond, so live deadlines are host-scale —
/// generous enough that retransmits signal real loss or overload, not
/// scheduler jitter.
fn live_fault_plan() -> FaultPlan {
    FaultPlan {
        rto: VirtualDuration::from_millis(5),
        rto_max: VirtualDuration::from_millis(160),
        fir_timeout: VirtualDuration::from_millis(15),
        ..FaultPlan::none()
    }
}

/// How long an idle node parks on its receive queue before re-checking
/// timers, jobs, and the abort flag.
const IDLE_PARK: Duration = Duration::from_millis(1);

/// One armed chaos timer: min-heap ordering on `(fire_at, seq)` so
/// simultaneous deadlines pop in arming order. The envelope is the
/// self-addressed `AmEnvelope::Timer` the kernel scheduled.
struct TimerEntry {
    fire_at: VirtualTime,
    seq: u64,
    env: AmEnvelope<KMsg>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.fire_at == other.fire_at && self.seq == other.seq
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.fire_at, self.seq).cmp(&(other.fire_at, other.seq))
    }
}

/// A node's network interface on the live backend: the thread endpoint
/// plus a local timer heap (the DES engine used to hold scheduled
/// timers; here each node keeps its own).
pub struct LiveNet {
    ep: ThreadEndpoint<KMsg>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
}

impl LiveNet {
    fn new(ep: ThreadEndpoint<KMsg>) -> Self {
        LiveNet {
            ep,
            timers: BinaryHeap::new(),
            timer_seq: 0,
        }
    }

    /// Earliest armed timer deadline, if any.
    fn next_timer_due(&self) -> Option<VirtualTime> {
        self.timers.peek().map(|Reverse(t)| t.fire_at)
    }

    /// Pop the earliest timer if its deadline is at or before `now`.
    fn pop_due(&mut self, now: VirtualTime) -> Option<AmEnvelope<KMsg>> {
        if self.next_timer_due()? <= now {
            Some(self.timers.pop().expect("peeked").0.env)
        } else {
            None
        }
    }
}

impl NetOut for LiveNet {
    fn inject(
        &mut self,
        _now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        env: AmEnvelope<KMsg>,
        wire_bytes: usize,
    ) {
        debug_assert_eq!(src, self.ep.node());
        self.ep.send(dst, env, wire_bytes);
    }

    fn schedule(&mut self, fire_at: VirtualTime, node: NodeId, env: AmEnvelope<KMsg>) {
        debug_assert_eq!(node, self.ep.node(), "timers are always self-addressed");
        self.timer_seq += 1;
        self.timers.push(Reverse(TimerEntry {
            fire_at,
            seq: self.timer_seq,
            env,
        }));
    }
}

/// What a finished node thread hands back.
struct NodeDone {
    kernel: Kernel,
    /// Loop iterations that made progress — the live stand-in for the
    /// simulator's event counter (order-of-magnitude comparable, not
    /// deterministic).
    events: u64,
}

enum LiveState {
    /// Threads not yet spawned: kernels are directly addressable, so
    /// bootstrap closures may borrow the caller's stack.
    Staged {
        kernels: Vec<Kernel>,
        nets: Vec<LiveNet>,
        job_txs: Vec<Sender<Job>>,
        job_rxs: Vec<Receiver<Job>>,
    },
    /// Node threads running; jobs travel over per-node channels.
    Running {
        handles: Vec<JoinHandle<NodeDone>>,
        job_txs: Vec<Sender<Job>>,
        abort: Arc<AtomicBool>,
        net_stats: Arc<ThreadNetStats>,
    },
    /// Drained: the report is fixed.
    Done(Box<SimReport>),
    /// Transient marker while moving between states; observing it means
    /// a prior transition panicked.
    Poisoned,
}

/// The live machine — see the module docs. Constructed via
/// [`crate::backend::Machine::live`] (or directly for tests).
pub struct LiveMachine {
    cfg: MachineConfig,
    state: LiveState,
    anchor: Instant,
}

impl LiveMachine {
    /// Stage a live machine: build kernels and the bounded thread
    /// network, spawn nothing yet.
    ///
    /// # Panics
    /// Panics on an invalid configuration (use the validating builder),
    /// including a configuration carrying link faults — chaos injection
    /// is simulation-only.
    pub fn new(cfg: MachineConfig, registry: Arc<BehaviorRegistry>) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let endpoints = match cfg.live_queue_capacity {
            0 => thread_network::<KMsg>(cfg.nodes),
            cap => thread_network_bounded::<KMsg>(cfg.nodes, cap),
        };
        let kernels: Vec<Kernel> = (0..cfg.nodes)
            .map(|i| {
                let kcfg = KernelConfig {
                    me: i as NodeId,
                    nodes: cfg.nodes,
                    cost: cfg.cost,
                    load_balancing: cfg.load_balancing && cfg.nodes > 1,
                    flow_control: cfg.flow_control,
                    quantum: cfg.quantum,
                    max_stack_depth: cfg.max_stack_depth,
                    seed: cfg.seed,
                    opt: cfg.opt,
                    trace: cfg.record_trace,
                    // Metrics cadences assume a deterministic virtual
                    // clock; off on live (the serving layer measures
                    // latency at the application level instead).
                    metrics: false,
                    faults: live_fault_plan(),
                    force_reliable: true,
                };
                Kernel::new(kcfg, Arc::clone(&registry))
            })
            .collect();
        let mut job_txs = Vec::with_capacity(cfg.nodes);
        let mut job_rxs = Vec::with_capacity(cfg.nodes);
        for _ in 0..cfg.nodes {
            let (tx, rx) = channel::<Job>();
            job_txs.push(tx);
            job_rxs.push(rx);
        }
        LiveMachine {
            cfg,
            state: LiveState::Staged {
                kernels,
                nets: endpoints.into_iter().map(LiveNet::new).collect(),
                job_txs,
                job_rxs,
            },
            anchor: Instant::now(),
        }
    }

    /// Join every node thread, flipping `abort` if `deadline` passes
    /// first (node loops check it every idle millisecond).
    fn join_nodes(
        handles: Vec<JoinHandle<NodeDone>>,
        abort: &AtomicBool,
        deadline: Instant,
    ) -> (Vec<NodeDone>, bool) {
        let mut timed_out = false;
        let mut out = Vec::with_capacity(handles.len());
        for h in handles {
            loop {
                if h.is_finished() {
                    break;
                }
                if Instant::now() >= deadline {
                    timed_out = true;
                    abort.store(true, Ordering::Relaxed);
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            out.push(h.join().expect("live node thread panicked"));
        }
        (out, timed_out)
    }

    /// Assemble the [`SimReport`] from joined kernels — the same merge
    /// the simulator performs, minus network-determined facts it cannot
    /// know (metrics, prof) and plus the thread-network counters.
    fn assemble_report(
        cfg: &MachineConfig,
        mut nodes: Vec<NodeDone>,
        net_stats: &ThreadNetStats,
    ) -> Result<SimReport, MachineError> {
        if let Some(e) = nodes.iter_mut().find_map(|n| n.kernel.failed.take()) {
            return Err(e);
        }
        let mut stats = StatSet::new();
        let mut reports = Vec::new();
        let mut actors = 0;
        let mut events = 0;
        for n in &nodes {
            stats.merge(&n.kernel.stats);
            reports.extend(n.kernel.reports.iter().cloned());
            actors += n.kernel.actors_created();
            events += n.events;
        }
        stats.add("threadnet.packets", net_stats.packets.load(Ordering::Relaxed));
        stats.add("threadnet.bytes", net_stats.bytes.load(Ordering::Relaxed));
        stats.add(
            "threadnet.backpressure_hits",
            net_stats.backpressure_hits.load(Ordering::Relaxed),
        );
        stats.add(
            "threadnet.dropped_on_close",
            net_stats.dropped_on_close.load(Ordering::Relaxed),
        );
        let node_clocks: Vec<_> = nodes.iter().map(|n| n.kernel.clock).collect();
        let makespan = node_clocks
            .iter()
            .copied()
            .max()
            .unwrap_or(VirtualTime::ZERO);
        let trace = cfg.record_trace.then(|| {
            crate::trace::TraceReport::merge(
                nodes.iter().filter_map(|n| n.kernel.recorder()),
            )
        });
        let behaviors = nodes
            .first()
            .map(|n| {
                n.kernel
                    .registry()
                    .entries()
                    .into_iter()
                    .map(|(id, name)| (id.0, name.to_string()))
                    .collect()
            })
            .unwrap_or_default();
        let audit = crate::audit::MachineAudit {
            nodes: nodes.iter().map(|n| n.kernel.quiescence_audit()).collect(),
            behaviors,
        };
        Ok(SimReport {
            makespan,
            node_clocks,
            stats,
            reports,
            events,
            actors_created: actors,
            trace,
            metrics: None,
            audit,
            prof: None,
        })
    }
}

impl Backend for LiveMachine {
    fn kind(&self) -> BackendKind {
        BackendKind::Live
    }

    fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    fn exec(
        &mut self,
        node: NodeId,
        f: Box<dyn FnOnce(&mut Ctx<'_>) + '_>,
    ) -> Result<(), MachineError> {
        if (node as usize) >= self.cfg.nodes {
            return Err(MachineError::InvalidNode {
                node,
                nodes: self.cfg.nodes,
            });
        }
        match &mut self.state {
            LiveState::Staged { kernels, nets, .. } => {
                with_system_ctx(&mut kernels[node as usize], &mut nets[node as usize], f);
                Ok(())
            }
            _ => Err(MachineError::BackendState {
                what: "run a borrowing bootstrap closure after init (submit a Job instead)",
            }),
        }
    }

    fn init(&mut self) -> Result<(), MachineError> {
        match &self.state {
            LiveState::Staged { .. } => {}
            LiveState::Running { .. } => return Ok(()), // idempotent
            LiveState::Done(_) | LiveState::Poisoned => {
                return Err(MachineError::BackendState {
                    what: "restart after it has drained",
                })
            }
        }
        let LiveState::Staged {
            kernels,
            nets,
            job_txs,
            job_rxs,
        } = std::mem::replace(&mut self.state, LiveState::Poisoned)
        else {
            unreachable!("matched Staged above")
        };
        let abort = Arc::new(AtomicBool::new(false));
        let net_stats = Arc::clone(nets[0].ep.stats());
        // Re-anchor at spawn: bootstrap wall time (program loading)
        // should not count against the run's clocks.
        self.anchor = Instant::now();
        let anchor = self.anchor;
        let handles = kernels
            .into_iter()
            .zip(nets)
            .zip(job_rxs)
            .map(|((kernel, net), jobs)| {
                let abort = Arc::clone(&abort);
                std::thread::spawn(move || node_loop(kernel, net, jobs, abort, anchor))
            })
            .collect();
        self.state = LiveState::Running {
            handles,
            job_txs,
            abort,
            net_stats,
        };
        Ok(())
    }

    fn submit(&mut self, node: NodeId, job: Job) -> Result<(), MachineError> {
        if (node as usize) >= self.cfg.nodes {
            return Err(MachineError::InvalidNode {
                node,
                nodes: self.cfg.nodes,
            });
        }
        let txs = match &mut self.state {
            LiveState::Staged { job_txs, .. } | LiveState::Running { job_txs, .. } => job_txs,
            LiveState::Done(_) | LiveState::Poisoned => {
                return Err(MachineError::BackendState {
                    what: "accept a job after it has drained",
                })
            }
        };
        // Staged jobs queue up and run as soon as the node loop starts.
        txs[node as usize]
            .send(job)
            .map_err(|_| MachineError::BackendState {
                what: "accept a job for a node that already stopped",
            })
    }

    fn drain(&mut self, timeout: Duration) -> Result<SimReport, MachineError> {
        if matches!(self.state, LiveState::Staged { .. }) {
            self.init()?;
        }
        match std::mem::replace(&mut self.state, LiveState::Poisoned) {
            LiveState::Running {
                handles,
                job_txs,
                abort,
                net_stats,
            } => {
                // Drop the job senders so node loops see a disconnected
                // queue rather than a forever-pending one.
                drop(job_txs);
                let deadline = Instant::now() + timeout;
                let (nodes, timed_out) = Self::join_nodes(handles, &abort, deadline);
                if timed_out {
                    // Leave the state Poisoned: a timed-out live run has
                    // no coherent report.
                    return Err(MachineError::WallTimeout {
                        waited_ms: timeout.as_millis() as u64,
                    });
                }
                let report = Self::assemble_report(&self.cfg, nodes, &net_stats)?;
                self.state = LiveState::Done(Box::new(report.clone()));
                Ok(report)
            }
            LiveState::Done(report) => {
                let out = (*report).clone();
                self.state = LiveState::Done(report);
                Ok(out)
            }
            LiveState::Staged { .. } => unreachable!("init() above left Staged"),
            LiveState::Poisoned => Err(MachineError::BackendState {
                what: "drain after a failed run",
            }),
        }
    }

    fn report(&self) -> Result<SimReport, MachineError> {
        match &self.state {
            LiveState::Done(report) => Ok((**report).clone()),
            _ => Err(MachineError::BackendState {
                what: "snapshot a report before draining (a running partition has no coherent global state)",
            }),
        }
    }
}

/// One live node's event loop. Each iteration:
///
/// 1. anchor the virtual clock to host time (`max`, never backwards);
/// 2. fire due chaos timers (stale ones retired for free, as in the
///    simulator's delivery path);
/// 3. run submitted jobs in a system context;
/// 4. drain arrived packets;
/// 5. take one scheduling step;
/// 6. if nothing happened: optionally send a steal poll, then park on
///    the receive queue until the next timer deadline (at most
///    [`IDLE_PARK`]).
///
/// Exits when the kernel stops (local `Ctx::stop` or received Halt) or
/// the watchdog flips `abort`.
fn node_loop(
    mut kernel: Kernel,
    mut net: LiveNet,
    jobs: Receiver<Job>,
    abort: Arc<AtomicBool>,
    anchor: Instant,
) -> NodeDone {
    let mut events = 0u64;
    loop {
        if kernel.stopped || abort.load(Ordering::Relaxed) {
            return NodeDone { kernel, events };
        }
        kernel.clock = kernel
            .clock
            .max(VirtualTime::from_nanos(anchor.elapsed().as_nanos() as u64));
        let me = kernel.config().me;
        let mut progress = false;
        while let Some(env) = net.pop_due(kernel.clock) {
            if let AmEnvelope::Timer(body) = &env {
                if kernel.timer_stale(body) {
                    kernel.expire_timer(body);
                    continue;
                }
            }
            kernel.handle_packet(
                &mut net,
                Packet {
                    src: me,
                    dst: me,
                    body: env,
                },
            );
            events += 1;
            progress = true;
        }
        while let Ok(job) = jobs.try_recv() {
            with_system_ctx(&mut kernel, &mut net, job);
            events += 1;
            progress = true;
            if kernel.stopped {
                return NodeDone { kernel, events };
            }
        }
        while let Some(pkt) = net.ep.try_recv() {
            kernel.handle_packet(&mut net, pkt);
            events += 1;
            progress = true;
            if kernel.stopped {
                return NodeDone { kernel, events };
            }
        }
        if kernel.step(&mut net) {
            events += 1;
            progress = true;
        }
        if !progress {
            if kernel.nodes() > 1 && kernel.balancer.may_poll(kernel.clock) {
                kernel.send_steal_poll(&mut net);
            }
            // Park until traffic arrives or the next timer is due,
            // whichever is sooner (bounded so jobs/abort stay checked).
            let park = match net.next_timer_due() {
                Some(due) => {
                    let now = VirtualTime::from_nanos(anchor.elapsed().as_nanos() as u64);
                    if due <= now {
                        continue; // already due: fire it on the next pass
                    }
                    Duration::from_nanos(due.since(now).as_nanos()).min(IDLE_PARK)
                }
                None => IDLE_PARK,
            };
            if let Some(pkt) = net.ep.recv_timeout(park) {
                kernel.handle_packet(&mut net, pkt);
                events += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Machine;
    use crate::message::Value;

    fn empty_registry() -> Arc<BehaviorRegistry> {
        Arc::new(BehaviorRegistry::new())
    }

    #[test]
    fn live_empty_partition_stops_via_bootstrap() {
        let cfg = MachineConfig::builder(2).build().unwrap();
        let mut m = Machine::live(cfg, empty_registry());
        m.with_ctx(0, |ctx| {
            ctx.report("who", Value::Int(7));
            ctx.stop();
        });
        let report = m.drain(Duration::from_secs(10)).unwrap();
        assert_eq!(report.value("who"), Some(&Value::Int(7)));
        assert_eq!(report.node_clocks.len(), 2);
        // Drained: report() re-reads the same result.
        let again = m.report().unwrap();
        assert_eq!(again.value("who"), Some(&Value::Int(7)));
    }

    #[test]
    fn live_submit_runs_jobs_mid_flight() {
        let cfg = MachineConfig::builder(2).build().unwrap();
        let mut m = Machine::live(cfg, empty_registry());
        m.init().unwrap();
        m.submit(1, Box::new(|ctx| ctx.report("from", Value::Int(1))))
            .unwrap();
        m.submit(0, Box::new(|ctx| ctx.stop())).unwrap();
        let report = m.drain(Duration::from_secs(10)).unwrap();
        assert_eq!(report.value("from"), Some(&Value::Int(1)));
    }

    #[test]
    fn live_exec_after_init_is_a_state_error() {
        let cfg = MachineConfig::builder(1).build().unwrap();
        let mut m = LiveMachine::new(cfg, empty_registry());
        m.init().unwrap();
        let err = m.exec(0, Box::new(|_| {})).unwrap_err();
        assert!(matches!(err, MachineError::BackendState { .. }));
        m.submit(0, Box::new(|ctx| ctx.stop())).unwrap();
        m.drain(Duration::from_secs(10)).unwrap();
    }

    #[test]
    fn live_report_before_drain_is_a_state_error() {
        let cfg = MachineConfig::builder(1).build().unwrap();
        let m = LiveMachine::new(cfg, empty_registry());
        assert!(matches!(
            m.report(),
            Err(MachineError::BackendState { .. })
        ));
    }

    #[test]
    fn live_wall_timeout_trips() {
        let cfg = MachineConfig::builder(1).build().unwrap();
        let mut m = LiveMachine::new(cfg, empty_registry());
        m.init().unwrap();
        // Nobody ever calls stop: the watchdog must fire.
        let err = m.drain(Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, MachineError::WallTimeout { .. }));
    }

    #[test]
    fn live_clocks_track_host_time() {
        let cfg = MachineConfig::builder(1).build().unwrap();
        let mut m = Machine::live(cfg, empty_registry());
        m.init().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        m.submit(0, Box::new(|ctx| ctx.stop())).unwrap();
        let report = m.drain(Duration::from_secs(10)).unwrap();
        assert!(
            report.makespan >= VirtualTime::from_nanos(15_000_000),
            "anchored clock must have advanced ~20ms of host time, got {} ns",
            report.makespan.as_nanos()
        );
    }
}
