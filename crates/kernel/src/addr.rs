//! Mail addresses, aliases, and the identifiers used across the kernel.
//!
//! Paper §4.1: "A mail address is implemented as a pair of real addresses
//! `(birthplace, address)`, where *birthplace* represents the node on
//! which the actor is created and *address* represents the memory address
//! of a locality descriptor."
//!
//! Paper §5 (aliases): "Aliases have the same structure as ordinary mail
//! addresses. However, *birthplace* represents not the node where the
//! actor was created, but the node where the creation request was issued.
//! The node address where the actor is created is also encoded in
//! *birthplace* along with type information."
//!
//! We replace the raw memory address with a [`DescriptorId`] — an index
//! into the birthplace node's descriptor arena. This keeps the defining
//! property (on the birthplace node the address resolves with **no hash
//! lookup**, just an array index) while staying memory-safe.

use hal_am::NodeId;
use core::fmt;

/// Index of a locality descriptor within one node's descriptor arena.
///
/// The memory-safe analog of the paper's "memory address of a locality
/// descriptor": resolving it on its owning node is a bounds-checked array
/// index, not a table search.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DescriptorId(pub u32);

/// Identifies a behavior template ("class") in the [`crate::registry::BehaviorRegistry`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BehaviorId(pub u32);

/// Method selector — which method of a behavior a message invokes.
pub type Selector = u32;

/// Index of an actor record in its hosting node's actor slab. Never
/// leaves the node (actors are referred to globally by mail address).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ActorId(pub u32);

/// Index of a join continuation in its node's continuation slab.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct JcId(pub u32);

/// How group members are distributed over the partition.
///
/// Table 1's BP and CP Cholesky variants "are identical except that the
/// former uses block mapping and the latter uses cyclic mapping" — the
/// mapping is a property of the group, chosen at `grpnew` time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Mapping {
    /// Contiguous runs of members per node (member `i` on node
    /// `i·p/count`).
    #[default]
    Block,
    /// Round-robin (member `i` on node `i mod p`).
    Cyclic,
}

/// Globally unique group identifier returned by `grpnew` (§2.2).
///
/// Encodes `(creator node, per-node counter, mapping, member count)` in
/// one word. Carrying the member count and mapping inside the id lets
/// *any* node compute a member's home node deterministically without
/// communication — the group analog of the locality check using "only
/// locally available information".
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u64);

impl GroupId {
    /// Compose from the creating node, its group counter, the member
    /// count, and the distribution mapping.
    pub fn new(creator: NodeId, counter: u16, count: u32, mapping: Mapping) -> Self {
        let m = match mapping {
            Mapping::Block => 0u64,
            Mapping::Cyclic => 1u64,
        };
        GroupId(
            ((creator as u64) << 48)
                | (((counter & 0x7FFF) as u64) << 33)
                | (m << 32)
                | count as u64,
        )
    }

    /// The node that issued the `grpnew`.
    pub fn creator(self) -> NodeId {
        (self.0 >> 48) as NodeId
    }

    /// Number of members in the group.
    pub fn count(self) -> u32 {
        (self.0 & 0xFFFF_FFFF) as u32
    }

    /// The distribution mapping.
    pub fn mapping(self) -> Mapping {
        if (self.0 >> 32) & 1 == 0 {
            Mapping::Block
        } else {
            Mapping::Cyclic
        }
    }
}

/// The identity part of a mail address: `(birthplace, descriptor index)`.
///
/// This pair is what name tables are keyed by. An actor created remotely
/// has **two** keys naming it — its alias (minted on the requesting node)
/// and its ordinary mail address (minted on the creating node); both
/// resolve to the same actor (§5: "An actor's alias can be used
/// interchangeably with its mail addresses").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AddrKey {
    /// Node whose descriptor arena `index` points into. For an alias this
    /// is the node that *requested* the creation, not the creating node.
    pub birthplace: NodeId,
    /// Descriptor index on `birthplace`.
    pub index: DescriptorId,
}

/// Routing metadata carried inside a mail address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AddrMeta {
    /// An ordinary mail address: `birthplace` is where the actor was
    /// created; messages with no better information go there.
    Ordinary,
    /// An alias (§5): the actor was actually created on `created_on`,
    /// with behavior `behavior` — "the encoded information may be used in
    /// subsequent message sends": a message sent through an unknown alias
    /// is forwarded to `created_on` directly, assuming no migration.
    Alias {
        /// The node on which the creation request materialized the actor.
        created_on: NodeId,
        /// Behavior template, encoded as the paper encodes type info.
        behavior: BehaviorId,
    },
}

/// A complete mail address: identity key plus routing metadata.
///
/// Copyable and cheap — mail addresses are first-class values that travel
/// inside messages ("mail addresses may also be communicated in a
/// message, allowing for a dynamic communication topology").
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MailAddr {
    /// Identity: the name-table key.
    pub key: AddrKey,
    /// Routing hint: ordinary vs alias encoding.
    pub meta: AddrMeta,
}

impl MailAddr {
    /// An ordinary address born on `node` with descriptor `index`.
    pub fn ordinary(node: NodeId, index: DescriptorId) -> Self {
        MailAddr {
            key: AddrKey {
                birthplace: node,
                index,
            },
            meta: AddrMeta::Ordinary,
        }
    }

    /// An alias minted on `requester` for an actor being created on
    /// `created_on` with behavior `behavior`.
    pub fn alias(
        requester: NodeId,
        index: DescriptorId,
        created_on: NodeId,
        behavior: BehaviorId,
    ) -> Self {
        MailAddr {
            key: AddrKey {
                birthplace: requester,
                index,
            },
            meta: AddrMeta::Alias {
                created_on,
                behavior,
            },
        }
    }

    /// Where a message should head when the local name table knows
    /// nothing: the creation node (alias encoding) or the birthplace.
    pub fn default_route(&self) -> NodeId {
        match self.meta {
            AddrMeta::Ordinary => self.key.birthplace,
            AddrMeta::Alias { created_on, .. } => created_on,
        }
    }

    /// True if this address is an alias.
    pub fn is_alias(&self) -> bool {
        matches!(self.meta, AddrMeta::Alias { .. })
    }
}

impl fmt::Debug for DescriptorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Debug for AddrKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:?}", self.birthplace, self.index)
    }
}

impl fmt::Debug for MailAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.meta {
            AddrMeta::Ordinary => write!(f, "@{:?}", self.key),
            AddrMeta::Alias { created_on, .. } => {
                write!(f, "@{:?}~alias(on {})", self.key, created_on)
            }
        }
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}.{}", self.creator(), self.0 & 0xFFFF_FFFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinary_routes_to_birthplace() {
        let a = MailAddr::ordinary(3, DescriptorId(7));
        assert_eq!(a.default_route(), 3);
        assert!(!a.is_alias());
        assert_eq!(a.key.birthplace, 3);
    }

    #[test]
    fn alias_routes_to_creation_node() {
        // Requested on node 1, created on node 5.
        let a = MailAddr::alias(1, DescriptorId(0), 5, BehaviorId(9));
        assert_eq!(a.key.birthplace, 1, "alias birthplace is the requester");
        assert_eq!(a.default_route(), 5, "unknown alias forwards to creation node");
        assert!(a.is_alias());
    }

    #[test]
    fn alias_and_ordinary_are_distinct_keys() {
        // The same actor reachable through both: the keys differ, which is
        // exactly why both get registered in the creating node's table.
        let alias = MailAddr::alias(1, DescriptorId(0), 5, BehaviorId(9));
        let ordinary = MailAddr::ordinary(5, DescriptorId(0));
        assert_ne!(alias.key, ordinary.key);
    }

    #[test]
    fn group_id_roundtrip() {
        let g = GroupId::new(12, 34, 1_000_000, Mapping::Block);
        assert_eq!(g.creator(), 12);
        assert_eq!(g.count(), 1_000_000);
        assert_eq!(g.mapping(), Mapping::Block);
        let c = GroupId::new(12, 34, 1_000_000, Mapping::Cyclic);
        assert_eq!(c.mapping(), Mapping::Cyclic);
        assert_ne!(g, c);
        let b = Mapping::Block;
        assert_ne!(GroupId::new(12, 34, 16, b), GroupId::new(12, 35, 16, b));
        assert_ne!(GroupId::new(12, 34, 16, b), GroupId::new(13, 34, 16, b));
        assert_ne!(GroupId::new(12, 34, 16, b), GroupId::new(12, 34, 17, b));
    }

    #[test]
    fn debug_formats() {
        let a = MailAddr::ordinary(2, DescriptorId(5));
        assert_eq!(format!("{a:?}"), "@2:d5");
        let al = MailAddr::alias(1, DescriptorId(0), 5, BehaviorId(9));
        assert_eq!(format!("{al:?}"), "@1:d0~alias(on 5)");
    }
}
