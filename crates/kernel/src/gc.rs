//! Distributed actor garbage collection — the paper's future work.
//!
//! §9: "The use of locality descriptors to support location transparency
//! has the advantage of supporting an efficient garbage collection
//! scheme" (citing Venkatasubramaniam, Agha & Talcott's distributed
//! scheme for actor systems). This module realizes that direction as a
//! coordinator-driven, synchronous-round distributed **mark & sweep**
//! over the name-server descriptors:
//!
//! 1. **Begin** — the coordinator broadcasts `GcBegin` down the spanning
//!    tree. Every node computes its local *roots*: pinned actors (the
//!    application's externally held addresses), actors with queued or
//!    pending messages, and group members (reachable by `(group, index)`
//!    from anyone holding the group id).
//! 2. **Mark rounds** — each node traces reachability locally to a
//!    fixpoint using the behaviors' declared *acquaintances* (the HAL
//!    compiler generated this tracing information; here behaviors
//!    implement [`crate::actor::Behavior::acquaintances`]). References
//!    to non-local actors are batched into `GcMark` messages routed by
//!    the same best-guess descriptors as ordinary sends. A round ends
//!    when every node has reported its activity to the coordinator;
//!    rounds repeat until a round produces no new marks anywhere —
//!    termination is guaranteed because the mark set only grows.
//! 3. **Sweep** — the coordinator broadcasts `GcSweep`; every node frees
//!    unmarked actors, their descriptors, and their name-table entries,
//!    and reports the count.
//!
//! The collection runs over the ordinary message layer (it costs
//! network packets and virtual time like everything else) and requires
//! the machine to be quiescent — the classic "idle-time" collection
//! point. Sending to a collected actor is a use-after-free program
//! error and fails loudly.

use crate::addr::{ActorId, AddrKey};
use hal_am::NodeId;
use std::collections::{HashMap, HashSet};

/// Per-node garbage-collection state.
#[derive(Default)]
pub struct GcState {
    /// A collection is in progress.
    pub active: bool,
    /// Locally marked (reachable) actors.
    pub marked: HashSet<ActorId>,
    /// Keys received from other nodes, to be traced next round.
    pub incoming: Vec<AddrKey>,
    /// Actors pinned by the application (roots across collections).
    pub pinned: HashSet<ActorId>,
    /// Coordinator bookkeeping (only used on the coordinating node).
    pub coord: Option<CoordState>,
}

/// Coordinator-side bookkeeping for one collection.
#[derive(Default)]
pub struct CoordState {
    /// Nodes yet to report in the current phase.
    pub awaiting: usize,
    /// Marks produced anywhere in the current round.
    pub round_activity: u64,
    /// Completed mark rounds.
    pub rounds: u32,
    /// Total actors freed (filled during sweep).
    pub freed: u64,
}

impl GcState {
    /// Reset for a fresh collection.
    pub fn begin(&mut self) {
        self.active = true;
        self.marked.clear();
        self.incoming.clear();
        self.coord = None;
    }

    /// Mark an actor; returns true if newly marked.
    pub fn mark(&mut self, aid: ActorId) -> bool {
        self.marked.insert(aid)
    }
}

/// Batch outgoing remote references by owner node.
#[derive(Default)]
pub struct MarkBatches {
    batches: HashMap<NodeId, Vec<AddrKey>>,
}

impl MarkBatches {
    /// Add a key owned by `node`.
    pub fn push(&mut self, node: NodeId, key: AddrKey) {
        self.batches.entry(node).or_default().push(key);
    }

    /// Drain the batches.
    pub fn drain(self) -> impl Iterator<Item = (NodeId, Vec<AddrKey>)> {
        self.batches.into_iter()
    }

    /// Number of keys batched in total.
    pub fn len(&self) -> usize {
        self.batches.values().map(Vec::len).sum()
    }

    /// True if nothing is batched.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }
}

/// Result of one full collection, reported by
/// [`crate::machine::SimMachine::collect_garbage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Actors freed across all nodes.
    pub freed: u64,
    /// Mark rounds the collection took.
    pub rounds: u32,
    /// Actors still live after the sweep.
    pub live: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_is_idempotent() {
        let mut gc = GcState::default();
        assert!(gc.mark(ActorId(1)));
        assert!(!gc.mark(ActorId(1)));
        assert!(gc.mark(ActorId(2)));
        assert_eq!(gc.marked.len(), 2);
    }

    #[test]
    fn begin_resets_marks_but_keeps_pins() {
        let mut gc = GcState::default();
        gc.pinned.insert(ActorId(7));
        gc.mark(ActorId(1));
        gc.begin();
        assert!(gc.marked.is_empty());
        assert!(gc.active);
        assert!(gc.pinned.contains(&ActorId(7)), "pins survive collections");
    }

    #[test]
    fn batches_group_by_owner() {
        let mut b = MarkBatches::default();
        let k = |n, i| AddrKey {
            birthplace: n,
            index: crate::addr::DescriptorId(i),
        };
        b.push(1, k(1, 0));
        b.push(1, k(1, 1));
        b.push(2, k(2, 0));
        assert_eq!(b.len(), 3);
        let drained: HashMap<_, _> = b.drain().collect();
        assert_eq!(drained[&1].len(), 2);
        assert_eq!(drained[&2].len(), 1);
    }
}
