//! Actor messages: values, envelopes, and continuation references.
//!
//! "All actor messages have a destination mail address and a method
//! selector. Many of them may also contain a continuation address." (§3)
//! The envelope type here carries exactly those three parts; the
//! *continuation address* is a [`ContRef`] — either a join-continuation
//! slot (the compiled form of `request`, §6.2) or an ordinary actor
//! address to `reply` to.

use crate::addr::{AddrKey, GroupId, JcId, MailAddr, Selector};
use hal_am::Bytes;
use hal_am::NodeId;

/// A first-class value that can travel in a message.
///
/// HAL is untyped at the wire level; this enum is the closest Rust
/// equivalent of its tagged message words. `Bytes` carries bulk payloads
/// (matrix blocks, migration images) by reference-counted buffer, which
/// models the CM-5's bulk transfer without copying inside the simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// No value (unit).
    Unit,
    /// Signed integer word.
    Int(i64),
    /// Floating-point word.
    Float(f64),
    /// A mail address (enables dynamic communication topologies).
    Addr(MailAddr),
    /// A group identifier (result of `grpnew`).
    Group(GroupId),
    /// Bulk binary payload.
    Bytes(Bytes),
}

impl Value {
    /// Size of this value on the wire, for the cost model and the
    /// small/bulk split.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Value::Unit => 0,
            Value::Int(_) | Value::Float(_) | Value::Group(_) => 8,
            Value::Addr(_) => 16,
            Value::Bytes(b) => b.len(),
        }
    }

    /// Extract an integer, panicking with a useful message otherwise.
    /// Workload code uses these accessors at message-decode boundaries.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Extract a float.
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(x) => *x,
            other => panic!("expected Float, got {other:?}"),
        }
    }

    /// Extract a mail address.
    pub fn as_addr(&self) -> MailAddr {
        match self {
            Value::Addr(a) => *a,
            other => panic!("expected Addr, got {other:?}"),
        }
    }

    /// Extract a group id.
    pub fn as_group(&self) -> GroupId {
        match self {
            Value::Group(g) => *g,
            other => panic!("expected Group, got {other:?}"),
        }
    }

    /// Extract a bulk payload (cheap clone — `Bytes` is refcounted).
    pub fn as_bytes(&self) -> Bytes {
        match self {
            Value::Bytes(b) => b.clone(),
            other => panic!("expected Bytes, got {other:?}"),
        }
    }
}

/// Where a reply should go: the "continuation address" of §3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ContRef {
    /// A join-continuation slot on `node` (§6.2): the reply fills
    /// `slot` of continuation `jc` and decrements its counter.
    Join {
        /// Node hosting the continuation.
        node: NodeId,
        /// Continuation id on that node.
        jc: JcId,
        /// Which argument slot the reply value fills.
        slot: u16,
    },
    /// An ordinary actor: the reply is delivered as a normal message
    /// with the given selector.
    Actor {
        /// The actor to reply to.
        addr: MailAddr,
        /// Selector the reply message invokes.
        selector: Selector,
    },
}

/// A message envelope: selector, arguments, and optional continuation.
#[derive(Clone, Debug, PartialEq)]
pub struct Msg {
    /// Method selector.
    pub selector: Selector,
    /// Argument values.
    pub args: Vec<Value>,
    /// Reply destination, if this is a `request`-style send.
    pub customer: Option<ContRef>,
    /// Flight-recorder metadata, stamped by the kernel at send time
    /// when tracing is enabled ([`crate::trace`]). Simulation metadata
    /// only: it never counts toward [`Msg::wire_bytes`].
    pub trace: Option<crate::trace::TraceTag>,
}

impl Msg {
    /// A plain asynchronous message.
    pub fn new(selector: Selector, args: Vec<Value>) -> Self {
        Msg {
            selector,
            args,
            customer: None,
            trace: None,
        }
    }

    /// A request carrying a continuation reference.
    pub fn request(selector: Selector, args: Vec<Value>, customer: ContRef) -> Self {
        Msg {
            selector,
            args,
            customer: Some(customer),
            trace: None,
        }
    }

    /// Wire size: selector + per-arg sizes + continuation reference.
    pub fn wire_bytes(&self) -> usize {
        let args: usize = self.args.iter().map(Value::wire_bytes).sum();
        4 + args + if self.customer.is_some() { 12 } else { 0 }
    }
}

/// A delivery target as it appears on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Target {
    /// A mail address key, with an optional cached descriptor index on
    /// the destination node ("subsequent messages are sent with the
    /// cached address, making name table look-up in the receiving node
    /// unnecessary", §4.1). `route_hint` reproduces the full address's
    /// routing metadata for nodes that have never seen the actor.
    Addr {
        /// Identity key.
        key: AddrKey,
        /// Descriptor index on the receiving node, if the sender has it
        /// cached.
        dst_desc: Option<crate::addr::DescriptorId>,
        /// Fallback route (birthplace or alias creation node).
        route_hint: NodeId,
    },
    /// Member `index` of `group`, resolved at the member's home node.
    Member {
        /// The group.
        group: GroupId,
        /// Member index within the group.
        index: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DescriptorId;

    #[test]
    fn value_wire_sizes() {
        assert_eq!(Value::Unit.wire_bytes(), 0);
        assert_eq!(Value::Int(5).wire_bytes(), 8);
        assert_eq!(Value::Float(1.0).wire_bytes(), 8);
        assert_eq!(Value::Addr(MailAddr::ordinary(0, DescriptorId(0))).wire_bytes(), 16);
        assert_eq!(Value::Bytes(Bytes::from(vec![0u8; 100])).wire_bytes(), 100);
    }

    #[test]
    fn msg_wire_size_includes_continuation() {
        let plain = Msg::new(1, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(plain.wire_bytes(), 4 + 16);
        let req = Msg::request(
            1,
            vec![Value::Int(1)],
            ContRef::Join {
                node: 0,
                jc: crate::addr::JcId(0),
                slot: 0,
            },
        );
        assert_eq!(req.wire_bytes(), 4 + 8 + 12);
    }

    #[test]
    fn accessors_extract_values() {
        assert_eq!(Value::Int(-3).as_int(), -3);
        assert_eq!(Value::Float(2.5).as_float(), 2.5);
        let a = MailAddr::ordinary(1, DescriptorId(2));
        assert_eq!(Value::Addr(a).as_addr(), a);
        let g = GroupId::new(1, 2, 4, crate::addr::Mapping::Block);
        assert_eq!(Value::Group(g).as_group(), g);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn accessor_type_mismatch_panics() {
        Value::Float(1.0).as_int();
    }
}
