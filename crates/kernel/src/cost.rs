//! CM-5-calibrated cost model for runtime primitives.
//!
//! In simulation mode every kernel primitive charges its execution time to
//! the node's virtual clock from this table. The values are calibrated so
//! the composite paths reproduce the paper's measurements (Table 2):
//!
//! * remote creation appears to take **5.83 µs** at the requester (alias
//!   allocation + request injection) while the actual creation completes
//!   in **20.83 µs** (requester overhead + one-way network + remote
//!   creation work);
//! * a locality check for a locally created actor completes **within
//!   1 µs** using only local information;
//! * CMAM-like messaging overheads (≈1.6 µs send, ≈1.7 µs receive).
//!
//! A 33 MHz SPARC executes roughly one instruction per 30 ns, so these
//! magnitudes correspond to a few dozen to a few hundred instructions per
//! primitive — consistent with the paper's description of "carefully
//! designed and optimized" primitives.

use hal_des::VirtualDuration;

/// Per-primitive virtual-time costs charged by the kernel.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Allocate + initialize a local actor (behavior init, descriptor,
    /// name-table registration).
    pub local_creation: VirtualDuration,
    /// Requester-side cost of a remote creation: alias allocation plus
    /// composing the creation request. Together with
    /// [`CostModel::net_send_overhead`] this makes the paper's 5.83 µs
    /// apparent cost at the requester.
    pub remote_creation_request: VirtualDuration,
    /// Creation work performed by the remote node manager (so that
    /// request + network + this ≈ the paper's 20.83 µs actual latency).
    pub remote_creation_work: VirtualDuration,
    /// Locality check when the answer is derivable locally (paper: <1 µs).
    pub locality_check: VirtualDuration,
    /// Hash lookup in the local name table (non-birthplace addresses).
    pub name_lookup: VirtualDuration,
    /// Generic local message send: envelope build + mailbox enqueue +
    /// schedule.
    pub local_send: VirtualDuration,
    /// Compiler fast path: locality check + static dispatch entry
    /// (excludes the method body itself).
    pub local_send_fast: VirtualDuration,
    /// Sender-side CPU overhead of injecting a network packet (CMAM send).
    pub net_send_overhead: VirtualDuration,
    /// Receiver-side CPU overhead of running a packet handler (CMAM recv).
    pub net_recv_overhead: VirtualDuration,
    /// Dispatcher step: take next actor/task from the ready queue.
    pub dispatch: VirtualDuration,
    /// Method invocation entry/exit (excluding user compute).
    pub method_invoke: VirtualDuration,
    /// Synchronization-constraint evaluation per message (§6.1).
    pub constraint_check: VirtualDuration,
    /// Fill one join-continuation slot (§6.2).
    pub join_fill: VirtualDuration,
    /// Fire a completed join continuation (excluding its body).
    pub join_fire: VirtualDuration,
    /// Node-manager handling of one FIR hop (§4.3).
    pub fir_handle: VirtualDuration,
    /// Pack or unpack an actor for migration (fixed part).
    pub migrate_fixed: VirtualDuration,
    /// Handle a load-balance poll (victim side).
    pub steal_handle: VirtualDuration,
    /// Idle-node delay between load-balance polls (§7.2 random polling).
    pub steal_poll_interval: VirtualDuration,
    /// Extra stall a *blocking* remote creation pays when aliases are
    /// disabled (the §5 ablation): the wait for the new actor's mail
    /// address to travel back — the 20.83 µs actual creation minus the
    /// 5.83 µs the requester pays anyway, plus the reply's one-way trip.
    pub remote_creation_rtt_stall: VirtualDuration,
}

impl CostModel {
    /// The CM-5 calibration used by every paper-table benchmark.
    pub fn cm5() -> Self {
        CostModel {
            local_creation: VirtualDuration::from_nanos(4_000),
            remote_creation_request: VirtualDuration::from_nanos(4_230),
            remote_creation_work: VirtualDuration::from_nanos(5_700),
            locality_check: VirtualDuration::from_nanos(800),
            name_lookup: VirtualDuration::from_nanos(1_200),
            local_send: VirtualDuration::from_nanos(3_000),
            local_send_fast: VirtualDuration::from_nanos(1_000),
            net_send_overhead: VirtualDuration::from_nanos(1_600),
            net_recv_overhead: VirtualDuration::from_nanos(1_700),
            dispatch: VirtualDuration::from_nanos(1_500),
            method_invoke: VirtualDuration::from_nanos(500),
            constraint_check: VirtualDuration::from_nanos(300),
            join_fill: VirtualDuration::from_nanos(300),
            join_fire: VirtualDuration::from_nanos(1_000),
            fir_handle: VirtualDuration::from_nanos(2_000),
            migrate_fixed: VirtualDuration::from_nanos(10_000),
            steal_handle: VirtualDuration::from_nanos(2_000),
            steal_poll_interval: VirtualDuration::from_nanos(10_000),
            remote_creation_rtt_stall: VirtualDuration::from_nanos(20_000),
        }
    }

    /// All-zero costs: protocol-logic tests that only care about event
    /// ordering, not timing.
    pub fn zero() -> Self {
        let z = VirtualDuration::ZERO;
        CostModel {
            local_creation: z,
            remote_creation_request: z,
            remote_creation_work: z,
            locality_check: z,
            name_lookup: z,
            local_send: z,
            local_send_fast: z,
            net_send_overhead: z,
            net_recv_overhead: z,
            dispatch: z,
            method_invoke: z,
            constraint_check: z,
            join_fill: z,
            join_fire: z,
            fir_handle: z,
            migrate_fixed: z,
            steal_handle: z,
            // Keep a nonzero poll interval even in the zero model: idle
            // nodes repoll in a loop, and a zero interval would freeze
            // virtual time (a livelock in the event queue).
            steal_poll_interval: VirtualDuration::from_nanos(1_000),
            remote_creation_rtt_stall: z,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm5_reproduces_paper_remote_creation_split() {
        let c = CostModel::cm5();
        // Paper §5: apparent cost at the requester is 5.83 us — alias
        // allocation + request composition + packet injection.
        assert_eq!(
            c.remote_creation_request.as_nanos() + c.net_send_overhead.as_nanos(),
            5_830
        );
        // The 20.83 us *actual* end-to-end latency is asserted against
        // the running machine in the kernel integration tests.
    }

    #[test]
    fn locality_check_is_submicrosecond() {
        let c = CostModel::cm5();
        assert!(c.locality_check.as_nanos() < 1_000);
    }

    #[test]
    fn fast_path_beats_generic_send() {
        let c = CostModel::cm5();
        assert!(c.local_send_fast < c.local_send);
    }

    #[test]
    fn zero_model_keeps_poll_interval_positive() {
        let c = CostModel::zero();
        assert!(c.steal_poll_interval.as_nanos() > 0);
        assert_eq!(c.local_send.as_nanos(), 0);
    }
}
