//! Actor groups: `grpnew` and broadcast bookkeeping (§2.2, §6.4).
//!
//! `grpnew` creates a group of actors with the same behavior template and
//! returns a group id. Members are distributed over the partition by a
//! deterministic **block mapping**, so any node can compute a member's
//! *home node* locally (the member count travels inside the
//! [`GroupId`]). Broadcasts fan out over the node-level spanning tree and
//! each node delivers to all of its local members consecutively — the
//! paper's *collective scheduling*, which exploits the temporal locality
//! of same-behavior actors like TAM quanta.
//!
//! A node can receive traffic for a group before the `grpnew` fan-out
//! reaches it (different senders use different spanning trees, so
//! inter-node FIFO does not order them). Such traffic parks in a pending
//! buffer and replays once the group materializes.

use crate::addr::{GroupId, MailAddr, Mapping};
use crate::message::Msg;
use hal_am::NodeId;
use std::collections::HashMap;

/// Compute the home node of member `index` of a `count`-member group on a
/// `p`-node partition under `mapping`.
#[inline]
pub fn home_node(index: u32, count: u32, p: usize, mapping: Mapping) -> NodeId {
    debug_assert!(index < count, "member index out of range");
    match mapping {
        Mapping::Block => ((index as u64 * p as u64) / count as u64) as NodeId,
        Mapping::Cyclic => (index as usize % p) as NodeId,
    }
}

/// The member indices that live on `node` (inverse of [`home_node`]).
pub fn members_on(
    node: NodeId,
    count: u32,
    p: usize,
    mapping: Mapping,
) -> Box<dyn Iterator<Item = u32>> {
    match mapping {
        Mapping::Block => {
            let p = p as u64;
            let n = node as u64;
            let count = count as u64;
            // Smallest i with i*p/count == n  is ceil(n*count / p).
            let lo = (n * count).div_ceil(p) as u32;
            let hi = (((n + 1) * count).div_ceil(p) as u32).min(count as u32);
            Box::new(lo..hi)
        }
        Mapping::Cyclic => Box::new((node as u32..count).step_by(p)),
    }
}

/// Per-node knowledge about one group.
#[derive(Default)]
pub struct GroupInfo {
    /// Members homed on this node: group index → mail address. Addresses
    /// (not actor ids) so that a member that migrates away stays
    /// reachable — delivery goes through the normal locality-descriptor
    /// path, FIR chasing included.
    pub local: HashMap<u32, MailAddr>,
}

/// The per-node group table.
#[derive(Default)]
pub struct GroupTable {
    groups: HashMap<GroupId, GroupInfo>,
    /// Traffic for groups whose `grpnew` has not reached this node yet:
    /// per group, parked (member index or broadcast) deliveries.
    pending_member: HashMap<GroupId, Vec<(u32, Msg)>>,
    pending_bcast: HashMap<GroupId, Vec<Msg>>,
    next_counter: u16,
}

impl GroupTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint a fresh group id on the creating node.
    pub fn mint(&mut self, creator: NodeId, count: u32, mapping: Mapping) -> GroupId {
        let c = self.next_counter;
        self.next_counter = self.next_counter.wrapping_add(1);
        GroupId::new(creator, c, count, mapping)
    }

    /// Materialize a group locally with its local members. Returns any
    /// traffic that was parked waiting for it.
    pub fn install(
        &mut self,
        group: GroupId,
        members: impl IntoIterator<Item = (u32, MailAddr)>,
    ) -> (Vec<(u32, Msg)>, Vec<Msg>) {
        let info = self.groups.entry(group).or_default();
        for (idx, addr) in members {
            let prev = info.local.insert(idx, addr);
            assert!(prev.is_none(), "group member {idx} installed twice");
        }
        (
            self.pending_member.remove(&group).unwrap_or_default(),
            self.pending_bcast.remove(&group).unwrap_or_default(),
        )
    }

    /// Is the group known on this node?
    pub fn known(&self, group: GroupId) -> bool {
        self.groups.contains_key(&group)
    }

    /// Look up a member homed on this node.
    pub fn member(&self, group: GroupId, index: u32) -> Option<MailAddr> {
        self.groups.get(&group)?.local.get(&index).copied()
    }

    /// All local members of a group in index order (collective
    /// scheduling delivers to them consecutively).
    pub fn local_members(&self, group: GroupId) -> Vec<(u32, MailAddr)> {
        match self.groups.get(&group) {
            None => Vec::new(),
            Some(info) => {
                let mut v: Vec<_> = info.local.iter().map(|(&i, &a)| (i, a)).collect();
                v.sort_unstable_by_key(|&(i, _)| i);
                v
            }
        }
    }

    /// Park a member-addressed message for a not-yet-installed group.
    pub fn park_member(&mut self, group: GroupId, index: u32, msg: Msg) {
        self.pending_member.entry(group).or_default().push((index, msg));
    }

    /// Park a broadcast for a not-yet-installed group.
    pub fn park_bcast(&mut self, group: GroupId, msg: Msg) {
        self.pending_bcast.entry(group).or_default().push(msg);
    }

    /// Number of groups known locally.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if no groups are known.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_mappings_partition_members() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            for &(count, p) in &[(16u32, 4usize), (10, 4), (3, 8), (100, 7), (1, 1), (64, 64)] {
                let mut seen = vec![0u32; count as usize];
                for node in 0..p {
                    for i in members_on(node as NodeId, count, p, mapping) {
                        assert_eq!(
                            home_node(i, count, p, mapping),
                            node as NodeId,
                            "member {i} count={count} p={p} {mapping:?}"
                        );
                        seen[i as usize] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&s| s == 1),
                    "every member on exactly one node (count={count}, p={p}, {mapping:?}): {seen:?}"
                );
            }
        }
    }

    #[test]
    fn cyclic_mapping_is_round_robin() {
        assert_eq!(home_node(0, 8, 4, Mapping::Cyclic), 0);
        assert_eq!(home_node(1, 8, 4, Mapping::Cyclic), 1);
        assert_eq!(home_node(5, 8, 4, Mapping::Cyclic), 1);
        let on1: Vec<u32> = members_on(1, 10, 4, Mapping::Cyclic).collect();
        assert_eq!(on1, vec![1, 5, 9]);
    }

    #[test]
    fn block_mapping_is_contiguous_and_balanced() {
        let count = 100u32;
        let p = 8usize;
        let mut sizes = Vec::new();
        for node in 0..p {
            let r: Vec<u32> = members_on(node as NodeId, count, p, Mapping::Block).collect();
            sizes.push(r.len());
        }
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "balanced to within one: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn install_returns_parked_traffic() {
        let mut t = GroupTable::new();
        let g = GroupId::new(0, 0, 8, Mapping::Block);
        t.park_member(g, 3, Msg::new(1, vec![]));
        t.park_bcast(g, Msg::new(2, vec![]));
        assert!(!t.known(g));
        let a3 = MailAddr::ordinary(0, crate::addr::DescriptorId(0));
        let (members, bcasts) = t.install(g, vec![(3, a3)]);
        assert_eq!(members.len(), 1);
        assert_eq!(members[0].0, 3);
        assert_eq!(bcasts.len(), 1);
        assert!(t.known(g));
        assert_eq!(t.member(g, 3), Some(a3));
        assert_eq!(t.member(g, 4), None);
    }

    #[test]
    fn local_members_sorted_by_index() {
        let mut t = GroupTable::new();
        let g = GroupId::new(0, 0, 8, Mapping::Block);
        let a = |i| MailAddr::ordinary(0, crate::addr::DescriptorId(i));
        t.install(g, vec![(5, a(2)), (1, a(0)), (3, a(1))]);
        let m = t.local_members(g);
        assert_eq!(m, vec![(1, a(0)), (3, a(1)), (5, a(2))]);
    }

    #[test]
    fn minted_ids_are_unique_and_carry_count() {
        let mut t = GroupTable::new();
        let a = t.mint(3, 10, Mapping::Block);
        let b = t.mint(3, 10, Mapping::Block);
        assert_ne!(a, b);
        assert_eq!(a.creator(), 3);
        assert_eq!(a.count(), 10);
        let c = t.mint(3, 10, Mapping::Cyclic);
        assert_eq!(c.mapping(), Mapping::Cyclic);
    }

    #[test]
    #[should_panic(expected = "installed twice")]
    fn duplicate_member_install_panics() {
        let mut t = GroupTable::new();
        let g = GroupId::new(0, 0, 4, Mapping::Block);
        let a = |i| MailAddr::ordinary(0, crate::addr::DescriptorId(i));
        t.install(g, vec![(0, a(0))]);
        t.install(g, vec![(0, a(1))]);
    }
}
