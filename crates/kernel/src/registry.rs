//! Behavior registry — the program-load module's analog (§3).
//!
//! On the CM-5 the HAL runtime dynamically loaded user executables into
//! each kernel; a remote creation request then named a behavior template
//! inside the loaded program. We model the load step by registering
//! behavior **factories** under stable [`BehaviorId`]s before the machine
//! starts; every node shares the same registry, just as every node loaded
//! the same executable. Multiple "programs" can register disjoint
//! behavior sets into one registry — the kernel "does not discriminate
//! between actors created by different programs".
//!
//! Factories are plain function pointers (`fn`), not closures: behavior
//! construction state must travel in the creation message's argument
//! values, exactly as it would on real distributed-memory hardware.

use crate::actor::Behavior;
use crate::addr::BehaviorId;
use crate::message::Value;
use std::collections::HashMap;

/// A behavior constructor: builds a fresh behavior from creation-message
/// arguments.
pub type FactoryFn = fn(&[Value]) -> Box<dyn Behavior>;

/// Registry mapping behavior ids to factories.
#[derive(Default, Clone)]
pub struct BehaviorRegistry {
    factories: HashMap<u32, (&'static str, FactoryFn)>,
}

impl BehaviorRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `factory` under `id` with a debug `name`.
    ///
    /// # Panics
    /// Panics if `id` is already taken — two programs claiming one id is
    /// a link error, caught at "load" time.
    pub fn register(&mut self, id: BehaviorId, name: &'static str, factory: FactoryFn) {
        let prev = self.factories.insert(id.0, (name, factory));
        assert!(
            prev.is_none(),
            "behavior id {} registered twice (second name: {name})",
            id.0
        );
    }

    /// Instantiate behavior `id` with `args`, or `None` for unknown ids.
    /// The kernel's network paths use this to turn a bad creation
    /// request into a typed [`crate::MachineError::UnknownBehavior`].
    pub fn try_create(&self, id: BehaviorId, args: &[Value]) -> Option<Box<dyn Behavior>> {
        self.factories.get(&id.0).map(|(_, factory)| factory(args))
    }

    /// Instantiate behavior `id` with `args`.
    ///
    /// # Panics
    /// Panics on unknown ids — a creation request for an unloaded
    /// behavior is a protocol error.
    pub fn create(&self, id: BehaviorId, args: &[Value]) -> Box<dyn Behavior> {
        self.try_create(id, args)
            .unwrap_or_else(|| panic!("unknown behavior id {}", id.0))
    }

    /// Debug name of a behavior id.
    pub fn name(&self, id: BehaviorId) -> Option<&'static str> {
        self.factories.get(&id.0).map(|(n, _)| *n)
    }

    /// Every `(id, name)` pair, sorted by id — the loaded program image
    /// the protocol checker's static pass inspects.
    pub fn entries(&self) -> Vec<(BehaviorId, &'static str)> {
        let mut out: Vec<_> = self
            .factories
            .iter()
            .map(|(id, (name, _))| (BehaviorId(*id), *name))
            .collect();
        out.sort_by_key(|(id, _)| id.0);
        out
    }

    /// Number of registered behaviors.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// True when no behaviors are registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Msg;

    struct Counter {
        start: i64,
    }
    impl Behavior for Counter {
        fn dispatch(&mut self, _ctx: &mut crate::kernel::Ctx<'_>, _msg: Msg) {}
        fn name(&self) -> &'static str {
            "counter"
        }
    }
    fn make_counter(args: &[Value]) -> Box<dyn Behavior> {
        Box::new(Counter {
            start: args[0].as_int(),
        })
    }

    #[test]
    fn register_and_create() {
        let mut reg = BehaviorRegistry::new();
        reg.register(BehaviorId(1), "counter", make_counter);
        let b = reg.create(BehaviorId(1), &[Value::Int(42)]);
        assert_eq!(b.name(), "counter");
        assert_eq!(reg.name(BehaviorId(1)), Some("counter"));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn factory_receives_args() {
        let mut reg = BehaviorRegistry::new();
        reg.register(BehaviorId(7), "counter", make_counter);
        // Indirect check through construction succeeding; direct state
        // checks happen in kernel tests where behaviors are exercised.
        let _ = reg.create(BehaviorId(7), &[Value::Int(-5)]);
        let c = Counter { start: -5 };
        assert_eq!(c.start, -5);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = BehaviorRegistry::new();
        reg.register(BehaviorId(1), "a", make_counter);
        reg.register(BehaviorId(1), "b", make_counter);
    }

    #[test]
    #[should_panic(expected = "unknown behavior id")]
    fn unknown_id_panics() {
        let reg = BehaviorRegistry::new();
        reg.create(BehaviorId(9), &[]);
    }
}
