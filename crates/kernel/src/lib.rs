//! # hal-kernel — the HAL runtime kernel
//!
//! The primary contribution of Kim & Agha, *Efficient Support of Location
//! Transparency in Concurrent Object-Oriented Programming Languages*
//! (SC '95): a runtime system for a fine-grained actor language that
//! supports **location transparency**, **dynamic placement**, and
//! **migration** with tolerable overhead.
//!
//! Module map (mirrors the paper's Fig. 2 kernel structure):
//!
//! | Paper concept | Module |
//! |---|---|
//! | mail addresses & aliases (§4.1, §5) | [`addr`] |
//! | locality descriptors (§4.1) | [`descriptor`] |
//! | distributed name table (§4.2) | [`name_server`] |
//! | FIR message delivery (§4.3, Fig. 3) | [`fir`] + [`kernel`] |
//! | remote creation latency hiding (§5) | [`kernel`] (`create_on`) |
//! | local synchronization constraints (§6.1) | [`actor`] + [`kernel`] |
//! | join continuations (§6.2, Fig. 4) | [`join`] |
//! | compiler-controlled scheduling (§6.3) | [`dispatch`] + `Ctx::send_fast` |
//! | collective broadcast scheduling (§6.4) | [`group`] |
//! | minimal flow control (§6.5) | `hal-am` + [`kernel`] |
//! | random-polling load balancing (§7.2) | [`balance`] |
//! | flight recorder (observability) | [`trace`] + [`hist`] |
//! | lifecycle spans & live metrics (observability) | [`span`] + [`metrics`] |
//! | host-time executor profiling (observability) | [`prof`] |
//! | node manager (§3) | [`kernel`] (`handle_*`) |
//! | program load module (§3) | [`registry`] |
//! | CM-5 cost calibration | [`cost`] |
//! | the partition itself | [`machine`] (simulated), [`live`] (live threads) |
//!
//! The [`backend`] module is the seam above all of it: one [`Backend`]
//! trait with a simulated and a live implementation, driven through the
//! [`Machine`] facade.

#![warn(missing_docs)]

pub mod actor;
pub mod addr;
pub mod audit;
pub mod backend;
pub mod balance;
pub mod cost;
pub mod descriptor;
pub mod dispatch;
pub mod error;
mod executor;
pub mod fir;
pub mod gc;
pub mod group;
pub mod hist;
pub mod join;
pub mod kernel;
pub mod live;
pub mod machine;
pub mod message;
pub mod metrics;
pub mod name_server;
pub mod prof;
pub mod registry;
pub mod span;
pub mod thread_machine;
pub mod timeline;
pub mod trace;
pub mod wire;

pub use actor::{ActorRecord, Behavior};
pub use audit::{MachineAudit, NodeAudit};
pub use backend::{Backend, BackendKind, Job, Machine};
pub use addr::{
    ActorId, AddrKey, BehaviorId, DescriptorId, GroupId, JcId, MailAddr, Mapping, Selector,
};
pub use cost::CostModel;
pub use error::{ConfigError, MachineError};
pub use kernel::{Ctx, Kernel, KernelConfig, NetOut, OptFlags};
pub use live::LiveMachine;
pub use machine::{MachineConfig, MachineConfigBuilder, ObserveOpts, SimMachine, SimReport};
pub use hal_am::{Bytes, FaultPlan, LinkOutage, NodeId, NodePause};
pub use message::{ContRef, Msg, Target, Value};
pub use registry::{BehaviorRegistry, FactoryFn};
pub use thread_machine::{run_threaded, ThreadReport};
pub use gc::GcReport;
pub use hist::TraceHists;
pub use metrics::{Metrics, MetricsReport};
pub use prof::{CoordProf, ProfReport, ProfTotals, ShardProf, WindowRec};
pub use span::{AliasSpan, ChaseSpan, MsgSpan, SpanReport};
pub use trace::{DeliveryPath, KernelEvent, TraceEvent, TraceReport, TraceWarning, WarningKind};
pub use wire::{ActorImage, KMsg};
