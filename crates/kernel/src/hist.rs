//! Latency histograms derived from a flight-recorder event stream.
//!
//! The recorder ([`crate::trace`]) captures raw events; this module
//! folds them into the log2-bucketed [`Histogram`]s the observability
//! story is about:
//!
//! * **delivery latency** split by path — local enqueues, one-hop
//!   remote sends, and deliveries that waited out a migration chase
//!   (the paper's central claim is that the third column stays tolerable);
//! * **FIR chain length** — how many FIR hops each chase episode took
//!   (§4.3's forward chains);
//! * **alias-resolution latency** — mint-to-NameInfo time for remote
//!   creations (§5's hidden latency, made visible);
//! * **pending-queue residency** — how long synchronization-constrained
//!   messages sat parked (§6.1).

use crate::trace::{DeliveryPath, KernelEvent, TraceEvent};
use hal_des::Histogram;
use std::collections::HashMap;

/// The standard derived histograms. All values are virtual nanoseconds
/// except `fir_chain`, which counts FIR hops per chase episode.
#[derive(Clone, Debug, Default)]
pub struct TraceHists {
    /// Same-node delivery latency (ns).
    pub delivery_local: Histogram,
    /// One-hop remote delivery latency (ns).
    pub delivery_remote: Histogram,
    /// Delivery latency for messages that chased a migrated actor (ns).
    pub delivery_migrated: Histogram,
    /// FIR hops per chase episode (an episode ends when the reply
    /// propagates back).
    pub fir_chain: Histogram,
    /// Alias mint-to-resolution latency (ns).
    pub alias_latency: Histogram,
    /// Pending-queue residency (ns).
    pub pending_residency: Histogram,
}

/// Fold an ordered event stream into the standard histograms.
pub fn derive(events: &[TraceEvent]) -> TraceHists {
    let mut h = TraceHists::default();
    // FIR chain length: count FirSent per key until the episode closes
    // with a FirReplyPropagated for that key at the chase origin.
    let mut chase_hops: HashMap<crate::addr::AddrKey, u64> = HashMap::new();
    for e in events {
        match &e.event {
            KernelEvent::MessageDelivered { latency_ns, path, .. } => {
                let hist = match path {
                    DeliveryPath::Local => &mut h.delivery_local,
                    DeliveryPath::Remote => &mut h.delivery_remote,
                    DeliveryPath::Migrated => &mut h.delivery_migrated,
                };
                hist.observe(*latency_ns);
            }
            KernelEvent::FirSent { key, .. } => {
                *chase_hops.entry(*key).or_insert(0) += 1;
            }
            KernelEvent::FirReplyPropagated { key, .. } => {
                if let Some(hops) = chase_hops.remove(key) {
                    h.fir_chain.observe(hops);
                }
            }
            KernelEvent::AliasResolved { latency_ns, .. } => {
                h.alias_latency.observe(*latency_ns);
            }
            KernelEvent::PendingRescanned { residency_ns, .. } => {
                h.pending_residency.observe(*residency_ns);
            }
            _ => {}
        }
    }
    // Episodes still open at the end of the run (reply never reached
    // the origin's ring, or the run stopped mid-chase) still describe
    // chain length.
    for (_, hops) in chase_hops {
        h.fir_chain.observe(hops);
    }
    h
}

/// Render the histograms as an aligned summary table.
pub fn render(h: &TraceHists) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:>8} {:>12} {:>12} {:>12}",
        "histogram", "count", "mean", "max", "unit"
    );
    let _ = writeln!(out, "{}", "-".repeat(74));
    let mut line = |name: &str, hist: &Histogram, unit: &str| {
        let _ = writeln!(
            out,
            "{:<26} {:>8} {:>12.1} {:>12} {:>12}",
            name,
            hist.count(),
            hist.mean(),
            hist.max(),
            unit
        );
    };
    line("delivery.local", &h.delivery_local, "ns");
    line("delivery.remote", &h.delivery_remote, "ns");
    line("delivery.migrated", &h.delivery_migrated, "ns");
    line("fir.chain_length", &h.fir_chain, "hops");
    line("alias.resolution", &h.alias_latency, "ns");
    line("pending.residency", &h.pending_residency, "ns");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{AddrKey, DescriptorId};
    use hal_des::VirtualTime;

    fn at(ns: u64, event: KernelEvent) -> TraceEvent {
        TraceEvent {
            time: VirtualTime::from_nanos(ns),
            node: 0,
            seq: 0,
            span: 0,
            parent: 0,
            event,
        }
    }

    fn key(i: u32) -> AddrKey {
        AddrKey { birthplace: 0, index: DescriptorId(i) }
    }

    #[test]
    fn deliveries_split_by_path() {
        let events = vec![
            at(10, KernelEvent::MessageDelivered { id: 1, latency_ns: 100, path: DeliveryPath::Local }),
            at(20, KernelEvent::MessageDelivered { id: 2, latency_ns: 9_000, path: DeliveryPath::Remote }),
            at(30, KernelEvent::MessageDelivered { id: 3, latency_ns: 80_000, path: DeliveryPath::Migrated }),
            at(40, KernelEvent::MessageDelivered { id: 4, latency_ns: 120, path: DeliveryPath::Local }),
        ];
        let h = derive(&events);
        assert_eq!(h.delivery_local.count(), 2);
        assert_eq!(h.delivery_remote.count(), 1);
        assert_eq!(h.delivery_migrated.count(), 1);
        assert_eq!(h.delivery_local.sum(), 220);
        assert_eq!(h.delivery_migrated.max(), 80_000);
    }

    #[test]
    fn log2_bucketing_is_inherited_from_histogram() {
        // 100 and 120 land in the same power-of-two bucket [64,128);
        // 9000 lands in [8192,16384). The derived histograms use the
        // workspace Histogram, so mean/max/count follow its contract.
        let events = vec![
            at(0, KernelEvent::MessageDelivered { id: 1, latency_ns: 100, path: DeliveryPath::Local }),
            at(0, KernelEvent::MessageDelivered { id: 2, latency_ns: 120, path: DeliveryPath::Local }),
        ];
        let h = derive(&events);
        assert_eq!(h.delivery_local.count(), 2);
        assert!((h.delivery_local.mean() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn fir_chain_counts_hops_per_episode() {
        let events = vec![
            // Episode for key 1: three hops, then the reply propagates.
            at(10, KernelEvent::FirSent { key: key(1), to: 1 }),
            at(20, KernelEvent::FirSent { key: key(1), to: 2 }),
            at(30, KernelEvent::FirSent { key: key(1), to: 3 }),
            at(40, KernelEvent::FirReplyPropagated { key: key(1), node: 3, askers: 2, released: 1 }),
            // Episode for key 2: one hop, never closed (run ended).
            at(50, KernelEvent::FirSent { key: key(2), to: 1 }),
        ];
        let h = derive(&events);
        assert_eq!(h.fir_chain.count(), 2);
        assert_eq!(h.fir_chain.max(), 3);
        assert_eq!(h.fir_chain.sum(), 4);
    }

    #[test]
    fn alias_and_pending_latencies() {
        let events = vec![
            at(10, KernelEvent::AliasResolved { key: key(1), latency_ns: 20_830 }),
            at(20, KernelEvent::PendingRescanned { id: 9, residency_ns: 5_000 }),
            at(30, KernelEvent::PendingEnqueued { id: 10 }), // no resume: not counted
        ];
        let h = derive(&events);
        assert_eq!(h.alias_latency.count(), 1);
        assert_eq!(h.alias_latency.max(), 20_830);
        assert_eq!(h.pending_residency.count(), 1);
        assert_eq!(h.pending_residency.sum(), 5_000);
    }

    #[test]
    fn render_mentions_every_histogram() {
        let s = render(&TraceHists::default());
        for name in [
            "delivery.local",
            "delivery.remote",
            "delivery.migrated",
            "fir.chain_length",
            "alias.resolution",
            "pending.residency",
        ] {
            assert!(s.contains(name), "{s}");
        }
    }
}
