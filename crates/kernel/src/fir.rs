//! Forwarding-information-request (FIR) bookkeeping (§4.3, Fig. 3).
//!
//! When a message reaches a node the receiver has migrated away from,
//! the node manager does **not** forward the whole message. It buffers
//! it, sends a small FIR down the forward chain, and releases the
//! buffered messages directly to the actor's actual location once the
//! FIR reply propagates back. Two rules from the paper:
//!
//! * "When a node manager receives a request to deliver a message to an
//!   actor, it may have already sent an FIR message to locate the actor.
//!   It is unnecessary for the node manager to send another FIR message;
//!   thus, it puts off the message delivery until the receiver's location
//!   is known." — **duplicate suppression**: at most one FIR per actor
//!   is outstanding per node.
//! * "All node managers in the forward chain update their name table with
//!   the new information." — the reply retraces the chain, so each node
//!   records who asked it ([`FirPending::askers`]).

use crate::addr::AddrKey;
use crate::message::Msg;
use hal_am::NodeId;
use std::collections::HashMap;

/// Per-actor state while an FIR is outstanding on this node.
#[derive(Default, Debug)]
pub struct FirPending {
    /// Nodes that relayed an FIR for this actor through us and are owed
    /// the reply (reverse edges of the forward chain).
    pub askers: Vec<NodeId>,
    /// Messages we tried to deliver locally and parked until the actor's
    /// location is known.
    pub buffered: Vec<Msg>,
    /// How many times the chaos watchdog re-issued this chase (0 on the
    /// happy path; only grows when a fault ate the FIR or its reply).
    pub retries: u32,
}

/// The node's FIR table.
#[derive(Default)]
pub struct FirTable {
    pending: HashMap<AddrKey, FirPending>,
    sent_total: u64,
    suppressed_total: u64,
    reissued_total: u64,
}

impl FirTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note that we need the location of `key`. Returns `true` exactly
    /// when the caller should send an FIR now (none outstanding yet);
    /// `false` means one is already in flight (suppressed duplicate).
    pub fn need_location(&mut self, key: AddrKey) -> bool {
        let entry = self.pending.entry(key);
        match entry {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(FirPending::default());
                self.sent_total += 1;
                true
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                self.suppressed_total += 1;
                false
            }
        }
    }

    /// True if an FIR for `key` is outstanding on this node.
    pub fn is_pending(&self, key: AddrKey) -> bool {
        self.pending.contains_key(&key)
    }

    /// Park a message until `key`'s location is known. Must follow a
    /// `need_location` call for the same key.
    pub fn buffer(&mut self, key: AddrKey, msg: Msg) {
        self.pending
            .get_mut(&key)
            .expect("buffering without an outstanding FIR")
            .buffered
            .push(msg);
    }

    /// Record that `asker` relayed an FIR for `key` through us and must
    /// receive the reply.
    pub fn add_asker(&mut self, key: AddrKey, asker: NodeId) {
        self.pending
            .get_mut(&key)
            .expect("asker without an outstanding FIR")
            .askers
            .push(asker);
    }

    /// The FIR reply arrived (or the actor showed up locally): take the
    /// parked state for flushing.
    pub fn complete(&mut self, key: AddrKey) -> Option<FirPending> {
        self.pending.remove(&key)
    }

    /// Outstanding FIRs on this node.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// FIRs actually sent (diagnostics; Fig. 3 reproduction counts these).
    pub fn sent_total(&self) -> u64 {
        self.sent_total
    }

    /// Duplicate FIRs suppressed (diagnostics).
    pub fn suppressed_total(&self) -> u64 {
        self.suppressed_total
    }

    /// The chaos watchdog decided to re-issue the FIR for `key` (its
    /// reply is overdue — presumed lost). Returns the new retry count
    /// for the [`crate::trace::KernelEvent::FirTimeout`] record. Must
    /// follow a `need_location` call for the same key.
    pub fn note_reissue(&mut self, key: AddrKey) -> u32 {
        let p = self
            .pending
            .get_mut(&key)
            .expect("reissue without an outstanding FIR");
        p.retries += 1;
        self.reissued_total += 1;
        p.retries
    }

    /// FIRs re-issued by the chaos watchdog (diagnostics).
    pub fn reissued_total(&self) -> u64 {
        self.reissued_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DescriptorId;
    use crate::message::Msg;

    fn key(n: NodeId, i: u32) -> AddrKey {
        AddrKey {
            birthplace: n,
            index: DescriptorId(i),
        }
    }

    #[test]
    fn first_need_sends_subsequent_suppressed() {
        let mut t = FirTable::new();
        let k = key(1, 0);
        assert!(t.need_location(k), "first request sends an FIR");
        assert!(!t.need_location(k), "second is suppressed");
        assert!(!t.need_location(k));
        assert_eq!(t.sent_total(), 1);
        assert_eq!(t.suppressed_total(), 2);
    }

    #[test]
    fn distinct_actors_tracked_independently() {
        let mut t = FirTable::new();
        assert!(t.need_location(key(1, 0)));
        assert!(t.need_location(key(1, 1)));
        assert!(t.need_location(key(2, 0)));
        assert_eq!(t.outstanding(), 3);
    }

    #[test]
    fn buffered_messages_and_askers_come_back_on_complete() {
        let mut t = FirTable::new();
        let k = key(3, 7);
        t.need_location(k);
        t.buffer(k, Msg::new(1, vec![]));
        t.buffer(k, Msg::new(2, vec![]));
        t.add_asker(k, 5);
        t.add_asker(k, 9);
        let p = t.complete(k).unwrap();
        assert_eq!(p.buffered.len(), 2);
        assert_eq!(p.buffered[0].selector, 1, "buffered order preserved");
        assert_eq!(p.askers, vec![5, 9]);
        assert!(!t.is_pending(k));
        assert!(t.complete(k).is_none(), "complete is idempotent via None");
    }

    #[test]
    #[should_panic(expected = "without an outstanding FIR")]
    fn buffer_without_need_panics() {
        let mut t = FirTable::new();
        t.buffer(key(0, 0), Msg::new(1, vec![]));
    }

    #[test]
    fn reissue_counts_per_chase_and_globally() {
        let mut t = FirTable::new();
        let k = key(4, 1);
        t.need_location(k);
        assert_eq!(t.note_reissue(k), 1);
        assert_eq!(t.note_reissue(k), 2);
        t.need_location(key(4, 2));
        assert_eq!(t.note_reissue(key(4, 2)), 1, "retries are per chase");
        assert_eq!(t.reissued_total(), 3);
        assert_eq!(t.complete(k).unwrap().retries, 2);
    }
}
