//! Host-time executor profiler: where do the *host* milliseconds go?
//!
//! Everything else in the observability stack ([`crate::trace`],
//! [`crate::span`], [`crate::metrics`]) is driven by virtual time, so it
//! is bit-identical across `--parallel K` — and therefore constitutionally
//! unable to say why the windowed executor is slow on a given host. This
//! module is the complement: when [`crate::MachineConfig::record_prof`]
//! is set, every shard thread of the windowed executor (and the
//! sequential instant-network loop, as a single track) keeps a
//! monotonic-clock ledger of where its wall time went, split into the
//! executor's five structural phases:
//!
//! * **sync** — the cheap boundary handshake of a *fused* window: the
//!   spin-barrier wait plus the shared decision function, with no
//!   staged-send replay and no coordination (for `K = 1` both barriers
//!   are no-ops, so this is just the decision itself);
//! * **stall** — a *coordinated* window boundary: depositing staged
//!   sends, waiting while the elected replayer (shard 0) replays them
//!   against the shared link state and plans the next window, and
//!   collecting the inbox. Shard 0's own replay/plan work is charged
//!   here too (it stands where the old coordinator thread stood);
//! * **inject** — merging cross-shard arrivals into the local event
//!   queue at window start;
//! * **execute** — running handler/dispatcher/poll events;
//! * **queue** — queue and frontier maintenance (the boundary `probe`
//!   scan, and for the sequential loop the per-event candidate scan).
//!
//! The ledger's phases are contiguous by construction (each phase is
//! closed by a single clock read that also opens the next), so per shard
//! `sync + stall + inject + execute + queue + other == wall` exactly,
//! where *other* is the unattributed remainder (thread spawn/teardown).
//! Per-window records additionally capture events/window,
//! staged-injection counts, whether the window was fused, and the
//! maximum local queue depth, bounded by [`MAX_WINDOW_RECS`] so
//! pathological runs cannot allocate without limit.
//!
//! Host-time facts are deliberately kept **out** of the deterministic
//! report surface: [`ProfReport`] lives in
//! [`crate::SimReport::prof`], which is excluded from the report's
//! `PartialEq`, never printed to bench stdout, and serialized only into
//! the `PROF_<bin>.json` / `PROF_<bin>_hosttrace.json` artifacts — the
//! byte-identical-across-K guarantees of `SimReport`/`SPANS_`/
//! `METRICS_`/`CHECK_` are untouched.

use std::fmt::Write as _;
use std::time::Instant;

/// Per-window records kept per shard; windows beyond this are folded
/// into the aggregate totals only (counted in
/// [`ShardProf::windows_truncated`]).
pub const MAX_WINDOW_RECS: usize = 16_384;

/// Events per synthetic "window" of the sequential instant-network
/// loop, which has no barriers of its own — chunking gives its single
/// track the same per-window resolution as a shard.
pub const SEQ_CHUNK_EVENTS: u64 = 4096;

/// One window's host-time ledger on one shard. `start_ns` is relative
/// to the run's shared clock anchor, so window records from different
/// shard threads line up on one timeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowRec {
    /// Host ns (anchor-relative) when this window's boundary began.
    pub start_ns: u64,
    /// Fused-boundary handshake (barrier + shared decision, no replay).
    pub sync_ns: u64,
    /// Coordinated-boundary cost (deposit, replay wait, inbox collect).
    pub stall_ns: u64,
    /// Staging cross-shard arrivals into the local queue.
    pub inject_ns: u64,
    /// Executing events.
    pub execute_ns: u64,
    /// Queue/frontier maintenance (the summarize scan).
    pub queue_ns: u64,
    /// Events executed in this window.
    pub events: u64,
    /// Sends/timers staged for the barrier during this window.
    pub injections: u64,
    /// Maximum local event-queue depth (right after arrival staging).
    pub queue_depth: u64,
    /// This window ran fused: its boundary skipped replay/coordination.
    pub fused: bool,
}

impl WindowRec {
    fn active_ns(&self) -> u64 {
        self.sync_ns + self.stall_ns + self.inject_ns + self.execute_ns + self.queue_ns
    }
}

/// One shard thread's finished host-time profile. The sequential loop
/// reports exactly one of these (shard 0 of 1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardProf {
    /// Shard id (round-robin node owner, matches the executor).
    pub shard: usize,
    /// Total thread wall time, from ledger start to finish.
    pub wall_ns: u64,
    /// Total fused-boundary handshake time.
    pub sync_ns: u64,
    /// Total coordinated-boundary time.
    pub stall_ns: u64,
    /// Total cross-shard arrival staging time.
    pub inject_ns: u64,
    /// Total event-execution time.
    pub execute_ns: u64,
    /// Total queue/frontier maintenance time.
    pub queue_ns: u64,
    /// Windows this shard ran.
    pub windows: u64,
    /// Windows that ran fused (no replay, no coordination at entry).
    pub fused_windows: u64,
    /// Events this shard executed.
    pub events: u64,
    /// Sends/timers this shard staged for the barrier.
    pub injections: u64,
    /// Maximum local event-queue depth over the whole run.
    pub max_queue_depth: u64,
    /// Largest single-window event count.
    pub max_window_events: u64,
    /// Windows beyond [`MAX_WINDOW_RECS`] (aggregated but not recorded).
    pub windows_truncated: u64,
    /// Per-window records, oldest first, capped at [`MAX_WINDOW_RECS`].
    pub recs: Vec<WindowRec>,
}

impl ShardProf {
    /// Wall time not attributed to any phase (thread spawn/teardown).
    /// By construction
    /// `sync + stall + inject + execute + queue + other == wall`.
    pub fn other_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(
            self.sync_ns + self.stall_ns + self.inject_ns + self.execute_ns + self.queue_ns,
        )
    }

    /// Mean events per window (0 when no window ran).
    pub fn events_per_window(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.events as f64 / self.windows as f64
        }
    }
}

/// The live per-shard ledger the executor drives. Phases are closed in
/// order by [`ShardClock::stall`] / [`ShardClock::inject`] /
/// [`ShardClock::execute`] / [`ShardClock::queue`]; every close reads
/// the clock once and opens the next phase, so no host time between
/// ledger start and the last close can escape attribution.
pub(crate) struct ShardClock {
    anchor: Instant,
    start_ns: u64,
    mark: u64,
    win: WindowRec,
    rec: ShardProf,
}

impl ShardClock {
    /// Open a ledger for `shard` against the run's shared `anchor`.
    pub(crate) fn new(shard: usize, anchor: Instant) -> Self {
        let now = anchor.elapsed().as_nanos() as u64;
        ShardClock {
            anchor,
            start_ns: now,
            mark: now,
            win: WindowRec {
                start_ns: now,
                ..WindowRec::default()
            },
            rec: ShardProf {
                shard,
                ..ShardProf::default()
            },
        }
    }

    fn phase(&mut self) -> u64 {
        let now = self.anchor.elapsed().as_nanos() as u64;
        let dt = now.saturating_sub(self.mark);
        self.mark = now;
        dt
    }

    /// Close a fused-boundary handshake phase (barrier + decision).
    pub(crate) fn sync(&mut self) {
        let dt = self.phase();
        self.win.sync_ns += dt;
    }

    /// Mark the window under assembly as fused (its boundary skipped
    /// replay and coordination entirely).
    pub(crate) fn mark_fused(&mut self) {
        self.win.fused = true;
    }

    /// Close a coordinated-boundary phase.
    pub(crate) fn stall(&mut self) {
        let dt = self.phase();
        self.win.stall_ns += dt;
    }

    /// Close an arrival-staging phase; `depth` is the local queue depth
    /// right after staging.
    pub(crate) fn inject(&mut self, arrivals: u64, depth: u64) {
        let dt = self.phase();
        self.win.inject_ns += dt;
        let _ = arrivals;
        self.win.queue_depth = self.win.queue_depth.max(depth);
    }

    /// Close an execution phase covering `events` events.
    pub(crate) fn execute(&mut self, events: u64) {
        let dt = self.phase();
        self.win.execute_ns += dt;
        self.win.events += events;
    }

    /// Close a queue-maintenance phase; `staged` counts the injections
    /// parked for the barrier during the window.
    pub(crate) fn queue(&mut self, staged: u64) {
        let dt = self.phase();
        self.win.queue_ns += dt;
        self.win.injections += staged;
    }

    /// Events accumulated in the window under assembly (the sequential
    /// loop uses this to close synthetic windows every
    /// [`SEQ_CHUNK_EVENTS`]).
    pub(crate) fn window_events(&self) -> u64 {
        self.win.events
    }

    /// Fold the window under assembly into the shard totals and start
    /// the next one.
    pub(crate) fn window(&mut self) {
        let win = std::mem::replace(
            &mut self.win,
            WindowRec {
                start_ns: self.mark,
                ..WindowRec::default()
            },
        );
        self.rec.windows += 1;
        if win.fused {
            self.rec.fused_windows += 1;
        }
        self.rec.sync_ns += win.sync_ns;
        self.rec.stall_ns += win.stall_ns;
        self.rec.inject_ns += win.inject_ns;
        self.rec.execute_ns += win.execute_ns;
        self.rec.queue_ns += win.queue_ns;
        self.rec.events += win.events;
        self.rec.injections += win.injections;
        self.rec.max_queue_depth = self.rec.max_queue_depth.max(win.queue_depth);
        self.rec.max_window_events = self.rec.max_window_events.max(win.events);
        if self.rec.recs.len() < MAX_WINDOW_RECS {
            self.rec.recs.push(win);
        } else {
            self.rec.windows_truncated += 1;
        }
    }

    /// Close the ledger: fold a non-empty partial window and stamp the
    /// thread wall time.
    pub(crate) fn finish(mut self) -> ShardProf {
        if self.win.active_ns() > 0 || self.win.events > 0 {
            self.window();
        }
        let now = self.anchor.elapsed().as_nanos() as u64;
        self.rec.wall_ns = now.saturating_sub(self.start_ns);
        self.rec
    }
}

/// The coordinator's (barrier-side) host-time profile: the cost of
/// replaying staged injections against the shared link state and of
/// planning the next window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoordProf {
    /// Replaying staged sends/timers in canonical order (sort + admit).
    pub replay_ns: u64,
    /// Window planning (frontier merge, poll gating, command build).
    pub plan_ns: u64,
    /// Barriers executed.
    pub windows: u64,
    /// Staged operations replayed.
    pub injections: u64,
}

/// The live coordinator ledger.
pub(crate) struct CoordClock {
    anchor: Instant,
    mark: u64,
    rec: CoordProf,
}

impl CoordClock {
    pub(crate) fn new(anchor: Instant) -> Self {
        CoordClock {
            anchor,
            mark: anchor.elapsed().as_nanos() as u64,
            rec: CoordProf::default(),
        }
    }

    /// Re-arm the phase mark at barrier entry (the time since the last
    /// barrier belongs to the shards, not the coordinator).
    pub(crate) fn enter(&mut self) {
        self.mark = self.anchor.elapsed().as_nanos() as u64;
    }

    fn phase(&mut self) -> u64 {
        let now = self.anchor.elapsed().as_nanos() as u64;
        let dt = now.saturating_sub(self.mark);
        self.mark = now;
        dt
    }

    /// Close the replay phase covering `injections` staged operations.
    pub(crate) fn replay(&mut self, injections: u64) {
        let dt = self.phase();
        self.rec.replay_ns += dt;
        self.rec.injections += injections;
    }

    /// Close the planning phase (one barrier done).
    pub(crate) fn plan(&mut self) {
        let dt = self.phase();
        self.rec.plan_ns += dt;
        self.rec.windows += 1;
    }

    pub(crate) fn finish(self) -> CoordProf {
        self.rec
    }
}

/// A whole run's host-time profile: one [`ShardProf`] per executor
/// shard thread (or a single one for the sequential loop), plus the
/// coordinator ledger for windowed runs.
///
/// Carried in [`crate::SimReport::prof`] but excluded from the
/// report's `PartialEq` — host facts must never leak into the
/// deterministic comparison surface.
#[derive(Clone, Debug)]
pub struct ProfReport {
    /// `"windowed"` or `"sequential"` (the instant-network loop).
    pub mode: &'static str,
    /// Shard count of the run (1 for the sequential loop).
    pub k: usize,
    /// Host cores visible to this process when the run started.
    pub host_cores: usize,
    /// End-to-end engine wall time (host ns).
    pub wall_ns: u64,
    /// Barrier-side ledger (windowed runs only).
    pub coordinator: Option<CoordProf>,
    /// Per-shard ledgers, ordered by shard id.
    pub shards: Vec<ShardProf>,
}

/// Aggregate phase totals over every shard of a [`ProfReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfTotals {
    /// Summed shard wall time (denominator of every fraction).
    pub wall_ns: u64,
    /// Summed fused-boundary handshake time.
    pub sync_ns: u64,
    /// Summed coordinated-boundary time.
    pub stall_ns: u64,
    /// Summed arrival-staging time.
    pub inject_ns: u64,
    /// Summed event-execution time.
    pub execute_ns: u64,
    /// Summed queue-maintenance time.
    pub queue_ns: u64,
    /// Summed unattributed time.
    pub other_ns: u64,
}

impl ProfTotals {
    fn frac(&self, part: u64) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            part as f64 / self.wall_ns as f64
        }
    }
}

impl ProfReport {
    /// Sum the per-shard ledgers.
    pub fn totals(&self) -> ProfTotals {
        let mut t = ProfTotals::default();
        for s in &self.shards {
            t.wall_ns += s.wall_ns;
            t.sync_ns += s.sync_ns;
            t.stall_ns += s.stall_ns;
            t.inject_ns += s.inject_ns;
            t.execute_ns += s.execute_ns;
            t.queue_ns += s.queue_ns;
            t.other_ns += s.other_ns();
        }
        t
    }

    /// The dominant *overhead* phase (execute is the useful work):
    /// whichever of stall/inject/queue/other ate the most shard time.
    pub fn top_overhead(&self) -> (&'static str, f64) {
        let t = self.totals();
        let cands = [
            ("stall", t.stall_ns),
            ("sync", t.sync_ns),
            ("inject", t.inject_ns),
            ("queue", t.queue_ns),
            ("other", t.other_ns),
        ];
        let (name, ns) = cands
            .into_iter()
            .max_by_key(|&(_, ns)| ns)
            .unwrap_or(("stall", 0));
        (name, t.frac(ns))
    }

    /// One-screen human summary — what the console's `prof` command and
    /// `hal-perf summarize` print.
    pub fn summary(&self) -> String {
        let t = self.totals();
        let fused: u64 = self.shards.iter().map(|s| s.fused_windows).sum();
        let windows: u64 = self.shards.iter().map(|s| s.windows).sum();
        let mut out = format!(
            "host-time profile: mode={} k={} cores={} wall={:.3} ms fused={}/{} windows\n\
             phase      time(ms)   share\n\
             sync     {:>10.3}  {:>5.1}%\n\
             stall    {:>10.3}  {:>5.1}%\n\
             inject   {:>10.3}  {:>5.1}%\n\
             execute  {:>10.3}  {:>5.1}%\n\
             queue    {:>10.3}  {:>5.1}%\n\
             other    {:>10.3}  {:>5.1}%\n",
            self.mode,
            self.k,
            self.host_cores,
            self.wall_ns as f64 / 1e6,
            fused,
            windows,
            t.sync_ns as f64 / 1e6,
            100.0 * t.frac(t.sync_ns),
            t.stall_ns as f64 / 1e6,
            100.0 * t.frac(t.stall_ns),
            t.inject_ns as f64 / 1e6,
            100.0 * t.frac(t.inject_ns),
            t.execute_ns as f64 / 1e6,
            100.0 * t.frac(t.execute_ns),
            t.queue_ns as f64 / 1e6,
            100.0 * t.frac(t.queue_ns),
            t.other_ns as f64 / 1e6,
            100.0 * t.frac(t.other_ns),
        );
        let (top, frac) = self.top_overhead();
        let _ = writeln!(
            out,
            "top overhead: {top} ({:.1}% of shard wall time)",
            100.0 * frac
        );
        let _ = writeln!(
            out,
            "shard  wall(ms)  sync%  stall%  inject%  exec%  queue%  windows  fused  events  ev/win  inj  maxq"
        );
        for s in &self.shards {
            let w = s.wall_ns.max(1) as f64;
            let _ = writeln!(
                out,
                "{:<5} {:>9.3} {:>6.1} {:>7.1} {:>8.1} {:>6.1} {:>7.1} {:>8} {:>6} {:>7} {:>7.1} {:>4} {:>5}",
                s.shard,
                s.wall_ns as f64 / 1e6,
                100.0 * s.sync_ns as f64 / w,
                100.0 * s.stall_ns as f64 / w,
                100.0 * s.inject_ns as f64 / w,
                100.0 * s.execute_ns as f64 / w,
                100.0 * s.queue_ns as f64 / w,
                s.windows,
                s.fused_windows,
                s.events,
                s.events_per_window(),
                s.injections,
                s.max_queue_depth
            );
        }
        if let Some(c) = &self.coordinator {
            let _ = writeln!(
                out,
                "replayer: replay {:.3} ms, plan {:.3} ms over {} coordinated boundary(ies), {} injection(s)",
                c.replay_ns as f64 / 1e6,
                c.plan_ns as f64 / 1e6,
                c.windows,
                c.injections
            );
        }
        out
    }

    /// Serialize as JSON (dependency-free, like every other artifact).
    /// Host-time facts only — this is the one artifact family that is
    /// *expected* to differ between runs and hosts.
    pub fn to_json(&self) -> String {
        let t = self.totals();
        let (top, top_frac) = self.top_overhead();
        let mut shards = String::new();
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                shards.push_str(",\n");
            }
            let _ = write!(
                shards,
                "      {{\"shard\": {}, \"wall_ns\": {}, \"sync_ns\": {}, \"stall_ns\": {}, \
                 \"inject_ns\": {}, \
                 \"execute_ns\": {}, \"queue_ns\": {}, \"other_ns\": {}, \"windows\": {}, \
                 \"fused_windows\": {}, \
                 \"events\": {}, \"events_per_window\": {:.3}, \"injections\": {}, \
                 \"max_queue_depth\": {}, \"max_window_events\": {}, \"windows_truncated\": {}}}",
                s.shard,
                s.wall_ns,
                s.sync_ns,
                s.stall_ns,
                s.inject_ns,
                s.execute_ns,
                s.queue_ns,
                s.other_ns(),
                s.windows,
                s.fused_windows,
                s.events,
                s.events_per_window(),
                s.injections,
                s.max_queue_depth,
                s.max_window_events,
                s.windows_truncated
            );
        }
        let coord = match &self.coordinator {
            None => "null".to_string(),
            Some(c) => format!(
                "{{\"replay_ns\": {}, \"plan_ns\": {}, \"windows\": {}, \"injections\": {}}}",
                c.replay_ns, c.plan_ns, c.windows, c.injections
            ),
        };
        let fused: u64 = self.shards.iter().map(|s| s.fused_windows).sum();
        format!(
            "{{\n      \"mode\": \"{}\", \"k\": {}, \"host_cores\": {}, \"wall_ns\": {}, \
             \"fused_windows\": {},\n      \
             \"totals\": {{\"wall_ns\": {}, \"sync_frac\": {:.6}, \"stall_frac\": {:.6}, \
             \"inject_frac\": {:.6}, \
             \"execute_frac\": {:.6}, \"queue_frac\": {:.6}, \"other_frac\": {:.6}, \
             \"top_overhead\": \"{}\", \"top_overhead_frac\": {:.6}}},\n      \
             \"coordinator\": {},\n      \"shards\": [\n{}\n      ]\n    }}",
            self.mode,
            self.k,
            self.host_cores,
            self.wall_ns,
            fused,
            t.wall_ns,
            t.frac(t.sync_ns),
            t.frac(t.stall_ns),
            t.frac(t.inject_ns),
            t.frac(t.execute_ns),
            t.frac(t.queue_ns),
            t.frac(t.other_ns),
            top,
            top_frac,
            coord,
            shards
        )
    }

    /// Chrome trace-event objects (comma-separated, no enclosing
    /// brackets) for this run's host timeline: one track (`tid`) per
    /// shard thread under process `pid`, each window rendered as its
    /// stall/inject/execute/queue slices. Load the wrapping artifact in
    /// `chrome://tracing` or Perfetto.
    pub fn chrome_events(&self, pid: usize, process_name: &str) -> String {
        let mut out = String::new();
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
            esc(process_name)
        );
        for s in &self.shards {
            let _ = write!(
                out,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"args\":{{\"name\":\"{} shard {}\"}}}}",
                s.shard, self.mode, s.shard
            );
            for w in &s.recs {
                let mut ts = w.start_ns;
                for (name, dur) in [
                    ("sync", w.sync_ns),
                    ("stall", w.stall_ns),
                    ("inject", w.inject_ns),
                    ("execute", w.execute_ns),
                    ("queue", w.queue_ns),
                ] {
                    if dur == 0 {
                        ts += dur;
                        continue;
                    }
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\
                         \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"events\":{},\"injections\":{},\"queue_depth\":{}}}}}",
                        s.shard,
                        ts as f64 / 1e3,
                        dur as f64 / 1e3,
                        w.events,
                        w.injections,
                        w.queue_depth
                    );
                    ts += dur;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_phases_are_contiguous_and_sum_to_wall() {
        let anchor = Instant::now();
        let mut c = ShardClock::new(3, anchor);
        c.stall();
        c.inject(2, 7);
        std::thread::sleep(std::time::Duration::from_millis(2));
        c.execute(10);
        c.queue(4);
        c.window();
        c.sync();
        c.mark_fused();
        c.execute(5);
        c.queue(0);
        c.window();
        let p = c.finish();
        assert_eq!(p.shard, 3);
        assert_eq!(p.windows, 2);
        assert_eq!(p.fused_windows, 1);
        assert!(p.recs[1].fused && !p.recs[0].fused);
        assert_eq!(p.events, 15);
        assert_eq!(p.injections, 4);
        assert_eq!(p.max_queue_depth, 7);
        assert_eq!(p.max_window_events, 10);
        assert_eq!(p.recs.len(), 2);
        let sum = p.sync_ns + p.stall_ns + p.inject_ns + p.execute_ns + p.queue_ns + p.other_ns();
        assert_eq!(sum, p.wall_ns, "attribution must telescope to wall");
        assert!(p.execute_ns >= 2_000_000, "sleep charged to execute");
    }

    #[test]
    fn window_records_are_bounded() {
        let anchor = Instant::now();
        let mut c = ShardClock::new(0, anchor);
        for _ in 0..(MAX_WINDOW_RECS + 5) {
            c.execute(1);
            c.window();
        }
        let p = c.finish();
        assert_eq!(p.recs.len(), MAX_WINDOW_RECS);
        assert_eq!(p.windows_truncated, 5);
        assert_eq!(p.windows, (MAX_WINDOW_RECS + 5) as u64);
    }

    #[test]
    fn report_json_and_chrome_are_well_formed_enough() {
        let anchor = Instant::now();
        let mut c = ShardClock::new(0, anchor);
        c.stall();
        c.execute(3);
        c.queue(1);
        c.window();
        let mut cc = CoordClock::new(anchor);
        cc.enter();
        cc.replay(1);
        cc.plan();
        let rep = ProfReport {
            mode: "windowed",
            k: 1,
            host_cores: 1,
            wall_ns: 1000,
            coordinator: Some(cc.finish()),
            shards: vec![c.finish()],
        };
        let json = rep.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert!(json.contains("\"top_overhead\""), "{json}");
        assert!(json.contains("\"stall_frac\""), "{json}");
        assert!(json.contains("\"sync_frac\""), "{json}");
        assert!(json.contains("\"fused_windows\""), "{json}");
        let chrome = format!("[{}]", rep.chrome_events(0, "test \"run\""));
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
        assert!(chrome.contains("thread_name"), "{chrome}");
        assert!(chrome.contains("\\\"run\\\""), "label must be escaped");
        let s = rep.summary();
        assert!(s.contains("top overhead:"), "{s}");
    }

    #[test]
    fn totals_and_top_overhead() {
        let rep = ProfReport {
            mode: "windowed",
            k: 2,
            host_cores: 8,
            wall_ns: 200,
            coordinator: None,
            shards: vec![
                ShardProf {
                    shard: 0,
                    wall_ns: 100,
                    stall_ns: 60,
                    execute_ns: 30,
                    ..ShardProf::default()
                },
                ShardProf {
                    shard: 1,
                    wall_ns: 100,
                    stall_ns: 50,
                    execute_ns: 40,
                    ..ShardProf::default()
                },
            ],
        };
        let t = rep.totals();
        assert_eq!(t.wall_ns, 200);
        assert_eq!(t.stall_ns, 110);
        assert_eq!(t.other_ns, 20);
        let (top, frac) = rep.top_overhead();
        assert_eq!(top, "stall");
        assert!((frac - 0.55).abs() < 1e-9);
    }
}
