//! The simulated machine: N kernels over the discrete-event network.
//!
//! This is the "CM-5 partition" of the reproduction: the machine advances
//! whichever node (or packet) has the earliest virtual timestamp, so an
//! entire multicomputer executes deterministically on one host CPU. The
//! benchmark harnesses read the resulting virtual makespans — their shape
//! reproduces the paper's tables.

use crate::backend::BackendKind;
use crate::cost::CostModel;
use crate::error::{ConfigError, MachineError};
use crate::gc::GcReport;
use crate::timeline::{SpanKind, Timeline};
use crate::kernel::{with_system_ctx, Ctx, Kernel, KernelConfig, NetOut};
use crate::message::Value;
use crate::registry::BehaviorRegistry;
use crate::wire::KMsg;
use hal_am::{FaultPlan, LinkModel, NodeId, SimNetwork};
use hal_des::{StatSet, VirtualTime};
use std::sync::Arc;

/// What a machine records while it runs — the one knob behind the
/// [`MachineConfigBuilder::observe`] entry point. Each flag maps to one
/// observability subsystem; all default to off (the zero-overhead path).
///
/// ```
/// use hal_kernel::{MachineConfig, ObserveOpts};
/// let cfg = MachineConfig::builder(4)
///     .observe(ObserveOpts::none().trace(true).prof(true))
///     .build()
///     .unwrap();
/// assert!(cfg.record_trace && cfg.record_prof && !cfg.record_metrics);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObserveOpts {
    /// Flight-recorder events on every kernel ([`crate::trace`]).
    pub trace: bool,
    /// Live metrics timeseries on every kernel ([`crate::metrics`]).
    pub metrics: bool,
    /// Host-time executor profile ([`crate::prof`]).
    pub prof: bool,
    /// Per-node busy spans for timeline rendering ([`crate::timeline`]).
    pub timeline: bool,
}

impl ObserveOpts {
    /// Record nothing (the default).
    pub const fn none() -> Self {
        ObserveOpts {
            trace: false,
            metrics: false,
            prof: false,
            timeline: false,
        }
    }

    /// Record everything (debug sessions).
    pub const fn all() -> Self {
        ObserveOpts {
            trace: true,
            metrics: true,
            prof: true,
            timeline: true,
        }
    }

    /// Set flight-recorder tracing.
    pub const fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Set metrics-timeseries recording.
    pub const fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Set host-time executor profiling.
    pub const fn prof(mut self, on: bool) -> Self {
        self.prof = on;
        self
    }

    /// Set timeline-span recording.
    pub const fn timeline(mut self, on: bool) -> Self {
        self.timeline = on;
        self
    }
}

/// Machine-wide configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Partition size (number of nodes).
    pub nodes: usize,
    /// Which execution backend [`crate::backend::Machine::from_config`]
    /// selects: the deterministic DES executor
    /// ([`BackendKind::Sim`], the default) or the multi-threaded live
    /// runtime ([`BackendKind::Live`]).
    pub backend: BackendKind,
    /// Master seed: every per-node RNG stream derives from it.
    pub seed: u64,
    /// Cost model charged by every kernel.
    pub cost: CostModel,
    /// Network timing.
    pub link: LinkModel,
    /// Receiver-initiated random-polling load balancing (§7.2).
    pub load_balancing: bool,
    /// Three-phase bulk flow control (§6.5); disable for the Table 1
    /// ablation.
    pub flow_control: bool,
    /// Messages per actor scheduling quantum.
    pub quantum: usize,
    /// Stack-based inline dispatch depth bound (§6.3).
    pub max_stack_depth: u32,
    /// Safety valve: abort after this many simulation events (0 = off).
    pub max_events: u64,
    /// Ablation switches (paper design by default).
    pub opt: crate::kernel::OptFlags,
    /// Record per-node busy spans for timeline rendering
    /// ([`crate::timeline`]).
    pub record_timeline: bool,
    /// Record flight-recorder events on every kernel ([`crate::trace`]).
    pub record_trace: bool,
    /// Record live metrics timeseries on every kernel
    /// ([`crate::metrics`]).
    pub record_metrics: bool,
    /// Record the host-time executor profile ([`crate::prof`]): per-shard
    /// monotonic-clock attribution of where the wall time went. Off by
    /// default; never affects the deterministic report surface.
    pub record_prof: bool,
    /// Host worker threads for the windowed executor: `1` = single
    /// shard (the reference), `0` = all available cores, `k` = exactly
    /// `k` shards (clamped to the node count). The report is
    /// bit-identical for every value.
    pub parallelism: usize,
    /// Seeded fault plan (chaos subsystem): per-link drop / duplicate /
    /// reorder probabilities, timed link outages, node pause windows.
    /// [`FaultPlan::none`] (the default) is the byte-identical
    /// fault-free fast path.
    pub faults: FaultPlan,
    /// Live backend only: per-node receive-queue capacity in packets.
    /// A send finding the queue full blocks until the receiver drains
    /// (counted in `ThreadNetStats::backpressure_hits`). `0` =
    /// unbounded. Ignored by the sim backend.
    pub live_queue_capacity: usize,
}

impl MachineConfig {
    /// CM-5-calibrated defaults for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        MachineConfig {
            nodes,
            backend: BackendKind::Sim,
            seed: 0x5EED,
            cost: CostModel::cm5(),
            link: LinkModel::cm5(),
            load_balancing: false,
            flow_control: true,
            quantum: 16,
            max_stack_depth: 64,
            max_events: 0,
            opt: crate::kernel::OptFlags::default(),
            record_timeline: false,
            record_trace: false,
            record_metrics: false,
            record_prof: false,
            parallelism: 1,
            faults: FaultPlan::none(),
            live_queue_capacity: 4096,
        }
    }

    /// Start a validating builder from the CM-5 defaults for `nodes`
    /// nodes. The builder's [`MachineConfigBuilder::build`] rejects
    /// impossible configurations with a typed [`ConfigError`] instead of
    /// panicking mid-run.
    pub fn builder(nodes: usize) -> MachineConfigBuilder {
        MachineConfigBuilder {
            cfg: MachineConfig::new(nodes),
        }
    }

    /// Check the configuration's invariants (the builder's `build` gate;
    /// also run by [`SimMachine::new`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::ZeroNodes);
        }
        if self.nodes > u16::MAX as usize {
            return Err(ConfigError::TooManyNodes { nodes: self.nodes });
        }
        if self.quantum == 0 {
            return Err(ConfigError::ZeroQuantum);
        }
        for (which, p) in [
            ("drop", self.faults.drop),
            ("duplicate", self.faults.duplicate),
            ("reorder", self.faults.reorder),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::BadFaultRate { which });
            }
        }
        if self.backend == BackendKind::Live && self.faults.link_faults() {
            // The chaos fault injector lives in the simulated link
            // layer; a live run would silently ignore the plan, which
            // is worse than refusing it.
            return Err(ConfigError::LiveFaultsUnsupported);
        }
        if self.faults.link_faults() {
            let min_ns = crate::executor::lookahead_ns(&self.link).max(1);
            for (which, d) in [
                ("rto", self.faults.rto),
                ("fir_timeout", self.faults.fir_timeout),
            ] {
                if d.as_nanos() < min_ns {
                    return Err(ConfigError::TimeoutTooShort { which, min_ns });
                }
            }
        }
        Ok(())
    }

}

/// Validating builder for [`MachineConfig`] — see
/// [`MachineConfig::builder`].
#[derive(Clone)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

impl MachineConfigBuilder {
    /// Select the execution backend ([`BackendKind::Sim`] is the
    /// default).
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.cfg.backend = kind;
        self
    }

    /// Enable observability subsystems in one call — the single entry
    /// point that replaced the scattered `trace_if`/`metrics_if`/
    /// `prof_if` trio. Flags accumulate (OR) with whatever earlier
    /// calls enabled, so conditional harness code can layer opts.
    pub fn observe(mut self, opts: ObserveOpts) -> Self {
        self.cfg.record_trace |= opts.trace;
        self.cfg.record_metrics |= opts.metrics;
        self.cfg.record_prof |= opts.prof;
        self.cfg.record_timeline |= opts.timeline;
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Set the cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cfg.cost = cost;
        self
    }

    /// Set the link model.
    pub fn link(mut self, link: LinkModel) -> Self {
        self.cfg.link = link;
        self
    }

    /// Enable/disable random-polling load balancing (§7.2).
    pub fn load_balancing(mut self, on: bool) -> Self {
        self.cfg.load_balancing = on;
        self
    }

    /// Enable/disable three-phase bulk flow control (§6.5).
    pub fn flow_control(mut self, on: bool) -> Self {
        self.cfg.flow_control = on;
        self
    }

    /// Messages per actor scheduling quantum (must be positive).
    pub fn quantum(mut self, quantum: usize) -> Self {
        self.cfg.quantum = quantum;
        self
    }

    /// Stack-based inline dispatch depth bound (§6.3).
    pub fn max_stack_depth(mut self, depth: u32) -> Self {
        self.cfg.max_stack_depth = depth;
        self
    }

    /// Abort after this many simulation events (0 = off).
    pub fn max_events(mut self, n: u64) -> Self {
        self.cfg.max_events = n;
        self
    }

    /// Set the ablation flags.
    pub fn opt(mut self, opt: crate::kernel::OptFlags) -> Self {
        self.cfg.opt = opt;
        self
    }

    /// Record per-node busy spans for timeline rendering — shorthand
    /// for `observe(ObserveOpts::none().timeline(true))`.
    pub fn timeline(self) -> Self {
        self.observe(ObserveOpts::none().timeline(true))
    }

    /// Record flight-recorder events on every kernel — shorthand for
    /// `observe(ObserveOpts::none().trace(true))`.
    pub fn trace(self) -> Self {
        self.observe(ObserveOpts::none().trace(true))
    }

    /// Record flight-recorder events when `on`.
    #[deprecated(since = "0.8.0", note = "use observe(ObserveOpts::none().trace(on)) — shim kept for one PR")]
    pub fn trace_if(self, on: bool) -> Self {
        self.observe(ObserveOpts::none().trace(on))
    }

    /// Record live metrics timeseries on every kernel — shorthand for
    /// `observe(ObserveOpts::none().metrics(true))`.
    pub fn metrics(self) -> Self {
        self.observe(ObserveOpts::none().metrics(true))
    }

    /// Record metrics when `on`.
    #[deprecated(since = "0.8.0", note = "use observe(ObserveOpts::none().metrics(on)) — shim kept for one PR")]
    pub fn metrics_if(self, on: bool) -> Self {
        self.observe(ObserveOpts::none().metrics(on))
    }

    /// Record the host-time executor profile ([`crate::prof`]) —
    /// shorthand for `observe(ObserveOpts::none().prof(true))`.
    pub fn prof(self) -> Self {
        self.observe(ObserveOpts::none().prof(true))
    }

    /// Record the host-time profile when `on`.
    #[deprecated(since = "0.8.0", note = "use observe(ObserveOpts::none().prof(on)) — shim kept for one PR")]
    pub fn prof_if(self, on: bool) -> Self {
        self.observe(ObserveOpts::none().prof(on))
    }

    /// Host parallelism of the windowed executor (`0` = all cores).
    pub fn parallelism(mut self, k: usize) -> Self {
        self.cfg.parallelism = k;
        self
    }

    /// Install a seeded fault plan (chaos subsystem).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// Live-backend receive-queue capacity in packets (`0` = unbounded).
    pub fn live_queue_capacity(mut self, cap: usize) -> Self {
        self.cfg.live_queue_capacity = cap;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<MachineConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Result of running a simulated machine to completion.
///
/// `PartialEq` compares every field *except* [`SimReport::prof`] — the
/// parallel-equivalence tests assert bit-identical reports across
/// executor parallelism levels, and host-time facts are by design not
/// part of that deterministic surface.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Maximum node clock at completion — the parallel execution time.
    pub makespan: VirtualTime,
    /// Each node's final clock.
    pub node_clocks: Vec<VirtualTime>,
    /// Merged kernel + network statistics.
    pub stats: StatSet,
    /// Values actors posted via [`Ctx::report`].
    pub reports: Vec<(String, Value)>,
    /// Total simulation events dispatched.
    pub events: u64,
    /// Total actors created across all nodes.
    pub actors_created: u64,
    /// Merged flight-recorder events, present when
    /// [`MachineConfig::record_trace`] was set.
    pub trace: Option<crate::trace::TraceReport>,
    /// Merged metrics timeseries, present when
    /// [`MachineConfig::record_metrics`] was set.
    pub metrics: Option<crate::metrics::MetricsReport>,
    /// End-of-run quiescence audit plus the behavior-registry image —
    /// the protocol checker's ground truth ([`crate::audit`]).
    pub audit: crate::audit::MachineAudit,
    /// Host-time executor profile, present when
    /// [`MachineConfig::record_prof`] was set. Excluded from `PartialEq`:
    /// host wall-clock facts differ run to run and must never leak into
    /// the deterministic comparison surface.
    pub prof: Option<crate::prof::ProfReport>,
}

impl PartialEq for SimReport {
    fn eq(&self, other: &Self) -> bool {
        // `prof` deliberately omitted — see the field doc.
        self.makespan == other.makespan
            && self.node_clocks == other.node_clocks
            && self.stats == other.stats
            && self.reports == other.reports
            && self.events == other.events
            && self.actors_created == other.actors_created
            && self.trace == other.trace
            && self.metrics == other.metrics
            && self.audit == other.audit
    }
}

impl SimReport {
    /// First reported value under `key`, if any.
    pub fn value(&self, key: &str) -> Option<&Value> {
        self.reports.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All reported values under `key`.
    pub fn values(&self, key: &str) -> Vec<&Value> {
        self.reports
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v)
            .collect()
    }
}

enum Action {
    /// Deliver the next network packet.
    Net,
    /// Step node `i`'s dispatcher.
    Step(usize),
    /// Let idle node `i` send a load-balance poll.
    Poll(usize),
}

/// A simulated multicomputer partition.
pub struct SimMachine {
    cfg: MachineConfig,
    kernels: Vec<Kernel>,
    net: SimNetwork<KMsg>,
    events: u64,
    timeline: Timeline,
    last_prof: Option<crate::prof::ProfReport>,
}

impl SimMachine {
    /// Build a machine over a registry of behaviors.
    ///
    /// # Panics
    /// Panics on an invalid configuration. Use
    /// [`MachineConfig::builder`] to catch those as [`ConfigError`]
    /// values instead.
    pub fn new(cfg: MachineConfig, registry: Arc<BehaviorRegistry>) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let kernels = (0..cfg.nodes)
            .map(|i| {
                let kcfg = KernelConfig {
                    me: i as NodeId,
                    nodes: cfg.nodes,
                    cost: cfg.cost,
                    load_balancing: cfg.load_balancing && cfg.nodes > 1,
                    flow_control: cfg.flow_control,
                    quantum: cfg.quantum,
                    max_stack_depth: cfg.max_stack_depth,
                    seed: cfg.seed,
                    opt: cfg.opt,
                    trace: cfg.record_trace,
                    metrics: cfg.record_metrics,
                    faults: cfg.faults.clone(),
                    force_reliable: false,
                };
                Kernel::new(kcfg, Arc::clone(&registry))
            })
            .collect();
        // Pre-size the packet heap: fan-out workloads keep O(nodes)
        // packets in flight, and growing a BinaryHeap mid-run moves
        // every entry.
        let mut net = SimNetwork::with_capacity(cfg.nodes, cfg.link, (cfg.nodes * 64).max(1024));
        net.set_fault_plan(&cfg.faults, cfg.seed);
        SimMachine {
            cfg,
            kernels,
            net,
            events: 0,
            timeline: Timeline::default(),
            last_prof: None,
        }
    }

    /// Partition size.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Access a node's kernel (tests, diagnostics).
    pub fn kernel(&self, node: NodeId) -> &Kernel {
        &self.kernels[node as usize]
    }

    /// Mutable kernel access (test-only surgery).
    pub fn kernel_mut(&mut self, node: NodeId) -> &mut Kernel {
        &mut self.kernels[node as usize]
    }

    /// Run harness code in a system context on `node` — the front-end
    /// loading a program: create initial actors, send kick-off messages.
    pub fn with_ctx<R>(&mut self, node: NodeId, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
        with_system_ctx(&mut self.kernels[node as usize], &mut self.net, f)
    }

    /// Run until every node is idle and the network is drained (or a
    /// kernel stopped the machine / the event valve blew).
    ///
    /// When the link model has nonzero lookahead (`inject_overhead +
    /// latency > 0`), the run uses the conservative time-window executor
    /// sharded over [`MachineConfig::parallelism`] host threads; its
    /// report is bit-identical for every parallelism level. A
    /// zero-lookahead link ([`LinkModel::instant`]) falls back to the
    /// sequential instant-network loop, which remains the reference for
    /// that regime.
    pub fn run(&mut self) -> Result<SimReport, MachineError> {
        if crate::executor::lookahead_ns(&self.cfg.link) == 0 {
            return self.run_instant();
        }
        let k = match self.cfg.parallelism {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            k => k,
        };
        self.run_windowed(k.clamp(1, self.cfg.nodes))
    }

    /// First typed failure recorded by any kernel, in node order.
    fn take_failure(&mut self) -> Option<MachineError> {
        self.kernels.iter_mut().find_map(|k| k.failed.take())
    }

    /// The windowed executor: disassemble the network, run the engine
    /// over `k` shards, reassemble.
    fn run_windowed(&mut self, k: usize) -> Result<SimReport, MachineError> {
        let net = std::mem::replace(&mut self.net, SimNetwork::new(0, self.cfg.link));
        let (link, pending) = net.into_parts();
        let kernels = std::mem::take(&mut self.kernels);
        let out = crate::executor::run(
            kernels,
            link,
            pending,
            self.events,
            k,
            self.cfg.load_balancing,
            self.cfg.max_events,
            self.cfg.record_timeline,
            self.cfg.record_prof,
        );
        self.kernels = out.kernels;
        self.net = SimNetwork::from_parts(out.link, out.pending);
        self.events = out.events;
        if out.prof.is_some() {
            self.last_prof = out.prof;
        }
        for (node, start, end, kind) in out.spans {
            self.timeline.push(node, start, end, kind);
        }
        if let Some(e) = out.error {
            return Err(e);
        }
        if let Some(e) = self.take_failure() {
            return Err(e);
        }
        Ok(self.report())
    }

    /// Sequential reference loop for zero-lookahead links.
    ///
    /// Under [`MachineConfig::record_prof`] it keeps the same host-time
    /// ledger as an executor shard — one track, with the per-event
    /// candidate scan charged as *queue* and dispatch as *execute*,
    /// chunked into synthetic windows every
    /// [`crate::prof::SEQ_CHUNK_EVENTS`] events — so seq/par attribution
    /// is directly comparable.
    fn run_instant(&mut self) -> Result<SimReport, MachineError> {
        use crate::prof::{ProfReport, ShardClock, SEQ_CHUNK_EVENTS};
        let anchor = std::time::Instant::now();
        let mut clock = self.cfg.record_prof.then(|| ShardClock::new(0, anchor));
        loop {
            if self.kernels.iter().any(|k| k.stopped) {
                break;
            }
            if self.cfg.max_events > 0 && self.events >= self.cfg.max_events {
                return Err(MachineError::MaxEvents {
                    limit: self.cfg.max_events,
                });
            }
            let events_before = self.events;
            let action = self.next_action();
            if let Some(c) = clock.as_mut() {
                c.queue(0); // candidate scan = frontier maintenance
            }
            let Some(action) = action else {
                break; // fully drained
            };
            self.events += 1;
            if std::env::var("HAL_TRACE").is_ok() && self.events < 80 {
                match &action {
                    Action::Net => {
                        eprintln!("[{:>6}] NET   next={:?}", self.events, self.net.peek_time());
                    }
                    Action::Step(i) => eprintln!(
                        "[{:>6}] STEP  node={} clock={} ready={}",
                        self.events, i, self.kernels[*i].clock, self.kernels[*i].ready_len()
                    ),
                    Action::Poll(i) => eprintln!("[{:>6}] POLL  node={}", self.events, i),
                }
            }
            match action {
                Action::Net => {
                    let (t, pkt) = self.net.pop().expect("next_action said Net");
                    self.deliver_packet(t, pkt);
                    // Batch-drain packets arriving at the same instant:
                    // delivery outranks every other action at `t`, so
                    // the full candidate scan cannot choose differently
                    // — this skips a heap sift + O(nodes) scan per
                    // packet in hot fan-in phases.
                    while self.net.peek_time() == Some(t) {
                        if self.kernels.iter().any(|k| k.stopped) {
                            break;
                        }
                        if self.cfg.max_events > 0 && self.events >= self.cfg.max_events {
                            break;
                        }
                        let (_, pkt) = self.net.pop().expect("peeked");
                        self.events += 1;
                        self.deliver_packet(t, pkt);
                    }
                }
                Action::Step(i) => {
                    let k = &mut self.kernels[i];
                    let before = k.clock;
                    k.step(&mut self.net);
                    if self.cfg.record_timeline {
                        let after = self.kernels[i].clock;
                        self.timeline
                            .push(i as NodeId, before, after, SpanKind::Compute);
                    }
                }
                Action::Poll(i) => {
                    let k = &mut self.kernels[i];
                    // Advance the idle node to its poll window.
                    if let Some(t0) = k.balancer.poll_ready_at() {
                        k.clock = k.clock.max(t0);
                    }
                    k.send_steal_poll(&mut self.net);
                }
            }
            if let Some(c) = clock.as_mut() {
                c.execute(self.events - events_before);
                if c.window_events() >= SEQ_CHUNK_EVENTS {
                    c.window();
                }
            }
        }
        if let Some(c) = clock {
            self.last_prof = Some(ProfReport {
                mode: "sequential",
                k: 1,
                host_cores: crate::executor::host_cores(),
                wall_ns: anchor.elapsed().as_nanos() as u64,
                coordinator: None,
                shards: vec![c.finish()],
            });
        }
        if let Some(e) = self.take_failure() {
            return Err(e);
        }
        Ok(self.report())
    }

    /// Deliver one packet with interrupt semantics (§3): the node
    /// manager "steals the processor from the actor that is currently
    /// executing". If the node's clock is already past the arrival
    /// (mid-method), the handler logically runs AT the arrival time —
    /// its outbound packets (acks, relays, grants) leave immediately —
    /// while the interrupted method's completion slips by the handler's
    /// CPU time. Stale chaos timers are retired for free.
    fn deliver_packet(&mut self, t: VirtualTime, pkt: hal_am::Packet<KMsg>) {
        let node = pkt.dst;
        let k = &mut self.kernels[node as usize];
        if let Some((start, end)) = k.deliver(&mut self.net, t, pkt) {
            if self.cfg.record_timeline {
                self.timeline.push(node, start, end, SpanKind::Handler);
            }
        }
    }

    /// Choose the globally earliest next action, deterministically.
    ///
    /// Tie-break order at equal timestamps: packet delivery, then node
    /// steps by node index, then polls by node index — fixed so that
    /// reruns with one seed are bit-identical.
    fn next_action(&self) -> Option<Action> {
        let mut best: Option<(VirtualTime, u8, usize)> = None;
        let consider = |t: VirtualTime, rank: u8, idx: usize, best: &mut Option<(VirtualTime, u8, usize)>| {
            let cand = (t, rank, idx);
            if best.is_none_or(|b| cand < b) {
                *best = Some(cand);
            }
        };
        if let Some(t) = self.net.peek_time() {
            consider(t, 0, 0, &mut best);
        }
        for (i, k) in self.kernels.iter().enumerate() {
            if k.has_work() {
                consider(k.clock, 1, i, &mut best);
            }
        }
        if self.cfg.load_balancing && self.cfg.nodes > 1 {
            // Idle nodes may poll — but only while some node actually
            // holds ready work (the real system parks on an idle
            // interrupt; the simulation can see readiness globally).
            // In-flight packets deliberately do NOT count: steal traffic
            // itself would otherwise keep idle nodes polling each other
            // forever after the computation drains.
            let work_exists = self.kernels.iter().any(|k| k.has_work());
            if work_exists {
                for (i, k) in self.kernels.iter().enumerate() {
                    if !k.has_work() {
                        if let Some(t0) = k.balancer.poll_ready_at() {
                            consider(t0.max(k.clock), 2, i, &mut best);
                        }
                    }
                }
            }
        }
        best.map(|(_, rank, idx)| match rank {
            0 => Action::Net,
            1 => Action::Step(idx),
            _ => Action::Poll(idx),
        })
    }

    /// Snapshot the report without running.
    pub fn report(&self) -> SimReport {
        let mut stats = StatSet::new();
        let mut reports = Vec::new();
        let mut actors = 0;
        for k in &self.kernels {
            stats.merge(&k.stats);
            reports.extend(k.reports.iter().cloned());
            actors += k.actors_created();
        }
        stats.merge(self.net.stats());
        let node_clocks: Vec<_> = self.kernels.iter().map(|k| k.clock).collect();
        let makespan = node_clocks
            .iter()
            .copied()
            .max()
            .unwrap_or(VirtualTime::ZERO);
        // Chaos duplications whose copy could not be cloned: recorded
        // by the link state in canonical admission order (deterministic
        // across parallel K), surfaced as typed trace warnings and a
        // metrics counter — never silently dropped.
        let dup_failures = self.net.link().dup_clone_failures();
        let trace = self.cfg.record_trace.then(|| {
            let mut t = crate::trace::TraceReport::merge(
                self.kernels.iter().filter_map(|k| k.recorder()),
            );
            t.warnings.extend(dup_failures.iter().map(|d| crate::trace::TraceWarning {
                kind: crate::trace::WarningKind::DupCloneFailed,
                t: d.t,
                src: d.src,
                dst: d.dst,
            }));
            t
        });
        let metrics = self.cfg.record_metrics.then(|| {
            let mut report = crate::metrics::MetricsReport::merge(
                self.kernels.iter().filter_map(|k| k.metrics()),
            );
            // Fold trace-ring truncation in as a counter so the loss is
            // visible in the metrics artifact, not just on stderr.
            if let Some(t) = &trace {
                report.set_counter("trace.dropped_events", t.dropped);
            }
            // Mirror of the flight-recorder warning for the sampler
            // itself: cadence crossings beyond per-node capacity. Only
            // set when nonzero so complete runs keep their exact bytes.
            let dropped: u64 = report.nodes.iter().map(|n| n.samples_dropped).sum();
            if dropped > 0 {
                report.set_counter("metrics.dropped_samples", dropped);
            }
            // Only set when nonzero so clean runs keep their exact bytes.
            let unclonable = stats.get("net.fault_dup_unclonable");
            if unclonable > 0 {
                report.set_counter("net.fault_dup_unclonable", unclonable);
            }
            report
        });
        SimReport {
            makespan,
            node_clocks,
            stats,
            reports,
            events: self.events,
            actors_created: actors,
            trace,
            metrics,
            audit: self.quiescence_audit(),
            prof: self.last_prof.clone(),
        }
    }

    /// Audit leftover protocol state on every node — see
    /// [`crate::audit`]. Also embedded in every [`SimReport`].
    pub fn quiescence_audit(&self) -> crate::audit::MachineAudit {
        let behaviors = self
            .kernels
            .first()
            .map(|k| {
                k.registry()
                    .entries()
                    .into_iter()
                    .map(|(id, name)| (id.0, name.to_string()))
                    .collect()
            })
            .unwrap_or_default();
        crate::audit::MachineAudit {
            nodes: self.kernels.iter().map(|k| k.quiescence_audit()).collect(),
            behaviors,
        }
    }

    /// The network handle (tests needing raw injection).
    pub fn net_mut(&mut self) -> &mut impl NetOut {
        &mut self.net
    }

    /// The recorded timeline (empty unless
    /// [`MachineConfig::record_timeline`] was set).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Run a distributed garbage collection (§9 future work): the
    /// machine must be quiescent (no ready work, empty network — i.e.
    /// right after [`SimMachine::run`] drained). Returns what was freed,
    /// [`MachineError::NotQuiescent`] when called mid-computation, or
    /// [`MachineError::GcIncomplete`] if the protocol never converged.
    pub fn collect_garbage(&mut self) -> Result<GcReport, MachineError> {
        if self.net.in_flight() != 0 || self.kernels.iter().any(|k| k.has_work()) {
            return Err(MachineError::NotQuiescent);
        }
        self.kernels[0].start_gc(&mut self.net);
        self.run()?;
        // The coordinator posted gc_freed / gc_rounds / gc_live as its
        // most recent reports.
        let reports = &self.kernels[0].reports;
        let find_last = |key: &str| {
            reports
                .iter()
                .rev()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_int())
                .ok_or_else(|| MachineError::GcIncomplete {
                    missing: key.to_string(),
                })
        };
        Ok(GcReport {
            freed: find_last("gc_freed")? as u64,
            rounds: find_last("gc_rounds")? as u32,
            live: find_last("gc_live")? as u64,
        })
    }
}
