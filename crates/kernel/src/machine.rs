//! The simulated machine: N kernels over the discrete-event network.
//!
//! This is the "CM-5 partition" of the reproduction: the machine advances
//! whichever node (or packet) has the earliest virtual timestamp, so an
//! entire multicomputer executes deterministically on one host CPU. The
//! benchmark harnesses read the resulting virtual makespans — their shape
//! reproduces the paper's tables.

use crate::cost::CostModel;
use crate::gc::GcReport;
use crate::timeline::{SpanKind, Timeline};
use crate::kernel::{with_system_ctx, Ctx, Kernel, KernelConfig, NetOut};
use crate::message::Value;
use crate::registry::BehaviorRegistry;
use crate::wire::KMsg;
use hal_am::{LinkModel, NodeId, SimNetwork};
use hal_des::{StatSet, VirtualTime};
use std::sync::Arc;

/// Machine-wide configuration.
#[derive(Clone)]
pub struct MachineConfig {
    /// Partition size (number of nodes).
    pub nodes: usize,
    /// Master seed: every per-node RNG stream derives from it.
    pub seed: u64,
    /// Cost model charged by every kernel.
    pub cost: CostModel,
    /// Network timing.
    pub link: LinkModel,
    /// Receiver-initiated random-polling load balancing (§7.2).
    pub load_balancing: bool,
    /// Three-phase bulk flow control (§6.5); disable for the Table 1
    /// ablation.
    pub flow_control: bool,
    /// Messages per actor scheduling quantum.
    pub quantum: usize,
    /// Stack-based inline dispatch depth bound (§6.3).
    pub max_stack_depth: u32,
    /// Safety valve: abort after this many simulation events (0 = off).
    pub max_events: u64,
    /// Ablation switches (paper design by default).
    pub opt: crate::kernel::OptFlags,
    /// Record per-node busy spans for timeline rendering
    /// ([`crate::timeline`]).
    pub record_timeline: bool,
    /// Record flight-recorder events on every kernel ([`crate::trace`]).
    pub record_trace: bool,
    /// Host worker threads for the windowed executor: `1` = single
    /// shard (the reference), `0` = all available cores, `k` = exactly
    /// `k` shards (clamped to the node count). The report is
    /// bit-identical for every value.
    pub parallelism: usize,
}

impl MachineConfig {
    /// CM-5-calibrated defaults for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        MachineConfig {
            nodes,
            seed: 0x5EED,
            cost: CostModel::cm5(),
            link: LinkModel::cm5(),
            load_balancing: false,
            flow_control: true,
            quantum: 16,
            max_stack_depth: 64,
            max_events: 0,
            opt: crate::kernel::OptFlags::default(),
            record_timeline: false,
            record_trace: false,
            parallelism: 1,
        }
    }

    /// Enable load balancing (builder style).
    pub fn with_load_balancing(mut self, on: bool) -> Self {
        self.load_balancing = on;
        self
    }

    /// Enable/disable bulk flow control (builder style).
    pub fn with_flow_control(mut self, on: bool) -> Self {
        self.flow_control = on;
        self
    }

    /// Set the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the ablation flags (builder style).
    pub fn with_opt(mut self, opt: crate::kernel::OptFlags) -> Self {
        self.opt = opt;
        self
    }

    /// Record busy spans for timeline rendering (builder style).
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Record flight-recorder events on every kernel (builder style).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Set the host parallelism of the windowed executor (builder
    /// style): `0` = all available cores, otherwise exactly `k` worker
    /// threads (clamped to the node count at run time). Reports are
    /// bit-identical across all values of `k`.
    pub fn with_parallelism(mut self, k: usize) -> Self {
        self.parallelism = k;
        self
    }
}

/// Result of running a simulated machine to completion.
///
/// `PartialEq` compares every field — the parallel-equivalence tests
/// assert bit-identical reports across executor parallelism levels.
#[derive(Debug, PartialEq)]
pub struct SimReport {
    /// Maximum node clock at completion — the parallel execution time.
    pub makespan: VirtualTime,
    /// Each node's final clock.
    pub node_clocks: Vec<VirtualTime>,
    /// Merged kernel + network statistics.
    pub stats: StatSet,
    /// Values actors posted via [`Ctx::report`].
    pub reports: Vec<(String, Value)>,
    /// Total simulation events dispatched.
    pub events: u64,
    /// Total actors created across all nodes.
    pub actors_created: u64,
    /// Merged flight-recorder events, present when
    /// [`MachineConfig::record_trace`] was set.
    pub trace: Option<crate::trace::TraceReport>,
}

impl SimReport {
    /// First reported value under `key`, if any.
    pub fn value(&self, key: &str) -> Option<&Value> {
        self.reports.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All reported values under `key`.
    pub fn values(&self, key: &str) -> Vec<&Value> {
        self.reports
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v)
            .collect()
    }
}

enum Action {
    /// Deliver the next network packet.
    Net,
    /// Step node `i`'s dispatcher.
    Step(usize),
    /// Let idle node `i` send a load-balance poll.
    Poll(usize),
}

/// A simulated multicomputer partition.
pub struct SimMachine {
    cfg: MachineConfig,
    kernels: Vec<Kernel>,
    net: SimNetwork<KMsg>,
    events: u64,
    timeline: Timeline,
}

impl SimMachine {
    /// Build a machine over a registry of behaviors.
    pub fn new(cfg: MachineConfig, registry: Arc<BehaviorRegistry>) -> Self {
        assert!(cfg.nodes >= 1, "a partition needs at least one node");
        assert!(
            cfg.nodes <= u16::MAX as usize,
            "partition exceeds the 16-bit node id space"
        );
        let kernels = (0..cfg.nodes)
            .map(|i| {
                let kcfg = KernelConfig {
                    me: i as NodeId,
                    nodes: cfg.nodes,
                    cost: cfg.cost,
                    load_balancing: cfg.load_balancing && cfg.nodes > 1,
                    flow_control: cfg.flow_control,
                    quantum: cfg.quantum,
                    max_stack_depth: cfg.max_stack_depth,
                    seed: cfg.seed,
                    opt: cfg.opt,
                    trace: cfg.record_trace,
                };
                Kernel::new(kcfg, Arc::clone(&registry))
            })
            .collect();
        // Pre-size the packet heap: fan-out workloads keep O(nodes)
        // packets in flight, and growing a BinaryHeap mid-run moves
        // every entry.
        let net = SimNetwork::with_capacity(cfg.nodes, cfg.link, (cfg.nodes * 64).max(1024));
        SimMachine {
            cfg,
            kernels,
            net,
            events: 0,
            timeline: Timeline::default(),
        }
    }

    /// Partition size.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Access a node's kernel (tests, diagnostics).
    pub fn kernel(&self, node: NodeId) -> &Kernel {
        &self.kernels[node as usize]
    }

    /// Mutable kernel access (test-only surgery).
    pub fn kernel_mut(&mut self, node: NodeId) -> &mut Kernel {
        &mut self.kernels[node as usize]
    }

    /// Run harness code in a system context on `node` — the front-end
    /// loading a program: create initial actors, send kick-off messages.
    pub fn with_ctx<R>(&mut self, node: NodeId, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
        with_system_ctx(&mut self.kernels[node as usize], &mut self.net, f)
    }

    /// Run until every node is idle and the network is drained (or a
    /// kernel stopped the machine / the event valve blew).
    ///
    /// When the link model has nonzero lookahead (`inject_overhead +
    /// latency > 0`), the run uses the conservative time-window executor
    /// sharded over [`MachineConfig::parallelism`] host threads; its
    /// report is bit-identical for every parallelism level. A
    /// zero-lookahead link ([`LinkModel::instant`]) falls back to the
    /// sequential instant-network loop, which remains the reference for
    /// that regime.
    pub fn run(&mut self) -> SimReport {
        if crate::executor::lookahead_ns(&self.cfg.link) == 0 {
            return self.run_instant();
        }
        let k = match self.cfg.parallelism {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            k => k,
        };
        self.run_windowed(k.clamp(1, self.cfg.nodes))
    }

    /// The windowed executor: disassemble the network, run the engine
    /// over `k` shards, reassemble.
    fn run_windowed(&mut self, k: usize) -> SimReport {
        let net = std::mem::replace(&mut self.net, SimNetwork::new(0, self.cfg.link));
        let (link, pending) = net.into_parts();
        let kernels = std::mem::take(&mut self.kernels);
        let out = crate::executor::run(
            kernels,
            link,
            pending,
            self.events,
            k,
            self.cfg.load_balancing,
            self.cfg.max_events,
            self.cfg.record_timeline,
        );
        self.kernels = out.kernels;
        self.net = SimNetwork::from_parts(out.link, out.pending);
        self.events = out.events;
        for (node, start, end, kind) in out.spans {
            self.timeline.push(node, start, end, kind);
        }
        self.report()
    }

    /// Sequential reference loop for zero-lookahead links.
    fn run_instant(&mut self) -> SimReport {
        loop {
            if self.kernels.iter().any(|k| k.stopped) {
                break;
            }
            if self.cfg.max_events > 0 && self.events >= self.cfg.max_events {
                panic!(
                    "SimMachine exceeded max_events = {} (livelock?)",
                    self.cfg.max_events
                );
            }
            let Some(action) = self.next_action() else {
                break; // fully drained
            };
            self.events += 1;
            if std::env::var("HAL_TRACE").is_ok() && self.events < 80 {
                match &action {
                    Action::Net => {
                        eprintln!("[{:>6}] NET   next={:?}", self.events, self.net.peek_time());
                    }
                    Action::Step(i) => eprintln!(
                        "[{:>6}] STEP  node={} clock={} ready={}",
                        self.events, i, self.kernels[*i].clock, self.kernels[*i].ready_len()
                    ),
                    Action::Poll(i) => eprintln!("[{:>6}] POLL  node={}", self.events, i),
                }
            }
            match action {
                Action::Net => {
                    let (t, pkt) = self.net.pop().expect("next_action said Net");
                    self.deliver_packet(t, pkt);
                    // Batch-drain packets arriving at the same instant:
                    // delivery outranks every other action at `t`, so
                    // the full candidate scan cannot choose differently
                    // — this skips a heap sift + O(nodes) scan per
                    // packet in hot fan-in phases.
                    while self.net.peek_time() == Some(t) {
                        if self.kernels.iter().any(|k| k.stopped) {
                            break;
                        }
                        if self.cfg.max_events > 0 && self.events >= self.cfg.max_events {
                            break;
                        }
                        let (_, pkt) = self.net.pop().expect("peeked");
                        self.events += 1;
                        self.deliver_packet(t, pkt);
                    }
                }
                Action::Step(i) => {
                    let k = &mut self.kernels[i];
                    let before = k.clock;
                    k.step(&mut self.net);
                    if self.cfg.record_timeline {
                        let after = self.kernels[i].clock;
                        self.timeline
                            .push(i as NodeId, before, after, SpanKind::Compute);
                    }
                }
                Action::Poll(i) => {
                    let k = &mut self.kernels[i];
                    // Advance the idle node to its poll window.
                    if let Some(t0) = k.balancer.poll_ready_at() {
                        k.clock = k.clock.max(t0);
                    }
                    k.send_steal_poll(&mut self.net);
                }
            }
        }
        self.report()
    }

    /// Deliver one packet with interrupt semantics (§3): the node
    /// manager "steals the processor from the actor that is currently
    /// executing". If the node's clock is already past the arrival
    /// (mid-method), the handler logically runs AT the arrival time —
    /// its outbound packets (acks, relays, grants) leave immediately —
    /// while the interrupted method's completion slips by the handler's
    /// CPU time.
    fn deliver_packet(&mut self, t: VirtualTime, pkt: hal_am::Packet<KMsg>) {
        let node = pkt.dst;
        let k = &mut self.kernels[node as usize];
        let busy_until = k.clock;
        k.clock = t;
        k.handle_packet(&mut self.net, pkt);
        let handler_time = k.clock.since(t);
        k.clock = k.clock.max(busy_until + handler_time);
        if self.cfg.record_timeline {
            self.timeline.push(node, t, t + handler_time, SpanKind::Handler);
        }
    }

    /// Choose the globally earliest next action, deterministically.
    ///
    /// Tie-break order at equal timestamps: packet delivery, then node
    /// steps by node index, then polls by node index — fixed so that
    /// reruns with one seed are bit-identical.
    fn next_action(&self) -> Option<Action> {
        let mut best: Option<(VirtualTime, u8, usize)> = None;
        let consider = |t: VirtualTime, rank: u8, idx: usize, best: &mut Option<(VirtualTime, u8, usize)>| {
            let cand = (t, rank, idx);
            if best.is_none_or(|b| cand < b) {
                *best = Some(cand);
            }
        };
        if let Some(t) = self.net.peek_time() {
            consider(t, 0, 0, &mut best);
        }
        for (i, k) in self.kernels.iter().enumerate() {
            if k.has_work() {
                consider(k.clock, 1, i, &mut best);
            }
        }
        if self.cfg.load_balancing && self.cfg.nodes > 1 {
            // Idle nodes may poll — but only while some node actually
            // holds ready work (the real system parks on an idle
            // interrupt; the simulation can see readiness globally).
            // In-flight packets deliberately do NOT count: steal traffic
            // itself would otherwise keep idle nodes polling each other
            // forever after the computation drains.
            let work_exists = self.kernels.iter().any(|k| k.has_work());
            if work_exists {
                for (i, k) in self.kernels.iter().enumerate() {
                    if !k.has_work() {
                        if let Some(t0) = k.balancer.poll_ready_at() {
                            consider(t0.max(k.clock), 2, i, &mut best);
                        }
                    }
                }
            }
        }
        best.map(|(_, rank, idx)| match rank {
            0 => Action::Net,
            1 => Action::Step(idx),
            _ => Action::Poll(idx),
        })
    }

    /// Snapshot the report without running.
    pub fn report(&self) -> SimReport {
        let mut stats = StatSet::new();
        let mut reports = Vec::new();
        let mut actors = 0;
        for k in &self.kernels {
            stats.merge(&k.stats);
            reports.extend(k.reports.iter().cloned());
            actors += k.actors_created();
        }
        stats.merge(self.net.stats());
        let node_clocks: Vec<_> = self.kernels.iter().map(|k| k.clock).collect();
        let makespan = node_clocks
            .iter()
            .copied()
            .max()
            .unwrap_or(VirtualTime::ZERO);
        let trace = self.cfg.record_trace.then(|| {
            crate::trace::TraceReport::merge(self.kernels.iter().filter_map(|k| k.recorder()))
        });
        SimReport {
            makespan,
            node_clocks,
            stats,
            reports,
            events: self.events,
            actors_created: actors,
            trace,
        }
    }

    /// The network handle (tests needing raw injection).
    pub fn net_mut(&mut self) -> &mut impl NetOut {
        &mut self.net
    }

    /// The recorded timeline (empty unless
    /// [`MachineConfig::record_timeline`] was set).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Run a distributed garbage collection (§9 future work): the
    /// machine must be quiescent (no ready work, empty network — i.e.
    /// right after [`SimMachine::run`] drained). Returns what was freed.
    ///
    /// # Panics
    /// Panics if the machine is not quiescent or join continuations are
    /// still pending (a stuck program, not a collectable state).
    pub fn collect_garbage(&mut self) -> GcReport {
        assert!(
            self.net.in_flight() == 0 && self.kernels.iter().all(|k| !k.has_work()),
            "collect_garbage requires a quiescent machine"
        );
        self.kernels[0].start_gc(&mut self.net);
        self.run();
        // The coordinator posted gc_freed / gc_rounds / gc_live as its
        // most recent reports.
        let reports = &self.kernels[0].reports;
        let find_last = |key: &str| {
            reports
                .iter()
                .rev()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_int())
                .unwrap_or_else(|| panic!("GC did not complete: missing {key}"))
        };
        GcReport {
            freed: find_last("gc_freed") as u64,
            rounds: find_last("gc_rounds") as u32,
            live: find_last("gc_live") as u64,
        }
    }
}
