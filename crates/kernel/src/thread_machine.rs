//! The threaded machine: one OS thread per node, real channels.
//!
//! Functionally equivalent to [`crate::machine::SimMachine`] but with
//! genuine concurrency — the same kernel code, driven by per-node thread
//! loops over [`hal_am::thread_network`]. Used by examples and by
//! integration tests that verify the runtime carries no hidden
//! shared-memory dependencies between nodes.
//!
//! Termination is explicit: some actor calls `Ctx::stop`, which
//! broadcasts `Halt`. A wall-clock timeout backstops runaway programs.

use crate::kernel::{with_system_ctx, Ctx, Kernel, KernelConfig};
use crate::machine::MachineConfig;
use crate::message::Value;
use crate::registry::BehaviorRegistry;
use crate::wire::KMsg;
use hal_am::{thread_network, NodeId, ThreadEndpoint};
use hal_des::StatSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadReport {
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Merged kernel statistics.
    pub stats: StatSet,
    /// Values actors posted via [`Ctx::report`].
    pub reports: Vec<(String, Value)>,
    /// Total actors created.
    pub actors_created: u64,
    /// True if the run ended by timeout rather than `Ctx::stop`.
    pub timed_out: bool,
    /// Merged flight-recorder events, present when
    /// [`MachineConfig::record_trace`] was set. Virtual clocks drift
    /// independently across threaded nodes, so cross-node timestamps are
    /// comparable only loosely.
    pub trace: Option<crate::trace::TraceReport>,
}

impl ThreadReport {
    /// First reported value under `key`, if any.
    pub fn value(&self, key: &str) -> Option<&Value> {
        self.reports.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Run a threaded machine: `bootstrap` executes on node 0 before the
/// loops start (the front-end loading and kicking off the program); the
/// machine runs until an actor calls [`Ctx::stop`] or `timeout` elapses.
pub fn run_threaded(
    cfg: MachineConfig,
    registry: Arc<BehaviorRegistry>,
    timeout: Duration,
    bootstrap: impl FnOnce(&mut Ctx<'_>) + Send,
) -> ThreadReport {
    assert!(cfg.nodes >= 1);
    let abort = Arc::new(AtomicBool::new(false));
    let start = Instant::now();

    let mut endpoints = thread_network::<KMsg>(cfg.nodes);
    let mut kernels: Vec<Kernel> = (0..cfg.nodes)
        .map(|i| {
            let kcfg = KernelConfig {
                me: i as NodeId,
                nodes: cfg.nodes,
                cost: cfg.cost,
                load_balancing: cfg.load_balancing && cfg.nodes > 1,
                flow_control: cfg.flow_control,
                quantum: cfg.quantum,
                max_stack_depth: cfg.max_stack_depth,
                seed: cfg.seed,
                opt: cfg.opt,
                trace: cfg.record_trace,
                // Thread mode has no virtual clock: metrics sampling and
                // fault injection are simulation-only.
                metrics: false,
                faults: hal_am::FaultPlan::none(),
                force_reliable: false,
            };
            Kernel::new(kcfg, Arc::clone(&registry))
        })
        .collect();

    // Bootstrap on node 0 before any thread runs.
    {
        let k0 = &mut kernels[0];
        let ep0 = &mut endpoints[0];
        with_system_ctx(k0, ep0, bootstrap);
    }

    let handles: Vec<_> = kernels
        .into_iter()
        .zip(endpoints)
        .map(|(kernel, ep)| {
            let abort = Arc::clone(&abort);
            std::thread::spawn(move || node_loop(kernel, ep, abort))
        })
        .collect();

    // Watchdog: flip the abort flag on timeout.
    let mut timed_out = false;
    let kernels: Vec<Kernel> = {
        let deadline = start + timeout;
        // Poll joins with a deadline; threads exit on Halt or abort.
        let mut out = Vec::with_capacity(cfg.nodes);
        for h in handles {
            // We cannot join-with-timeout directly; the watchdog flag is
            // checked by node loops every millisecond, so setting it when
            // the deadline passes unblocks everything promptly.
            loop {
                if h.is_finished() {
                    break;
                }
                if Instant::now() >= deadline {
                    timed_out = true;
                    abort.store(true, Ordering::Relaxed);
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            out.push(h.join().expect("node thread panicked"));
        }
        out
    };

    let mut stats = StatSet::new();
    let mut reports = Vec::new();
    let mut actors = 0;
    for k in &kernels {
        stats.merge(&k.stats);
        reports.extend(k.reports.iter().cloned());
        actors += k.actors_created();
    }
    let trace = cfg.record_trace.then(|| {
        crate::trace::TraceReport::merge(kernels.iter().filter_map(|k| k.recorder()))
    });
    ThreadReport {
        wall: start.elapsed(),
        stats,
        reports,
        actors_created: actors,
        timed_out,
        trace,
    }
}

/// One node's event loop: drain packets, run ready actors, poll for work
/// when idle, exit on Halt/abort.
fn node_loop(
    mut kernel: Kernel,
    mut ep: ThreadEndpoint<KMsg>,
    abort: Arc<AtomicBool>,
) -> Kernel {
    let steal_backoff = kernel.config().cost.steal_poll_interval;
    loop {
        if kernel.stopped || abort.load(Ordering::Relaxed) {
            return kernel;
        }
        let mut progress = false;
        // Drain arrivals.
        while let Some(pkt) = ep.try_recv() {
            kernel.handle_packet(&mut ep, pkt);
            progress = true;
            if kernel.stopped {
                return kernel;
            }
        }
        // One scheduling step.
        if kernel.step(&mut ep) {
            progress = true;
        }
        if !progress {
            // Idle: maybe poll for work, then block briefly on the
            // network.
            let nodes = kernel.nodes();
            if nodes > 1 && kernel.balancer.may_poll(kernel.clock) {
                kernel.send_steal_poll(&mut ep);
            }
            match ep.recv_timeout(Duration::from_millis(1)) {
                Some(pkt) => {
                    kernel.handle_packet(&mut ep, pkt);
                }
                None => {
                    // Nothing arrived: advance virtual time past the poll
                    // backoff so the next idle iteration may poll again
                    // (virtual clocks otherwise only move with work).
                    kernel.clock += steal_backoff;
                }
            }
        }
    }
}
