//! Actors: the behavior trait, per-actor state, and the actor slab.
//!
//! An actor (§2.1) responds to a message by sending messages, creating
//! actors, and becoming a new behavior. "Communication between actors is
//! buffered: incoming messages are queued until the actor is ready to
//! process them." Per §6.1, HAL additionally supports *local
//! synchronization constraints* as disabling conditions: a message whose
//! method is currently disabled goes to the actor's **pending queue** and
//! is retried after each method execution.

use crate::addr::{ActorId, AddrKey, GroupId, Selector};
use crate::message::{Msg, Value};
use std::collections::VecDeque;

/// A behavior — the paper's "behavior template" (class) instantiated with
/// acquaintance state. Implemented by user/workload code; invoked by the
/// kernel's dispatcher.
pub trait Behavior: Send {
    /// Process one message. The kernel guarantees `enabled` returned true
    /// for this selector immediately before the call.
    fn dispatch(&mut self, ctx: &mut crate::kernel::Ctx<'_>, msg: Msg);

    /// Local synchronization constraint (§6.1): return `false` to disable
    /// a method in the current state; the message waits in the pending
    /// queue. Default: everything enabled.
    fn enabled(&self, _selector: Selector, _args: &[Value]) -> bool {
        true
    }

    /// Debug name for traces.
    fn name(&self) -> &'static str {
        "behavior"
    }

    /// The mail addresses this behavior's state currently holds — the
    /// tracing information the HAL compiler generated for garbage
    /// collection. Behaviors that hold addresses (or group ids regarded
    /// as reachable member sets) MUST override this for distributed GC
    /// to be sound; the default declares "no acquaintances".
    fn acquaintances(&self) -> Vec<crate::addr::MailAddr> {
        Vec::new()
    }
}

/// Execution state of one actor slot in the slab.
pub(crate) enum Slot {
    /// No actor here (freed / migrated away).
    Vacant,
    /// Actor present with its full record.
    Ready(ActorRecord),
    /// The actor's behavior is currently executing on some stack (the
    /// record has been checked out); messages sent to it in the meantime
    /// accumulate here and are merged back afterwards.
    Running {
        /// Messages that arrived mid-execution.
        inbox: VecDeque<Msg>,
    },
}

/// The per-actor record: behavior plus queues and identity.
pub struct ActorRecord {
    /// The actor's current behavior.
    pub behavior: Box<dyn Behavior>,
    /// The actor's primary (ordinary) mail address. Set by the kernel at
    /// install time, once the locality descriptor exists.
    pub addr: crate::addr::MailAddr,
    /// Buffered incoming messages (the actor-model mail queue).
    pub mailq: VecDeque<Msg>,
    /// Messages whose method was disabled when dispatched (§6.1).
    pub pendq: VecDeque<Msg>,
    /// True while the actor sits in the dispatcher's ready queue.
    pub scheduled: bool,
    /// Every mail-address key naming this actor (ordinary address and,
    /// for remotely created actors, the alias). Migration re-registers
    /// all of them at the destination.
    pub keys: Vec<AddrKey>,
    /// Group membership, if created by `grpnew`.
    pub group: Option<(GroupId, u32)>,
    /// Migration hop count — the location epoch (see
    /// [`crate::descriptor::LocalityDescriptor::epoch`]).
    pub hops: u32,
}

impl ActorRecord {
    /// Fresh record around a behavior. The address is a sentinel until
    /// the kernel installs the actor and mints its real one.
    pub fn new(behavior: Box<dyn Behavior>) -> Self {
        ActorRecord {
            behavior,
            addr: crate::addr::MailAddr::ordinary(u16::MAX, crate::addr::DescriptorId(u32::MAX)),
            mailq: VecDeque::new(),
            pendq: VecDeque::new(),
            scheduled: false,
            keys: Vec::new(),
            group: None,
            hops: 0,
        }
    }

    /// Total messages waiting (mail + pending).
    pub fn queued(&self) -> usize {
        self.mailq.len() + self.pendq.len()
    }
}

/// The per-node actor heap: slots with index reuse.
#[derive(Default)]
pub(crate) struct ActorSlab {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    created_total: u64,
}

impl ActorSlab {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a record, returning its id.
    pub fn insert(&mut self, rec: ActorRecord) -> ActorId {
        self.live += 1;
        self.created_total += 1;
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Slot::Ready(rec);
            ActorId(idx)
        } else {
            self.slots.push(Slot::Ready(rec));
            ActorId((self.slots.len() - 1) as u32)
        }
    }

    /// Check out a record for execution, leaving a `Running` stub that
    /// accumulates concurrent sends-to-self.
    pub fn checkout(&mut self, id: ActorId) -> Option<ActorRecord> {
        let slot = &mut self.slots[id.0 as usize];
        match std::mem::replace(
            slot,
            Slot::Running {
                inbox: VecDeque::new(),
            },
        ) {
            Slot::Ready(rec) => Some(rec),
            other => {
                // Put whatever was there back; checkout failed.
                *slot = other;
                None
            }
        }
    }

    /// Return a checked-out record, merging any messages that arrived
    /// while it was running onto the back of its mail queue.
    pub fn checkin(&mut self, id: ActorId, mut rec: ActorRecord) {
        let slot = &mut self.slots[id.0 as usize];
        match std::mem::replace(slot, Slot::Vacant) {
            Slot::Running { mut inbox } => {
                rec.mailq.append(&mut inbox);
                *slot = Slot::Ready(rec);
            }
            _ => panic!("checkin without matching checkout"),
        }
    }

    /// Remove an actor entirely (migration out). The record must not be
    /// checked out.
    pub fn remove(&mut self, id: ActorId) -> ActorRecord {
        let slot = &mut self.slots[id.0 as usize];
        match std::mem::replace(slot, Slot::Vacant) {
            Slot::Ready(rec) => {
                self.free.push(id.0);
                self.live -= 1;
                rec
            }
            _ => panic!("remove of vacant or running actor"),
        }
    }

    /// Deliver a message to an actor in whatever state it is in.
    /// Returns `true` if the actor was idle-and-ready (the caller should
    /// schedule it), `false` otherwise.
    pub fn enqueue(&mut self, id: ActorId, msg: Msg) -> bool {
        match &mut self.slots[id.0 as usize] {
            Slot::Ready(rec) => {
                rec.mailq.push_back(msg);
                if rec.scheduled {
                    false
                } else {
                    rec.scheduled = true;
                    true
                }
            }
            Slot::Running { inbox } => {
                inbox.push_back(msg);
                false // the executor reschedules on checkin if needed
            }
            Slot::Vacant => panic!("message to vacant actor slot"),
        }
    }

    /// Shared access to a ready record (constraint checks, diagnostics).
    pub fn get(&self, id: ActorId) -> Option<&ActorRecord> {
        match &self.slots[id.0 as usize] {
            Slot::Ready(rec) => Some(rec),
            _ => None,
        }
    }

    /// Mutable access to a ready record.
    pub fn get_mut(&mut self, id: ActorId) -> Option<&mut ActorRecord> {
        match &mut self.slots[id.0 as usize] {
            Slot::Ready(rec) => Some(rec),
            _ => None,
        }
    }

    /// Live actor count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Ids of all live (Ready) actors. Used by the garbage collector's
    /// root scan and sweep; the machine guarantees no actor is checked
    /// out (Running) while a collection runs.
    pub fn live_ids(&self) -> Vec<ActorId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Ready(_) => Some(ActorId(i as u32)),
                _ => None,
            })
            .collect()
    }

    /// Total actors ever created on this node.
    pub fn created_total(&self) -> u64 {
        self.created_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Behavior for Nop {
        fn dispatch(&mut self, _ctx: &mut crate::kernel::Ctx<'_>, _msg: Msg) {}
    }

    fn msg(sel: Selector) -> Msg {
        Msg::new(sel, vec![])
    }

    #[test]
    fn insert_and_enqueue_schedules_once() {
        let mut slab = ActorSlab::new();
        let id = slab.insert(ActorRecord::new(Box::new(Nop)));
        assert!(slab.enqueue(id, msg(1)), "first enqueue schedules");
        assert!(!slab.enqueue(id, msg(2)), "second enqueue does not");
        assert_eq!(slab.get(id).unwrap().mailq.len(), 2);
    }

    #[test]
    fn checkout_checkin_merges_inbox() {
        let mut slab = ActorSlab::new();
        let id = slab.insert(ActorRecord::new(Box::new(Nop)));
        slab.enqueue(id, msg(1));
        let mut rec = slab.checkout(id).unwrap();
        assert_eq!(rec.mailq.pop_front().unwrap().selector, 1);
        // Message arrives while running.
        assert!(!slab.enqueue(id, msg(2)));
        slab.checkin(id, rec);
        assert_eq!(slab.get(id).unwrap().mailq.front().unwrap().selector, 2);
    }

    #[test]
    fn double_checkout_fails() {
        let mut slab = ActorSlab::new();
        let id = slab.insert(ActorRecord::new(Box::new(Nop)));
        let rec = slab.checkout(id).unwrap();
        assert!(slab.checkout(id).is_none());
        slab.checkin(id, rec);
        assert!(slab.checkout(id).is_some());
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let mut slab = ActorSlab::new();
        let a = slab.insert(ActorRecord::new(Box::new(Nop)));
        let _b = slab.insert(ActorRecord::new(Box::new(Nop)));
        slab.remove(a);
        assert_eq!(slab.len(), 1);
        let c = slab.insert(ActorRecord::new(Box::new(Nop)));
        assert_eq!(c, a, "slot reused");
        assert_eq!(slab.created_total(), 3);
    }

    #[test]
    #[should_panic(expected = "vacant actor slot")]
    fn enqueue_to_vacant_panics() {
        let mut slab = ActorSlab::new();
        let a = slab.insert(ActorRecord::new(Box::new(Nop)));
        slab.remove(a);
        slab.enqueue(a, msg(1));
    }

    #[test]
    #[should_panic(expected = "without matching checkout")]
    fn checkin_without_checkout_panics() {
        let mut slab = ActorSlab::new();
        let a = slab.insert(ActorRecord::new(Box::new(Nop)));
        let rec = ActorRecord::new(Box::new(Nop));
        let _ = a;
        slab.checkin(a, rec);
    }
}
