//! End-of-run quiescence audit: the ground truth behind the protocol
//! checker's liveness pass.
//!
//! The flight recorder ([`crate::trace`]) shows what *happened*; this
//! module reports what is *left over* once a machine drains — messages
//! stranded in pending queues because their synchronization constraint
//! (§6.1) never re-enabled, join continuations (§6.2) that never fired,
//! FIR chases (§4.3) whose replies never arrived, and alias traffic (§5)
//! still parked for a name the node never learned. A quiescent machine
//! that finished its program cleanly has zeros everywhere.
//!
//! The audit is computed from live kernel state, not from the trace
//! ring, so it stays exact even when the bounded ring wrapped. It rides
//! inside every [`crate::SimReport`] (it is cheap and deterministic, so
//! the parallel-equivalence bit-identity guarantee extends to it).

use crate::addr::AddrKey;
use hal_am::NodeId;

/// What one node still owes the protocol at the end of a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeAudit {
    /// The audited node.
    pub node: NodeId,
    /// Messages still sitting in pending queues (§6.1 constraints that
    /// never re-enabled).
    pub stranded_pending: u64,
    /// Identity keys of the actors holding those stranded messages.
    pub stranded_keys: Vec<AddrKey>,
    /// Join continuations created but never fired (§6.2).
    pub unresolved_joins: u64,
    /// FIR chases still waiting for a reply (§4.3).
    pub outstanding_firs: u64,
    /// Messages parked for keys this node never learned (§5 alias
    /// traffic whose creation never landed).
    pub unknown_buffered: u64,
}

impl NodeAudit {
    /// True when this node ended with no protocol debt.
    pub fn is_clean(&self) -> bool {
        self.stranded_pending == 0
            && self.unresolved_joins == 0
            && self.outstanding_firs == 0
            && self.unknown_buffered == 0
    }
}

/// The whole machine's end-of-run audit, plus the behavior-registry
/// image for the checker's static program pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MachineAudit {
    /// Per-node leftovers, in node order.
    pub nodes: Vec<NodeAudit>,
    /// `(id, name)` for every registered behavior, sorted by id — the
    /// loaded program image every node shares.
    pub behaviors: Vec<(u32, String)>,
}

impl MachineAudit {
    /// True when every node ended with no protocol debt.
    pub fn is_clean(&self) -> bool {
        self.nodes.iter().all(NodeAudit::is_clean)
    }

    /// Total messages stranded in pending queues, machine-wide.
    pub fn stranded_pending(&self) -> u64 {
        self.nodes.iter().map(|n| n.stranded_pending).sum()
    }

    /// Total join continuations that never fired, machine-wide.
    pub fn unresolved_joins(&self) -> u64 {
        self.nodes.iter().map(|n| n.unresolved_joins).sum()
    }

    /// Total FIR chases still open, machine-wide.
    pub fn outstanding_firs(&self) -> u64 {
        self.nodes.iter().map(|n| n.outstanding_firs).sum()
    }

    /// Total messages parked for unknown keys, machine-wide.
    pub fn unknown_buffered(&self) -> u64 {
        self.nodes.iter().map(|n| n.unknown_buffered).sum()
    }
}
