//! Execution timelines: per-node busy/idle spans recorded by the
//! simulated machine, with an ASCII renderer.
//!
//! The paper's performance arguments are ultimately about *overlap* —
//! pipelined Cholesky wins because nodes keep computing while other
//! iterations' columns are still in flight; alias creation wins because
//! the requester's continuation overlaps the remote work. A timeline
//! makes that overlap visible: enable
//! [`crate::machine::MachineConfig::record_timeline`] and render the
//! result with [`render_ascii`].

use hal_am::NodeId;
use hal_des::VirtualTime;

/// What a node was doing during a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Running actor methods (a dispatcher step).
    Compute,
    /// Node-manager packet handling (the "stolen processor").
    Handler,
}

/// One busy interval on one node.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    /// The node.
    pub node: NodeId,
    /// Start of the busy interval.
    pub start: VirtualTime,
    /// End of the busy interval.
    pub end: VirtualTime,
    /// What the node was doing.
    pub kind: SpanKind,
}

/// A recorded execution timeline.
#[derive(Default, Clone)]
pub struct Timeline {
    /// All busy spans, in recording order.
    pub spans: Vec<Span>,
}

impl Timeline {
    /// Record a span (ignores empty ones).
    pub fn push(&mut self, node: NodeId, start: VirtualTime, end: VirtualTime, kind: SpanKind) {
        if end > start {
            self.spans.push(Span {
                node,
                start,
                end,
                kind,
            });
        }
    }

    /// Total busy time per node, in nanoseconds.
    pub fn busy_ns(&self, nodes: usize) -> Vec<u64> {
        let mut busy = vec![0u64; nodes];
        for s in &self.spans {
            busy[s.node as usize] += s.end.since(s.start).as_nanos();
        }
        busy
    }

    /// Utilization per node over `[0, makespan]` (0.0–1.0).
    pub fn utilization(&self, nodes: usize, makespan: VirtualTime) -> Vec<f64> {
        let total = makespan.as_nanos().max(1) as f64;
        self.busy_ns(nodes)
            .into_iter()
            .map(|b| (b as f64 / total).min(1.0))
            .collect()
    }
}

/// Render a per-node ASCII utilization chart: one row per node, `width`
/// time buckets; `#` ≥ 75% busy, `+` ≥ 25%, `.` < 25%.
pub fn render_ascii(tl: &Timeline, nodes: usize, makespan: VirtualTime, width: usize) -> String {
    assert!(width > 0);
    let total = makespan.as_nanos().max(1);
    let bucket_ns = total.div_ceil(width as u64).max(1);
    let mut busy = vec![vec![0u64; width]; nodes];
    for s in &tl.spans {
        let (a, b) = (s.start.as_nanos(), s.end.as_nanos().min(total));
        if a >= b {
            continue;
        }
        let first = (a / bucket_ns) as usize;
        let last = (((b - 1) / bucket_ns) as usize).min(width - 1);
        for (i, cell) in busy[s.node as usize]
            .iter_mut()
            .enumerate()
            .take(last + 1)
            .skip(first)
        {
            let lo = (i as u64) * bucket_ns;
            let hi = lo + bucket_ns;
            *cell += b.min(hi).saturating_sub(a.max(lo));
        }
    }
    let utils = tl.utilization(nodes, makespan);
    let mut out = String::new();
    for (n, row) in busy.iter().enumerate() {
        out.push_str(&format!("node {n:>3} |"));
        for &b in row {
            let frac = b as f64 / bucket_ns as f64;
            out.push(if frac >= 0.75 {
                '#'
            } else if frac >= 0.25 {
                '+'
            } else {
                '.'
            });
        }
        out.push_str(&format!("| {:5.1}%\n", utils[n] * 100.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> VirtualTime {
        VirtualTime::from_nanos(ns)
    }

    #[test]
    fn empty_spans_are_dropped() {
        let mut tl = Timeline::default();
        tl.push(0, t(5), t(5), SpanKind::Compute);
        assert!(tl.spans.is_empty());
    }

    #[test]
    fn busy_accumulates_per_node() {
        let mut tl = Timeline::default();
        tl.push(0, t(0), t(10), SpanKind::Compute);
        tl.push(0, t(20), t(25), SpanKind::Handler);
        tl.push(1, t(0), t(50), SpanKind::Compute);
        assert_eq!(tl.busy_ns(2), vec![15, 50]);
        let u = tl.utilization(2, t(100));
        assert!((u[0] - 0.15).abs() < 1e-9);
        assert!((u[1] - 0.50).abs() < 1e-9);
    }

    #[test]
    fn ascii_render_shape() {
        let mut tl = Timeline::default();
        tl.push(0, t(0), t(50), SpanKind::Compute); // first half busy
        let s = render_ascii(&tl, 2, t(100), 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("#####....."), "{s}");
        assert!(lines[1].contains(".........."), "{s}");
        assert!(lines[0].contains("50.0%"));
        assert!(lines[1].contains("0.0%"));
    }

    #[test]
    fn spans_crossing_buckets_split_correctly() {
        let mut tl = Timeline::default();
        // 100ns total, 4 buckets of 25ns; span covers 20..55: bucket 0
        // gets 5, bucket 1 gets 25, bucket 2 gets 5.
        tl.push(0, t(20), t(55), SpanKind::Compute);
        let s = render_ascii(&tl, 1, t(100), 4);
        assert!(s.contains(".#."), "{s}");
    }

    #[test]
    fn utilization_clamped() {
        let mut tl = Timeline::default();
        tl.push(0, t(0), t(200), SpanKind::Compute); // beyond makespan
        let u = tl.utilization(1, t(100));
        assert_eq!(u[0], 1.0);
    }
}
