//! Join continuations (§6.2, Fig. 4).
//!
//! "A join continuation has four components, namely *counter*, *function*,
//! *creator* and a set of *argument slots*; counter contains the number of
//! empty slots to be filled with subsequent replies. As soon as one slot
//! is filled, it is decremented by one. When it becomes zero the function
//! pointed by function is invoked with the continuation as its argument."
//!
//! The HAL compiler turns `request` sends into asynchronous sends whose
//! replies target a join continuation; sends with no mutual dependence
//! share one continuation. Continuations are deterministic — they fire
//! exactly once and never receive further messages — which is why they
//! can live outside the actor heap in a slab with aggressive reuse.

use crate::addr::{ActorId, JcId};
use crate::message::Value;

/// The function a continuation runs when all slots are filled. The boxed
/// closure is the Rust analog of the paper's `function` pointer plus the
/// pre-filled known slots (captured state).
pub type JoinFn = Box<dyn FnOnce(&mut crate::kernel::Ctx<'_>, Vec<Value>) + Send>;

/// One join continuation (Fig. 4).
struct JoinContinuation {
    /// Empty slots remaining.
    counter: u16,
    /// Argument slots; `None` marks a slot awaiting a reply.
    slots: Vec<Option<Value>>,
    /// The continuation body.
    func: JoinFn,
    /// The actor that created the continuation, "used to notify the
    /// actor of the completion of continuation if necessary".
    creator: Option<ActorId>,
}

/// Everything needed to run a fired continuation.
pub struct FiredJoin {
    /// The continuation body to invoke.
    pub func: JoinFn,
    /// The fully filled argument slots, in slot order.
    pub values: Vec<Value>,
    /// The creating actor, if completion notification is wanted.
    pub creator: Option<ActorId>,
}

/// Per-node slab of pending join continuations.
#[derive(Default)]
pub struct JoinTable {
    slots: Vec<Option<JoinContinuation>>,
    free: Vec<u32>,
    created_total: u64,
    fired_total: u64,
}

impl JoinTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a continuation with `arity` slots, of which `prefilled`
    /// (slot index, value) pairs are already known at creation time.
    ///
    /// # Panics
    /// Panics if a prefilled index is out of range, duplicated, or if
    /// *all* slots are prefilled (the compiler never emits a join with
    /// nothing to wait for — it would have inlined the continuation).
    pub fn create(
        &mut self,
        arity: u16,
        prefilled: Vec<(u16, Value)>,
        func: JoinFn,
        creator: Option<ActorId>,
    ) -> JcId {
        let mut slots: Vec<Option<Value>> = vec![None; arity as usize];
        for (i, v) in prefilled {
            let slot = &mut slots[i as usize];
            assert!(slot.is_none(), "duplicate prefilled join slot {i}");
            *slot = Some(v);
        }
        let empty = slots.iter().filter(|s| s.is_none()).count() as u16;
        assert!(empty > 0, "join continuation with no empty slots");
        let jc = JoinContinuation {
            counter: empty,
            slots,
            func,
            creator,
        };
        self.created_total += 1;
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(jc);
            JcId(idx)
        } else {
            self.slots.push(Some(jc));
            JcId((self.slots.len() - 1) as u32)
        }
    }

    /// Fill `slot` of continuation `id` with a reply value. When the
    /// counter reaches zero the continuation is removed and returned for
    /// firing.
    ///
    /// # Panics
    /// Panics on unknown ids, already-filled slots, or out-of-range slots
    /// — every such case is a protocol violation (a reply delivered twice
    /// or to the wrong place), which must not be silent.
    pub fn fill(&mut self, id: JcId, slot: u16, value: Value) -> Option<FiredJoin> {
        let jc = self.slots[id.0 as usize]
            .as_mut()
            .expect("reply to unknown join continuation");
        let cell = &mut jc.slots[slot as usize];
        assert!(cell.is_none(), "join slot {slot} filled twice");
        *cell = Some(value);
        jc.counter -= 1;
        if jc.counter == 0 {
            let jc = self.slots[id.0 as usize].take().unwrap();
            self.free.push(id.0);
            self.fired_total += 1;
            Some(FiredJoin {
                func: jc.func,
                values: jc.slots.into_iter().map(|s| s.unwrap()).collect(),
                creator: jc.creator,
            })
        } else {
            None
        }
    }

    /// Continuations currently waiting.
    pub fn pending(&self) -> usize {
        (self.created_total - self.fired_total) as usize
    }

    /// Total continuations ever created.
    pub fn created_total(&self) -> u64 {
        self.created_total
    }

    /// Total continuations fired.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nop() -> JoinFn {
        Box::new(|_, _| {})
    }

    #[test]
    fn fires_when_last_slot_fills() {
        let mut t = JoinTable::new();
        let id = t.create(2, vec![], nop(), None);
        assert!(t.fill(id, 0, Value::Int(1)).is_none());
        let fired = t.fill(id, 1, Value::Int(2)).expect("should fire");
        assert_eq!(fired.values, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(t.pending(), 0);
        assert_eq!(t.fired_total(), 1);
    }

    #[test]
    fn prefilled_slots_count_toward_completion() {
        let mut t = JoinTable::new();
        // Fig. 4's example: some slots known at creation, others awaiting
        // replies.
        let id = t.create(
            4,
            vec![(0, Value::Int(10)), (2, Value::Int(30))],
            nop(),
            Some(ActorId(5)),
        );
        assert!(t.fill(id, 1, Value::Int(20)).is_none());
        let fired = t.fill(id, 3, Value::Int(40)).unwrap();
        assert_eq!(
            fired.values,
            vec![
                Value::Int(10),
                Value::Int(20),
                Value::Int(30),
                Value::Int(40)
            ]
        );
        assert_eq!(fired.creator, Some(ActorId(5)));
    }

    #[test]
    fn ids_are_reused_after_firing() {
        let mut t = JoinTable::new();
        let a = t.create(1, vec![], nop(), None);
        t.fill(a, 0, Value::Unit);
        let b = t.create(1, vec![], nop(), None);
        assert_eq!(a, b, "slab reuses fired slots");
        assert_eq!(t.created_total(), 2);
    }

    #[test]
    fn out_of_order_fills() {
        let mut t = JoinTable::new();
        let id = t.create(3, vec![], nop(), None);
        assert!(t.fill(id, 2, Value::Int(3)).is_none());
        assert!(t.fill(id, 0, Value::Int(1)).is_none());
        let fired = t.fill(id, 1, Value::Int(2)).unwrap();
        assert_eq!(
            fired.values,
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    #[should_panic(expected = "filled twice")]
    fn double_fill_panics() {
        let mut t = JoinTable::new();
        let id = t.create(2, vec![], nop(), None);
        t.fill(id, 0, Value::Int(1));
        t.fill(id, 0, Value::Int(1));
    }

    #[test]
    #[should_panic(expected = "unknown join continuation")]
    fn fill_after_fire_panics() {
        let mut t = JoinTable::new();
        let id = t.create(1, vec![], nop(), None);
        t.fill(id, 0, Value::Unit);
        t.fill(id, 0, Value::Unit);
    }

    #[test]
    #[should_panic(expected = "no empty slots")]
    fn fully_prefilled_join_rejected() {
        let mut t = JoinTable::new();
        t.create(1, vec![(0, Value::Unit)], nop(), None);
    }

    #[test]
    fn closure_state_travels_with_the_join() {
        let mut t = JoinTable::new();
        let captured = 99i64;
        let func: JoinFn = Box::new(move |_, vals| {
            // The captured state plays the role of pre-known slot values.
            assert_eq!(captured, 99);
            assert_eq!(vals.len(), 1);
        });
        let id = t.create(1, vec![], func, None);
        let fired = t.fill(id, 0, Value::Int(1)).unwrap();
        // We cannot invoke without a kernel Ctx here; just ensure the
        // closure and values made it out intact.
        assert_eq!(fired.values, vec![Value::Int(1)]);
        drop(fired);
    }
}
