//! Dynamic load balancing: receiver-initiated random polling (§7.2).
//!
//! "Receiver-initiated random polling scheme [Kumar, Grama & Rao] is used
//! for dynamic load balancing." An **idle** node picks a random victim
//! and asks it for work; a loaded victim migrates a ready actor (with its
//! queued messages) to the thief — which is only possible because
//! location transparency + migration make actors mobile mid-computation.
//!
//! This module holds the per-node policy state; the kernel performs the
//! actual migration. At most one poll is outstanding per node, and a
//! failed poll backs off by the cost model's poll interval so idle nodes
//! do not saturate the network.

use hal_des::{Pcg32, VirtualTime};
use hal_am::NodeId;

/// Per-node load-balancer state.
pub struct Balancer {
    /// Whether load balancing is enabled at all (Table 4 compares both).
    pub enabled: bool,
    /// A steal request is in flight; do not send another.
    polling: bool,
    /// Earliest virtual time the next poll may be sent.
    next_poll_at: VirtualTime,
    rng: Pcg32,
    polls_sent: u64,
    polls_failed: u64,
    steals_received: u64,
}

impl Balancer {
    /// Balancer for one node. `seed`/`node` select an independent RNG
    /// stream per node so victim choices are deterministic per machine
    /// seed.
    pub fn new(enabled: bool, seed: u64, node: NodeId) -> Self {
        Balancer {
            enabled,
            polling: false,
            next_poll_at: VirtualTime::ZERO,
            rng: Pcg32::new(seed, 0x10_000 + node as u64),
            polls_sent: 0,
            polls_failed: 0,
            steals_received: 0,
        }
    }

    /// Should this idle node poll now? True only if enabled, no poll is
    /// outstanding, and the backoff window has passed.
    pub fn may_poll(&self, now: VirtualTime) -> bool {
        self.enabled && !self.polling && now >= self.next_poll_at
    }

    /// The earliest time a poll could be sent (for the simulator's event
    /// scheduling). `None` if polling is impossible right now.
    pub fn poll_ready_at(&self) -> Option<VirtualTime> {
        if self.enabled && !self.polling {
            Some(self.next_poll_at)
        } else {
            None
        }
    }

    /// Choose a random victim ≠ `me` among `p` nodes and mark the poll
    /// outstanding.
    ///
    /// # Panics
    /// Panics if `p < 2` — a single-node partition has nobody to poll.
    pub fn start_poll(&mut self, me: NodeId, p: usize) -> NodeId {
        assert!(p >= 2, "random polling needs at least two nodes");
        debug_assert!(self.may_poll(self.next_poll_at.max(VirtualTime::ZERO)) || !self.polling);
        // Draw from 0..p-1 and skip over `me`: uniform over the others.
        let mut v = self.rng.next_below(p as u32 - 1) as NodeId;
        if v >= me {
            v += 1;
        }
        self.polling = true;
        self.polls_sent += 1;
        v
    }

    /// Stolen work arrived: clear the outstanding poll. Idempotent — a
    /// victim may donate several actors per poll, and each arrival calls
    /// this.
    pub fn poll_succeeded(&mut self) {
        if self.polling {
            self.polling = false;
            self.steals_received += 1;
        }
    }

    /// A steal reply arrived empty-handed: back off until `now + backoff`.
    /// Tolerant of an already-cleared poll: a victim donating several
    /// actors can satisfy a *subsequent* poll early, so its empty-handed
    /// answer may land after the slot was reused — pacing state, not a
    /// protocol invariant.
    pub fn poll_failed(&mut self, now: VirtualTime, backoff: hal_des::VirtualDuration) {
        if self.polling {
            self.polling = false;
            self.polls_failed += 1;
        }
        self.next_poll_at = now + backoff;
    }

    /// True while a steal request is outstanding.
    pub fn is_polling(&self) -> bool {
        self.polling
    }

    /// Polls sent (diagnostics, Table 4 instrumentation).
    pub fn polls_sent(&self) -> u64 {
        self.polls_sent
    }

    /// Polls answered without work.
    pub fn polls_failed(&self) -> u64 {
        self.polls_failed
    }

    /// Actors received by stealing.
    pub fn steals_received(&self) -> u64 {
        self.steals_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hal_des::VirtualDuration;

    #[test]
    fn disabled_balancer_never_polls() {
        let b = Balancer::new(false, 1, 0);
        assert!(!b.may_poll(VirtualTime::from_nanos(1_000_000)));
        assert_eq!(b.poll_ready_at(), None);
    }

    #[test]
    fn victim_is_never_self_and_covers_all_others() {
        let mut b = Balancer::new(true, 7, 3);
        let p = 8;
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v = b.start_poll(3, p);
            assert_ne!(v, 3);
            assert!((v as usize) < p);
            seen[v as usize] = true;
            b.poll_failed(VirtualTime::ZERO, VirtualDuration::ZERO);
        }
        for (i, s) in seen.iter().enumerate() {
            if i != 3 {
                assert!(s, "victim {i} never chosen");
            }
        }
        assert!(!seen[3]);
    }

    #[test]
    fn only_one_poll_outstanding() {
        let mut b = Balancer::new(true, 1, 0);
        assert!(b.may_poll(VirtualTime::ZERO));
        b.start_poll(0, 4);
        assert!(!b.may_poll(VirtualTime::ZERO), "poll outstanding");
        b.poll_succeeded();
        assert!(b.may_poll(VirtualTime::ZERO));
    }

    #[test]
    fn failed_poll_backs_off() {
        let mut b = Balancer::new(true, 1, 0);
        b.start_poll(0, 2);
        b.poll_failed(VirtualTime::from_nanos(100), VirtualDuration::from_nanos(50));
        assert!(!b.may_poll(VirtualTime::from_nanos(120)));
        assert!(b.may_poll(VirtualTime::from_nanos(150)));
        assert_eq!(b.poll_ready_at(), Some(VirtualTime::from_nanos(150)));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Balancer::new(true, 42, 1);
        let mut b = Balancer::new(true, 42, 1);
        for _ in 0..50 {
            let va = a.start_poll(1, 16);
            let vb = b.start_poll(1, 16);
            assert_eq!(va, vb);
            a.poll_failed(VirtualTime::ZERO, VirtualDuration::ZERO);
            b.poll_failed(VirtualTime::ZERO, VirtualDuration::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_poll_panics() {
        let mut b = Balancer::new(true, 1, 0);
        b.start_poll(0, 1);
    }
}
