//! Message-lifecycle span reconstruction.
//!
//! The flight recorder ([`crate::trace`]) emits point events; this
//! module stitches them back into *spans* — one per application
//! message (send → wire → queue → pending wait → execute), one per
//! FIR-chase episode (§4.3), one per alias-based remote creation (§5)
//! — using the `span`/`parent` fields stamped on
//! [`TraceEvent`](crate::trace::TraceEvent)s.
//! The result is a causal DAG: each [`MsgSpan`]'s `parent` is the span
//! of the message whose handler issued the send, which is what the
//! critical-path analyzer (`hal-profile`) walks to find the longest
//! causal chain in charged virtual time.
//!
//! Everything here is derived from virtual-time facts recorded
//! identically at any `--parallel K`, so [`SpanReport::to_json`] is
//! byte-identical across executor parallelism.

use crate::addr::AddrKey;
use crate::metrics::histogram_json;
use crate::trace::{DeliveryPath, KernelEvent, TraceReport};
use hal_am::NodeId;
use hal_des::{Histogram, VirtualTime};
use std::collections::{BTreeMap, HashMap};

/// One application message's reconstructed lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub struct MsgSpan {
    /// The message's trace id (doubles as its span id).
    pub id: u64,
    /// Span of the message whose handler issued this send (0 = sent
    /// from outside any handler, e.g. program bootstrap).
    pub parent: u64,
    /// The sending node.
    pub src: NodeId,
    /// Destination identity key.
    pub key: AddrKey,
    /// Virtual send time.
    pub sent_at: VirtualTime,
    /// The sender believed the receiver was remote.
    pub remote: bool,
    /// Virtual enqueue time at the receiver (None if the trace never
    /// saw the delivery — still in flight or lost to ring wrap).
    pub delivered_at: Option<VirtualTime>,
    /// Send → enqueue latency in virtual ns (includes FIR-chase
    /// buffering and forwarding, which is the point).
    pub wire_ns: u64,
    /// How it reached the receiver.
    pub path: Option<DeliveryPath>,
    /// The node that executed (or at least enqueued) it.
    pub dst: Option<NodeId>,
    /// Virtual ns between mail-queue enqueue and dispatch (0 for
    /// inline fast-path execution).
    pub queued_ns: u64,
    /// Total virtual ns spent parked in the pending queue (§6.1),
    /// summed over park episodes.
    pub pending_ns: u64,
    /// Virtual time the handler finished (None if never executed).
    pub exec_end: Option<VirtualTime>,
    /// Charged virtual ns of handler execution.
    pub run_ns: u64,
    /// Reliable-layer retransmits of the packet carrying this message.
    pub retransmits: u32,
}

impl MsgSpan {
    /// When this span's story ends: handler completion if executed,
    /// else enqueue, else the send itself.
    pub fn completion(&self) -> VirtualTime {
        self.exec_end
            .or(self.delivered_at)
            .unwrap_or(self.sent_at)
    }

    /// When the handler started executing (completion minus charged
    /// run time), if it executed.
    pub fn exec_start(&self) -> Option<VirtualTime> {
        self.exec_end
            .map(|t| VirtualTime::from_nanos(t.as_nanos().saturating_sub(self.run_ns)))
    }
}

/// One FIR-chase episode (§4.3): every hop of the forward chain shares
/// the span minted when the chase opened.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaseSpan {
    /// The chase's span id.
    pub span: u64,
    /// The message span that triggered the chase (0 if untraced).
    pub parent: u64,
    /// The chased identity key.
    pub key: AddrKey,
    /// Virtual time the first FIR left.
    pub opened_at: VirtualTime,
    /// Chase hops in causal order: (send time, from node, to node).
    pub hops: Vec<(VirtualTime, NodeId, NodeId)>,
    /// Latest time the reply propagated along the chain (None if the
    /// chase never resolved in the trace).
    pub resolved_at: Option<VirtualTime>,
    /// Messages that joined this chase instead of re-issuing an FIR.
    pub suppressed: u32,
    /// Watchdog re-issues after lost replies.
    pub timeouts: u32,
}

/// One alias-based remote creation (§5): mint at the requester,
/// install at the target, resolve back at the requester.
#[derive(Clone, Debug, PartialEq)]
pub struct AliasSpan {
    /// The creation's span id.
    pub span: u64,
    /// The span of the handler that requested the creation.
    pub parent: u64,
    /// The alias key.
    pub key: AddrKey,
    /// The requesting node (where the alias was minted).
    pub requester: NodeId,
    /// The node asked to create the actor.
    pub target: NodeId,
    /// Virtual time the alias was minted — the requester continues
    /// immediately after this (the paper's 5.83 µs claim).
    pub minted_at: VirtualTime,
    /// Virtual time the actor was actually installed at the target.
    pub installed_at: Option<VirtualTime>,
    /// Virtual time the requester learned the real descriptor.
    pub resolved_at: Option<VirtualTime>,
}

/// All spans reconstructed from one run's trace, plus per-stage log2
/// latency histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanReport {
    /// Message spans, ordered by id.
    pub msgs: Vec<MsgSpan>,
    /// FIR-chase spans, ordered by span id.
    pub chases: Vec<ChaseSpan>,
    /// Alias-creation spans, ordered by span id.
    pub aliases: Vec<AliasSpan>,
    /// Lifecycle events whose send was never seen (lost to ring wrap).
    pub incomplete: u64,
    /// Per-stage latency histograms: `wire.local` / `wire.remote` /
    /// `wire.migrated` (send → enqueue by path), `queue` (enqueue →
    /// dispatch), `pending` (per park episode), `execute` (charged
    /// handler time), `chase` (open → resolve), `alias.install` and
    /// `alias.resolve` (mint → install / mint → resolve).
    pub stages: BTreeMap<&'static str, Histogram>,
}

impl SpanReport {
    /// Reconstruct spans from a merged trace.
    pub fn build(trace: &TraceReport) -> Self {
        let mut rep = SpanReport::default();
        let mut msg_ix: HashMap<u64, usize> = HashMap::new();
        let mut chase_ix: HashMap<u64, usize> = HashMap::new();
        let mut alias_ix: HashMap<u64, usize> = HashMap::new();
        for e in &trace.events {
            match &e.event {
                KernelEvent::MessageSent { id, key, remote } => {
                    msg_ix.insert(*id, rep.msgs.len());
                    rep.msgs.push(MsgSpan {
                        id: *id,
                        parent: e.parent,
                        src: e.node,
                        key: *key,
                        sent_at: e.time,
                        remote: *remote,
                        delivered_at: None,
                        wire_ns: 0,
                        path: None,
                        dst: None,
                        queued_ns: 0,
                        pending_ns: 0,
                        exec_end: None,
                        run_ns: 0,
                        retransmits: 0,
                    });
                }
                KernelEvent::MessageDelivered { id, latency_ns, path } => {
                    if let Some(&i) = msg_ix.get(id) {
                        let m = &mut rep.msgs[i];
                        m.delivered_at = Some(e.time);
                        m.wire_ns = *latency_ns;
                        m.path = Some(*path);
                        m.dst = Some(e.node);
                    } else {
                        rep.incomplete += 1;
                    }
                    let stage = match path {
                        DeliveryPath::Local => "wire.local",
                        DeliveryPath::Remote => "wire.remote",
                        DeliveryPath::Migrated => "wire.migrated",
                    };
                    rep.observe(stage, *latency_ns);
                }
                KernelEvent::MessageExecuted { id, queued_ns, run_ns } => {
                    if let Some(&i) = msg_ix.get(id) {
                        let m = &mut rep.msgs[i];
                        m.exec_end = Some(e.time);
                        m.queued_ns = *queued_ns;
                        m.run_ns = *run_ns;
                        m.dst = Some(e.node);
                    } else {
                        rep.incomplete += 1;
                    }
                    rep.observe("queue", *queued_ns);
                    rep.observe("execute", *run_ns);
                }
                KernelEvent::PendingRescanned { id, residency_ns } => {
                    if let Some(&i) = msg_ix.get(id) {
                        rep.msgs[i].pending_ns += residency_ns;
                    }
                    rep.observe("pending", *residency_ns);
                }
                KernelEvent::Retransmit { .. } if e.span != 0 => {
                    if let Some(&i) = msg_ix.get(&e.span) {
                        rep.msgs[i].retransmits += 1;
                    } else {
                        rep.incomplete += 1;
                    }
                }
                KernelEvent::FirSent { key, to } if e.span != 0 => {
                    let i = *chase_ix.entry(e.span).or_insert_with(|| {
                        rep.chases.push(ChaseSpan {
                            span: e.span,
                            parent: e.parent,
                            key: *key,
                            opened_at: e.time,
                            hops: Vec::new(),
                            resolved_at: None,
                            suppressed: 0,
                            timeouts: 0,
                        });
                        rep.chases.len() - 1
                    });
                    rep.chases[i].hops.push((e.time, e.node, *to));
                }
                KernelEvent::FirSuppressed { .. } if e.span != 0 => {
                    if let Some(&i) = chase_ix.get(&e.span) {
                        rep.chases[i].suppressed += 1;
                    }
                }
                KernelEvent::FirTimeout { .. } if e.span != 0 => {
                    if let Some(&i) = chase_ix.get(&e.span) {
                        rep.chases[i].timeouts += 1;
                    }
                }
                KernelEvent::FirReplyPropagated { .. } if e.span != 0 => {
                    if let Some(&i) = chase_ix.get(&e.span) {
                        let c = &mut rep.chases[i];
                        c.resolved_at = Some(c.resolved_at.map_or(e.time, |t| t.max(e.time)));
                    }
                }
                KernelEvent::AliasCreated { key, target } if e.span != 0 => {
                    alias_ix.insert(e.span, rep.aliases.len());
                    rep.aliases.push(AliasSpan {
                        span: e.span,
                        parent: e.parent,
                        key: *key,
                        requester: e.node,
                        target: *target,
                        minted_at: e.time,
                        installed_at: None,
                        resolved_at: None,
                    });
                }
                KernelEvent::ActorCreated { .. } if e.span != 0 => {
                    if let Some(&i) = alias_ix.get(&e.span) {
                        let a = &mut rep.aliases[i];
                        a.installed_at = Some(e.time);
                        let d = e.time.as_nanos().saturating_sub(a.minted_at.as_nanos());
                        rep.observe("alias.install", d);
                    }
                }
                KernelEvent::AliasResolved { .. } if e.span != 0 => {
                    if let Some(&i) = alias_ix.get(&e.span) {
                        let a = &mut rep.aliases[i];
                        a.resolved_at = Some(e.time);
                        let d = e.time.as_nanos().saturating_sub(a.minted_at.as_nanos());
                        rep.observe("alias.resolve", d);
                    }
                }
                _ => {}
            }
        }
        for c in &rep.chases {
            if let Some(t) = c.resolved_at {
                rep.stages
                    .entry("chase")
                    .or_default()
                    .observe(t.as_nanos().saturating_sub(c.opened_at.as_nanos()));
            }
        }
        rep.msgs.sort_by_key(|m| m.id);
        rep.chases.sort_by_key(|c| c.span);
        rep.aliases.sort_by_key(|a| a.span);
        // Rebuilding moved entries invalidated nothing: indices were
        // only used during the single pass above.
        rep
    }

    fn observe(&mut self, stage: &'static str, value: u64) {
        self.stages.entry(stage).or_default().observe(value);
    }

    /// Look up a message span by id.
    pub fn msg(&self, id: u64) -> Option<&MsgSpan> {
        self.msgs
            .binary_search_by_key(&id, |m| m.id)
            .ok()
            .map(|i| &self.msgs[i])
    }

    /// Serialize the per-stage aggregates as JSON (counts, moments,
    /// log2 buckets — not every span; the raw spans stay in memory for
    /// the critical-path pass). Virtual-time facts only, so the output
    /// is byte-identical across `--parallel K`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let executed = self.msgs.iter().filter(|m| m.exec_end.is_some()).count();
        let delivered = self.msgs.iter().filter(|m| m.delivered_at.is_some()).count();
        let retx: u64 = self.msgs.iter().map(|m| u64::from(m.retransmits)).sum();
        let parked = self.msgs.iter().filter(|m| m.pending_ns > 0).count();
        let chase_hops: usize = self.chases.iter().map(|c| c.hops.len()).sum();
        let resolved_chases = self.chases.iter().filter(|c| c.resolved_at.is_some()).count();
        let resolved_aliases =
            self.aliases.iter().filter(|a| a.resolved_at.is_some()).count();
        let mut stages = String::new();
        for (i, (name, h)) in self.stages.iter().enumerate() {
            if i > 0 {
                stages.push_str(",\n");
            }
            let _ = write!(stages, "    \"{name}\": {}", histogram_json(h));
        }
        format!(
            "{{\n  \"messages\": {},\n  \"delivered\": {},\n  \"executed\": {},\n  \
             \"parked\": {},\n  \"retransmits\": {},\n  \"chases\": {},\n  \
             \"chases_resolved\": {},\n  \"chase_hops\": {},\n  \"aliases\": {},\n  \
             \"aliases_resolved\": {},\n  \"incomplete\": {},\n  \"stages\": {{\n{}\n  }}\n}}\n",
            self.msgs.len(),
            delivered,
            executed,
            parked,
            retx,
            self.chases.len(),
            resolved_chases,
            chase_hops,
            self.aliases.len(),
            resolved_aliases,
            self.incomplete,
            stages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DescriptorId;
    use crate::trace::TraceEvent;

    fn key(i: u32) -> AddrKey {
        AddrKey { birthplace: 0, index: DescriptorId(i) }
    }

    fn at(ns: u64, node: NodeId, event: KernelEvent) -> TraceEvent {
        TraceEvent::at(VirtualTime::from_nanos(ns), node, event)
    }

    fn build(events: Vec<TraceEvent>) -> SpanReport {
        SpanReport::build(&TraceReport {
            events,
            ..TraceReport::default()
        })
    }

    #[test]
    fn message_lifecycle_reconstructs() {
        let rep = build(vec![
            at(100, 0, KernelEvent::MessageSent { id: 9, key: key(1), remote: true })
                .with_span(9)
                .with_parent(4),
            at(700, 1, KernelEvent::MessageDelivered {
                id: 9,
                latency_ns: 600,
                path: DeliveryPath::Remote,
            })
            .with_span(9),
            at(1_000, 1, KernelEvent::MessageExecuted { id: 9, queued_ns: 100, run_ns: 200 })
                .with_span(9),
        ]);
        assert_eq!(rep.msgs.len(), 1);
        let m = rep.msg(9).unwrap();
        assert_eq!(m.parent, 4);
        assert_eq!((m.src, m.dst), (0, Some(1)));
        assert_eq!(m.wire_ns, 600);
        assert_eq!(m.queued_ns, 100);
        assert_eq!(m.run_ns, 200);
        assert_eq!(m.completion().as_nanos(), 1_000);
        assert_eq!(m.exec_start().unwrap().as_nanos(), 800);
        assert_eq!(rep.stages["wire.remote"].count(), 1);
        assert_eq!(rep.stages["execute"].sum(), 200);
        assert_eq!(rep.incomplete, 0);
    }

    #[test]
    fn chase_span_collects_hops_in_order() {
        let rep = build(vec![
            at(10, 0, KernelEvent::FirSent { key: key(2), to: 1 }).with_span(77).with_parent(9),
            at(30, 1, KernelEvent::FirSent { key: key(2), to: 2 }).with_span(77),
            at(40, 0, KernelEvent::FirSuppressed { key: key(2) }).with_span(77),
            at(90, 0, KernelEvent::FirReplyPropagated {
                key: key(2),
                node: 2,
                askers: 1,
                released: 2,
            })
            .with_span(77),
        ]);
        assert_eq!(rep.chases.len(), 1);
        let c = &rep.chases[0];
        assert_eq!(c.parent, 9);
        assert_eq!(c.hops.len(), 2);
        assert_eq!((c.hops[0].1, c.hops[0].2), (0, 1));
        assert_eq!((c.hops[1].1, c.hops[1].2), (1, 2));
        assert_eq!(c.suppressed, 1);
        assert_eq!(c.resolved_at.unwrap().as_nanos(), 90);
        assert_eq!(rep.stages["chase"].sum(), 80);
    }

    #[test]
    fn alias_span_orders_mint_install_resolve() {
        let rep = build(vec![
            at(5, 0, KernelEvent::AliasCreated { key: key(3), target: 2 }).with_span(50),
            at(25, 2, KernelEvent::ActorCreated { key: key(3) }).with_span(50),
            at(45, 0, KernelEvent::AliasResolved { key: key(3), latency_ns: 40 }).with_span(50),
        ]);
        assert_eq!(rep.aliases.len(), 1);
        let a = &rep.aliases[0];
        assert_eq!((a.requester, a.target), (0, 2));
        assert_eq!(a.minted_at.as_nanos(), 5);
        assert_eq!(a.installed_at.unwrap().as_nanos(), 25);
        assert_eq!(a.resolved_at.unwrap().as_nanos(), 45);
        assert_eq!(rep.stages["alias.install"].sum(), 20);
        assert_eq!(rep.stages["alias.resolve"].sum(), 40);
    }

    #[test]
    fn retransmit_counts_onto_message_span() {
        let rep = build(vec![
            at(1, 0, KernelEvent::MessageSent { id: 6, key: key(4), remote: true }).with_span(6),
            at(9, 0, KernelEvent::Retransmit { peer: 1, seq: 0 }).with_span(6),
            at(15, 0, KernelEvent::Retransmit { peer: 1, seq: 0 }).with_span(6),
        ]);
        assert_eq!(rep.msg(6).unwrap().retransmits, 2);
    }

    #[test]
    fn orphan_events_count_as_incomplete() {
        let rep = build(vec![at(
            7,
            1,
            KernelEvent::MessageDelivered { id: 99, latency_ns: 5, path: DeliveryPath::Local },
        )]);
        assert_eq!(rep.msgs.len(), 0);
        assert_eq!(rep.incomplete, 1);
    }

    #[test]
    fn json_is_balanced_and_deterministic() {
        let events = vec![
            at(100, 0, KernelEvent::MessageSent { id: 9, key: key(1), remote: false }).with_span(9),
            at(120, 0, KernelEvent::MessageDelivered {
                id: 9,
                latency_ns: 20,
                path: DeliveryPath::Local,
            })
            .with_span(9),
        ];
        let a = build(events.clone()).to_json();
        let b = build(events).to_json();
        assert_eq!(a, b);
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert!(a.contains("\"messages\": 1"), "{a}");
        assert!(a.contains("wire.local"), "{a}");
    }
}
