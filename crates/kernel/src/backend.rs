//! The backend seam: one trait, two ways to execute a partition.
//!
//! Everything above the kernel — workloads, benches, the console, the
//! serving front-end — talks to a [`Machine`], which drives a boxed
//! [`Backend`]. Two implementations exist:
//!
//! * **Sim** ([`BackendKind::Sim`]) — the deterministic discrete-event
//!   executor ([`crate::machine::SimMachine`]), unchanged: virtual time,
//!   bit-identical reports across executor parallelism, the substrate
//!   for every paper table.
//! * **Live** ([`BackendKind::Live`]) — [`crate::live::LiveMachine`]:
//!   one real kernel per host thread over
//!   [`hal_am::thread_network`], with the PR 3 reliable layer as its
//!   wire protocol and host monotonic time as its clock.
//!
//! The trait cuts exactly where `SimMachine::run` used to be monolithic:
//! *bootstrap* ([`Backend::exec`]), *start* ([`Backend::init`]),
//! *feed* ([`Backend::submit`]), *finish* ([`Backend::drain`] /
//! [`Backend::run`]), *observe* ([`Backend::report`]). Application code
//! written against [`Machine`] runs identically on both backends —
//! migration, aliases, and FIR chases included — which is the location
//! transparency claim of the paper restated at the harness level.

use crate::error::MachineError;
use crate::kernel::Ctx;
use crate::machine::{MachineConfig, SimMachine, SimReport};
use crate::registry::BehaviorRegistry;
use hal_am::NodeId;
use std::sync::Arc;
use std::time::Duration;

/// Which execution substrate a [`Machine`] drives.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Deterministic discrete-event simulation (the default).
    #[default]
    Sim,
    /// Multi-threaded live runtime: real kernels on host threads over
    /// mpsc links, reliable delivery, host-time clocks.
    Live,
}

impl BackendKind {
    /// Canonical lowercase name (`"sim"` / `"live"`), as accepted by
    /// every bin's `--backend` flag.
    pub const fn as_str(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Live => "live",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(BackendKind::Sim),
            "live" => Ok(BackendKind::Live),
            other => Err(format!("unknown backend `{other}` (expected sim|live)")),
        }
    }
}

/// A unit of work injected into a running machine: a closure executed
/// in a system context on its target node. `Send + 'static` because the
/// live backend ships jobs across threads; the sim backend just runs
/// them inline.
pub type Job = Box<dyn FnOnce(&mut Ctx<'_>) + Send + 'static>;

/// One way of executing a partition of HAL kernels.
///
/// Lifecycle: [`exec`](Backend::exec) bootstrap closures while the
/// machine is staged → [`init`](Backend::init) starts it →
/// [`submit`](Backend::submit) feeds jobs mid-flight →
/// [`drain`](Backend::drain) (or the [`run`](Backend::run) shorthand)
/// waits for completion and yields the [`SimReport`] →
/// [`report`](Backend::report) re-reads it afterwards.
///
/// The sim backend is lenient — it has no threads, so every phase is
/// callable any time. The live backend enforces the lifecycle and
/// answers out-of-order calls with [`MachineError::BackendState`].
pub trait Backend {
    /// Which substrate this is.
    fn kind(&self) -> BackendKind;

    /// Partition size.
    fn nodes(&self) -> usize;

    /// Run a bootstrap closure in a system context on `node` — the
    /// front-end loading a program before the machine starts. The
    /// closure may borrow locals (it is not shipped across threads);
    /// in exchange it is only valid while the machine is staged, i.e.
    /// before [`Backend::init`] on the live backend.
    fn exec(
        &mut self,
        node: NodeId,
        f: Box<dyn FnOnce(&mut Ctx<'_>) + '_>,
    ) -> Result<(), MachineError>;

    /// Start the machine. On the live backend this spawns the node
    /// threads; on the sim backend it is a no-op. Idempotent.
    fn init(&mut self) -> Result<(), MachineError>;

    /// Inject a job into the (possibly already running) machine on
    /// `node`. The sim backend executes it immediately in a system
    /// context; the live backend enqueues it to the node's thread,
    /// which picks it up within its next idle millisecond.
    fn submit(&mut self, node: NodeId, job: Job) -> Result<(), MachineError>;

    /// Wait for the machine to finish and return its report.
    ///
    /// Sim: runs the event loop to quiescence (`timeout` is ignored —
    /// virtual time needs no wall budget; the `max_events` valve guards
    /// livelock). Live: joins the node threads, with `timeout` as the
    /// wall-clock backstop ([`MachineError::WallTimeout`] if it trips).
    fn drain(&mut self, timeout: Duration) -> Result<SimReport, MachineError>;

    /// Start (if needed) and drain with the backend's default budget —
    /// the one-call path every harness uses.
    fn run(&mut self) -> Result<SimReport, MachineError> {
        self.init()?;
        self.drain(DEFAULT_WALL_BUDGET)
    }

    /// Re-read the most recent report without driving the machine.
    /// Sim: snapshots current state any time. Live: available once
    /// drained ([`MachineError::BackendState`] before that — a running
    /// partition has no coherent global snapshot).
    fn report(&self) -> Result<SimReport, MachineError>;
}

/// Default wall-clock budget for [`Backend::run`] on the live backend
/// (ignored by sim). Generous: it is a crash backstop, not a deadline.
pub const DEFAULT_WALL_BUDGET: Duration = Duration::from_mins(1);

/// The deterministic DES backend: a thin adapter over
/// [`SimMachine`], which remains the real implementation (and keeps its
/// public API for tests that reach into kernels).
pub struct SimBackend {
    machine: SimMachine,
}

impl SimBackend {
    /// Build over a behavior registry. Panics on an invalid
    /// configuration, exactly as [`SimMachine::new`] does.
    pub fn new(cfg: MachineConfig, registry: Arc<BehaviorRegistry>) -> Self {
        SimBackend {
            machine: SimMachine::new(cfg, registry),
        }
    }

    /// The wrapped machine (tests, diagnostics).
    pub fn machine(&self) -> &SimMachine {
        &self.machine
    }

    /// Mutable access to the wrapped machine.
    pub fn machine_mut(&mut self) -> &mut SimMachine {
        &mut self.machine
    }
}

impl Backend for SimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    fn nodes(&self) -> usize {
        self.machine.nodes()
    }

    fn exec(
        &mut self,
        node: NodeId,
        f: Box<dyn FnOnce(&mut Ctx<'_>) + '_>,
    ) -> Result<(), MachineError> {
        self.machine.with_ctx(node, f);
        Ok(())
    }

    fn init(&mut self) -> Result<(), MachineError> {
        Ok(()) // nothing to start: the event loop runs inside drain()
    }

    fn submit(&mut self, node: NodeId, job: Job) -> Result<(), MachineError> {
        // No threads to hand the job to — run it right now, in the same
        // system context a bootstrap closure gets. Deterministic because
        // the caller's submission order IS the execution order.
        self.machine.with_ctx(node, job);
        Ok(())
    }

    fn drain(&mut self, _timeout: Duration) -> Result<SimReport, MachineError> {
        self.machine.run()
    }

    fn report(&self) -> Result<SimReport, MachineError> {
        Ok(self.machine.report())
    }
}

/// The backend-agnostic machine handle — what harness code holds.
///
/// ```
/// use hal_kernel::{Machine, MachineConfig, BackendKind};
/// use hal_kernel::registry::BehaviorRegistry;
/// use std::sync::Arc;
///
/// let cfg = MachineConfig::builder(2).build().unwrap();
/// let mut m = Machine::from_config(cfg, Arc::new(BehaviorRegistry::new()));
/// assert_eq!(m.kind(), BackendKind::Sim);
/// let report = m.run().unwrap();
/// assert_eq!(report.actors_created, 0);
/// ```
pub struct Machine {
    inner: Inner,
}

/// Static dispatch for the two first-party backends (the hot path),
/// boxed dynamic dispatch for injected ones.
enum Inner {
    Sim(Box<SimBackend>),
    Live(Box<crate::live::LiveMachine>),
    Boxed(Box<dyn Backend>),
}

impl Inner {
    fn get(&self) -> &dyn Backend {
        match self {
            Inner::Sim(b) => b.as_ref(),
            Inner::Live(b) => b.as_ref(),
            Inner::Boxed(b) => b.as_ref(),
        }
    }

    fn get_mut(&mut self) -> &mut dyn Backend {
        match self {
            Inner::Sim(b) => b.as_mut(),
            Inner::Live(b) => b.as_mut(),
            Inner::Boxed(b) => b.as_mut(),
        }
    }
}

impl Machine {
    /// A machine over the deterministic DES backend.
    pub fn simulated(cfg: MachineConfig, registry: Arc<BehaviorRegistry>) -> Self {
        let cfg = MachineConfig {
            backend: BackendKind::Sim,
            ..cfg
        };
        Machine {
            inner: Inner::Sim(Box::new(SimBackend::new(cfg, registry))),
        }
    }

    /// A machine over the live multi-threaded backend.
    pub fn live(cfg: MachineConfig, registry: Arc<BehaviorRegistry>) -> Self {
        let cfg = MachineConfig {
            backend: BackendKind::Live,
            ..cfg
        };
        Machine {
            inner: Inner::Live(Box::new(crate::live::LiveMachine::new(cfg, registry))),
        }
    }

    /// Dispatch on [`MachineConfig::backend`].
    pub fn from_config(cfg: MachineConfig, registry: Arc<BehaviorRegistry>) -> Self {
        match cfg.backend {
            BackendKind::Sim => Machine::simulated(cfg, registry),
            BackendKind::Live => Machine::live(cfg, registry),
        }
    }

    /// Wrap an arbitrary backend (tests injecting mocks).
    pub fn from_backend(inner: Box<dyn Backend>) -> Self {
        Machine {
            inner: Inner::Boxed(inner),
        }
    }

    /// Which substrate this machine drives.
    pub fn kind(&self) -> BackendKind {
        self.inner.get().kind()
    }

    /// Partition size.
    pub fn nodes(&self) -> usize {
        self.inner.get().nodes()
    }

    /// Run harness code in a system context on `node` (bootstrap) and
    /// return its value. Panics if the backend cannot bootstrap any
    /// more (live machine already started) — use [`Machine::try_exec`]
    /// to handle that as a value.
    pub fn with_ctx<R>(&mut self, node: NodeId, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
        let mut out = None;
        let mut f = Some(f);
        self.inner
            .get_mut()
            .exec(
                node,
                Box::new(|ctx| {
                    out = Some((f.take().expect("exec runs the closure once"))(ctx));
                }),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        out.expect("backend exec must run the bootstrap closure")
    }

    /// Fallible bootstrap — see [`Machine::with_ctx`].
    pub fn try_exec(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut Ctx<'_>),
    ) -> Result<(), MachineError> {
        self.inner.get_mut().exec(node, Box::new(f))
    }

    /// Start the machine (spawns live node threads; no-op on sim).
    pub fn init(&mut self) -> Result<(), MachineError> {
        self.inner.get_mut().init()
    }

    /// Inject a job — see [`Backend::submit`].
    pub fn submit(&mut self, node: NodeId, job: Job) -> Result<(), MachineError> {
        self.inner.get_mut().submit(node, job)
    }

    /// Start (if needed) and run to completion with the default budget.
    pub fn run(&mut self) -> Result<SimReport, MachineError> {
        self.inner.get_mut().run()
    }

    /// Wait for completion with an explicit wall budget (live) — see
    /// [`Backend::drain`].
    pub fn drain(&mut self, timeout: Duration) -> Result<SimReport, MachineError> {
        self.inner.get_mut().drain(timeout)
    }

    /// Re-read the most recent report — see [`Backend::report`].
    pub fn report(&self) -> Result<SimReport, MachineError> {
        self.inner.get().report()
    }

    /// The wrapped [`SimMachine`] when this machine drives the sim
    /// backend (tests that reach into kernels), else `None`.
    pub fn as_sim(&mut self) -> Option<&mut SimMachine> {
        match &mut self.inner {
            Inner::Sim(b) => Some(b.machine_mut()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_parses_and_prints() {
        assert_eq!("sim".parse::<BackendKind>().unwrap(), BackendKind::Sim);
        assert_eq!("live".parse::<BackendKind>().unwrap(), BackendKind::Live);
        assert!("fast".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Live.to_string(), "live");
        assert_eq!(BackendKind::default(), BackendKind::Sim);
    }

    #[test]
    fn sim_backend_runs_empty_partition() {
        let cfg = MachineConfig::builder(2).build().unwrap();
        let mut m = Machine::from_config(cfg, Arc::new(BehaviorRegistry::new()));
        assert_eq!(m.kind(), BackendKind::Sim);
        assert_eq!(m.nodes(), 2);
        let report = m.run().unwrap();
        assert_eq!(report.actors_created, 0);
        assert!(m.as_sim().is_some(), "sim machine must be reachable");
    }

    #[test]
    fn sim_submit_executes_immediately() {
        let cfg = MachineConfig::builder(1).build().unwrap();
        let mut m = Machine::simulated(cfg, Arc::new(BehaviorRegistry::new()));
        m.submit(
            0,
            Box::new(|ctx| ctx.report("probe", crate::message::Value::Int(7))),
        )
        .unwrap();
        let report = m.run().unwrap();
        assert_eq!(
            report.value("probe"),
            Some(&crate::message::Value::Int(7))
        );
    }
}
