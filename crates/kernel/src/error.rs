//! Typed errors for the public kernel API.
//!
//! Historically every misuse of the machine — a bad node id, an unknown
//! behavior id arriving over the wire, a `max_events` livelock abort —
//! was a `panic!` deep inside the kernel. Harness code (benches, the
//! console, integration tests) could not distinguish "the simulation is
//! wrong" from "the simulation found a bug", and the windowed-parallel
//! executor had to forward panics across threads. [`MachineError`]
//! makes these outcomes values: [`crate::SimMachine::run`] returns
//! `Result<SimReport, MachineError>` and configuration problems are
//! caught at build time by [`ConfigError`] via
//! [`crate::MachineConfig::builder`].

use crate::addr::BehaviorId;
use hal_am::NodeId;
use std::fmt;

/// A typed failure from a [`crate::SimMachine`] run (or from garbage
/// collection / configuration on its public paths).
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The event loop exceeded `max_events` — almost always a livelock
    /// (e.g. two actors bouncing a message forever).
    MaxEvents {
        /// The configured event budget that was exhausted.
        limit: u64,
    },
    /// A create request named a behavior id the registry doesn't know.
    UnknownBehavior {
        /// The unregistered behavior id.
        behavior: BehaviorId,
        /// The node that tried to instantiate it.
        node: NodeId,
    },
    /// A packet or request named a node outside the partition.
    InvalidNode {
        /// The out-of-range node id.
        node: NodeId,
        /// The partition size.
        nodes: usize,
    },
    /// Garbage collection was requested while the machine still had
    /// undelivered messages or scheduled work.
    NotQuiescent,
    /// The distributed GC protocol did not converge.
    GcIncomplete {
        /// Human-readable description of what never arrived.
        missing: String,
    },
    /// The machine was built from an invalid configuration.
    Config(ConfigError),
    /// A backend operation was invoked in a state that cannot serve it
    /// (e.g. a bootstrap closure handed to a live machine whose node
    /// threads already started, or a job submitted after completion).
    BackendState {
        /// What was attempted, for the error message.
        what: &'static str,
    },
    /// The live backend's wall-clock budget elapsed before every node
    /// stopped — the live analog of the `max_events` livelock valve.
    WallTimeout {
        /// How long the machine waited, in milliseconds.
        waited_ms: u64,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::MaxEvents { limit } => {
                write!(f, "SimMachine exceeded max_events = {limit} (livelock?)")
            }
            MachineError::UnknownBehavior { behavior, node } => {
                write!(f, "unknown behavior id {} on node {node}", behavior.0)
            }
            MachineError::InvalidNode { node, nodes } => {
                write!(f, "node id {node} out of range for a {nodes}-node partition")
            }
            MachineError::NotQuiescent => {
                write!(f, "garbage collection requires a quiescent machine")
            }
            MachineError::GcIncomplete { missing } => {
                write!(f, "garbage collection did not converge: {missing}")
            }
            MachineError::Config(e) => write!(f, "invalid configuration: {e}"),
            MachineError::BackendState { what } => {
                write!(f, "backend cannot {what} in its current state")
            }
            MachineError::WallTimeout { waited_ms } => {
                write!(
                    f,
                    "live machine did not stop within its {waited_ms} ms wall budget"
                )
            }
        }
    }
}

impl std::error::Error for MachineError {}

impl From<ConfigError> for MachineError {
    fn from(e: ConfigError) -> Self {
        MachineError::Config(e)
    }
}

/// A validation failure from [`crate::MachineConfig::builder`]'s
/// `build()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The partition must have at least one node.
    ZeroNodes,
    /// Node ids are `u16`, so the partition cannot exceed that space.
    TooManyNodes {
        /// The requested partition size.
        nodes: usize,
    },
    /// The scheduling quantum must be positive.
    ZeroQuantum,
    /// A fault probability was outside `[0, 1]` (or not finite).
    BadFaultRate {
        /// Which probability field was rejected.
        which: &'static str,
    },
    /// A live-backend configuration carried a chaos fault plan — fault
    /// injection lives in the simulated link layer, so a live run would
    /// silently ignore it.
    LiveFaultsUnsupported,
    /// A chaos timeout is shorter than the executor lookahead — timers
    /// would fire inside the window they were scheduled in.
    TimeoutTooShort {
        /// Which timeout field was rejected.
        which: &'static str,
        /// The minimum allowed value in nanoseconds.
        min_ns: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroNodes => write!(f, "a partition needs at least one node"),
            ConfigError::TooManyNodes { nodes } => {
                write!(f, "{nodes} nodes exceed the u16 node-id space")
            }
            ConfigError::ZeroQuantum => write!(f, "the scheduling quantum must be positive"),
            ConfigError::BadFaultRate { which } => {
                write!(f, "fault probability `{which}` must be in [0, 1]")
            }
            ConfigError::LiveFaultsUnsupported => {
                write!(f, "the live backend cannot inject link faults (simulation-only)")
            }
            ConfigError::TimeoutTooShort { which, min_ns } => {
                write!(f, "`{which}` must be at least {min_ns} ns (the link lookahead)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_actionable() {
        assert_eq!(
            MachineError::MaxEvents { limit: 10 }.to_string(),
            "SimMachine exceeded max_events = 10 (livelock?)"
        );
        assert_eq!(
            ConfigError::ZeroNodes.to_string(),
            "a partition needs at least one node"
        );
        assert!(
            MachineError::from(ConfigError::ZeroQuantum)
                .to_string()
                .contains("quantum")
        );
    }
}
