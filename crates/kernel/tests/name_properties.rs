//! Property tests over the name server and epoch-based gossip repair —
//! the §4 invariants the whole delivery algorithm rests on.

use hal_kernel::addr::{ActorId, AddrKey, DescriptorId, MailAddr};
use hal_kernel::descriptor::Locality;
use hal_kernel::name_server::{NameServer, Resolution};
use proptest::prelude::*;

proptest! {
    /// Birthplace keys never touch the hash table; foreign keys never
    /// touch the fast path.
    #[test]
    fn lookup_path_discipline(
        me in 0u16..8,
        n_local in 0usize..20,
        foreign in prop::collection::vec((0u16..8, 0u32..40), 0..20),
    ) {
        let mut ns = NameServer::new(me);
        let mut local_keys = Vec::new();
        for i in 0..n_local {
            let d = ns.alloc_local(ActorId(i as u32), 0);
            local_keys.push(AddrKey { birthplace: me, index: d });
        }
        let mut foreign_keys = Vec::new();
        for (node, idx) in foreign {
            prop_assume!(node != me);
            let d = ns.alloc_remote(node, None, 0);
            let key = AddrKey { birthplace: node, index: DescriptorId(idx) };
            ns.bind(key, d);
            foreign_keys.push(key);
        }
        let fast_before = ns.fast_hits;
        let hash_before = ns.hash_lookups;
        for k in &local_keys {
            let _ = ns.resolve(*k);
        }
        // fast path used exactly once per local resolve
        prop_assert_eq!(ns.fast_hits - fast_before, local_keys.len() as u64);
        prop_assert_eq!(ns.hash_lookups, hash_before);
        let hash_before = ns.hash_lookups;
        let mut ns2 = ns; // appease borrowck for the second loop
        for k in &foreign_keys {
            let _ = ns2.resolve(*k);
        }
        prop_assert_eq!(ns2.hash_lookups - hash_before, foreign_keys.len() as u64);
    }

    /// Epoch discipline: applying gossip in any order leaves each
    /// descriptor holding the belief from the *highest* epoch seen.
    #[test]
    fn gossip_is_order_independent_under_epochs(
        updates in prop::collection::vec((0u16..8, 0u32..1000), 1..40),
    ) {
        // Simulate repair_descriptor's rule on a single Remote entry:
        // overwrite iff epoch >= current.
        let apply = |order: &[(u16, u32)]| {
            let mut node = 99u16;
            let mut epoch = 0u32;
            for &(n, e) in order {
                if e >= epoch {
                    node = n;
                    epoch = e;
                }
            }
            (node, epoch)
        };
        let (_, max_epoch) = apply(&updates);
        let mut shuffled = updates.clone();
        shuffled.reverse();
        let (_, rev_epoch) = apply(&shuffled);
        // The resulting epoch is order-independent (the node may differ
        // among equal-epoch claims, which are by construction the same
        // physical arrival in the real system).
        prop_assert_eq!(max_epoch, rev_epoch);
        prop_assert_eq!(max_epoch, updates.iter().map(|&(_, e)| e).max().unwrap());
    }

    /// Alias and ordinary keys resolve to the same actor once bound.
    #[test]
    fn alias_interchangeability(me in 0u16..8, requester in 0u16..8, aid in 0u32..100) {
        prop_assume!(me != requester);
        let mut ns = NameServer::new(me);
        let d = ns.alloc_local(ActorId(aid), 0);
        let ordinary = MailAddr::ordinary(me, d);
        let alias = MailAddr::alias(requester, DescriptorId(0), me, hal_kernel::BehaviorId(1));
        ns.bind(alias.key, d);
        prop_assert_eq!(ns.resolve(ordinary.key), Resolution::Local(ActorId(aid)));
        prop_assert_eq!(ns.resolve(alias.key), Resolution::Local(ActorId(aid)));
        prop_assert_eq!(alias.default_route(), me, "alias routes to the creation node");
    }

    /// Descriptor updates through migrations always leave a resolvable
    /// chain ending wherever the last migration went.
    #[test]
    fn migration_chain_resolution(path in prop::collection::vec(1u16..6, 1..10)) {
        let mut ns = NameServer::new(0);
        let d = ns.alloc_local(ActorId(0), 0);
        let key = AddrKey { birthplace: 0, index: d };
        // Actor leaves node 0 along `path`; node 0 keeps updating its
        // forward pointer like migrate_out does.
        let mut epoch = 0;
        for &hop in &path {
            epoch += 1;
            let desc = ns.descriptor_mut(d);
            desc.locality = Locality::Remote { node: hop, remote_index: None };
            desc.epoch = epoch;
        }
        match ns.resolve(key) {
            Resolution::Remote { node, .. } => prop_assert_eq!(node, *path.last().unwrap()),
            other => {
                let msg = format!("expected Remote, got {other:?}");
                prop_assert!(false, "{}", msg);
            }
        }
        prop_assert_eq!(ns.descriptor(d).epoch, path.len() as u32);
    }
}
