//! Randomized property tests over the name server and epoch-based gossip
//! repair — the §4 invariants the whole delivery algorithm rests on.
//!
//! Inputs come from the workspace's deterministic [`SplitMix64`] stream
//! (seeded per case), keeping the suite free of external dependencies;
//! failures reproduce from the printed case number.

use hal_des::SplitMix64;
use hal_kernel::addr::{ActorId, AddrKey, DescriptorId, MailAddr};
use hal_kernel::descriptor::Locality;
use hal_kernel::name_server::{NameServer, Resolution};

fn range(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + rng.next_u64() % (hi - lo)
}

/// Birthplace keys never touch the hash table; foreign keys never touch
/// the fast path.
#[test]
fn lookup_path_discipline() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0x4A_0001 + case);
        let me = range(&mut rng, 0, 8) as u16;
        let n_local = range(&mut rng, 0, 20) as usize;
        let n_foreign = range(&mut rng, 0, 20) as usize;

        let mut ns = NameServer::new(me);
        let mut local_keys = Vec::new();
        for i in 0..n_local {
            let d = ns.alloc_local(ActorId(i as u32), 0);
            local_keys.push(AddrKey { birthplace: me, index: d });
        }
        let mut foreign_keys = Vec::new();
        for _ in 0..n_foreign {
            let node = range(&mut rng, 0, 8) as u16;
            let idx = range(&mut rng, 0, 40) as u32;
            if node == me {
                continue; // foreign means not the birthplace
            }
            let d = ns.alloc_remote(node, None, 0);
            let key = AddrKey { birthplace: node, index: DescriptorId(idx) };
            ns.bind(key, d);
            foreign_keys.push(key);
        }
        let fast_before = ns.fast_hits;
        let hash_before = ns.hash_lookups;
        for k in &local_keys {
            let _ = ns.resolve(*k);
        }
        // fast path used exactly once per local resolve
        assert_eq!(ns.fast_hits - fast_before, local_keys.len() as u64, "case {case}");
        assert_eq!(ns.hash_lookups, hash_before, "case {case}");
        let hash_before = ns.hash_lookups;
        for k in &foreign_keys {
            let _ = ns.resolve(*k);
        }
        assert_eq!(
            ns.hash_lookups - hash_before,
            foreign_keys.len() as u64,
            "case {case}"
        );
    }
}

/// Epoch discipline: applying gossip in any order leaves each descriptor
/// holding the belief from the *highest* epoch seen.
#[test]
fn gossip_is_order_independent_under_epochs() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0x4A_0002 + case);
        let n = range(&mut rng, 1, 40) as usize;
        let updates: Vec<(u16, u32)> = (0..n)
            .map(|_| (range(&mut rng, 0, 8) as u16, range(&mut rng, 0, 1000) as u32))
            .collect();
        // Simulate repair_descriptor's rule on a single Remote entry:
        // overwrite iff epoch >= current.
        let apply = |order: &[(u16, u32)]| {
            let mut node = 99u16;
            let mut epoch = 0u32;
            for &(n, e) in order {
                if e >= epoch {
                    node = n;
                    epoch = e;
                }
            }
            (node, epoch)
        };
        let (_, max_epoch) = apply(&updates);
        let mut shuffled = updates.clone();
        shuffled.reverse();
        let (_, rev_epoch) = apply(&shuffled);
        // The resulting epoch is order-independent (the node may differ
        // among equal-epoch claims, which are by construction the same
        // physical arrival in the real system).
        assert_eq!(max_epoch, rev_epoch, "case {case}");
        assert_eq!(
            max_epoch,
            updates.iter().map(|&(_, e)| e).max().unwrap(),
            "case {case}"
        );
    }
}

/// Alias and ordinary keys resolve to the same actor once bound.
#[test]
fn alias_interchangeability() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0x4A_0003 + case);
        let me = range(&mut rng, 0, 8) as u16;
        let requester = range(&mut rng, 0, 8) as u16;
        let aid = range(&mut rng, 0, 100) as u32;
        if me == requester {
            continue; // aliases exist only for genuinely remote creation
        }
        let mut ns = NameServer::new(me);
        let d = ns.alloc_local(ActorId(aid), 0);
        let ordinary = MailAddr::ordinary(me, d);
        let alias = MailAddr::alias(requester, DescriptorId(0), me, hal_kernel::BehaviorId(1));
        ns.bind(alias.key, d);
        assert_eq!(ns.resolve(ordinary.key), Resolution::Local(ActorId(aid)), "case {case}");
        assert_eq!(ns.resolve(alias.key), Resolution::Local(ActorId(aid)), "case {case}");
        assert_eq!(
            alias.default_route(),
            me,
            "case {case}: alias routes to the creation node"
        );
    }
}

/// Descriptor updates through migrations always leave a resolvable chain
/// ending wherever the last migration went.
#[test]
fn migration_chain_resolution() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0x4A_0004 + case);
        let hops = range(&mut rng, 1, 10) as usize;
        let path: Vec<u16> = (0..hops).map(|_| range(&mut rng, 1, 6) as u16).collect();

        let mut ns = NameServer::new(0);
        let d = ns.alloc_local(ActorId(0), 0);
        let key = AddrKey { birthplace: 0, index: d };
        // Actor leaves node 0 along `path`; node 0 keeps updating its
        // forward pointer like migrate_out does.
        let mut epoch = 0;
        for &hop in &path {
            epoch += 1;
            let desc = ns.descriptor_mut(d);
            desc.locality = Locality::Remote { node: hop, remote_index: None };
            desc.epoch = epoch;
        }
        match ns.resolve(key) {
            Resolution::Remote { node, .. } => {
                assert_eq!(node, *path.last().unwrap(), "case {case}")
            }
            other => panic!("case {case}: expected Remote, got {other:?}"),
        }
        assert_eq!(ns.descriptor(d).epoch, path.len() as u32, "case {case}");
    }
}
