//! Distributed garbage collection (§9 future work): end-to-end tests of
//! the coordinator-driven mark & sweep over locality descriptors.

use hal_kernel::kernel::Ctx;
use hal_kernel::{
    Behavior, BehaviorId, BehaviorRegistry, MachineConfig, MailAddr, Msg, SimMachine, Value,
};
use std::sync::Arc;

/// Holds up to two acquaintance addresses, settable by message, and
/// declares them for GC tracing.
struct Holder {
    refs: Vec<MailAddr>,
}
impl Behavior for Holder {
    fn dispatch(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        // selector 0: adopt every Addr argument as an acquaintance.
        self.refs = msg.args.iter().map(|v| v.as_addr()).collect();
    }
    fn acquaintances(&self) -> Vec<MailAddr> {
        self.refs.clone()
    }
    fn name(&self) -> &'static str {
        "holder"
    }
}
fn make_holder(_: &[Value]) -> Box<dyn Behavior> {
    Box::new(Holder { refs: Vec::new() })
}

fn registry() -> Arc<BehaviorRegistry> {
    let mut reg = BehaviorRegistry::new();
    reg.register(BehaviorId(0), "holder", make_holder);
    Arc::new(reg)
}

fn new_holder(ctx: &mut Ctx<'_>) -> MailAddr {
    ctx.create_local(Box::new(Holder { refs: Vec::new() }))
}

#[test]
fn unreferenced_actors_are_collected() {
    let mut m = SimMachine::new(MachineConfig::new(4), registry());
    m.with_ctx(0, |ctx| {
        for _ in 0..10 {
            new_holder(ctx); // garbage: never pinned, never referenced
        }
        let kept = new_holder(ctx);
        ctx.pin(kept);
    });
    m.run().unwrap();
    let r = m.collect_garbage().unwrap();
    assert_eq!(r.freed, 10);
    assert_eq!(r.live, 1);
}

#[test]
fn reference_chains_keep_actors_alive_across_nodes() {
    let mut m = SimMachine::new(MachineConfig::new(4), registry());
    // a (node 0, pinned) -> b (node 2) -> c (node 3); d is garbage.
    m.with_ctx(3, |ctx| {
        let c = new_holder(ctx);
        ctx.report("c", Value::Addr(c));
    });
    let c_addr = match m.report().value("c") {
        Some(Value::Addr(a)) => *a,
        _ => unreachable!(),
    };
    m.with_ctx(2, |ctx| {
        let b = new_holder(ctx);
        ctx.send(b, 0, vec![Value::Addr(c_addr)]); // b adopts c
        ctx.report("b", Value::Addr(b));
    });
    let b_addr = match m.report().value("b") {
        Some(Value::Addr(a)) => *a,
        _ => unreachable!(),
    };
    m.with_ctx(0, |ctx| {
        let a = new_holder(ctx);
        ctx.send(a, 0, vec![Value::Addr(b_addr)]); // a adopts b
        ctx.pin(a);
        new_holder(ctx); // garbage on node 0
    });
    m.run().unwrap();
    let r = m.collect_garbage().unwrap();
    assert_eq!(r.freed, 1, "only the unreferenced actor is freed");
    assert_eq!(r.live, 3, "the pinned chain a->b->c survives");
    assert!(r.rounds >= 1, "cross-node marks need at least one extra round");
}

#[test]
fn unpinning_makes_a_whole_chain_collectable() {
    let mut m = SimMachine::new(MachineConfig::new(2), registry());
    let a = m.with_ctx(0, |ctx| {
        let c = new_holder(ctx);
        let b = new_holder(ctx);
        ctx.send(b, 0, vec![Value::Addr(c)]);
        let a = new_holder(ctx);
        ctx.send(a, 0, vec![Value::Addr(b)]);
        ctx.pin(a);
        a
    });
    m.run().unwrap();
    let r1 = m.collect_garbage().unwrap();
    assert_eq!(r1.freed, 0);
    assert_eq!(r1.live, 3);

    m.with_ctx(0, |ctx| ctx.unpin(a));
    let r2 = m.collect_garbage().unwrap();
    assert_eq!(r2.freed, 3, "dropping the root frees the whole chain");
    assert_eq!(r2.live, 0);
}

#[test]
fn actors_with_queued_messages_are_roots() {
    // An actor with pending mail must never be collected even if nothing
    // references it: the message will still be processed.
    struct Gate {
        opened: bool,
    }
    impl Behavior for Gate {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            match msg.selector {
                0 => self.opened = true,
                1 => ctx.report("gate_alive", Value::Int(self.opened as i64)),
                _ => unreachable!(),
            }
        }
        fn enabled(&self, selector: u32, _args: &[Value]) -> bool {
            selector != 1 || self.opened
        }
    }
    let mut m = SimMachine::new(MachineConfig::new(1), registry());
    let g = m.with_ctx(0, |ctx| {
        let g = ctx.create_local(Box::new(Gate { opened: false }));
        // The probe parks in the pending queue (disabled until opened).
        ctx.send(g, 1, vec![]);
        g
    });
    m.run().unwrap();
    let r = m.collect_garbage().unwrap();
    assert_eq!(r.freed, 0, "actor with a pending message is a root");

    // Open the gate; the parked probe fires; everything still works.
    m.with_ctx(0, |ctx| ctx.send(g, 0, vec![]));
    let rep = m.run().unwrap();
    assert_eq!(rep.value("gate_alive"), Some(&Value::Int(1)));
}

#[test]
fn group_members_survive_collection() {
    let mut reg = BehaviorRegistry::new();
    reg.register(BehaviorId(0), "holder", make_holder);
    let mut m = SimMachine::new(MachineConfig::new(4), Arc::new(reg));
    m.with_ctx(0, |ctx| {
        ctx.grpnew(BehaviorId(0), 12, vec![]);
        new_holder(ctx); // garbage
    });
    m.run().unwrap();
    let r = m.collect_garbage().unwrap();
    assert_eq!(r.freed, 1);
    assert_eq!(r.live, 12, "group members stay reachable via the group id");
}

#[test]
fn collection_is_stable_under_repetition() {
    let mut m = SimMachine::new(MachineConfig::new(3), registry());
    m.with_ctx(0, |ctx| {
        let keep = new_holder(ctx);
        ctx.pin(keep);
        for _ in 0..5 {
            new_holder(ctx);
        }
    });
    m.run().unwrap();
    assert_eq!(m.collect_garbage().unwrap().freed, 5);
    assert_eq!(m.collect_garbage().unwrap().freed, 0, "second collection finds nothing");
    assert_eq!(m.collect_garbage().unwrap().live, 1);
}

#[test]
fn migrated_actors_are_traced_at_their_current_home() {
    struct Mover;
    impl Behavior for Mover {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.migrate(1);
        }
    }
    let mut m = SimMachine::new(MachineConfig::new(2), registry());
    m.with_ctx(0, |ctx| {
        let mover = ctx.create_local(Box::new(Mover));
        ctx.send(mover, 0, vec![]); // migrates 0 -> 1
        let holder = new_holder(ctx);
        ctx.send(holder, 0, vec![Value::Addr(mover)]); // holder -> mover
        ctx.pin(holder);
    });
    m.run().unwrap();
    let r = m.collect_garbage().unwrap();
    assert_eq!(r.freed, 0, "the migrated referent is found via its forward chain");
    assert_eq!(r.live, 2);
}

#[test]
#[should_panic(expected = "dangling local mail address")]
fn sending_to_a_collected_actor_fails_loudly() {
    // Use-after-free semantics: a mail address that survives its actor's
    // collection is a program error and must not be silent.
    let mut m = SimMachine::new(MachineConfig::new(1), registry());
    let ghost = m.with_ctx(0, new_holder);
    m.run().unwrap();
    assert_eq!(m.collect_garbage().unwrap().freed, 1);
    m.with_ctx(0, |ctx| ctx.send(ghost, 0, vec![]));
    m.run().unwrap();
}
