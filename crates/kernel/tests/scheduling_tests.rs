//! Second-wave kernel tests: scheduling fairness, stack-depth bounds,
//! ablation-flag semantics, and protocol races.

use hal_kernel::kernel::{Ctx, OptFlags};
use hal_kernel::{
    Behavior, BehaviorId, BehaviorRegistry, MachineConfig, MachineError, MailAddr, Msg,
    SimMachine, Value,
};
use std::sync::Arc;

fn empty_registry() -> Arc<BehaviorRegistry> {
    Arc::new(BehaviorRegistry::new())
}

#[test]
fn quantum_bounds_one_actors_monopoly() {
    // Two actors, one with many queued messages: the quantum must let
    // the second actor run before the first drains completely.
    struct Logger {
        tag: i64,
    }
    impl Behavior for Logger {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.report("order", Value::Int(self.tag));
        }
    }
    let mut cfg = MachineConfig::new(1);
    cfg.quantum = 4;
    let mut m = SimMachine::new(cfg, empty_registry());
    m.with_ctx(0, |ctx| {
        let a = ctx.create_local(Box::new(Logger { tag: 1 }));
        let b = ctx.create_local(Box::new(Logger { tag: 2 }));
        for _ in 0..10 {
            ctx.send(a, 0, vec![]);
        }
        ctx.send(b, 0, vec![]);
    });
    let r = m.run().unwrap();
    let order: Vec<i64> = r.values("order").into_iter().map(|v| v.as_int()).collect();
    assert_eq!(order.len(), 11);
    let b_pos = order.iter().position(|&t| t == 2).unwrap();
    assert!(
        b_pos <= 4,
        "actor B should run after A's first quantum, ran at position {b_pos}: {order:?}"
    );
}

#[test]
fn fast_path_depth_bound_falls_back_to_queueing() {
    // A chain of actors each fast-forwarding to the next: beyond the
    // stack bound the kernel must queue instead of recursing.
    struct Link {
        next: Option<MailAddr>,
    }
    impl Behavior for Link {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let depth = msg.args[0].as_int();
            match self.next {
                Some(next) => {
                    ctx.send_fast(next, 0, vec![Value::Int(depth + 1)]);
                }
                None => ctx.report("chain_depth", Value::Int(depth)),
            }
        }
    }
    let mut cfg = MachineConfig::new(1);
    cfg.max_stack_depth = 8;
    let mut m = SimMachine::new(cfg, empty_registry());
    m.with_ctx(0, |ctx| {
        // 100-link chain >> depth bound 8.
        let mut next = None;
        for _ in 0..100 {
            next = Some(ctx.create_local(Box::new(Link { next })));
        }
        ctx.send(next.unwrap(), 0, vec![Value::Int(0)]);
    });
    let r = m.run().unwrap();
    assert_eq!(
        r.value("chain_depth"),
        Some(&Value::Int(99)),
        "all links traversed despite the depth bound"
    );
    assert!(r.stats.get("fast.inline") > 0, "some links ran inline");
    assert!(
        r.stats.get("fast.depth_fallback") > 0,
        "deep links fell back to the queue"
    );
}

#[test]
fn send_fast_to_remote_actor_degrades_to_generic_send() {
    struct Reporter;
    impl Behavior for Reporter {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.report("got_on", Value::Int(ctx.node() as i64));
        }
    }
    struct Caller {
        target: MailAddr,
    }
    impl Behavior for Caller {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            let inline = ctx.send_fast(self.target, 0, vec![]);
            ctx.report("inline", Value::Int(inline as i64));
        }
    }
    let mut reg = BehaviorRegistry::new();
    reg.register(BehaviorId(0), "reporter", |_| Box::new(Reporter));
    let mut m = SimMachine::new(MachineConfig::new(2), Arc::new(reg));
    m.with_ctx(0, |ctx| {
        let remote = ctx.create_on(1, BehaviorId(0), vec![]);
        let caller = ctx.create_local(Box::new(Caller { target: remote }));
        ctx.send(caller, 0, vec![]);
    });
    let r = m.run().unwrap();
    assert_eq!(r.value("inline"), Some(&Value::Int(0)), "remote: no inline");
    assert_eq!(r.value("got_on"), Some(&Value::Int(1)), "delivered remotely");
}

#[test]
fn broadcast_racing_group_creation_is_buffered() {
    // A second node broadcasts to a group it just learned about, racing
    // the GrpCreate fan-out: the parked broadcast must still reach every
    // member exactly once.
    struct Member {
        index: i64,
    }
    impl Behavior for Member {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.report("member_hit", Value::Int(self.index));
        }
    }
    fn make_member(args: &[Value]) -> Box<dyn Behavior> {
        Box::new(Member {
            index: args[args.len() - 2].as_int(),
        })
    }
    struct Echoer;
    impl Behavior for Echoer {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            // Immediately broadcast to the group we were told about —
            // from a node the GrpCreate may not have reached yet.
            let g = msg.args[0].as_group();
            ctx.broadcast(g, 0, vec![]);
        }
    }
    let mut reg = BehaviorRegistry::new();
    reg.register(BehaviorId(0), "member", make_member);
    reg.register(BehaviorId(1), "echoer", |_| Box::new(Echoer));
    let mut m = SimMachine::new(MachineConfig::new(8), Arc::new(reg));
    m.with_ctx(0, |ctx| {
        let echoer = ctx.create_on(7, BehaviorId(1), vec![]);
        let g = ctx.grpnew(BehaviorId(0), 16, vec![]);
        // Tell the far node about the group right away.
        ctx.send(echoer, 0, vec![Value::Group(g)]);
    });
    let r = m.run().unwrap();
    let mut hits: Vec<i64> = r.values("member_hit").into_iter().map(|v| v.as_int()).collect();
    hits.sort_unstable();
    assert_eq!(hits, (0..16).collect::<Vec<_>>(), "every member hit exactly once");
}

#[test]
fn group_member_migrates_and_stays_addressable_by_index() {
    struct Member {
        index: i64,
    }
    impl Behavior for Member {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            match msg.selector {
                0 => ctx.migrate(msg.args[0].as_int() as u16),
                1 => ctx.report(
                    "member_answered_from",
                    Value::Int(ctx.node() as i64 * 100 + self.index),
                ),
                _ => unreachable!(),
            }
        }
    }
    fn make_member(args: &[Value]) -> Box<dyn Behavior> {
        Box::new(Member {
            index: args[args.len() - 2].as_int(),
        })
    }
    let mut reg = BehaviorRegistry::new();
    reg.register(BehaviorId(0), "member", make_member);
    let mut m = SimMachine::new(MachineConfig::new(4), Arc::new(reg));
    m.with_ctx(0, |ctx| {
        let g = ctx.grpnew(BehaviorId(0), 4, vec![]);
        // Member 2 (home node 2) migrates to node 0…
        ctx.send_member(g, 2, 0, vec![Value::Int(0)]);
        // …and must still answer when addressed by (group, 2).
        ctx.send_member(g, 2, 1, vec![]);
    });
    let r = m.run().unwrap();
    assert_eq!(
        r.value("member_answered_from"),
        Some(&Value::Int(2)), // node 0 * 100 + index 2
        "member found at its new node via its home-node entry"
    );
}

#[test]
fn aliases_off_still_computes_but_blocks() {
    // The §5 ablation: with aliases off the requester's clock pays the
    // full round trip per remote creation; results are unchanged.
    struct Echo;
    impl Behavior for Echo {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            ctx.reply(Value::Int(msg.args[0].as_int() + 1));
        }
    }
    let mut reg = BehaviorRegistry::new();
    reg.register(BehaviorId(0), "echo", |_| Box::new(Echo));
    let registry = Arc::new(reg);

    let run = |aliases: bool| {
        let cfg = MachineConfig::builder(2).opt(OptFlags {
            aliases,
            ..OptFlags::default()
        }).build().unwrap();
        let mut m = SimMachine::new(cfg, Arc::clone(&registry));
        let before = m.kernel(0).clock;
        m.with_ctx(0, |ctx| {
            for _ in 0..10 {
                ctx.create_on(1, BehaviorId(0), vec![]);
            }
        });
        let requester_cost = (m.kernel(0).clock - before).as_nanos();
        m.run().unwrap();
        requester_cost
    };
    let with = run(true);
    let without = run(false);
    assert!(
        without > with * 3,
        "blocking creation should cost much more at the requester: {without} vs {with}"
    );
}

#[test]
fn reply_to_actor_continuation_roundtrips() {
    use hal_kernel::ContRef;
    struct Server;
    impl Behavior for Server {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            ctx.reply(Value::Int(msg.args[0].as_int() * 3));
        }
    }
    struct Client {
        server: MailAddr,
    }
    impl Behavior for Client {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            match msg.selector {
                0 => {
                    let me = ctx.me();
                    ctx.request(
                        self.server,
                        0,
                        vec![Value::Int(14)],
                        ContRef::Actor {
                            addr: me,
                            selector: 1,
                        },
                    );
                }
                1 => ctx.report("answer", msg.args[0].clone()),
                _ => unreachable!(),
            }
        }
    }
    let mut reg = BehaviorRegistry::new();
    reg.register(BehaviorId(0), "server", |_| Box::new(Server));
    let mut m = SimMachine::new(MachineConfig::new(2), Arc::new(reg));
    m.with_ctx(0, |ctx| {
        let server = ctx.create_on(1, BehaviorId(0), vec![]);
        let client = ctx.create_local(Box::new(Client { server }));
        ctx.send(client, 0, vec![]);
    });
    let r = m.run().unwrap();
    assert_eq!(r.value("answer"), Some(&Value::Int(42)));
}

#[test]
fn event_valve_catches_livelock() {
    // An actor that endlessly messages itself: the safety valve fires
    // and surfaces as a typed error rather than a panic.
    struct Spinner;
    impl Behavior for Spinner {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            let me = ctx.me();
            ctx.send(me, 0, vec![]);
        }
    }
    let cfg = MachineConfig::builder(1).max_events(1000).build().unwrap();
    let mut m = SimMachine::new(cfg, empty_registry());
    m.with_ctx(0, |ctx| {
        let s = ctx.create_local(Box::new(Spinner));
        ctx.send(s, 0, vec![]);
    });
    let err = m.run().unwrap_err();
    assert!(
        matches!(err, MachineError::MaxEvents { limit: 1000 }),
        "expected the livelock valve, got: {err}"
    );
}

#[test]
fn become_then_migrate_in_one_method() {
    struct First;
    impl Behavior for First {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.become_behavior(Box::new(Second));
            ctx.migrate(1);
        }
    }
    struct Second;
    impl Behavior for Second {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.report("second_on", Value::Int(ctx.node() as i64));
        }
    }
    let mut m = SimMachine::new(MachineConfig::new(2), empty_registry());
    m.with_ctx(0, |ctx| {
        let a = ctx.create_local(Box::new(First));
        ctx.send(a, 0, vec![]);
        ctx.send(a, 0, vec![]); // travels with the migration
    });
    let r = m.run().unwrap();
    assert_eq!(
        r.value("second_on"),
        Some(&Value::Int(1)),
        "the become'd behavior processed the queued message on the new node"
    );
}
