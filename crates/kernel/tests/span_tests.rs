//! Span-reconstruction integration tests: real runs (not synthetic
//! event lists) must produce causally-coherent spans — FIR-chase hops
//! in forwarding order behind a migrating actor, alias creations that
//! complete at the requester before the remote install, and
//! reliable-layer retransmits attributed to the message they carried.

use hal_kernel::kernel::Ctx;
use hal_kernel::span::SpanReport;
use hal_kernel::{
    Behavior, BehaviorId, BehaviorRegistry, DeliveryPath, FaultPlan, MachineConfig, MailAddr, Msg,
    SimMachine, Value,
};
use std::sync::Arc;

const SPRAY: BehaviorId = BehaviorId(1);
const SINK: BehaviorId = BehaviorId(2);

/// Walks a fixed hop list, bouncing a self-message ahead of each
/// migration; absorbs probes along the way.
struct Nomad {
    hops: Vec<u16>,
    probes: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("probe", Value::Int(self.probes));
            }
            _ => unreachable!(),
        }
    }
}

/// Fires `n` probes at `target` when poked.
struct Spray {
    target: MailAddr,
    n: i64,
}
impl Behavior for Spray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for _ in 0..self.n {
            ctx.send(self.target, 1, vec![]);
        }
    }
}
fn make_spray(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Spray {
        target: args[0].as_addr(),
        n: args[1].as_int(),
    })
}

/// Counts what it receives.
struct Sink {
    got: i64,
}
impl Behavior for Sink {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        self.got += 1;
        ctx.report("got", Value::Int(self.got));
    }
}
fn make_sink(_args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Sink { got: 0 })
}

fn registry() -> Arc<BehaviorRegistry> {
    let mut r = BehaviorRegistry::new();
    r.register(SPRAY, "spray", make_spray);
    r.register(SINK, "sink", make_sink);
    Arc::new(r)
}

/// A migration race with tracing on: the nomad walks `chain` hops while
/// `probes` messages from another node chase it.
fn chase_spans(chain: usize, probes: i64) -> SpanReport {
    let mut m = SimMachine::new(
        MachineConfig::builder(8).seed(5).trace().build().unwrap(),
        registry(),
    );
    m.with_ctx(0, |ctx| {
        let hops: Vec<u16> = (0..chain).rev().map(|i| ((i % 7) + 1) as u16).collect();
        let nomad = ctx.create_local(Box::new(Nomad { hops, probes: 0 }));
        ctx.send(nomad, 0, vec![]);
        let s = ctx.create_on(4, SPRAY, vec![Value::Addr(nomad), Value::Int(probes)]);
        ctx.send(s, 0, vec![]);
    });
    let r = m.run().unwrap();
    assert_eq!(r.values("probe").len(), probes as usize, "exactly-once");
    SpanReport::build(r.trace.as_ref().expect("tracing was enabled"))
}

#[test]
fn chase_spans_hold_fir_hops_in_forwarding_order() {
    let rep = chase_spans(16, 20);
    assert!(!rep.chases.is_empty(), "a 16-hop chase must open chase spans");

    for c in &rep.chases {
        // Hops are recorded in causal order along the forward chain.
        for w in c.hops.windows(2) {
            assert!(
                w[0].0 <= w[1].0,
                "chase {} hops out of time order: {:?}",
                c.span,
                c.hops
            );
            assert_eq!(
                w[0].2, w[1].1,
                "chase {} hop chain broken (a relay's FIR must leave the \
                 node the previous hop targeted): {:?}",
                c.span, c.hops
            );
        }
        if let Some(t) = c.resolved_at {
            assert!(t >= c.opened_at, "chase resolved before it opened");
        }
    }

    // At least one chase was triggered by a traced application message,
    // and that message's own span exists and was ultimately delivered
    // on the migrated path — the "message behind the chase" linkage.
    let parented: Vec<_> = rep.chases.iter().filter(|c| c.parent != 0).collect();
    assert!(!parented.is_empty(), "probe-triggered chases must carry a parent span");
    let mut migrated = 0;
    for c in &parented {
        let m = rep
            .msg(c.parent)
            .expect("chase parent must be a reconstructed message span");
        assert!(
            m.sent_at <= c.opened_at,
            "a chase cannot open before its triggering message was sent"
        );
        if m.path == Some(DeliveryPath::Migrated) {
            migrated += 1;
        }
    }
    assert!(
        migrated > 0,
        "at least one chase-triggering probe must land via the Migrated path"
    );
}

#[test]
fn alias_spans_complete_at_requester_before_remote_install() {
    let mut m = SimMachine::new(
        MachineConfig::builder(4).seed(7).trace().build().unwrap(),
        registry(),
    );
    m.with_ctx(0, |ctx| {
        // Three remote creations; messages to the aliases ride behind.
        for node in 1..4u16 {
            let sink = ctx.create_on(node, SINK, vec![]);
            ctx.send(sink, 0, vec![]);
        }
    });
    let r = m.run().unwrap();
    assert_eq!(r.values("got").len(), 3);
    let rep = SpanReport::build(r.trace.as_ref().unwrap());

    assert_eq!(rep.aliases.len(), 3, "one alias span per remote creation");
    for a in &rep.aliases {
        assert_eq!(a.requester, 0);
        assert!((1..4).contains(&a.target));
        let installed = a.installed_at.expect("every creation installs");
        let resolved = a.resolved_at.expect("every alias resolves");
        // The §5 point: the requester minted the alias (and continued)
        // strictly before the actor existed at the target, and learned
        // the real descriptor only after the install.
        assert!(
            a.minted_at < installed,
            "alias {:?}: mint at {} must precede install at {}",
            a.key,
            a.minted_at,
            installed
        );
        assert!(
            installed <= resolved,
            "alias {:?}: install at {} must precede resolve at {}",
            a.key,
            installed,
            resolved
        );
    }
    assert_eq!(rep.stages["alias.install"].count(), 3);
    assert_eq!(rep.stages["alias.resolve"].count(), 3);
}

#[test]
fn reliable_retransmits_attach_to_the_message_span() {
    // A lossy link with the reliable layer on: dropped packets are
    // retransmitted, and each retransmit of a message-bearing packet
    // must count onto that message's span.
    let faults = FaultPlan::none().with_drop(0.3);
    let mut m = SimMachine::new(
        MachineConfig::builder(2)
            .seed(11)
            .faults(faults)
            .trace()
            .build()
            .unwrap(),
        registry(),
    );
    m.with_ctx(0, |ctx| {
        let sink = ctx.create_on(1, SINK, vec![]);
        for _ in 0..40 {
            ctx.send(sink, 0, vec![]);
        }
    });
    let r = m.run().unwrap();
    assert_eq!(
        r.values("got").len(),
        40,
        "reliable delivery: every message arrives exactly once"
    );
    assert!(r.stats.get("rel.retransmits") > 0, "the lossy link must retransmit");

    let rep = SpanReport::build(r.trace.as_ref().unwrap());
    let on_spans: u64 = rep.msgs.iter().map(|m| u64::from(m.retransmits)).sum();
    assert!(
        on_spans > 0,
        "at 30% drop, some retransmits must attribute to message spans \
         (rel.retransmits = {})",
        r.stats.get("rel.retransmits")
    );
    assert!(
        on_spans <= r.stats.get("rel.retransmits"),
        "span-attributed retransmits cannot exceed the kernel's own count"
    );
    // Retries delay but never duplicate: every traced message that
    // executed did so exactly once (one exec_end per span by
    // construction), including the retransmitted ones.
    let retried_and_run = rep
        .msgs
        .iter()
        .filter(|m| m.retransmits > 0 && m.exec_end.is_some())
        .count();
    assert!(retried_and_run > 0, "some retried message must still execute");
}
