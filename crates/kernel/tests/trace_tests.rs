//! Flight-recorder integration tests: forced migration produces the
//! expected FIR event sequence, and recorded events agree with the
//! kernel's own counters.

use hal_kernel::kernel::Ctx;
use hal_kernel::{
    Behavior, BehaviorId, BehaviorRegistry, DeliveryPath, KernelEvent, MachineConfig, MailAddr,
    Msg, SimMachine, TraceReport, Value,
};
use std::sync::Arc;

const SPRAY: BehaviorId = BehaviorId(1);

/// Walks a fixed list of hops, bouncing a self-message ahead of each
/// migration so it keeps moving; counts probes it absorbs along the way.
struct Nomad {
    hops: Vec<u16>,
    probes: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("probe", Value::Int(self.probes));
            }
            _ => unreachable!(),
        }
    }
}

/// Fires `n` probes at `target` when poked.
struct Spray {
    target: MailAddr,
    n: i64,
}
impl Behavior for Spray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for _ in 0..self.n {
            ctx.send(self.target, 1, vec![]);
        }
    }
}
fn make_spray(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Spray {
        target: args[0].as_addr(),
        n: args[1].as_int(),
    })
}

/// A migration race on 8 nodes with tracing enabled: the nomad walks
/// `chain` hops while `probes` messages from another node chase it.
fn chase_run(chain: usize, probes: i64) -> (hal_kernel::SimReport, TraceReport) {
    let p = 8usize;
    let mut registry = BehaviorRegistry::new();
    registry.register(SPRAY, "spray", make_spray);
    let mut m = SimMachine::new(
        MachineConfig::builder(p).seed(5).trace().build().unwrap(),
        Arc::new(registry),
    );
    m.with_ctx(0, |ctx| {
        let hops: Vec<u16> = (0..chain).rev().map(|i| ((i % (p - 1)) + 1) as u16).collect();
        let nomad = ctx.create_local(Box::new(Nomad { hops, probes: 0 }));
        ctx.send(nomad, 0, vec![]);
        let s = ctx.create_on(4, SPRAY, vec![Value::Addr(nomad), Value::Int(probes)]);
        ctx.send(s, 0, vec![]);
    });
    let r = m.run().unwrap();
    let trace = r.trace.clone().expect("tracing was enabled");
    (r, trace)
}

#[test]
fn forced_migration_produces_fir_event_sequence() {
    let (report, trace) = chase_run(16, 20);
    assert_eq!(report.values("probe").len(), 20, "exactly-once delivery");

    // The recorder saw the chase machinery fire.
    let fir_sent: Vec<_> = trace
        .events
        .iter()
        .filter(|e| matches!(e.event, KernelEvent::FirSent { .. }))
        .collect();
    let replies: Vec<_> = trace
        .events
        .iter()
        .filter(|e| matches!(e.event, KernelEvent::FirReplyPropagated { .. }))
        .collect();
    let migrations = trace.count("ActorMigrated");
    assert!(!fir_sent.is_empty(), "a 16-hop chase must send FIRs");
    assert!(!replies.is_empty(), "every chase episode ends in a reply");
    assert_eq!(migrations, 16, "one ActorMigrated event per hop");

    // Sequence: the first FIR precedes the first reply propagation
    // (events are merged in (time, node) order), and some reply released
    // buffered messages — the park-then-release path of §4.3.
    assert!(
        fir_sent[0].time <= replies[0].time,
        "FirSent at {} must precede FirReplyPropagated at {}",
        fir_sent[0].time,
        replies[0].time
    );
    let released: u32 = replies
        .iter()
        .map(|e| match e.event {
            KernelEvent::FirReplyPropagated { released, .. } => released,
            _ => unreachable!(),
        })
        .sum();
    assert!(released > 0, "chases with racing probes must release buffered messages");

    // Messages that waited out the chase are delivered on the Migrated
    // path, after the chase started.
    let migrated_deliveries: Vec<_> = trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.event,
                KernelEvent::MessageDelivered {
                    path: DeliveryPath::Migrated,
                    ..
                }
            )
        })
        .collect();
    assert!(!migrated_deliveries.is_empty());
    assert!(migrated_deliveries[0].time >= fir_sent[0].time);

    // And the derived histogram sees them on the migrated column.
    let h = trace.histograms();
    assert_eq!(h.delivery_migrated.count(), migrated_deliveries.len() as u64);
    assert!(h.fir_chain.count() > 0, "chase episodes have a chain length");
}

#[test]
fn fir_suppressed_counter_matches_emitted_events() {
    let (report, trace) = chase_run(16, 20);
    assert_eq!(
        report.stats.get("fir.suppressed"),
        trace.count("FirSuppressed") as u64,
        "every fir.suppressed stat bump must emit exactly one FirSuppressed event"
    );
    // The race is tuned so suppression actually happens — a zero/zero
    // pass would be vacuous.
    assert!(report.stats.get("fir.suppressed") > 0);
}

#[test]
fn tracing_disabled_records_nothing() {
    let p = 4usize;
    let mut registry = BehaviorRegistry::new();
    registry.register(SPRAY, "spray", make_spray);
    let mut m = SimMachine::new(MachineConfig::builder(p).seed(5).build().unwrap(), Arc::new(registry));
    m.with_ctx(0, |ctx| {
        let nomad = ctx.create_local(Box::new(Nomad { hops: vec![1, 2], probes: 0 }));
        ctx.send(nomad, 0, vec![]);
        let s = ctx.create_on(2, SPRAY, vec![Value::Addr(nomad), Value::Int(5)]);
        ctx.send(s, 0, vec![]);
    });
    let r = m.run().unwrap();
    assert!(r.trace.is_none(), "no recorder when record_trace is off");
    for n in 0..p {
        assert!(m.kernel(n as u16).recorder().is_none());
    }
}

#[test]
fn chrome_export_is_wellformed() {
    let (_, trace) = chase_run(8, 10);
    let json = trace.chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["), "bad header");
    assert!(
        json.trim_end().ends_with("],\"displayTimeUnit\":\"ns\"}"),
        "bad trailer"
    );
    assert!(json.contains("\"FirSent\""));
    assert!(json.contains("\"ph\":\"X\""), "deliveries are duration slices");
    assert!(json.contains("\"thread_name\""), "per-node metadata present");
    // Cheap well-formedness proxy: every line between the wrapper lines
    // is a complete JSON object.
    let lines: Vec<&str> = json.lines().collect();
    for line in &lines[1..lines.len() - 1] {
        let line = line.trim_end_matches(',');
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "trace line is not an object: {line}"
        );
    }
}
