//! Chaos-subsystem tests at the kernel level: the FIR watchdog under a
//! link outage, typed machine errors, and config validation.

use hal_kernel::kernel::Ctx;
use hal_kernel::{
    Behavior, BehaviorId, BehaviorRegistry, ConfigError, FaultPlan, LinkOutage, MachineConfig,
    MachineError, Msg, SimMachine, Value,
};
use hal_des::VirtualTime;
use std::sync::Arc;

/// Walks a fixed hop list, then reports every probe it receives.
struct Nomad {
    hops: Vec<u16>,
    probes: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("probe_delivered", Value::Int(self.probes));
                ctx.report("probed_on", Value::Int(ctx.node() as i64));
            }
            _ => unreachable!(),
        }
    }
}

fn empty_registry() -> Arc<BehaviorRegistry> {
    Arc::new(BehaviorRegistry::new())
}

#[test]
fn lost_fir_reply_is_reissued_by_watchdog() {
    // An actor born on node 1 migrates once to node 2; the reverse link
    // 2 -> 1 is dead for the first 2ms. The dead link eats the
    // migration announcement (so node 1 is left with an *unconfirmed*
    // forward pointer and must FIR) and then every `FirFound` reply.
    // With the reliable layer off, only the FIR watchdog can unwedge
    // the parked probe: it must re-issue the chase every `fir_timeout`
    // until the outage lifts. Flow control is off so the migration
    // image travels as one eager packet on the healthy 1 -> 2 link —
    // the outage touches nothing but the announcement and the replies.
    let outage_end = VirtualTime::from_nanos(2_000_000);
    let faults = FaultPlan::none().with_reliable(false).with_outage(LinkOutage {
        src: 2,
        dst: 1,
        from: VirtualTime::from_nanos(0),
        until: outage_end,
    });
    let cfg = MachineConfig::builder(3)
        .faults(faults)
        .flow_control(false)
        .build()
        .unwrap();
    let mut m = SimMachine::new(cfg, empty_registry());

    // Phase 1: the hop (its announcement back to node 1 is eaten).
    let nomad = m.with_ctx(1, |ctx| {
        let nomad = ctx.create_local(Box::new(Nomad {
            hops: vec![2],
            probes: 0,
        }));
        ctx.send(nomad, 0, vec![]);
        nomad
    });
    let walk = m.run().unwrap();
    assert_eq!(walk.stats.get("migrations.in"), 1, "the hop completed");

    // Phase 2: a probe routed via the birthplace parks behind the FIR
    // chase whose replies the outage keeps eating.
    m.with_ctx(0, |ctx| {
        ctx.send(nomad, 1, vec![]);
    });
    let r = m.run().unwrap();

    assert_eq!(
        r.values("probe_delivered").len(),
        1,
        "the parked probe must eventually be delivered exactly once"
    );
    assert_eq!(
        r.value("probed_on"),
        Some(&Value::Int(2)),
        "probe chased the nomad to its new node"
    );
    assert!(
        r.stats.get("fir.reissued") >= 1,
        "the watchdog must have re-issued the wedged chase (reissued = {})",
        r.stats.get("fir.reissued")
    );
    assert!(
        r.makespan >= outage_end,
        "delivery cannot complete before the outage lifts"
    );
}

#[test]
fn unknown_behavior_is_a_typed_error() {
    let mut m = SimMachine::new(MachineConfig::new(2), empty_registry());
    m.with_ctx(0, |ctx| {
        ctx.create_on(1, BehaviorId(42), vec![]);
    });
    let err = m.run().unwrap_err();
    assert!(
        matches!(err, MachineError::UnknownBehavior { behavior: BehaviorId(42), node: 1 }),
        "expected UnknownBehavior, got: {err}"
    );
}

#[test]
fn builder_rejects_bad_configs() {
    assert!(matches!(
        MachineConfig::builder(0).build().unwrap_err(),
        ConfigError::ZeroNodes
    ));
    assert!(matches!(
        MachineConfig::builder(2).quantum(0).build().unwrap_err(),
        ConfigError::ZeroQuantum
    ));
    assert!(matches!(
        MachineConfig::builder(2)
            .faults(FaultPlan::none().with_drop(1.5))
            .build()
            .unwrap_err(),
        ConfigError::BadFaultRate { which: "drop" }
    ));
    assert!(matches!(
        MachineConfig::builder(2)
            .faults(FaultPlan::none().with_duplicate(f64::NAN))
            .build()
            .unwrap_err(),
        ConfigError::BadFaultRate { which: "duplicate" }
    ));
}

#[test]
fn config_error_converts_into_machine_error() {
    let e: MachineError = ConfigError::ZeroNodes.into();
    assert!(matches!(e, MachineError::Config(ConfigError::ZeroNodes)));
    assert!(e.to_string().contains("at least one node"));
}

#[test]
fn builder_matches_hand_built_config() {
    // The builder is the only config spelling left after the PR-3 shim
    // deprecation window: it must agree with direct field assignment.
    let mut by_hand = MachineConfig::new(4);
    by_hand.seed = 9;
    by_hand.load_balancing = true;
    by_hand.flow_control = false;
    by_hand.parallelism = 3;
    let built = MachineConfig::builder(4)
        .seed(9)
        .load_balancing(true)
        .flow_control(false)
        .parallelism(3)
        .build()
        .unwrap();
    assert_eq!(by_hand.seed, built.seed);
    assert_eq!(by_hand.load_balancing, built.load_balancing);
    assert_eq!(by_hand.flow_control, built.flow_control);
    assert_eq!(by_hand.parallelism, built.parallelism);
    assert_eq!(by_hand.nodes, built.nodes);
}
