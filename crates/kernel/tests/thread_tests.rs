//! The threaded machine runs the identical kernel code with real OS
//! threads and channels — these tests check cross-thread behavior and
//! that results agree with the simulator.

use hal_kernel::kernel::Ctx;
use hal_kernel::{
    run_threaded, Behavior, BehaviorId, BehaviorRegistry, MachineConfig, Msg, Value,
};
use std::sync::Arc;
use std::time::Duration;

struct Echo;
impl Behavior for Echo {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        ctx.reply(Value::Int(msg.args[0].as_int() + 1));
    }
}
fn make_echo(_: &[Value]) -> Box<dyn Behavior> {
    Box::new(Echo)
}

fn registry() -> Arc<BehaviorRegistry> {
    let mut reg = BehaviorRegistry::new();
    reg.register(BehaviorId(1), "echo", make_echo);
    Arc::new(reg)
}

#[test]
fn threaded_cross_node_call_return() {
    let r = run_threaded(
        MachineConfig::new(4),
        registry(),
        Duration::from_secs(20),
        |ctx| {
            let servers: Vec<_> = (1..4u16)
                .map(|n| ctx.create_on(n, BehaviorId(1), vec![]))
                .collect();
            let jc = ctx.create_join(
                3,
                vec![],
                Box::new(|ctx, vals| {
                    let sum: i64 = vals.iter().map(|v| v.as_int()).sum();
                    ctx.report("sum", Value::Int(sum));
                    ctx.stop();
                }),
            );
            for (i, s) in servers.iter().enumerate() {
                ctx.request(*s, 0, vec![Value::Int(10 * i as i64)], ctx.cont_slot(jc, i as u16));
            }
        },
    );
    assert!(!r.timed_out, "machine stopped cleanly");
    // (0+1) + (10+1) + (20+1) = 33
    assert_eq!(r.value("sum"), Some(&Value::Int(33)));
    assert_eq!(r.stats.get("actors.remote_created"), 3);
}

#[test]
fn threaded_migration_roundtrip() {
    struct Hopper {
        remaining: i64,
    }
    impl Behavior for Hopper {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            if self.remaining == 0 {
                ctx.report("landed_on", Value::Int(ctx.node() as i64));
                ctx.stop();
            } else {
                self.remaining -= 1;
                let next = ((ctx.node() as usize + 1) % ctx.nodes()) as u16;
                let me = ctx.me();
                ctx.send(me, 0, vec![]);
                ctx.migrate(next);
            }
        }
    }
    let r = run_threaded(
        MachineConfig::new(3),
        registry(),
        Duration::from_secs(20),
        |ctx| {
            let h = ctx.create_local(Box::new(Hopper { remaining: 6 }));
            ctx.send(h, 0, vec![]);
        },
    );
    assert!(!r.timed_out);
    // 6 hops around a 3-ring starting at 0 ends back on node 0.
    assert_eq!(r.value("landed_on"), Some(&Value::Int(0)));
    assert_eq!(r.stats.get("migrations.out"), 6);
}

#[test]
fn threaded_load_balancing_steals() {
    struct Worker;
    impl Behavior for Worker {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            // Busy-work so the victim stays loaded while thieves poll.
            std::thread::sleep(Duration::from_millis(2));
            let done = msg.args[0].as_int();
            ctx.report("ran_on", Value::Int(ctx.node() as i64));
            if done == 1 {
                ctx.stop();
            }
        }
    }
    let n_workers = 32;
    let r = run_threaded(
        MachineConfig::builder(4).load_balancing(true).build().unwrap(),
        registry(),
        Duration::from_secs(30),
        |ctx| {
            // A completion counter actor would be cleaner; simplest: the
            // last worker stops the machine. Workers run in queue order,
            // but stealing reorders — so give every worker a "done" flag
            // and stop on the last *created* one only after a delay.
            for i in 0..n_workers {
                let w = ctx.create_local(Box::new(Worker));
                let last = i64::from(i == n_workers - 1);
                ctx.send(w, 0, vec![Value::Int(last)]);
            }
        },
    );
    // The run may stop before every report lands (stop is immediate);
    // what matters: multiple nodes participated.
    let nodes: std::collections::HashSet<i64> = r
        .reports
        .iter()
        .filter(|(k, _)| k == "ran_on")
        .map(|(_, v)| v.as_int())
        .collect();
    assert!(
        nodes.len() > 1,
        "work stealing moved workers across threads: {nodes:?}"
    );
}

#[test]
fn sim_and_thread_agree_on_results() {
    use hal_kernel::SimMachine;
    let boot = |ctx: &mut Ctx<'_>| {
        let s = ctx.create_on(1, BehaviorId(1), vec![]);
        let jc = ctx.create_join(
            1,
            vec![],
            Box::new(|ctx, vals| {
                ctx.report("v", vals[0].clone());
                ctx.stop();
            }),
        );
        ctx.request(s, 0, vec![Value::Int(99)], ctx.cont_slot(jc, 0));
    };
    let mut sim = SimMachine::new(MachineConfig::new(2), registry());
    sim.with_ctx(0, boot);
    let rs = sim.run().unwrap();
    let rt = run_threaded(
        MachineConfig::new(2),
        registry(),
        Duration::from_secs(20),
        boot,
    );
    assert_eq!(rs.value("v"), rt.value("v"));
    assert_eq!(rs.value("v"), Some(&Value::Int(100)));
}
