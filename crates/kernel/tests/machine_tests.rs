//! End-to-end tests of the simulated machine: every §4–§7 mechanism
//! exercised through the public kernel API.

use hal_kernel::kernel::Ctx;
use hal_kernel::{
    Behavior, BehaviorId, BehaviorRegistry, ContRef, MachineConfig, MailAddr, Msg, SimMachine,
    Value,
};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Test behaviors
// ---------------------------------------------------------------------

/// Echo: replies to any request with its argument + 1.
struct Echo;
impl Behavior for Echo {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let x = msg.args[0].as_int();
        ctx.reply(Value::Int(x + 1));
    }
    fn name(&self) -> &'static str {
        "echo"
    }
}
fn make_echo(_: &[Value]) -> Box<dyn Behavior> {
    Box::new(Echo)
}

/// Ping-pong: bounces a counter back and forth `limit` times, then
/// reports and stops.
struct Pinger {
    limit: i64,
}
impl Behavior for Pinger {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let n = msg.args[0].as_int();
        let peer = msg.args[1].as_addr();
        if n >= self.limit {
            ctx.report("rounds", Value::Int(n));
            ctx.stop();
        } else {
            let me = ctx.me();
            ctx.send(peer, 0, vec![Value::Int(n + 1), Value::Addr(me)]);
        }
    }
    fn name(&self) -> &'static str {
        "pinger"
    }
}
fn make_pinger(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Pinger {
        limit: args[0].as_int(),
    })
}

/// A counter with a synchronization constraint: `get` (selector 1) is
/// disabled until the count reaches a threshold.
struct GatedCounter {
    count: i64,
    threshold: i64,
}
impl Behavior for GatedCounter {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => self.count += 1,
            1 => {
                ctx.report("gated_count", Value::Int(self.count));
                ctx.stop();
            }
            _ => unreachable!(),
        }
    }
    fn enabled(&self, selector: u32, _args: &[Value]) -> bool {
        selector != 1 || self.count >= self.threshold
    }
    fn name(&self) -> &'static str {
        "gated-counter"
    }
}

/// A nomad that migrates along a scripted path of nodes, counting hops,
/// then reports where it ended and how many messages it got afterwards.
struct Nomad {
    hops: Vec<u16>,
    received_after: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            // "walk": migrate to the next scripted node.
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    // keep walking after arrival
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                } else {
                    ctx.report("nomad_settled_on", Value::Int(ctx.node() as i64));
                }
            }
            // "probe": a message that must find the nomad wherever it is.
            1 => {
                self.received_after += 1;
                ctx.report("nomad_probed_on", Value::Int(ctx.node() as i64));
                if let Some(ContRef::Actor { .. }) | Some(ContRef::Join { .. }) = msg.customer {
                    ctx.reply(Value::Int(self.received_after));
                }
            }
            _ => unreachable!(),
        }
    }
    fn name(&self) -> &'static str {
        "nomad"
    }
}

/// Group member: answers a broadcast by reporting its index; member 0
/// stops the machine when poked directly.
struct Member {
    index: i64,
}
impl Behavior for Member {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => ctx.report("member_saw_bcast", Value::Int(self.index)),
            1 => ctx.reply(Value::Int(self.index * 10)),
            _ => unreachable!(),
        }
    }
    fn name(&self) -> &'static str {
        "member"
    }
}
fn make_member(args: &[Value]) -> Box<dyn Behavior> {
    // grpnew appends [Group(id), Int(index), Int(count)] to init args.
    let index = args[args.len() - 2].as_int();
    Box::new(Member { index })
}

/// Sends `n` probe messages (selector 1) to a target address when poked.
struct Spray {
    target: MailAddr,
    n: i64,
}
impl Behavior for Spray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for _ in 0..self.n {
            ctx.send(self.target, 1, vec![]);
        }
    }
    fn name(&self) -> &'static str {
        "spray"
    }
}
fn make_spray(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Spray {
        target: args[0].as_addr(),
        n: args[1].as_int(),
    })
}

fn registry() -> Arc<BehaviorRegistry> {
    let mut reg = BehaviorRegistry::new();
    reg.register(BehaviorId(1), "echo", make_echo);
    reg.register(BehaviorId(2), "pinger", make_pinger);
    reg.register(BehaviorId(3), "member", make_member);
    reg.register(BehaviorId(4), "spray", make_spray);
    Arc::new(reg)
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[test]
fn local_ping_pong_on_one_node() {
    let mut m = SimMachine::new(MachineConfig::new(1), registry());
    m.with_ctx(0, |ctx| {
        let a = ctx.create_local(Box::new(Pinger { limit: 10 }));
        let b = ctx.create_local(Box::new(Pinger { limit: 10 }));
        ctx.send(a, 0, vec![Value::Int(0), Value::Addr(b)]);
    });
    let r = m.run().unwrap();
    assert_eq!(r.value("rounds"), Some(&Value::Int(10)));
    assert!(r.makespan.as_nanos() > 0);
}

#[test]
fn cross_node_ping_pong() {
    let mut m = SimMachine::new(MachineConfig::new(2), registry());
    m.with_ctx(0, |ctx| {
        let a = ctx.create_local(Box::new(Pinger { limit: 20 }));
        let b = ctx.create_on(1, BehaviorId(2), vec![Value::Int(20)]);
        ctx.send(a, 0, vec![Value::Int(0), Value::Addr(b)]);
    });
    let r = m.run().unwrap();
    assert_eq!(r.value("rounds"), Some(&Value::Int(20)));
    assert!(r.stats.get("msgs.remote") >= 19, "messages crossed nodes");
    assert!(r.stats.get("net.packets") > 0);
}

#[test]
fn remote_creation_uses_alias_and_hides_latency() {
    let cfg = MachineConfig::new(2);
    let req_cost = cfg.cost.remote_creation_request;
    let mut m = SimMachine::new(cfg, registry());
    // The requester's clock advances by only the request cost (5.83 us),
    // not the full round trip: that is the §5 latency-hiding claim.
    let before = m.kernel(0).clock;
    m.with_ctx(0, |ctx| {
        let remote = ctx.create_on(1, BehaviorId(1), vec![]);
        assert!(remote.is_alias(), "remote creation returns an alias");
        assert_eq!(remote.key.birthplace, 0, "alias born at the requester");
        assert_eq!(remote.default_route(), 1, "alias routes to creation node");
    });
    let apparent = m.kernel(0).clock.since(before);
    assert_eq!(
        apparent.as_nanos(),
        req_cost.as_nanos() + m.kernel(0).config().cost.net_send_overhead.as_nanos(),
        "requester pays exactly 5.83us (request + injection), creation happens in the background"
    );
    assert_eq!(apparent.as_nanos(), 5_830, "the paper's 5.83us apparent cost");
    let r = m.run().unwrap();
    assert_eq!(r.stats.get("actors.remote_created"), 1);
    // The actual creation completed at ~20.83us on the remote node (§5).
    let actual = r
        .stats
        .histogram("create.remote_actual_ns")
        .expect("creation observed")
        .max();
    assert_eq!(actual, 20_830, "the paper's 20.83us actual creation latency");
}

#[test]
fn messages_to_alias_before_creation_are_delivered() {
    // Send through the alias immediately — the message races the Create
    // request and must be parked and delivered in order.
    let mut m = SimMachine::new(MachineConfig::new(2), registry());
    m.with_ctx(0, |ctx| {
        let remote = ctx.create_on(1, BehaviorId(1), vec![]);
        let jc = ctx.create_join(
            1,
            vec![],
            Box::new(|ctx, vals| {
                ctx.report("echoed", vals[0].clone());
                ctx.stop();
            }),
        );
        ctx.request(remote, 0, vec![Value::Int(41)], ctx.cont_slot(jc, 0));
    });
    let r = m.run().unwrap();
    assert_eq!(r.value("echoed"), Some(&Value::Int(42)));
}

#[test]
fn join_continuation_collects_multiple_replies() {
    let mut m = SimMachine::new(MachineConfig::new(4), registry());
    m.with_ctx(0, |ctx| {
        // Three echo servers on three different nodes.
        let servers: Vec<MailAddr> = (1..4)
            .map(|n| ctx.create_on(n, BehaviorId(1), vec![]))
            .collect();
        let jc = ctx.create_join(
            4,
            vec![(0, Value::Int(100))], // one slot pre-known (Fig. 4)
            Box::new(|ctx, vals| {
                let sum: i64 = vals.iter().map(|v| v.as_int()).sum();
                ctx.report("join_sum", Value::Int(sum));
                ctx.stop();
            }),
        );
        for (i, s) in servers.iter().enumerate() {
            ctx.request(*s, 0, vec![Value::Int(i as i64)], ctx.cont_slot(jc, (i + 1) as u16));
        }
    });
    let r = m.run().unwrap();
    // 100 + (0+1) + (1+1) + (2+1) = 106
    assert_eq!(r.value("join_sum"), Some(&Value::Int(106)));
    assert_eq!(r.stats.get("joins.fired"), 1);
}

#[test]
fn synchronization_constraint_defers_until_enabled() {
    let mut m = SimMachine::new(MachineConfig::new(1), registry());
    m.with_ctx(0, |ctx| {
        let c = ctx.create_local(Box::new(GatedCounter {
            count: 0,
            threshold: 3,
        }));
        // `get` first: it must wait in the pending queue until three
        // increments have landed.
        ctx.send(c, 1, vec![]);
        for _ in 0..3 {
            ctx.send(c, 0, vec![]);
        }
    });
    let r = m.run().unwrap();
    assert_eq!(r.value("gated_count"), Some(&Value::Int(3)));
    assert!(r.stats.get("sync.deferred") >= 1, "get was deferred");
    assert!(r.stats.get("sync.resumed") >= 1, "get was resumed from pendq");
}

#[test]
fn migration_chain_is_chased_by_fir() {
    // Nomad walks 0 -> 1 -> 2 -> 3; probes sent from node 0 with stale
    // information must chase it via FIR and arrive exactly once.
    let mut m = SimMachine::new(MachineConfig::new(4), registry());
    let nomad = m.with_ctx(0, |ctx| {
        let nomad = ctx.create_local(Box::new(Nomad {
            hops: vec![3, 2, 1], // popped back to front
            received_after: 0,
        }));
        ctx.send(nomad, 0, vec![]); // start walking
        nomad
    });
    let _walk = m.run().unwrap(); // run until the nomad settles on node 3

    // Now probe from node 0 — its descriptor may be stale.
    let mut probes = 0;
    m.with_ctx(0, |ctx| {
        ctx.send(nomad, 1, vec![]);
        probes += 1;
    });
    let r = m.run().unwrap();
    assert_eq!(probes, 1);
    assert_eq!(
        r.value("nomad_settled_on"),
        Some(&Value::Int(3)),
        "walked the full path"
    );
    assert_eq!(
        r.value("nomad_probed_on"),
        Some(&Value::Int(3)),
        "probe chased the nomad to its final node"
    );
    assert_eq!(r.stats.get("migrations.out"), 3);
    assert_eq!(r.stats.get("migrations.in"), 3);
}

#[test]
fn probes_racing_migration_are_chased_and_delivered_exactly_once() {
    // Fire probes *while* the nomad is walking: they hit unconfirmed
    // forward pointers and must be chased (FIR) or forwarded, arriving
    // exactly once each.
    let mut m = SimMachine::new(MachineConfig::new(4), registry());
    m.with_ctx(0, |ctx| {
        let nomad = ctx.create_local(Box::new(Nomad {
            hops: vec![1, 3, 2, 1, 3, 2], // six hops, popped back to front
            received_after: 0,
        }));
        ctx.send(nomad, 0, vec![]); // start walking
        // A prober on another node sprays probes that race the walk —
        // they chase the nomad through stale forward pointers.
        let spray = ctx.create_on(1, BehaviorId(4), vec![Value::Addr(nomad), Value::Int(5)]);
        ctx.send(spray, 0, vec![]);
    });
    let r = m.run().unwrap();
    assert_eq!(
        r.values("nomad_probed_on").len(),
        5,
        "every probe delivered exactly once despite six migrations"
    );
    assert_eq!(r.stats.get("migrations.out"), 6);
    assert!(
        r.stats.get("fir.sent") + r.stats.get("deliver.forwarded") >= 1,
        "at least one probe had to chase the nomad (fir.sent={}, forwarded={})",
        r.stats.get("fir.sent"),
        r.stats.get("deliver.forwarded")
    );
}

#[test]
fn birthplace_learns_migrations_so_later_sends_skip_the_chain() {
    // After the walk settles and gossip quiesces, the birthplace holds a
    // *confirmed* pointer to the final node: a fresh probe from the
    // birthplace must reach the nomad with no FIR at all.
    let mut m = SimMachine::new(MachineConfig::new(4), registry());
    let nomad = m.with_ctx(0, |ctx| {
        let nomad = ctx.create_local(Box::new(Nomad {
            hops: vec![3, 2, 1],
            received_after: 0,
        }));
        ctx.send(nomad, 0, vec![]);
        nomad
    });
    let walk = m.run().unwrap();
    let fir_during_walk = walk.stats.get("fir.sent");

    m.with_ctx(0, |ctx| ctx.send(nomad, 1, vec![]));
    let r = m.run().unwrap();
    assert_eq!(r.value("nomad_probed_on"), Some(&Value::Int(3)));
    assert_eq!(
        r.stats.get("fir.sent"),
        fir_during_walk,
        "birthplace had confirmed info (§4.3 caching): no FIR for the probe"
    );
}

#[test]
fn group_broadcast_reaches_every_member() {
    let p = 4;
    let count = 16u32;
    let mut m = SimMachine::new(MachineConfig::new(p), registry());
    m.with_ctx(0, |ctx| {
        let g = ctx.grpnew(BehaviorId(3), count, vec![]);
        ctx.broadcast(g, 0, vec![]);
    });
    let r = m.run().unwrap();
    let mut indices: Vec<i64> = r
        .values("member_saw_bcast")
        .into_iter()
        .map(|v| v.as_int())
        .collect();
    indices.sort_unstable();
    assert_eq!(
        indices,
        (0..count as i64).collect::<Vec<_>>(),
        "every member saw the broadcast exactly once"
    );
    assert_eq!(r.stats.get("groups.members_created"), count as u64);
}

#[test]
fn group_member_point_to_point_via_home_node() {
    let mut m = SimMachine::new(MachineConfig::new(4), registry());
    m.with_ctx(0, |ctx| {
        let g = ctx.grpnew(BehaviorId(3), 8, vec![]);
        let jc = ctx.create_join(
            2,
            vec![],
            Box::new(|ctx, vals| {
                ctx.report("m3", vals[0].clone());
                ctx.report("m7", vals[1].clone());
                ctx.stop();
            }),
        );
        ctx.request_member(g, 3, 1, vec![], ctx.cont_slot(jc, 0));
        ctx.request_member(g, 7, 1, vec![], ctx.cont_slot(jc, 1));
    });
    let r = m.run().unwrap();
    assert_eq!(r.value("m3"), Some(&Value::Int(30)));
    assert_eq!(r.value("m7"), Some(&Value::Int(70)));
}

#[test]
fn load_balancing_spreads_ready_work() {
    // Create a pile of self-contained workers on node 0 only; with load
    // balancing on, other nodes should steal some.
    struct Worker;
    impl Behavior for Worker {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            // Simulate real compute so victims stay busy long enough for
            // thieves to poll.
            ctx.charge(hal_des::VirtualDuration::from_micros(200));
            ctx.report("worker_ran_on", Value::Int(ctx.node() as i64));
        }
    }
    let cfg = MachineConfig::builder(4).load_balancing(true).build().unwrap();
    let mut m = SimMachine::new(cfg, registry());
    m.with_ctx(0, |ctx| {
        for _ in 0..64 {
            let w = ctx.create_local(Box::new(Worker));
            ctx.send(w, 0, vec![]);
        }
    });
    let r = m.run().unwrap();
    let nodes_used: std::collections::HashSet<i64> = r
        .values("worker_ran_on")
        .into_iter()
        .map(|v| v.as_int())
        .collect();
    assert_eq!(r.values("worker_ran_on").len(), 64, "all workers ran");
    assert!(
        nodes_used.len() > 1,
        "stealing moved work off node 0 (used: {nodes_used:?})"
    );
    assert!(r.stats.get("steal.granted") > 0);
    assert_eq!(r.stats.get("migrations.in"), r.stats.get("steal.granted"));
}

#[test]
fn determinism_same_seed_same_everything() {
    let run = |seed: u64| {
        let cfg = MachineConfig::builder(4).load_balancing(true).seed(seed).build().unwrap();
        let mut m = SimMachine::new(cfg, registry());
        m.with_ctx(0, |ctx| {
            let a = ctx.create_local(Box::new(Pinger { limit: 50 }));
            let b = ctx.create_on(2, BehaviorId(2), vec![Value::Int(50)]);
            ctx.send(a, 0, vec![Value::Int(0), Value::Addr(b)]);
        });
        let r = m.run().unwrap();
        (r.makespan, r.events, r.stats.get("net.packets"))
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same seed => bit-identical run");
    // Different virtual outcomes are *allowed* for different seeds, but
    // the computation result must still be right — covered elsewhere.
}

#[test]
fn fast_path_inline_dispatch_executes_on_senders_stack() {
    struct Caller {
        target: MailAddr,
    }
    impl Behavior for Caller {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            let took_fast = ctx.send_fast(self.target, 0, vec![Value::Int(5)]);
            ctx.report("fast", Value::Int(took_fast as i64));
            ctx.stop();
        }
    }
    struct Sink;
    impl Behavior for Sink {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            ctx.report("sink_got", msg.args[0].clone());
        }
    }
    let mut m = SimMachine::new(MachineConfig::new(1), registry());
    m.with_ctx(0, |ctx| {
        let sink = ctx.create_local(Box::new(Sink));
        let caller = ctx.create_local(Box::new(Caller { target: sink }));
        ctx.send(caller, 0, vec![]);
    });
    let r = m.run().unwrap();
    assert_eq!(r.value("fast"), Some(&Value::Int(1)), "fast path taken");
    assert_eq!(r.value("sink_got"), Some(&Value::Int(5)));
    assert_eq!(r.stats.get("fast.inline"), 1);
}

#[test]
fn become_changes_behavior() {
    struct First;
    impl Behavior for First {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.report("phase", Value::Int(1));
            ctx.become_behavior(Box::new(Second));
        }
    }
    struct Second;
    impl Behavior for Second {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.report("phase", Value::Int(2));
            ctx.stop();
        }
    }
    let mut m = SimMachine::new(MachineConfig::new(1), registry());
    m.with_ctx(0, |ctx| {
        let a = ctx.create_local(Box::new(First));
        ctx.send(a, 0, vec![]);
        ctx.send(a, 0, vec![]);
    });
    let r = m.run().unwrap();
    let phases: Vec<i64> = r.values("phase").into_iter().map(|v| v.as_int()).collect();
    assert_eq!(phases, vec![1, 2], "become swapped the behavior");
}

#[test]
fn bulk_messages_use_three_phase_protocol() {
    struct BigSink;
    impl Behavior for BigSink {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let len = msg.args[0].as_bytes().len() as i64;
            ctx.report("bytes", Value::Int(len));
            ctx.stop();
        }
    }
    let mut m = SimMachine::new(MachineConfig::new(2), registry());
    let sink = m.with_ctx(1, |ctx| ctx.create_local(Box::new(BigSink)));
    m.with_ctx(0, |ctx| {
        let payload = hal_am::Bytes::from(vec![7u8; 100_000]);
        ctx.send(sink, 0, vec![Value::Bytes(payload)]);
    });
    let r = m.run().unwrap();
    assert_eq!(r.value("bytes"), Some(&Value::Int(100_000)));
    assert!(
        r.stats.get("net.bulk_requests") >= 1,
        "large payload went through the 3-phase protocol"
    );
}

#[test]
fn makespan_reflects_network_latency() {
    // A single remote message's end-to-end virtual time must exceed the
    // pure link latency.
    let cfg = MachineConfig::new(2);
    let latency = cfg.link.latency;
    let mut m = SimMachine::new(cfg, registry());
    struct Stop;
    impl Behavior for Stop {
        fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.stop();
        }
    }
    let a = m.with_ctx(1, |ctx| ctx.create_local(Box::new(Stop)));
    m.with_ctx(0, |ctx| ctx.send(a, 0, vec![]));
    let r = m.run().unwrap();
    assert!(r.makespan.as_nanos() >= latency.as_nanos());
}
