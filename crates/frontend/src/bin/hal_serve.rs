//! `hal-serve` — the open-loop load generator.
//!
//! Offers requests to a multi-node actor pipeline at a fixed rate and
//! gates the measured p50/p99/p999 end-to-end latency against a
//! declared SLO. The artifact lands in `results/SERVE_<scenario>.json`.
//!
//! ```text
//! $ hal-serve --backend=live --rate=500 --requests=1000 --slo-p99-ms=50
//! $ hal-serve --verify results/SERVE_pipeline.json
//! ```
//!
//! Flags (all optional):
//!
//! * `--backend=sim|live`   backend (default `sim`; `HAL_BACKEND` too)
//! * `--scenario=NAME`      artifact name (default `pipeline`)
//! * `--nodes=N`            partition size (default 4)
//! * `--stages=S`           pipeline depth (default 3)
//! * `--rate=RPS`           offered load (default 500)
//! * `--requests=N`         total requests (default 1000)
//! * `--stage-cost-us=C`    per-stage virtual compute (default 50)
//! * `--seed=S`             machine seed
//! * `--slo-p50-ms=X` / `--slo-p99-ms=X` / `--slo-p999-ms=X`
//! * `--check`              flight-record the run and gate it CLEAN
//! * `--verify <path>`      instead of serving: sanity-check an artifact
//!
//! Exit status: nonzero when the SLO fails, the checker finds
//! violations, or `--verify` rejects the artifact.

use hal_frontend::serve;
use hal_kernel::BackendKind;

fn parse_flag<T: std::str::FromStr>(arg: &str, name: &str) -> Option<T> {
    arg.strip_prefix(name)
        .and_then(|rest| rest.strip_prefix('='))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value for {name}: `{v}`"))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // --verify submode: check an existing artifact and exit.
    if let Some(pos) = args.iter().position(|a| a == "--verify") {
        let path = args
            .get(pos + 1)
            .unwrap_or_else(|| panic!("--verify takes a path"));
        let body = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match serve::verify_artifact(&body) {
            Ok(()) => {
                println!("{path}: OK");
                return;
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut cfg = serve::ServeConfig::default();
    if let Ok(v) = std::env::var("HAL_BACKEND") {
        cfg.backend = v.parse().unwrap_or_else(|e| panic!("{e}"));
    }
    for arg in &args {
        if let Some(v) = parse_flag::<BackendKind>(arg, "--backend") {
            cfg.backend = v;
        } else if let Some(v) = parse_flag::<String>(arg, "--scenario") {
            cfg.scenario = v;
        } else if let Some(v) = parse_flag::<usize>(arg, "--nodes") {
            cfg.nodes = v;
        } else if let Some(v) = parse_flag::<usize>(arg, "--stages") {
            cfg.stages = v;
        } else if let Some(v) = parse_flag::<f64>(arg, "--rate") {
            cfg.rate_rps = v;
        } else if let Some(v) = parse_flag::<u64>(arg, "--requests") {
            cfg.requests = v;
        } else if let Some(v) = parse_flag::<u64>(arg, "--stage-cost-us") {
            cfg.stage_cost_ns = v * 1000;
        } else if let Some(v) = parse_flag::<u64>(arg, "--seed") {
            cfg.seed = v;
        } else if let Some(v) = parse_flag::<f64>(arg, "--slo-p50-ms") {
            cfg.slo.p50_ms = v;
        } else if let Some(v) = parse_flag::<f64>(arg, "--slo-p99-ms") {
            cfg.slo.p99_ms = v;
        } else if let Some(v) = parse_flag::<f64>(arg, "--slo-p999-ms") {
            cfg.slo.p999_ms = v;
        } else if arg == "--check" {
            cfg.check = true;
        } else {
            panic!("unknown flag `{arg}` (see the module doc)");
        }
    }

    let out = match serve::run(cfg) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    };

    let path = serve::artifact_path(&out.cfg.scenario);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results/");
    }
    std::fs::write(&path, out.to_json()).expect("write serve artifact");
    println!("{}", out.summary());
    println!("wrote {}", path.display());

    let slo_ok = out.slo_pass();
    let check_ok = out.check_clean.unwrap_or(true);
    if !slo_ok {
        eprintln!("SLO FAILED");
    }
    if !check_ok {
        eprintln!("protocol checker found violations");
    }
    if !slo_ok || !check_ok {
        std::process::exit(1);
    }
}
