//! `hal-console` — the interactive front-end of Fig. 1.
//!
//! ```text
//! $ cargo run --release -p hal-frontend --bin hal-console
//! hal> nodes 16
//! hal> lb on
//! hal> run fib n=24 grain=8 & uts seed=7
//! ...
//! hal> quit
//! ```

use hal_frontend::Console;
use std::io::{BufRead, Write};

fn main() {
    let mut console = Console::new();
    println!("HAL front-end console — `help` for commands, `quit` to exit.");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("hal> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                let reply = console.execute(&line);
                if !reply.is_empty() {
                    println!("{reply}");
                }
                if console.finished() {
                    break;
                }
            }
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
}
