//! The open-loop load generator: `hal-serve`'s engine.
//!
//! The paper's front-end "processes all I/O requests from the kernels";
//! this module turns that front-end into a *server harness*: requests
//! arrive at a configured rate (open loop — arrivals never wait for
//! completions, so queueing delay is measured, not hidden), flow down a
//! multi-node actor pipeline, and the sink records each request's
//! end-to-end latency in an HDR-style histogram. The harness then
//! reports p50/p99/p999 against a declared SLO in
//! `results/SERVE_<scenario>.json`.
//!
//! Both [`hal_kernel::Backend`]s are supported and measure the same
//! pipeline:
//!
//! * **simulated** — a `LoadGen` actor paces arrivals on the virtual
//!   clock (`charge(period)` between sends), so the whole run is
//!   deterministic and the "latencies" are virtual nanoseconds;
//! * **live** — the harness thread submits one [`hal_kernel::Job`] per
//!   request at its scheduled host instant. A request's latency is
//!   charged from its *scheduled* arrival time, not from when the job
//!   actually ran, so a backed-up runtime cannot hide queueing delay
//!   (no coordinated omission).
//!
//! Termination uses the pipeline's own FIFO ordering: after the last
//! request the generator sends `Flush` down the same links; each link
//! delivers in order, so `Flush` reaches the sink after every request,
//! and the sink reports its histogram and stops the machine.

use hal::messages;
use hal::prelude::*;
use hal_des::VirtualDuration;
use hal_kernel::{Bytes, NodeId};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

messages! {
    /// The serve pipeline protocol.
    pub enum ServeMsg {
        /// One request: opaque id plus its (scheduled) send time.
        Req { id: i64, sent_at_ns: i64 } = 0,
        /// End-of-load marker; follows every `Req` on each link.
        Flush {} = 1,
        /// Simulated backend only: the `LoadGen` actor's pacing tick.
        Tick {} = 2,
    }
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: each power-of-two major bucket is split into
/// `2^MINOR_BITS` linear minor buckets, bounding the relative
/// quantization error at `2^-MINOR_BITS` (6.25%).
const MINOR_BITS: u32 = 4;
const MINORS: usize = 1 << MINOR_BITS;
const BUCKETS: usize = (64 - MINOR_BITS as usize + 1) * MINORS;

/// An HDR-style log2-major × linear-minor latency histogram.
///
/// Values are nanoseconds; memory is a flat `u64` array (~8 KiB), so
/// recording is one index computation and one increment — cheap enough
/// for the sink actor's hot path on the live backend.
pub struct LatencyHist {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(ns: u64) -> usize {
        if ns < MINORS as u64 {
            return ns as usize;
        }
        let exp = 63 - u64::from(ns.leading_zeros());
        let minor = ((ns >> (exp - u64::from(MINOR_BITS))) as usize) - MINORS;
        ((exp - u64::from(MINOR_BITS) + 1) as usize) * MINORS + minor
    }

    /// Upper bound (exclusive) of bucket `i` — the conservative value a
    /// percentile falling in this bucket reports.
    fn bucket_upper(i: usize) -> u64 {
        if i < MINORS {
            return i as u64 + 1;
        }
        let exp = (i / MINORS) as u32 + MINOR_BITS - 1;
        let minor = (i % MINORS) as u64;
        (MINORS as u64 + minor + 1) << (exp - MINOR_BITS)
    }

    /// Record one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::index(ns)] += 1;
        self.count += 1;
        self.sum += u128::from(ns);
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the upper
    /// bound of the bucket containing that rank (so the estimate never
    /// understates the true percentile by more than the bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Serialize the nonzero buckets as little-endian
    /// `(u32 index, u64 count)` pairs — the sink actor ships this
    /// through a single `Value::Bytes` report.
    pub fn to_pairs(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                out.extend_from_slice(&(i as u32).to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Rebuild a histogram from [`Self::to_pairs`] bytes plus the
    /// summary stats the buckets alone cannot carry exactly.
    pub fn from_pairs(pairs: &[u8], sum: u128, min: u64, max: u64) -> Self {
        let mut h = LatencyHist::new();
        for chunk in pairs.chunks_exact(12) {
            let i = u32::from_le_bytes(chunk[..4].try_into().expect("u32")) as usize;
            let c = u64::from_le_bytes(chunk[4..].try_into().expect("u64"));
            h.buckets[i] += c;
            h.count += c;
        }
        h.sum = sum;
        h.min = min;
        h.max = max;
        h
    }
}

// ---------------------------------------------------------------------------
// Pipeline actors
// ---------------------------------------------------------------------------

struct StageActor {
    next: MailAddr,
    cost_ns: u64,
}

impl Behavior for StageActor {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match ServeMsg::take(msg) {
            ServeMsg::Req { id, sent_at_ns } => {
                ctx.charge(VirtualDuration::from_nanos(self.cost_ns));
                let (sel, args) = ServeMsg::Req { id, sent_at_ns }.encode();
                ctx.send(self.next, sel, args);
            }
            ServeMsg::Flush {} => {
                let (sel, args) = ServeMsg::Flush {}.encode();
                ctx.send(self.next, sel, args);
            }
            ServeMsg::Tick {} => unreachable!("stages never receive Tick"),
        }
    }

    fn name(&self) -> &'static str {
        "serve_stage"
    }
}

fn make_stage(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(StageActor {
        next: args[0].as_addr(),
        cost_ns: args[1].as_int() as u64,
    })
}

struct SinkActor {
    hist: LatencyHist,
}

impl Behavior for SinkActor {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match ServeMsg::take(msg) {
            ServeMsg::Req { id: _, sent_at_ns } => {
                let now = ctx.now().as_nanos() as i64;
                self.hist.record(now.saturating_sub(sent_at_ns).max(0) as u64);
            }
            ServeMsg::Flush {} => {
                ctx.report("serve_count", Value::Int(self.hist.count() as i64));
                ctx.report("serve_sum_ns", Value::Int(self.hist.sum as i64));
                ctx.report("serve_min_ns", Value::Int(self.hist.min() as i64));
                ctx.report("serve_max_ns", Value::Int(self.hist.max() as i64));
                ctx.report("serve_hist", Value::Bytes(Bytes::from(self.hist.to_pairs())));
                ctx.stop();
            }
            ServeMsg::Tick {} => unreachable!("the sink never receives Tick"),
        }
    }

    fn name(&self) -> &'static str {
        "serve_sink"
    }
}

fn make_sink(_args: &[Value]) -> Box<dyn Behavior> {
    Box::new(SinkActor {
        hist: LatencyHist::new(),
    })
}

/// Simulated backend only: paces the open-loop arrival process on the
/// virtual clock. Each tick sends one request stamped with the actual
/// virtual send time, charges one inter-arrival period, and re-arms
/// itself; arrivals therefore never wait on the pipeline.
struct LoadGen {
    next: MailAddr,
    total: u64,
    period_ns: u64,
    sent: u64,
}

impl Behavior for LoadGen {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let ServeMsg::Tick {} = ServeMsg::take(msg) else {
            unreachable!("LoadGen only receives Tick");
        };
        if self.sent < self.total {
            let (sel, args) = ServeMsg::Req {
                id: self.sent as i64,
                sent_at_ns: ctx.now().as_nanos() as i64,
            }
            .encode();
            ctx.send(self.next, sel, args);
            self.sent += 1;
            ctx.charge(VirtualDuration::from_nanos(self.period_ns));
            let me = ctx.me();
            let (sel, args) = ServeMsg::Tick {}.encode();
            ctx.send(me, sel, args);
        } else {
            let (sel, args) = ServeMsg::Flush {}.encode();
            ctx.send(self.next, sel, args);
        }
    }

    fn name(&self) -> &'static str {
        "serve_loadgen"
    }
}

// ---------------------------------------------------------------------------
// Scenario + harness
// ---------------------------------------------------------------------------

/// Latency SLO: the declared bound each reported percentile is gated
/// against (milliseconds).
#[derive(Clone, Copy, Debug)]
pub struct Slo {
    /// Median bound.
    pub p50_ms: f64,
    /// 99th-percentile bound.
    pub p99_ms: f64,
    /// 99.9th-percentile bound.
    pub p999_ms: f64,
}

impl Default for Slo {
    fn default() -> Self {
        Slo {
            p50_ms: 20.0,
            p99_ms: 50.0,
            p999_ms: 100.0,
        }
    }
}

/// One load-generation scenario.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Name — becomes `results/SERVE_<scenario>.json`.
    pub scenario: String,
    /// Which backend runs the pipeline.
    pub backend: BackendKind,
    /// Partition size.
    pub nodes: usize,
    /// Pipeline depth (stage actors between generator and sink); stage
    /// `i` lives on node `i % nodes`, the sink on node 0, so any
    /// `stages >= 1` on `nodes >= 2` exercises remote links.
    pub stages: usize,
    /// Offered load, requests per second.
    pub rate_rps: f64,
    /// Total requests to offer.
    pub requests: u64,
    /// Virtual compute charged per stage per request.
    pub stage_cost_ns: u64,
    /// Machine seed.
    pub seed: u64,
    /// Declared latency SLO.
    pub slo: Slo,
    /// Record a flight-recorder trace and run the protocol checker on
    /// the report.
    pub check: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            scenario: "pipeline".into(),
            backend: BackendKind::Sim,
            nodes: 4,
            stages: 3,
            rate_rps: 500.0,
            requests: 1000,
            stage_cost_ns: 50_000,
            seed: 0x5EED,
            slo: Slo::default(),
            check: false,
        }
    }
}

/// The harvested outcome of one scenario run.
pub struct ServeOutcome {
    /// The scenario that ran.
    pub cfg: ServeConfig,
    /// Requests that reached the sink.
    pub completed: u64,
    /// End-to-end latency distribution.
    pub hist: LatencyHist,
    /// Makespan: virtual ns (simulated) or host ns (live).
    pub wall_ns: u64,
    /// Live backend: sends that hit a full bounded channel.
    pub backpressure_hits: u64,
    /// Protocol checker verdict, when [`ServeConfig::check`] was set.
    pub check_clean: Option<bool>,
    /// The machine's full report.
    pub report: SimReport,
}

impl ServeOutcome {
    /// True when every reported percentile is within the declared SLO.
    pub fn slo_pass(&self) -> bool {
        let ms = |ns: u64| ns as f64 / 1e6;
        ms(self.hist.quantile(0.50)) <= self.cfg.slo.p50_ms
            && ms(self.hist.quantile(0.99)) <= self.cfg.slo.p99_ms
            && ms(self.hist.quantile(0.999)) <= self.cfg.slo.p999_ms
    }

    /// Throughput actually sustained (completions over makespan).
    pub fn achieved_rps(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.completed as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// Render the `SERVE_<scenario>.json` document.
    pub fn to_json(&self) -> String {
        let q = |p: f64| self.hist.quantile(p);
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"scenario\": \"{}\",", self.cfg.scenario);
        let _ = writeln!(s, "  \"backend\": \"{}\",", self.cfg.backend);
        let _ = writeln!(s, "  \"nodes\": {},", self.cfg.nodes);
        let _ = writeln!(s, "  \"stages\": {},", self.cfg.stages);
        let _ = writeln!(s, "  \"requests\": {},", self.cfg.requests);
        let _ = writeln!(s, "  \"completed\": {},", self.completed);
        let _ = writeln!(s, "  \"offered_rps\": {:.1},", self.cfg.rate_rps);
        let _ = writeln!(s, "  \"achieved_rps\": {:.1},", self.achieved_rps());
        let _ = writeln!(s, "  \"wall_ns\": {},", self.wall_ns);
        let _ = writeln!(s, "  \"latency_ns\": {{");
        let _ = writeln!(s, "    \"min\": {},", self.hist.min());
        let _ = writeln!(s, "    \"mean\": {:.0},", self.hist.mean());
        let _ = writeln!(s, "    \"p50\": {},", q(0.50));
        let _ = writeln!(s, "    \"p90\": {},", q(0.90));
        let _ = writeln!(s, "    \"p99\": {},", q(0.99));
        let _ = writeln!(s, "    \"p999\": {},", q(0.999));
        let _ = writeln!(s, "    \"max\": {}", self.hist.max());
        let _ = writeln!(s, "  }},");
        let _ = writeln!(
            s,
            "  \"slo_ms\": {{ \"p50\": {}, \"p99\": {}, \"p999\": {} }},",
            self.cfg.slo.p50_ms, self.cfg.slo.p99_ms, self.cfg.slo.p999_ms
        );
        let _ = writeln!(s, "  \"slo_pass\": {},", self.slo_pass());
        let _ = writeln!(s, "  \"backpressure_hits\": {},", self.backpressure_hits);
        let _ = writeln!(
            s,
            "  \"check\": {}",
            match self.check_clean {
                None => "null".into(),
                Some(c) => format!("\"{}\"", if c { "CLEAN" } else { "VIOLATIONS" }),
            }
        );
        s.push_str("}\n");
        s
    }

    /// One-line human summary for the console.
    pub fn summary(&self) -> String {
        let ms = |p: f64| self.hist.quantile(p) as f64 / 1e6;
        format!(
            "{} [{}] {}/{} req @ {:.0}/s offered, {:.0}/s achieved | \
             p50 {:.2} ms p99 {:.2} ms p999 {:.2} ms | SLO {}",
            self.cfg.scenario,
            self.cfg.backend,
            self.completed,
            self.cfg.requests,
            self.cfg.rate_rps,
            self.achieved_rps(),
            ms(0.50),
            ms(0.99),
            ms(0.999),
            if self.slo_pass() { "PASS" } else { "FAIL" },
        )
    }
}

/// Run one scenario to completion and harvest its latency distribution.
///
/// # Panics
/// Panics on invalid configuration (zero rate, zero requests) — the
/// `hal-serve` bin validates its flags first.
pub fn run(cfg: ServeConfig) -> Result<ServeOutcome, MachineError> {
    assert!(cfg.rate_rps > 0.0, "rate must be positive");
    assert!(cfg.requests > 0, "need at least one request");
    assert!(cfg.stages >= 1, "need at least one stage");
    let period_ns = (1e9 / cfg.rate_rps) as u64;

    let mut program = Program::new();
    let stage_id = program.behavior("serve_stage", make_stage);
    let sink_id = program.behavior("serve_sink", make_sink);

    let machine_cfg = MachineConfig::builder(cfg.nodes)
        .seed(cfg.seed)
        .backend(cfg.backend)
        .observe(ObserveOpts::none().trace(cfg.check))
        .build()
        .expect("serve config is sim/live-valid");
    let mut m = Machine::from_config(machine_cfg, program.build());

    // Build the pipeline back to front so every stage knows its
    // successor's address at creation time. Stage i sits on node
    // i % nodes; the sink reports and stops from node 0.
    let backend = cfg.backend;
    let (total, rate_period) = (cfg.requests, period_ns);
    let first = m.with_ctx(0, |ctx| {
        let mut next = ctx.create_on(0, sink_id, vec![]);
        for s in (1..=cfg.stages).rev() {
            let node = (s % cfg.nodes) as NodeId;
            next = ctx.create_on(
                node,
                stage_id,
                vec![Value::Addr(next), Value::Int(cfg.stage_cost_ns as i64)],
            );
        }
        if backend == BackendKind::Sim {
            let lg = ctx.create_local(Box::new(LoadGen {
                next,
                total,
                period_ns: rate_period,
                sent: 0,
            }));
            let (sel, args) = ServeMsg::Tick {}.encode();
            ctx.send(lg, sel, args);
        }
        next
    });

    let report = match backend {
        BackendKind::Sim => m.run()?,
        BackendKind::Live => {
            m.init()?;
            let start = Instant::now();
            for i in 0..cfg.requests {
                let target = start + Duration::from_nanos(i * period_ns);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                m.submit(
                    0,
                    Box::new(move |ctx: &mut Ctx<'_>| {
                        // Charge latency from the *scheduled* arrival:
                        // job-queue wait counts against the runtime.
                        let late = target.elapsed().as_nanos() as u64;
                        let sent_at = ctx.now().as_nanos().saturating_sub(late);
                        let (sel, args) = ServeMsg::Req {
                            id: i as i64,
                            sent_at_ns: sent_at as i64,
                        }
                        .encode();
                        ctx.send(first, sel, args);
                    }),
                )?;
            }
            m.submit(
                0,
                Box::new(move |ctx: &mut Ctx<'_>| {
                    let (sel, args) = ServeMsg::Flush {}.encode();
                    ctx.send(first, sel, args);
                }),
            )?;
            // Generous wall budget: the load itself took requests/rate
            // seconds; allow that again plus slack for the drain.
            let load_secs = cfg.requests as f64 / cfg.rate_rps;
            m.drain(Duration::from_secs_f64(load_secs + 30.0))?
        }
    };

    let completed = report.value("serve_count").map(|v| v.as_int() as u64).unwrap_or(0);
    let hist = match report.value("serve_hist") {
        Some(v) => LatencyHist::from_pairs(
            v.as_bytes().as_slice(),
            report.value("serve_sum_ns").map(|v| v.as_int() as u128).unwrap_or(0),
            report.value("serve_min_ns").map(|v| v.as_int() as u64).unwrap_or(0),
            report.value("serve_max_ns").map(|v| v.as_int() as u64).unwrap_or(0),
        ),
        None => LatencyHist::new(),
    };
    let check_clean = cfg.check.then(|| {
        let mut cr = hal_check::CheckReport::new("serve");
        hal_check::check_sim_report(&cfg.scenario, &report, &mut cr);
        eprintln!("{}", cr.summary().trim_end());
        cr.is_clean()
    });

    Ok(ServeOutcome {
        completed,
        hist,
        wall_ns: report.makespan.as_nanos(),
        backpressure_hits: report.stats.get("threadnet.backpressure_hits"),
        check_clean,
        report,
        cfg,
    })
}

/// Sanity-check a written `SERVE_*.json`: parses, carries the full
/// percentile ladder, and the ladder is monotone (p50 ≤ p99 ≤ p999 ≤
/// max). Returns a human-readable error otherwise.
pub fn verify_artifact(body: &str) -> Result<(), String> {
    let doc = hal_perf::Json::parse(body)?;
    let lat = doc.get("latency_ns").ok_or("missing latency_ns object")?;
    let field = |k: &str| -> Result<f64, String> {
        lat.get(k)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing latency_ns.{k}"))
    };
    let (p50, p99, p999, max) = (field("p50")?, field("p99")?, field("p999")?, field("max")?);
    if !(p50 <= p99 && p99 <= p999 && p999 <= max) {
        return Err(format!(
            "percentiles not monotone: p50={p50} p99={p99} p999={p999} max={max}"
        ));
    }
    let completed = doc
        .get("completed")
        .and_then(|v| v.as_f64())
        .ok_or("missing completed")?;
    let requests = doc
        .get("requests")
        .and_then(|v| v.as_f64())
        .ok_or("missing requests")?;
    if completed > requests {
        return Err(format!("completed {completed} exceeds offered {requests}"));
    }
    if doc.get("slo_pass").is_none() {
        return Err("missing slo_pass".into());
    }
    Ok(())
}

/// Convenience: the artifact path for a scenario.
pub fn artifact_path(scenario: &str) -> std::path::PathBuf {
    std::path::Path::new("results").join(format!("SERVE_{scenario}.json"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_index_roundtrips_monotonically() {
        let mut last = 0;
        for ns in [0u64, 1, 7, 8, 15, 16, 17, 100, 1_000, 65_535, 1 << 20, u64::MAX >> 1] {
            let i = LatencyHist::index(ns);
            assert!(i >= last || ns < MINORS as u64, "index must not regress");
            assert!(LatencyHist::bucket_upper(i) > ns, "upper bound covers {ns}");
            last = i;
        }
    }

    #[test]
    fn hist_quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHist::new();
        for i in 1..=1000u64 {
            h.record(i * 1000);
        }
        let (p50, p99, p999) = (h.quantile(0.5), h.quantile(0.99), h.quantile(0.999));
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        assert!(p999 <= h.max());
        // 6.25% bucket resolution around the true medians.
        assert!((450_000..=560_000).contains(&p50), "{p50}");
    }

    #[test]
    fn hist_pairs_roundtrip() {
        let mut h = LatencyHist::new();
        for ns in [3u64, 900, 65_000, 12_000_000] {
            h.record(ns);
        }
        let r = LatencyHist::from_pairs(&h.to_pairs(), h.sum, h.min(), h.max());
        assert_eq!(r.count(), 4);
        assert_eq!(r.quantile(0.5), h.quantile(0.5));
        assert_eq!(r.max(), 12_000_000);
    }

    #[test]
    fn sim_serve_completes_all_requests_deterministically() {
        let cfg = ServeConfig {
            requests: 200,
            rate_rps: 100_000.0,
            check: true,
            ..ServeConfig::default()
        };
        let a = run(cfg.clone()).expect("serve runs");
        let b = run(cfg).expect("serve runs");
        assert_eq!(a.completed, 200);
        assert_eq!(a.check_clean, Some(true));
        assert_eq!(a.wall_ns, b.wall_ns, "simulated serve is deterministic");
        assert_eq!(a.hist.quantile(0.99), b.hist.quantile(0.99));
        // Latency includes at least the pipeline's compute.
        assert!(a.hist.min() >= u64::from(3u32) * 50_000 / 2);
    }

    #[test]
    fn live_serve_completes_under_light_load() {
        let cfg = ServeConfig {
            backend: BackendKind::Live,
            nodes: 2,
            stages: 2,
            requests: 50,
            rate_rps: 2_000.0,
            stage_cost_ns: 1_000,
            check: true,
            ..ServeConfig::default()
        };
        let out = run(cfg).expect("live serve runs");
        assert_eq!(out.completed, 50, "reliable layer delivers every request");
        assert_eq!(out.check_clean, Some(true));
        assert!(out.hist.max() > 0, "live latencies are real host time");
    }

    #[test]
    fn artifact_verifies_and_rejects_nonsense() {
        let cfg = ServeConfig {
            requests: 64,
            rate_rps: 100_000.0,
            ..ServeConfig::default()
        };
        let out = run(cfg).expect("serve runs");
        let body = out.to_json();
        verify_artifact(&body).expect("fresh artifact verifies");
        assert!(verify_artifact("{}").is_err());
        assert!(verify_artifact(&body.replace("\"p50\"", "\"p5x\"")).is_err());
    }
}
