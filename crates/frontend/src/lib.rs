//! # hal-frontend — the partition-manager front-end (Fig. 1)
//!
//! "The runtime system consists of a front-end which runs on the
//! partition manager and a set of runtime kernels which run on the
//! processing elements. … Users are provided with a simple command
//! interpreter which communicates with the front-end to load the
//! executables. In addition to dynamic loading of user's executables,
//! the front-end processes all I/O requests from the kernels running on
//! the nodes. The runtime system is designed to concurrently execute
//! multiple programs on the same partition."
//!
//! [`Console`] is that command interpreter: it holds a partition
//! configuration, a catalog of loadable programs (the workload crate's
//! behaviors — our executables), runs one *or several concurrently* on
//! a simulated partition, and prints the values actors report (the
//! kernels' "I/O requests"). `hal-console` is the interactive binary;
//! [`Console::execute`] drives the same interpreter from scripts and
//! tests.
//!
//! [`serve`] is the front-end's other face: an open-loop load generator
//! (`hal-serve`) that offers requests to a multi-node actor pipeline at
//! a configured rate — on the deterministic simulator or on the live
//! thread backend — and reports p50/p99/p999 latency against a declared
//! SLO in `results/SERVE_<scenario>.json`.

#![warn(missing_docs)]

pub mod command;
pub mod console;
pub mod serve;

pub use command::{Command, ProgramSpec};
pub use console::Console;
pub use serve::{LatencyHist, ServeConfig, ServeOutcome, Slo};
