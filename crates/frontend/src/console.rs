//! The console: executes parsed commands against simulated partitions.

use crate::command::{parse, Command, ProgramSpec};
use hal::prelude::*;
use hal_kernel::SimMachine;
use hal_workloads::{cholesky, fib, matmul, uts};
use std::fmt::Write as _;

/// Front-end state: partition configuration plus the last run's
/// machine (kept so `stats` and `gc` can inspect it).
pub struct Console {
    nodes: usize,
    seed: u64,
    backend: BackendKind,
    lb: bool,
    trace: bool,
    metrics: bool,
    prof: bool,
    last: Option<SimReport>,
    machine: Option<SimMachine>,
    done: bool,
}

impl Default for Console {
    fn default() -> Self {
        Console {
            nodes: 8,
            seed: 0x5EED,
            backend: BackendKind::Sim,
            lb: false,
            trace: false,
            metrics: false,
            prof: false,
            last: None,
            machine: None,
            done: false,
        }
    }
}

/// The loadable-program catalog ("executables" in paper terms).
const CATALOG: &[(&str, &str)] = &[
    ("fib", "fib n=<N> grain=<G>            Table 4 Fibonacci"),
    ("uts", "uts seed=<S>                   unbalanced tree search"),
    (
        "matmul",
        "matmul grid=<G> block=<B>      Table 5 systolic multiply",
    ),
    (
        "cholesky",
        "cholesky n=<N> variant=<BP|CP|Seq|Bcast>   Table 1 factorization",
    ),
];

impl Console {
    /// Fresh console with default partition settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once `quit` has been executed.
    pub fn finished(&self) -> bool {
        self.done
    }

    /// Execute one input line; returns the text to show the user.
    pub fn execute(&mut self, line: &str) -> String {
        match parse(line) {
            Err(e) => format!("error: {e}"),
            Ok(cmd) => self.run_command(cmd),
        }
    }

    /// Execute a whole script (one command per line), collecting output.
    pub fn execute_script(&mut self, script: &str) -> String {
        let mut out = String::new();
        for line in script.lines() {
            if self.done {
                break;
            }
            let reply = self.execute(line);
            if !reply.is_empty() {
                let _ = writeln!(out, "{reply}");
            }
        }
        out
    }

    fn run_command(&mut self, cmd: Command) -> String {
        match cmd {
            Command::Nothing => String::new(),
            Command::Help => HELP.trim().to_string(),
            Command::Quit => {
                self.done = true;
                "bye".into()
            }
            Command::Nodes(n) => {
                self.nodes = n;
                format!("partition size = {n}")
            }
            Command::Seed(s) => {
                self.seed = s;
                format!("seed = {s}")
            }
            Command::Backend(kind) => {
                self.backend = kind;
                format!("backend = {kind}")
            }
            Command::LoadBalancing(on) => {
                self.lb = on;
                format!("load balancing = {}", if on { "on" } else { "off" })
            }
            Command::Programs => {
                let mut out = String::from("loadable programs:");
                for (_, usage) in CATALOG {
                    let _ = write!(out, "\n  {usage}");
                }
                out
            }
            Command::Stats => match &self.last {
                None => "no run yet".into(),
                Some(r) => {
                    let mut out = format!(
                        "virtual time {} | events {} | actors {}",
                        r.makespan, r.events, r.actors_created
                    );
                    for (k, v) in r.stats.counters() {
                        let _ = write!(out, "\n  {k} = {v}");
                    }
                    out
                }
            },
            Command::Trace(on) => {
                self.trace = on;
                format!("flight recorder = {}", if on { "on" } else { "off" })
            }
            Command::TraceDump(path) => {
                let Some(trace) = self.last.as_ref().and_then(|r| r.trace.as_ref()) else {
                    return "no trace recorded (enable with `trace on`, then run)".into();
                };
                match path {
                    None => trace.summary().trim_end().to_string(),
                    Some(p) => match trace.write_chrome(&p) {
                        Ok(()) => format!(
                            "chrome trace ({} events) written to {p}",
                            trace.events.len()
                        ),
                        Err(e) => format!("error: trace export to {p} failed: {e}"),
                    },
                }
            }
            Command::Metrics(on) => {
                self.metrics = on;
                format!("metrics registry = {}", if on { "on" } else { "off" })
            }
            Command::Prof(Some(on)) => {
                self.prof = on;
                format!("host-time profiler = {}", if on { "on" } else { "off" })
            }
            Command::Prof(None) => {
                match self.last.as_ref().and_then(|r| r.prof.as_ref()) {
                    None => "no profile recorded (enable with `prof on`, then run)".into(),
                    Some(p) => p.summary().trim_end().to_string(),
                }
            }
            Command::Top => {
                let Some(r) = &self.last else {
                    return "no run yet (enable with `metrics on`, then run)".into();
                };
                let Some(m) = &r.metrics else {
                    return "no metrics recorded (enable with `metrics on`, then run)".into();
                };
                let makespan_ns = r.makespan.as_nanos();
                let mut out = m.summary(makespan_ns).trim_end().to_string();
                if let Some(trace) = &r.trace {
                    let spans = hal_kernel::span::SpanReport::build(trace);
                    let cp = hal_profile::critical_paths(&spans, 3);
                    let _ = write!(out, "\n{}", cp.summary(makespan_ns).trim_end());
                } else {
                    let _ = write!(
                        out,
                        "\n(no trace recorded: `trace on` before running adds \
                         the critical-path breakdown)"
                    );
                }
                out
            }
            Command::Check => match &self.last {
                None => "no run to check (run something first)".into(),
                Some(r) => {
                    let mut report = hal_check::CheckReport::new("console");
                    hal_check::check_sim_report("last", r, &mut report);
                    let mut out = report.summary().trim_end().to_string();
                    if r.trace.is_none() {
                        let _ = write!(
                            out,
                            "\n(no trace recorded: audit checks only — \
                             `trace on` before running for the full trace pass)"
                        );
                    }
                    out
                }
            },
            Command::Gc => match &mut self.machine {
                None => "no partition to collect (run something first)".into(),
                Some(m) => {
                    let before: usize =
                        (0..m.nodes()).map(|n| m.kernel(n as u16).actor_count()).sum();
                    match m.collect_garbage() {
                        Ok(r) => format!(
                            "gc: {} actors examined, {} freed in {} round(s), {} live",
                            before, r.freed, r.rounds, r.live
                        ),
                        Err(e) => format!("error: {e}"),
                    }
                }
            },
            Command::Run(specs) => self.run_programs(specs),
        }
    }

    fn run_programs(&mut self, specs: Vec<ProgramSpec>) -> String {
        // Build one "loaded image" with every catalog behavior — the
        // kernels do not discriminate between programs.
        let mut program = Program::new();
        let fib_id = fib::register(&mut program);
        let uts_id = uts::register(&mut program);
        let mm_id = matmul::register(&mut program);
        let ch_id = cholesky::register(&mut program);

        // Validate all specs before constructing the machine.
        enum Boot {
            Fib(fib::FibConfig),
            Uts(uts::UtsConfig),
            Mm(matmul::MatmulConfig),
            Ch(cholesky::CholeskyConfig),
        }
        let mut boots = Vec::new();
        for spec in &specs {
            let boot = match spec.name.as_str() {
                "fib" => {
                    let n = match spec.int("n", 20) {
                        Ok(v) if (0..=40).contains(&v) => v as u64,
                        _ => return "error: fib needs n in 0..=40".into(),
                    };
                    let grain = spec.int("grain", 8).unwrap_or(8).clamp(0, 40) as u64;
                    Boot::Fib(fib::FibConfig {
                        n,
                        grain,
                        placement: fib::Placement::Local,
                    })
                }
                "uts" => {
                    let seed = match spec.int("seed", 1) {
                        Ok(v) => v as u64,
                        Err(e) => return format!("error: {e}"),
                    };
                    Boot::Uts(uts::UtsConfig::standard(seed))
                }
                "matmul" => {
                    let grid = spec.int("grid", 4).unwrap_or(4).clamp(1, 16) as usize;
                    let block = spec.int("block", 16).unwrap_or(16).clamp(1, 256) as usize;
                    Boot::Mm(matmul::MatmulConfig {
                        grid,
                        block,
                        per_flop_ns: 135,
                        seed_a: self.seed,
                        seed_b: self.seed ^ 0xABCD,
                    })
                }
                "cholesky" => {
                    let n = spec.int("n", 32).unwrap_or(32).clamp(2, 512) as usize;
                    let variant = match spec.str("variant", "BP").as_str() {
                        "BP" => cholesky::Variant::BP,
                        "CP" => cholesky::Variant::CP,
                        "Seq" => cholesky::Variant::Seq,
                        "Bcast" => cholesky::Variant::Bcast,
                        other => return format!("error: unknown variant {other}"),
                    };
                    Boot::Ch(cholesky::CholeskyConfig {
                        n,
                        variant,
                        per_flop_ns: 140,
                        seed: self.seed,
                    })
                }
                other => return format!("error: unknown program `{other}` (try `programs`)"),
            };
            boots.push(boot);
        }

        let machine = match MachineConfig::builder(self.nodes)
            .seed(self.seed)
            .load_balancing(self.lb)
            .backend(self.backend)
            .observe(
                ObserveOpts::none()
                    .trace(self.trace)
                    .metrics(self.metrics)
                    .prof(self.prof),
            )
            .build()
        {
            Ok(cfg) => cfg,
            Err(e) => return format!("error: {e}"),
        };
        let report = if self.backend == BackendKind::Live {
            // The live runtime has no global quiescence detection — it
            // stops when a program says stop — so the console runs one
            // program at a time on it, with a stopping bootstrap.
            if boots.len() > 1 {
                return "error: the live backend runs one program per `run` \
                        (the simulator multiplexes; try `backend sim`)"
                    .into();
            }
            let mut m = Machine::live(machine, program.build());
            m.with_ctx(0, |ctx| match &boots[0] {
                Boot::Fib(cfg) => fib::bootstrap_opts(ctx, fib_id, *cfg, true),
                Boot::Uts(cfg) => uts::bootstrap_opts(ctx, uts_id, *cfg, true),
                Boot::Mm(cfg) => matmul::bootstrap_opts(ctx, mm_id, *cfg, false, true),
                Boot::Ch(cfg) => cholesky::bootstrap_opts(ctx, ch_id, *cfg, false, true),
            });
            self.machine = None;
            match m.run() {
                Ok(r) => r,
                Err(e) => return format!("error: {e}"),
            }
        } else {
            let mut m = SimMachine::new(machine, program.build());
            m.with_ctx(0, |ctx| {
                // Concurrent programs must not stop the machine: it
                // drains naturally once all of them are done.
                for boot in &boots {
                    match boot {
                        Boot::Fib(cfg) => fib::bootstrap_opts(ctx, fib_id, *cfg, false),
                        Boot::Uts(cfg) => uts::bootstrap_opts(ctx, uts_id, *cfg, false),
                        Boot::Mm(cfg) => matmul::bootstrap_opts(ctx, mm_id, *cfg, false, false),
                        Boot::Ch(cfg) => cholesky::bootstrap_opts(ctx, ch_id, *cfg, false, false),
                    }
                }
            });
            let report = match m.run() {
                Ok(r) => r,
                Err(e) => return format!("error: {e}"),
            };
            self.machine = Some(m);
            report
        };

        // "The front-end processes all I/O requests from the kernels":
        // print every reported value.
        let mut out = format!(
            "ran {} program(s) on {} node(s): virtual time {}",
            specs.len(),
            self.nodes,
            report.makespan
        );
        for (k, v) in report
            .reports
            .iter()
            .filter(|(k, _)| !k.ends_with("_at_ns"))
        {
            let rendered = match v {
                Value::Int(i) => i.to_string(),
                Value::Float(x) => format!("{x:.4}"),
                other => format!("{other:?}"),
            };
            let _ = write!(out, "\n  {k} = {rendered}");
        }
        self.last = Some(report);
        out
    }
}

const HELP: &str = r#"
commands:
  help                      this text
  nodes <P>                 set partition size (default 8)
  seed <S>                  set machine seed
  backend sim|live          execution backend (default sim)
  lb on|off                 dynamic load balancing (default off)
  programs                  list loadable programs
  run <prog> [k=v ...]      run a program on a fresh partition
  run <a> ... & <b> ...     run several programs concurrently
  stats                     counters from the last run
  trace on|off              kernel flight recorder for subsequent runs
  trace dump [path]         last run's trace: summary, or Chrome JSON to path
  metrics on|off            live metrics registry for subsequent runs
  prof on|off               host-time executor profiler for subsequent runs
  prof                      host-time phase breakdown of the last run
  top                       per-node utilization + gauges from the last run
  check                     protocol invariant checker on the last run
  gc                        collect garbage on the last partition
  quit                      exit
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_fib_reports_result() {
        let mut c = Console::new();
        let out = c.execute("run fib n=12 grain=4");
        assert!(out.contains("fib = 144"), "{out}");
    }

    #[test]
    fn settings_change_behavior() {
        let mut c = Console::new();
        assert!(c.execute("nodes 4").contains("4"));
        assert!(c.execute("lb on").contains("on"));
        let out = c.execute("run fib n=14 grain=4");
        assert!(out.contains("fib = 377"), "{out}");
        let stats = c.execute("stats");
        assert!(stats.contains("steal.polls") || stats.contains("steal"), "{stats}");
    }

    #[test]
    fn concurrent_programs_share_the_partition() {
        let mut c = Console::new();
        c.execute("nodes 4");
        let out = c.execute("run fib n=12 grain=4 & uts seed=3");
        assert!(out.contains("fib = 144"), "{out}");
        assert!(out.contains("uts_size = "), "{out}");
    }

    #[test]
    fn live_backend_runs_one_program() {
        let mut c = Console::new();
        c.execute("nodes 2");
        assert!(c.execute("backend live").contains("live"));
        let out = c.execute("run fib n=12 grain=4");
        assert!(out.contains("fib = 144"), "{out}");
        // Concurrent programs need the simulator's quiescence drain.
        let out = c.execute("run fib n=10 grain=3 & uts seed=3");
        assert!(out.starts_with("error:"), "{out}");
        // gc needs the simulated machine.
        assert!(c.execute("gc").contains("no partition"));
        assert!(c.execute("backend sim").contains("sim"));
        let out = c.execute("run fib n=10 grain=3 & uts seed=3");
        assert!(out.contains("fib = 55"), "{out}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut c = Console::new();
        assert!(c.execute("run warp").starts_with("error:"));
        assert!(c.execute("frobnicate").starts_with("error:"));
        assert!(c.execute("run fib n=999").starts_with("error:"));
        // Still usable afterwards.
        assert!(c.execute("run fib n=10 grain=3").contains("fib = 55"));
    }

    #[test]
    fn script_execution_stops_at_quit() {
        let mut c = Console::new();
        let out = c.execute_script("nodes 2\nrun fib n=10 grain=2\nquit\nrun fib n=12 grain=2\n");
        assert!(out.contains("fib = 55"));
        assert!(out.contains("bye"));
        assert!(!out.contains("fib = 144"), "commands after quit must not run");
        assert!(c.finished());
    }

    #[test]
    fn gc_from_the_console() {
        let mut c = Console::new();
        assert!(c.execute("gc").contains("no partition"));
        c.execute("nodes 2");
        c.execute("run fib n=10 grain=3");
        let out = c.execute("gc");
        assert!(out.contains("freed"), "{out}");
        // fib actors are all garbage after the run (nothing pinned).
        assert!(out.contains("0 live"), "{out}");
    }

    #[test]
    fn trace_dump_requires_a_recorded_run() {
        let mut c = Console::new();
        assert!(c.execute("trace dump").contains("no trace recorded"));
        // A run without `trace on` records nothing.
        c.execute("nodes 2");
        c.execute("run fib n=10 grain=3");
        assert!(c.execute("trace dump").contains("no trace recorded"));
    }

    #[test]
    fn trace_records_and_dumps() {
        let mut c = Console::new();
        c.execute("nodes 2");
        assert!(c.execute("trace on").contains("on"));
        c.execute("run fib n=10 grain=3");
        let summary = c.execute("trace dump");
        assert!(summary.contains("events recorded"), "{summary}");
        assert!(summary.contains("delivery.local"), "{summary}");
        let dir = std::env::temp_dir().join("hal_console_trace_test");
        let path = dir.join("dump.json");
        let out = c.execute(&format!("trace dump {}", path.display()));
        assert!(out.contains("written to"), "{out}");
        let body = std::fs::read_to_string(&path).expect("dump file exists");
        assert!(body.starts_with("{\"traceEvents\":["), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn top_requires_a_metrics_run() {
        let mut c = Console::new();
        assert!(c.execute("top").contains("no run yet"));
        c.execute("nodes 2");
        c.execute("run fib n=10 grain=3");
        assert!(c.execute("top").contains("no metrics recorded"));
    }

    #[test]
    fn metrics_records_and_top_summarizes() {
        let mut c = Console::new();
        c.execute("nodes 2");
        assert!(c.execute("metrics on").contains("on"));
        c.execute("run fib n=10 grain=3");
        let top = c.execute("top");
        assert!(top.contains("util%"), "{top}");
        // Metrics alone give gauges but no span DAG.
        assert!(top.contains("no trace recorded"), "{top}");
        // With the flight recorder on too, `top` adds the critical path.
        c.execute("trace on");
        c.execute("run fib n=10 grain=3");
        let top = c.execute("top");
        assert!(top.contains("critical path"), "{top}");
        assert!(!top.contains("no trace recorded"), "{top}");
    }

    #[test]
    fn prof_records_and_summarizes() {
        let mut c = Console::new();
        assert!(c.execute("prof").contains("no profile recorded"));
        c.execute("nodes 2");
        // A run without `prof on` records nothing.
        c.execute("run fib n=10 grain=3");
        assert!(c.execute("prof").contains("no profile recorded"));
        assert!(c.execute("prof on").contains("on"));
        c.execute("run fib n=10 grain=3");
        let out = c.execute("prof");
        assert!(out.contains("host-time profile:"), "{out}");
        assert!(out.contains("top overhead:"), "{out}");
        assert!(c.execute("prof off").contains("off"));
    }

    #[test]
    fn check_command_reports_clean_runs() {
        let mut c = Console::new();
        assert!(c.execute("check").contains("no run to check"));
        c.execute("nodes 2");
        c.execute("run fib n=10 grain=3");
        let out = c.execute("check");
        assert!(out.contains("CLEAN"), "{out}");
        assert!(out.contains("audit checks only"), "{out}");
        // With the flight recorder on, the trace pass joins in.
        c.execute("trace on");
        c.execute("run fib n=10 grain=3");
        let out = c.execute("check");
        assert!(out.contains("CLEAN"), "{out}");
        assert!(!out.contains("audit checks only"), "{out}");
    }

    #[test]
    fn cholesky_and_matmul_from_the_console() {
        let mut c = Console::new();
        c.execute("nodes 4");
        let out = c.execute("run cholesky n=12 variant=CP & matmul grid=2 block=4");
        assert!(out.contains("chol_fro = "), "{out}");
        assert!(out.contains("matmul_fro = "), "{out}");
    }
}
