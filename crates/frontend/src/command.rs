//! Command-language parsing for the front-end console.
//!
//! The grammar is deliberately small, in the spirit of the paper's
//! "simple command interpreter":
//!
//! ```text
//! help
//! nodes <P>                      configure the partition size
//! seed <S>                       configure the machine seed
//! backend sim|live               pick the execution backend
//! lb on|off                      toggle dynamic load balancing
//! programs                       list loadable programs
//! run <prog> [k=v ...] [& <prog> [k=v ...] ...]
//! stats                          counters from the last run
//! trace on|off                   toggle the kernel flight recorder
//! trace dump [path]              export the last run's Chrome trace
//! metrics on|off                 toggle the live metrics registry
//! prof on|off                    toggle the host-time executor profiler
//! prof                           host-time breakdown of the last run
//! top                            gauge/utilization summary of the last run
//! check                          run the protocol checker on the last run
//! gc                             collect garbage on the last partition
//! quit
//! ```

use hal_kernel::BackendKind;
use std::collections::BTreeMap;

/// One program invocation: name plus `key=value` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Catalog name (e.g. `fib`).
    pub name: String,
    /// Arguments.
    pub args: BTreeMap<String, String>,
}

impl ProgramSpec {
    /// Integer argument with a default.
    pub fn int(&self, key: &str, default: i64) -> Result<i64, String> {
        match self.args.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("argument {key}={v} is not an integer")),
        }
    }

    /// String argument with a default.
    pub fn str(&self, key: &str, default: &str) -> String {
        self.args
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

/// A parsed console command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Show usage.
    Help,
    /// Set partition size.
    Nodes(usize),
    /// Set the machine seed.
    Seed(u64),
    /// Pick the execution backend for subsequent runs.
    Backend(BackendKind),
    /// Toggle load balancing.
    LoadBalancing(bool),
    /// List the program catalog.
    Programs,
    /// Run one or more programs concurrently on one partition.
    Run(Vec<ProgramSpec>),
    /// Print the last run's statistics.
    Stats,
    /// Toggle flight recording for subsequent runs.
    Trace(bool),
    /// Export the last run's trace: Chrome JSON to the given path, or a
    /// summary to the console when no path is given.
    TraceDump(Option<String>),
    /// Toggle the live metrics registry for subsequent runs.
    Metrics(bool),
    /// `Some(on)` toggles the host-time executor profiler for
    /// subsequent runs; `None` (bare `prof`) prints the last run's
    /// host-time breakdown.
    Prof(Option<bool>),
    /// Print the last run's metrics summary (per-node utilization and
    /// final gauges) — the console's `top`.
    Top,
    /// Run the protocol invariant checker over the last run.
    Check,
    /// Collect garbage on the last run's (quiescent) partition.
    Gc,
    /// Exit the console.
    Quit,
    /// Blank line / comment — nothing to do.
    Nothing,
}

/// Parse one console line.
pub fn parse(line: &str) -> Result<Command, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Command::Nothing);
    }
    let mut words = line.split_whitespace();
    let head = words.next().expect("nonempty");
    match head {
        "help" => Ok(Command::Help),
        "quit" | "exit" => Ok(Command::Quit),
        "programs" => Ok(Command::Programs),
        "stats" => Ok(Command::Stats),
        "check" => Ok(Command::Check),
        "gc" => Ok(Command::Gc),
        "top" => Ok(Command::Top),
        "metrics" => match words.next() {
            Some("on") => Ok(Command::Metrics(true)),
            Some("off") => Ok(Command::Metrics(false)),
            _ => Err("usage: metrics on|off".into()),
        },
        "prof" => match words.next() {
            Some("on") => Ok(Command::Prof(Some(true))),
            Some("off") => Ok(Command::Prof(Some(false))),
            None => Ok(Command::Prof(None)),
            _ => Err("usage: prof on|off | prof".into()),
        },
        "nodes" => {
            let n: usize = words
                .next()
                .ok_or("usage: nodes <P>")?
                .parse()
                .map_err(|_| "nodes takes a positive integer".to_string())?;
            if n == 0 || n > u16::MAX as usize {
                return Err("nodes must be in 1..=65535".into());
            }
            Ok(Command::Nodes(n))
        }
        "seed" => {
            let s: u64 = words
                .next()
                .ok_or("usage: seed <S>")?
                .parse()
                .map_err(|_| "seed takes an integer".to_string())?;
            Ok(Command::Seed(s))
        }
        "backend" => match words.next() {
            Some(kind) => kind
                .parse()
                .map(Command::Backend)
                .map_err(|_| "usage: backend sim|live".to_string()),
            None => Err("usage: backend sim|live".into()),
        },
        "lb" => match words.next() {
            Some("on") => Ok(Command::LoadBalancing(true)),
            Some("off") => Ok(Command::LoadBalancing(false)),
            _ => Err("usage: lb on|off".into()),
        },
        "trace" => match words.next() {
            Some("on") => Ok(Command::Trace(true)),
            Some("off") => Ok(Command::Trace(false)),
            Some("dump") => Ok(Command::TraceDump(words.next().map(str::to_string))),
            _ => Err("usage: trace on|off | trace dump [path]".into()),
        },
        "run" => {
            let rest: Vec<&str> = line["run".len()..].trim().split('&').collect();
            let mut specs = Vec::new();
            for part in rest {
                let mut w = part.split_whitespace();
                let name = w.next().ok_or("run: missing program name")?.to_string();
                let mut args = BTreeMap::new();
                for kv in w {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("run: argument `{kv}` is not key=value"))?;
                    args.insert(k.to_string(), v.to_string());
                }
                specs.push(ProgramSpec { name, args });
            }
            if specs.is_empty() {
                return Err("usage: run <prog> [k=v ...] [& <prog> ...]".into());
            }
            Ok(Command::Run(specs))
        }
        other => Err(format!("unknown command `{other}` (try `help`)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_commands() {
        assert_eq!(parse("help").unwrap(), Command::Help);
        assert_eq!(parse("  quit ").unwrap(), Command::Quit);
        assert_eq!(parse("nodes 16").unwrap(), Command::Nodes(16));
        assert_eq!(parse("gc").unwrap(), Command::Gc);
        assert_eq!(parse("seed 42").unwrap(), Command::Seed(42));
        assert_eq!(parse("backend live").unwrap(), Command::Backend(BackendKind::Live));
        assert_eq!(parse("backend sim").unwrap(), Command::Backend(BackendKind::Sim));
        assert_eq!(parse("lb on").unwrap(), Command::LoadBalancing(true));
        assert_eq!(parse("trace on").unwrap(), Command::Trace(true));
        assert_eq!(parse("trace off").unwrap(), Command::Trace(false));
        assert_eq!(parse("trace dump").unwrap(), Command::TraceDump(None));
        assert_eq!(parse("metrics on").unwrap(), Command::Metrics(true));
        assert_eq!(parse("metrics off").unwrap(), Command::Metrics(false));
        assert_eq!(parse("prof on").unwrap(), Command::Prof(Some(true)));
        assert_eq!(parse("prof off").unwrap(), Command::Prof(Some(false)));
        assert_eq!(parse("prof").unwrap(), Command::Prof(None));
        assert_eq!(parse("top").unwrap(), Command::Top);
        assert_eq!(parse("check").unwrap(), Command::Check);
        assert_eq!(
            parse("trace dump /tmp/t.json").unwrap(),
            Command::TraceDump(Some("/tmp/t.json".into()))
        );
        assert_eq!(parse("").unwrap(), Command::Nothing);
        assert_eq!(parse("# comment").unwrap(), Command::Nothing);
    }

    #[test]
    fn parses_run_with_args() {
        let Command::Run(specs) = parse("run fib n=20 grain=8").unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name, "fib");
        assert_eq!(specs[0].int("n", 0).unwrap(), 20);
        assert_eq!(specs[0].int("grain", 0).unwrap(), 8);
        assert_eq!(specs[0].int("missing", 7).unwrap(), 7);
    }

    #[test]
    fn parses_concurrent_programs() {
        let Command::Run(specs) = parse("run fib n=18 & uts seed=3").unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "fib");
        assert_eq!(specs[1].name, "uts");
        assert_eq!(specs[1].int("seed", 0).unwrap(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("launch missiles").is_err());
        assert!(parse("nodes zero").is_err());
        assert!(parse("nodes 0").is_err());
        assert!(parse("run fib n").is_err());
        assert!(parse("lb maybe").is_err());
        assert!(parse("backend warp").is_err());
        assert!(parse("backend").is_err());
        assert!(parse("trace maybe").is_err());
        assert!(parse("metrics maybe").is_err());
        assert!(parse("prof maybe").is_err());
        assert!(parse("run").is_err());
    }
}
