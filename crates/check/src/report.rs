//! Typed check results: violation kinds, counts, offending event
//! windows, and the `results/CHECK_<bin>.json` serialization.

use std::collections::BTreeMap;
use std::io::Write as _;

/// Every invariant the checker can see broken, one kind per rule.
///
/// The paper section cited on each variant is the place the invariant
/// is *stated*; DESIGN.md §10 is the catalog of how each one is
/// mechanized.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationKind {
    /// A message id was enqueued at a receiver more than once (§4.3
    /// demands exactly-once delivery through migrations and chases).
    DoubleDelivery,
    /// A delivery was recorded for a message id that was never sent
    /// (only reported when the trace ring did not wrap).
    DeliveryWithoutSend,
    /// A message was delivered through a key before any creation event
    /// for that key (§5: the name must exist before traffic lands).
    DeliveryBeforeCreation,
    /// An alias resolved (§5 background `NameInfo`) without the alias
    /// ever being minted, or causally before its mint.
    AliasResolvedWithoutCreate,
    /// An FIR chase re-traversed the same directed hop with no reply in
    /// between: forward chains must make progress for chases to
    /// terminate (§4.3, Fig. 3). A request path may legitimately
    /// *revisit* a node — unknown keys fall back to the birthplace, and
    /// duplicate suppression parks the request there — but re-sending
    /// along an already-walked hop means suppression failed to break a
    /// cycle and the chase is orbiting.
    ForwardChainCycle,
    /// A node sent a second FIR for a key while one was already
    /// outstanding — §4.3's duplicate suppression failed.
    DuplicateFirNotSuppressed,
    /// An FIR chase was opened but no reply ever closed it (dropped
    /// FIR reply / wedged chase).
    UnansweredFir,
    /// An FIR reply propagated at a node without that node's name
    /// table being repaired, or a migration never repaired the
    /// birthplace table (§4.3: the chain and the birthplace learn the
    /// new location).
    NameTableNotRepaired,
    /// The reliable layer released the same (link, seq) twice —
    /// exactly-once per sequence number is the layer's contract.
    DuplicateRelDelivery,
    /// A message entered a pending queue (§6.1) and was never
    /// re-enabled: trace-level form pairs `PendingEnqueued` with
    /// `PendingRescanned`; audit-level form counts messages still parked
    /// at end of run.
    StrandedPending,
    /// A join continuation (§6.2) was created but never fired.
    UnresolvedJoin,
    /// Messages were still parked for a key the node never learned
    /// (§5 alias traffic whose creation never landed).
    UndeliverableParked,
    /// Behavior ids are not dense `0..n`: id assignment depends on
    /// registration order, and a gap means nodes could disagree on the
    /// program image.
    BehaviorIdGap,
    /// Two behavior ids share a debug name, making the id↔name mapping
    /// ambiguous across program versions.
    DuplicateBehaviorName,
    /// Two variants of one message protocol share a selector — decode
    /// would be ambiguous.
    DuplicateMessageTag,
    /// A protocol's selectors do not cover `0..=max` — an encodable
    /// tag in the hole has no decode arm.
    MessageTagGap,
}

impl ViolationKind {
    /// Stable short name (JSON field, summaries).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::DoubleDelivery => "DoubleDelivery",
            ViolationKind::DeliveryWithoutSend => "DeliveryWithoutSend",
            ViolationKind::DeliveryBeforeCreation => "DeliveryBeforeCreation",
            ViolationKind::AliasResolvedWithoutCreate => "AliasResolvedWithoutCreate",
            ViolationKind::ForwardChainCycle => "ForwardChainCycle",
            ViolationKind::DuplicateFirNotSuppressed => "DuplicateFirNotSuppressed",
            ViolationKind::UnansweredFir => "UnansweredFir",
            ViolationKind::NameTableNotRepaired => "NameTableNotRepaired",
            ViolationKind::DuplicateRelDelivery => "DuplicateRelDelivery",
            ViolationKind::StrandedPending => "StrandedPending",
            ViolationKind::UnresolvedJoin => "UnresolvedJoin",
            ViolationKind::UndeliverableParked => "UndeliverableParked",
            ViolationKind::BehaviorIdGap => "BehaviorIdGap",
            ViolationKind::DuplicateBehaviorName => "DuplicateBehaviorName",
            ViolationKind::DuplicateMessageTag => "DuplicateMessageTag",
            ViolationKind::MessageTagGap => "MessageTagGap",
        }
    }
}

/// One broken invariant, with enough context to chase it down.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Human-readable description of the specific instance.
    pub detail: String,
    /// The offending event window: rendered trace events around the
    /// violation (empty for audit- or program-level findings).
    pub window: Vec<String>,
}

/// The result of running checker passes over one labeled run (or a
/// whole bin's worth of runs — violations accumulate).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckReport {
    /// What was checked (bench bin name, console label, ...).
    pub subject: String,
    /// Labels of the individual runs or passes folded into this report.
    pub passes: Vec<String>,
    /// Everything that broke.
    pub violations: Vec<Violation>,
    /// Trace events examined across all passes.
    pub events_checked: u64,
    /// True when any examined trace had ring wraparound: liveness and
    /// pairing checks that need a complete window were downgraded.
    pub trace_truncated: bool,
    /// Non-fatal anomalies surfaced by the checked runs (e.g. a chaos
    /// duplicate of an unclonable payload that could not be
    /// materialized). Warnings never make a report unclean.
    pub warnings: Vec<String>,
}

impl CheckReport {
    /// Empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        CheckReport {
            subject: subject.into(),
            ..Default::default()
        }
    }

    /// Record a violation.
    pub fn violation(&mut self, kind: ViolationKind, detail: impl Into<String>) {
        self.violations.push(Violation {
            kind,
            detail: detail.into(),
            window: Vec::new(),
        });
    }

    /// Record a violation with its offending event window.
    pub fn violation_with_window(
        &mut self,
        kind: ViolationKind,
        detail: impl Into<String>,
        window: Vec<String>,
    ) {
        self.violations.push(Violation {
            kind,
            detail: detail.into(),
            window,
        });
    }

    /// Record a non-fatal warning (does not affect [`CheckReport::is_clean`]).
    pub fn warn(&mut self, detail: impl Into<String>) {
        self.warnings.push(detail.into());
    }

    /// True when no invariant broke (warnings don't count).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation counts grouped by kind, sorted by kind name.
    #[must_use]
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for v in &self.violations {
            *out.entry(v.kind.name()).or_insert(0) += 1;
        }
        out
    }

    /// One-screen human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "check {}: {} pass(es), {} events, {}",
            self.subject,
            self.passes.len(),
            self.events_checked,
            if self.is_clean() {
                "CLEAN".to_string()
            } else {
                format!("{} VIOLATION(S)", self.violations.len())
            }
        );
        if self.trace_truncated {
            let _ = writeln!(
                out,
                "  (trace ring wrapped: pairing/liveness trace checks downgraded; audit checks exact)"
            );
        }
        for (name, n) in self.counts() {
            let _ = writeln!(out, "  {name:<26} {n:>6}");
        }
        if !self.warnings.is_empty() {
            let _ = writeln!(out, "  {} warning(s) (non-fatal):", self.warnings.len());
            for w in self.warnings.iter().take(10) {
                let _ = writeln!(out, "  ~ {w}");
            }
            if self.warnings.len() > 10 {
                let _ = writeln!(out, "  ... and {} more", self.warnings.len() - 10);
            }
        }
        for v in self.violations.iter().take(10) {
            let _ = writeln!(out, "  - [{}] {}", v.kind.name(), v.detail);
            for line in v.window.iter().take(5) {
                let _ = writeln!(out, "      {line}");
            }
        }
        if self.violations.len() > 10 {
            let _ = writeln!(out, "  ... and {} more", self.violations.len() - 10);
        }
        out
    }

    /// Serialize as JSON (dependency-free, like the bench records).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut counts = String::new();
        for (i, (name, n)) in self.counts().iter().enumerate() {
            if i > 0 {
                counts.push_str(", ");
            }
            let _ = write!(counts, "\"{}\": {}", json_escape(name), n);
        }
        let mut violations = String::new();
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                violations.push_str(",\n");
            }
            let window: String = v
                .window
                .iter()
                .map(|w| format!("\"{}\"", json_escape(w)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                violations,
                "    {{\"kind\": \"{}\", \"detail\": \"{}\", \"window\": [{}]}}",
                json_escape(v.kind.name()),
                json_escape(&v.detail),
                window,
            );
        }
        let passes: String = self
            .passes
            .iter()
            .map(|p| format!("\"{}\"", json_escape(p)))
            .collect::<Vec<_>>()
            .join(", ");
        let warnings: String = self
            .warnings
            .iter()
            .map(|w| format!("\"{}\"", json_escape(w)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n  \"subject\": \"{}\",\n  \"clean\": {},\n  \"passes\": [{}],\n  \
             \"events_checked\": {},\n  \"trace_truncated\": {},\n  \
             \"warnings\": [{}],\n  \
             \"violation_counts\": {{{}}},\n  \"violations\": [\n{}\n  ]\n}}\n",
            json_escape(&self.subject),
            self.is_clean(),
            passes,
            self.events_checked,
            self.trace_truncated,
            warnings,
            counts,
            violations,
        )
    }

    /// Write the JSON to `path`, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write failures.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_counts() {
        let mut r = CheckReport::new("unit");
        assert!(r.is_clean());
        r.violation(ViolationKind::DoubleDelivery, "id 7 delivered twice");
        r.violation_with_window(
            ViolationKind::StrandedPending,
            "id 9 parked forever",
            vec!["t=5 node=0 PendingEnqueued".into()],
        );
        assert!(!r.is_clean());
        assert_eq!(r.counts()["DoubleDelivery"], 1);
        let json = r.to_json();
        assert!(json.contains("\"clean\": false"), "{json}");
        assert!(json.contains("DoubleDelivery"), "{json}");
        assert!(json.contains("PendingEnqueued"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
