//! Static program checks and the end-of-run quiescence audit pass.
//!
//! The trace pass ([`crate::trace_check`]) sees what happened; this
//! module checks what a program *is* (behavior-id determinism §3,
//! message-tag coverage) and what a finished machine *left behind*
//! (§6.1 pending queues, §6.2 joins, §4.3 chases, §5 parked alias
//! traffic). The audit pass reads [`MachineAudit`] — computed from live
//! kernel tables, so it stays exact even when the bounded trace ring
//! wrapped.

use crate::report::{CheckReport, ViolationKind};
use hal_kernel::{BehaviorRegistry, MachineAudit, Selector};
use std::collections::BTreeMap;

/// Check the behavior-id image for determinism: ids must be dense
/// `0..n` (so every node that registered the same program in the same
/// order agrees on them) and debug names must be unique (so the
/// id↔name mapping is unambiguous across program versions).
pub fn check_behavior_image(behaviors: &[(u32, String)], out: &mut CheckReport) {
    out.passes.push("program".to_string());
    let mut ids: Vec<u32> = behaviors.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    for (expect, &got) in (0u32..).zip(ids.iter()) {
        if got != expect {
            out.violation(
                ViolationKind::BehaviorIdGap,
                format!(
                    "behavior ids are not dense 0..{}: expected id {expect}, found {got}",
                    behaviors.len()
                ),
            );
            break;
        }
    }
    let mut by_name: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    for (id, name) in behaviors {
        by_name.entry(name.as_str()).or_default().push(*id);
    }
    for (name, ids) in by_name {
        if ids.len() > 1 {
            out.violation(
                ViolationKind::DuplicateBehaviorName,
                format!("behavior name {name:?} registered under ids {ids:?}"),
            );
        }
    }
}

/// [`check_behavior_image`] over a live registry (before the program is
/// consumed by a machine — see `Program::registry`).
pub fn check_registry(registry: &BehaviorRegistry, out: &mut CheckReport) {
    let image: Vec<(u32, String)> = registry
        .entries()
        .into_iter()
        .map(|(id, name)| (id.0, name.to_string()))
        .collect();
    check_behavior_image(&image, out);
}

/// Check one message protocol's `(variant, selector)` table (the
/// `TAGS` const the `messages!` macro generates): selectors must be
/// unique (decode would otherwise be ambiguous) and cover `0..=max`
/// (a hole is an encodable tag no dispatch arm handles).
pub fn check_tags(protocol: &str, tags: &[(&str, Selector)], out: &mut CheckReport) {
    out.passes.push(format!("tags:{protocol}"));
    let mut by_sel: BTreeMap<Selector, Vec<&str>> = BTreeMap::new();
    for (variant, sel) in tags {
        by_sel.entry(*sel).or_default().push(variant);
    }
    for (sel, variants) in &by_sel {
        if variants.len() > 1 {
            out.violation(
                ViolationKind::DuplicateMessageTag,
                format!("protocol {protocol}: selector {sel} shared by {variants:?}"),
            );
        }
    }
    if let Some((&max, _)) = by_sel.iter().next_back() {
        for sel in 0..=max {
            if !by_sel.contains_key(&sel) {
                out.violation(
                    ViolationKind::MessageTagGap,
                    format!(
                        "protocol {protocol}: selectors do not cover 0..={max} \
                         (selector {sel} has no variant)"
                    ),
                );
            }
        }
    }
}

/// The end-of-run liveness audit: a drained machine owes the protocol
/// nothing. Every nonzero counter is a wedged invariant — a §6.1
/// constraint that never re-enabled, a §6.2 join that never fired, a
/// §4.3 chase that never closed, or §5 alias traffic parked forever.
/// Also runs [`check_behavior_image`] over the audit's program image.
pub fn check_audit(audit: &MachineAudit, out: &mut CheckReport) {
    out.passes.push("audit".to_string());
    for n in &audit.nodes {
        if n.stranded_pending > 0 {
            out.violation(
                ViolationKind::StrandedPending,
                format!(
                    "node {}: {} message(s) stranded in pending queues (actors: {:?})",
                    n.node, n.stranded_pending, n.stranded_keys
                ),
            );
        }
        if n.unresolved_joins > 0 {
            out.violation(
                ViolationKind::UnresolvedJoin,
                format!(
                    "node {}: {} join continuation(s) never resumed",
                    n.node, n.unresolved_joins
                ),
            );
        }
        if n.outstanding_firs > 0 {
            out.violation(
                ViolationKind::UnansweredFir,
                format!(
                    "node {}: {} FIR chase(s) still open at end of run",
                    n.node, n.outstanding_firs
                ),
            );
        }
        if n.unknown_buffered > 0 {
            out.violation(
                ViolationKind::UndeliverableParked,
                format!(
                    "node {}: {} message(s) parked for names the node never learned",
                    n.node, n.unknown_buffered
                ),
            );
        }
    }
    check_behavior_image(&audit.behaviors, out);
}
