//! The trace-analysis pass: protocol invariants over a [`TraceReport`],
//! mechanized as a *causal replay* with per-node vector clocks.
//!
//! Within one node, recorded virtual timestamps are **not** an
//! execution order: a handler that charges simulated cost advances the
//! local clock past the timestamps of events already queued behind it
//! (a group member installed mid-handler at a charged t=54300 really
//! executed before a delivery stamped t=54000). Each [`TraceEvent`]
//! therefore carries a per-node sequence number assigned at record
//! time, and the checker replays each node's events in `seq` order —
//! the order the node actually executed them. Across nodes the replay
//! interleaves lanes by picking, among the enabled lane heads, the
//! least `(time, node, seq)`, with a delivery *gated* until its
//! matching send has been replayed. The gate only applies when that
//! send exists somewhere in the trace, so a wrapped ring (or a corrupt
//! synthetic trace) cannot deadlock the replay; if every remaining head
//! is gated the least head is forced through. The result is a
//! linearization that extends each node's real execution order and
//! every traced message edge.
//!
//! Ordering invariants ride the replay directly: "creation
//! happens-before first delivery" and "alias encode happens-before
//! resolution" hold exactly when the creation/mint event has already
//! been replayed (both anchors execute on the node that hosts the name,
//! so lane order is authoritative). Vector clocks — one per node,
//! ticked on every replayed event, joined across traced send→delivery
//! edges and the §5 creation round trip (mint → install → resolve) —
//! back those checks with an explicit happens-before order: an event
//! whose clock is strictly dominated by its anchor's snapshot landed
//! causally before the name existed.
//!
//! Structural invariants (FIR chains acyclic, duplicate chases
//! suppressed, exactly-once per (link, seq), pending-queue liveness)
//! ride the same replay as set/counting checks.
//!
//! A trace ring that wrapped ([`TraceReport::dropped`] > 0) cannot
//! support absence-based checks — a "missing" send may simply have been
//! overwritten — so those downgrade to pair-present-only checks and the
//! report is marked `trace_truncated`. The quiescence audit
//! ([`crate::program_check::check_audit`]) stays exact regardless.

use crate::report::{CheckReport, ViolationKind};
use hal_am::NodeId;
use hal_kernel::trace::{KernelEvent, TraceEvent, TraceReport};
use hal_kernel::AddrKey;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// A vector clock: one logical-time component per node.
type Vc = Vec<u64>;

/// `a` strictly dominated by `b`: `a ≤ b` componentwise and `a ≠ b`.
/// Reading "event A's clock strictly dominated by event B's" as "A
/// happens-before B", a *later* replay event whose clock is dominated
/// by an *earlier* one exposes a causal-order violation.
fn dominated(a: &Vc, b: &Vc) -> bool {
    a != b && a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

fn join(into: &mut Vc, other: &Vc) {
    for (x, y) in into.iter_mut().zip(other.iter()) {
        *x = (*x).max(*y);
    }
}

/// Where a replayed event lives: (node lane, position in lane).
type Site = (usize, usize);

/// Render the lane window around `site` (±2 events in that node's
/// execution order) for a report.
fn window(lanes: &[Vec<&TraceEvent>], site: Site) -> Vec<String> {
    let (node, i) = site;
    let lane = &lanes[node];
    let lo = i.saturating_sub(2);
    let hi = (i + 3).min(lane.len());
    lane[lo..hi]
        .iter()
        .map(|e| format!("t={} node={} seq={} {:?}", e.time.as_nanos(), e.node, e.seq, e.event))
        .collect()
}

/// Run the full trace-analysis pass, appending violations to `out`.
#[allow(clippy::too_many_lines)] // one replay loop over one state table
pub fn check_trace(trace: &TraceReport, out: &mut CheckReport) {
    out.passes.push("trace".to_string());
    out.events_checked += trace.events.len() as u64;
    let truncated = trace.dropped > 0;
    if truncated {
        out.trace_truncated = true;
    }

    // One lane per node, in that node's execution (seq) order. The
    // merged report is (time, node, seq)-sorted, which can permute a
    // node's non-monotone-time events — re-sorting by seq recovers the
    // real order.
    let n = trace
        .events
        .iter()
        .map(|e| e.node as usize + 1)
        .max()
        .unwrap_or(0);
    let mut lanes: Vec<Vec<&TraceEvent>> = vec![Vec::new(); n];
    for e in &trace.events {
        lanes[e.node as usize].push(e);
    }
    for lane in &mut lanes {
        lane.sort_by_key(|e| e.seq);
    }

    // Pre-pass: which message ids have a send anywhere in the trace.
    // Deliveries gate only on these — a send lost to ring wraparound
    // must not wedge the replay.
    let mut sends_in_trace: HashSet<u64> = HashSet::new();
    for e in &trace.events {
        if let KernelEvent::MessageSent { id, .. } = &e.event {
            sends_in_trace.insert(*id);
        }
    }

    let mut vc: Vec<Vc> = vec![vec![0; n]; n];

    // Message pairing: send snapshots are consumed by the first
    // delivery so the map tracks only in-flight traffic.
    let mut send_vc: HashMap<u64, Vc> = HashMap::new();
    let mut send_key: HashMap<u64, AddrKey> = HashMap::new();
    let mut sent_replayed: HashSet<u64> = HashSet::new();
    let mut delivered: HashSet<u64> = HashSet::new();
    let mut first_delivery_at: HashMap<u64, Site> = HashMap::new();

    // Name existence: creation clock per key at the time it was
    // replayed (alias mint, actor install, or arrival by migration),
    // plus the target-side install clock for the §5 resolve edge.
    let mut created: HashMap<AddrKey, Vc> = HashMap::new();
    let mut alias_minted: HashMap<AddrKey, Vc> = HashMap::new();
    let mut installed: HashMap<AddrKey, Vc> = HashMap::new();
    let mut created_here: HashSet<(NodeId, AddrKey)> = HashSet::new();

    // FIR protocol state. The hop sets accumulate per key between
    // replies: a request path may *revisit* a node (unknown keys fall
    // back to the birthplace) because duplicate suppression parks the
    // request there, but re-traversing the same directed hop with no
    // reply in between means the chase is orbiting a cycle that
    // suppression failed to break.
    let mut fir_open: HashMap<(NodeId, AddrKey), Site> = HashMap::new();
    let mut fir_edges: HashMap<AddrKey, HashSet<(NodeId, NodeId)>> = HashMap::new();
    let mut repaired_epoch: HashMap<(NodeId, AddrKey), u32> = HashMap::new();
    let mut migrated_epoch: HashMap<(NodeId, AddrKey), u32> = HashMap::new();
    // (node expected to learn, key, epoch, site of the migration event)
    let mut expected_repairs: Vec<(NodeId, AddrKey, u32, Site)> = Vec::new();

    // Reliable layer: released (src, dst, seq) triples.
    let mut rel_seen: HashSet<(NodeId, NodeId, u64)> = HashSet::new();

    // Pending-queue liveness: enqueues minus rescans per message id.
    let mut pend_balance: HashMap<u64, (i64, Site)> = HashMap::new();

    let mut cursor = vec![0usize; n];
    let total = trace.events.len();
    let mut replayed = 0usize;
    while replayed < total {
        // Pick the enabled head with the least (time, node, seq); if
        // every remaining head is gated (only possible for corrupt or
        // synthetic traces), force the least head through.
        let mut best: Option<(u64, usize, u64)> = None;
        let mut fallback: Option<(u64, usize, u64)> = None;
        for (node, lane) in lanes.iter().enumerate() {
            let Some(e) = lane.get(cursor[node]) else {
                continue;
            };
            let k = (e.time.as_nanos(), node, e.seq);
            if fallback.is_none_or(|f| k < f) {
                fallback = Some(k);
            }
            let gated = matches!(&e.event, KernelEvent::MessageDelivered { id, .. }
                if sends_in_trace.contains(id) && !sent_replayed.contains(id));
            if !gated && best.is_none_or(|b| k < b) {
                best = Some(k);
            }
        }
        let Some((_, node, _)) = best.or(fallback) else {
            break; // unreachable: `replayed < total` means some lane has a head
        };
        let i = cursor[node];
        cursor[node] += 1;
        replayed += 1;
        let ev = lanes[node][i];
        let site: Site = (node, i);
        let me = ev.node;

        // Receive-type events join the causal sender's clock first.
        match &ev.event {
            KernelEvent::MessageDelivered { id, .. } => {
                if let Some(snap) = send_vc.remove(id) {
                    join(&mut vc[node], &snap);
                }
            }
            KernelEvent::ActorCreated { key } => {
                // The remote side of a §5 creation: the Create request
                // carries the requester's clock.
                if let Some(mint) = alias_minted.get(key) {
                    let mint = mint.clone();
                    join(&mut vc[node], &mint);
                }
            }
            KernelEvent::AliasResolved { key, .. } => {
                // The background NameInfo carries the target's clock.
                if let Some(inst) = installed.get(key) {
                    let inst = inst.clone();
                    join(&mut vc[node], &inst);
                }
            }
            _ => {}
        }
        vc[node][node] += 1;

        match &ev.event {
            KernelEvent::MessageSent { id, key, .. } => {
                send_key.insert(*id, *key);
                send_vc.insert(*id, vc[node].clone());
                sent_replayed.insert(*id);
            }
            KernelEvent::MessageDelivered { id, .. } => {
                if delivered.insert(*id) {
                    first_delivery_at.insert(*id, site);
                } else {
                    let first = first_delivery_at.get(id).copied();
                    let mut w = window(&lanes, site);
                    if let Some(f) = first {
                        w.splice(0..0, window(&lanes, f));
                    }
                    out.violation_with_window(
                        ViolationKind::DoubleDelivery,
                        format!("message id {id} enqueued more than once"),
                        w,
                    );
                }
                if !sends_in_trace.contains(id) {
                    if !truncated {
                        out.violation_with_window(
                            ViolationKind::DeliveryWithoutSend,
                            format!("message id {id} delivered but never sent"),
                            window(&lanes, site),
                        );
                    }
                } else if let Some(key) = send_key.get(id) {
                    match created.get(key) {
                        None => {
                            if !truncated {
                                out.violation_with_window(
                                    ViolationKind::DeliveryBeforeCreation,
                                    format!(
                                        "message id {id} delivered through {key:?} \
                                         before any creation event for that key executed"
                                    ),
                                    window(&lanes, site),
                                );
                            }
                        }
                        Some(cvc) => {
                            if dominated(&vc[node], cvc) {
                                out.violation_with_window(
                                    ViolationKind::DeliveryBeforeCreation,
                                    format!(
                                        "message id {id} delivered through {key:?} \
                                         causally before the key was created"
                                    ),
                                    window(&lanes, site),
                                );
                            }
                        }
                    }
                }
            }
            KernelEvent::ActorCreated { key } => {
                created.entry(*key).or_insert_with(|| vc[node].clone());
                installed.entry(*key).or_insert_with(|| vc[node].clone());
                created_here.insert((me, *key));
            }
            KernelEvent::AliasCreated { key, .. } => {
                alias_minted.insert(*key, vc[node].clone());
                created.entry(*key).or_insert_with(|| vc[node].clone());
            }
            KernelEvent::AliasResolved { key, .. } => match alias_minted.get(key) {
                None => {
                    if !truncated {
                        out.violation_with_window(
                            ViolationKind::AliasResolvedWithoutCreate,
                            format!("alias {key:?} resolved but was never minted"),
                            window(&lanes, site),
                        );
                    }
                }
                Some(mvc) => {
                    if dominated(&vc[node], mvc) {
                        out.violation_with_window(
                            ViolationKind::AliasResolvedWithoutCreate,
                            format!("alias {key:?} resolved causally before its mint"),
                            window(&lanes, site),
                        );
                    }
                }
            },
            KernelEvent::FirSent { key, to } => {
                match fir_open.entry((me, *key)) {
                    Entry::Occupied(_) => out.violation_with_window(
                        ViolationKind::DuplicateFirNotSuppressed,
                        format!(
                            "node {me} sent a second FIR for {key:?} while one was outstanding"
                        ),
                        window(&lanes, site),
                    ),
                    Entry::Vacant(e) => {
                        e.insert(site);
                    }
                }
                let edges = fir_edges.entry(*key).or_default();
                if !edges.insert((me, *to)) && !truncated {
                    let mut chain: Vec<_> = edges.iter().copied().collect();
                    chain.sort_unstable();
                    out.violation_with_window(
                        ViolationKind::ForwardChainCycle,
                        format!(
                            "FIR chase for {key:?} re-traversed hop {me} -> {to} with no \
                             reply in between — the forward chain loops (hops so far: {chain:?})"
                        ),
                        window(&lanes, site),
                    );
                }
            }
            KernelEvent::FirReplyPropagated { key, node: loc, .. } => {
                fir_open.remove(&(me, *key));
                fir_edges.remove(key);
                // §4.3: the reply repairs the local name table. The
                // terminal form — the actor arrived here while we were
                // chasing it — repairs by installing the actor instead.
                let locally_installed = *loc == me
                    && (migrated_epoch.contains_key(&(me, *key))
                        || created_here.contains(&(me, *key)));
                if !truncated
                    && !locally_installed
                    && !repaired_epoch.contains_key(&(me, *key))
                {
                    out.violation_with_window(
                        ViolationKind::NameTableNotRepaired,
                        format!(
                            "FIR reply for {key:?} propagated at node {me} \
                             without a name-table repair there"
                        ),
                        window(&lanes, site),
                    );
                }
            }
            KernelEvent::NameRepaired { key, epoch, .. } => {
                let e = repaired_epoch.entry((me, *key)).or_insert(*epoch);
                *e = (*e).max(*epoch);
            }
            KernelEvent::ActorMigrated { key, from, epoch } => {
                // Arrival by migration witnesses the name's existence on
                // this node (deliveries here follow in lane order).
                created.entry(*key).or_insert_with(|| vc[node].clone());
                let e = migrated_epoch.entry((me, *key)).or_insert(*epoch);
                *e = (*e).max(*epoch);
                // §4.3: the new location is "cached in its birthplace
                // node as well as in the old node".
                if key.birthplace != me {
                    expected_repairs.push((key.birthplace, *key, *epoch, site));
                }
                if *from != me && *from != key.birthplace {
                    expected_repairs.push((*from, *key, *epoch, site));
                }
            }
            KernelEvent::RelDelivered { src, seq } => {
                let fresh = rel_seen.insert((*src, me, *seq));
                if !fresh {
                    out.violation_with_window(
                        ViolationKind::DuplicateRelDelivery,
                        format!(
                            "reliable layer released seq {seq} on link {src} -> {me} twice"
                        ),
                        window(&lanes, site),
                    );
                }
            }
            KernelEvent::PendingEnqueued { id } => {
                let e = pend_balance.entry(*id).or_insert((0, site));
                e.0 += 1;
                e.1 = site;
            }
            KernelEvent::PendingRescanned { id, .. } => {
                pend_balance.entry(*id).or_insert((0, site)).0 -= 1;
            }
            _ => {}
        }
    }

    // End-of-trace liveness: only meaningful over a complete window.
    if !truncated {
        for (&(node, key), &opened_at) in &fir_open {
            out.violation_with_window(
                ViolationKind::UnansweredFir,
                format!("node {node} opened an FIR chase for {key:?} that was never answered"),
                window(&lanes, opened_at),
            );
        }
        for (id, &(balance, last_at)) in &pend_balance {
            if balance > 0 {
                out.violation_with_window(
                    ViolationKind::StrandedPending,
                    format!(
                        "message id {id} entered a pending queue and was never re-enabled"
                    ),
                    window(&lanes, last_at),
                );
            }
        }
        for &(node, key, epoch, at) in &expected_repairs {
            let repaired = repaired_epoch
                .get(&(node, key))
                .is_some_and(|&e| e >= epoch);
            let moved_there = migrated_epoch
                .get(&(node, key))
                .is_some_and(|&e| e >= epoch);
            if !repaired && !moved_there {
                out.violation_with_window(
                    ViolationKind::NameTableNotRepaired,
                    format!(
                        "migration of {key:?} (epoch {epoch}) never repaired the \
                         name table on node {node}"
                    ),
                    window(&lanes, at),
                );
            }
        }
    }

    // Deterministic report order regardless of hash-map iteration.
    out.violations.sort_by(|a, b| {
        (a.kind, &a.detail, &a.window).cmp(&(b.kind, &b.detail, &b.window))
    });
}
