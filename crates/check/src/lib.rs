//! # hal-check — protocol invariant checker for the HAL kernel
//!
//! Kim & Agha's location-transparency machinery is a web of distributed
//! invariants: a name must exist before traffic lands on it (§5), FIR
//! chases must walk acyclic forward chains and repair every name table
//! they touch plus the birthplace (§4.3), duplicate chases must be
//! suppressed (§4.3), synchronization constraints must eventually
//! re-enable parked messages (§6.1), join continuations must fire
//! (§6.2), and the reliable layer must release each (link, seq) exactly
//! once. The kernel *implements* these; this crate *checks* them, from
//! the outside, against evidence the kernel already produces:
//!
//! - **Trace analysis** ([`check_trace`]): a vector-clock pass over the
//!   flight recorder's merged [`TraceReport`].
//! - **Program + quiescence analysis** ([`check_registry`],
//!   [`check_tags`], [`check_audit`]): static checks on the behavior
//!   image and message-tag tables, plus the end-of-run liveness audit
//!   embedded in every [`SimReport`].
//!
//! Everything lands in a typed [`CheckReport`] with violation kinds,
//! counts, and offending event windows, serializable to
//! `results/CHECK_<bin>.json`. Bench bins run these passes under
//! `--check`; the console's `check` command runs them on the last
//! simulation. The full invariant catalog, with paper-section
//! citations, is DESIGN.md §10.

#![warn(missing_docs)]

mod program_check;
mod report;
mod trace_check;

pub use program_check::{check_audit, check_behavior_image, check_registry, check_tags};
pub use report::{CheckReport, Violation, ViolationKind};
pub use trace_check::check_trace;

use hal_kernel::{SimReport, TraceReport};

/// Run every applicable pass over one finished simulation: the trace
/// pass when a trace was recorded, then the quiescence audit (which
/// also checks the behavior image). `label` names the run inside the
/// report's pass list.
pub fn check_sim_report(label: &str, sim: &SimReport, out: &mut CheckReport) {
    let before = out.passes.len();
    if let Some(trace) = &sim.trace {
        check_trace(trace, out);
        // Typed non-fatal anomalies travel with the trace (e.g. a chaos
        // duplicate of an unclonable payload that the network counted
        // instead of silently dropping) — surface them, but never fail
        // on them.
        for w in &trace.warnings {
            out.warn(format!(
                "{label}: {} at t={} ns ({} -> {})",
                w.kind.name(),
                w.t.as_nanos(),
                w.src,
                w.dst
            ));
        }
    }
    check_audit(&sim.audit, out);
    // Prefix this run's pass labels so multi-run reports stay readable.
    for p in &mut out.passes[before..] {
        *p = format!("{label}/{p}");
    }
}

// Re-exported so synthetic-trace tests and callers can build inputs
// without depending on hal-kernel directly.
pub use hal_kernel::trace::TraceEvent;
pub use hal_kernel::KernelEvent;

/// Convenience: run [`check_trace`] over a bare event list (synthetic
/// traces in tests; no ring wraparound). List order stands in for each
/// node's execution order: per-node sequence numbers are assigned in
/// the order given, exactly as the live trace ring would have stamped
/// them.
pub fn check_events(mut events: Vec<TraceEvent>, out: &mut CheckReport) {
    let mut next_seq: std::collections::HashMap<hal_am::NodeId, u64> =
        std::collections::HashMap::new();
    for e in &mut events {
        let s = next_seq.entry(e.node).or_insert(0);
        e.seq = *s;
        *s += 1;
    }
    let trace = TraceReport {
        events,
        ..Default::default()
    };
    check_trace(&trace, out);
}
