//! Seeded-violation tests: hand-built traces with one protocol bug
//! injected each, asserting the checker reports exactly the right
//! [`ViolationKind`] — and that known-benign shapes (charged-clock
//! skew, ring truncation) stay clean.

use hal_check::{check_events, check_trace, CheckReport, KernelEvent, TraceEvent, ViolationKind};
use hal_des::VirtualTime;
use hal_kernel::trace::TraceReport;
use hal_kernel::{AddrKey, DeliveryPath, DescriptorId};

fn ev(ns: u64, node: u16, event: KernelEvent) -> TraceEvent {
    TraceEvent {
        time: VirtualTime::from_nanos(ns),
        node,
        seq: 0, // check_events assigns per-node seqs in list order
        span: 0,
        parent: 0,
        event,
    }
}

fn key(i: u32) -> AddrKey {
    AddrKey { birthplace: 0, index: DescriptorId(i) }
}

fn kinds(report: &CheckReport) -> Vec<ViolationKind> {
    report.violations.iter().map(|v| v.kind).collect()
}

fn delivered(id: u64) -> KernelEvent {
    KernelEvent::MessageDelivered {
        id,
        latency_ns: 1_000,
        path: DeliveryPath::Remote,
    }
}

#[test]
fn injected_forward_chain_cycle_is_flagged() {
    // A chase for key 7 walks 0 -> 1 -> 2 -> 0, then node 0 re-sends
    // along the already-walked hop 0 -> 1: suppression failed and the
    // chase is orbiting. (The re-send is also a duplicate FIR from node
    // 0's point of view — both kinds must fire.)
    let k = key(7);
    let mut r = CheckReport::new("seeded");
    check_events(
        vec![
            ev(100, 0, KernelEvent::FirSent { key: k, to: 1 }),
            ev(200, 1, KernelEvent::FirSent { key: k, to: 2 }),
            ev(300, 2, KernelEvent::FirSent { key: k, to: 0 }),
            ev(400, 0, KernelEvent::FirSent { key: k, to: 1 }),
        ],
        &mut r,
    );
    let ks = kinds(&r);
    assert!(ks.contains(&ViolationKind::ForwardChainCycle), "{ks:?}");
    assert!(ks.contains(&ViolationKind::DuplicateFirNotSuppressed), "{ks:?}");
    assert!(
        r.violations
            .iter()
            .any(|v| v.kind == ViolationKind::ForwardChainCycle && !v.window.is_empty()),
        "cycle violation must carry its event window"
    );
}

#[test]
fn dropped_fir_reply_leaves_unanswered_chase() {
    // One chase opened, reply lost in the fabric, nothing else wrong.
    let mut r = CheckReport::new("seeded");
    check_events(
        vec![ev(100, 1, KernelEvent::FirSent { key: key(3), to: 0 })],
        &mut r,
    );
    assert_eq!(kinds(&r), vec![ViolationKind::UnansweredFir]);
}

#[test]
fn answered_chase_with_repair_is_clean() {
    // The same chase, but the reply lands and repairs the table first —
    // the healthy shape the previous test breaks.
    let k = key(3);
    let mut r = CheckReport::new("seeded");
    check_events(
        vec![
            ev(100, 1, KernelEvent::FirSent { key: k, to: 0 }),
            ev(200, 1, KernelEvent::NameRepaired { key: k, node: 2, epoch: 1 }),
            ev(210, 1, KernelEvent::FirReplyPropagated { key: k, node: 2, askers: 0, released: 1 }),
        ],
        &mut r,
    );
    assert!(r.is_clean(), "{}", r.summary());
}

#[test]
fn reply_without_name_table_repair_is_flagged() {
    // A reply propagated at node 1 but node 1's table never learned the
    // location (no NameRepaired, no local install): §4.3 says every
    // chain node repairs its table from the reply.
    let k = key(3);
    let mut r = CheckReport::new("seeded");
    check_events(
        vec![
            ev(100, 1, KernelEvent::FirSent { key: k, to: 0 }),
            ev(210, 1, KernelEvent::FirReplyPropagated { key: k, node: 2, askers: 0, released: 1 }),
        ],
        &mut r,
    );
    assert_eq!(kinds(&r), vec![ViolationKind::NameTableNotRepaired]);
}

#[test]
fn stranded_pending_message_is_flagged() {
    // id 9 parks and never re-enables; id 4 parks and is rescanned —
    // only the stranded one may be reported.
    let mut r = CheckReport::new("seeded");
    check_events(
        vec![
            ev(100, 2, KernelEvent::PendingEnqueued { id: 4 }),
            ev(150, 2, KernelEvent::PendingEnqueued { id: 9 }),
            ev(300, 2, KernelEvent::PendingRescanned { id: 4, residency_ns: 200 }),
        ],
        &mut r,
    );
    assert_eq!(kinds(&r), vec![ViolationKind::StrandedPending]);
    assert!(r.violations[0].detail.contains("id 9"), "{}", r.violations[0].detail);
}

#[test]
fn double_delivery_is_flagged() {
    let k = key(5);
    let mut r = CheckReport::new("seeded");
    check_events(
        vec![
            ev(50, 1, KernelEvent::ActorCreated { key: k }),
            ev(100, 0, KernelEvent::MessageSent { id: 5, key: k, remote: true }),
            ev(200, 1, delivered(5)),
            ev(250, 1, delivered(5)),
        ],
        &mut r,
    );
    assert_eq!(kinds(&r), vec![ViolationKind::DoubleDelivery]);
}

#[test]
fn delivery_without_send_and_before_creation() {
    let k = key(6);
    let mut r = CheckReport::new("seeded");
    check_events(
        vec![
            // id 7: no send anywhere in a complete trace.
            ev(100, 1, delivered(7)),
            // id 8: sent through a key no creation event ever made.
            ev(200, 0, KernelEvent::MessageSent { id: 8, key: k, remote: true }),
            ev(300, 1, delivered(8)),
        ],
        &mut r,
    );
    let mut ks = kinds(&r);
    ks.sort();
    let mut expected = vec![
        ViolationKind::DeliveryWithoutSend,
        ViolationKind::DeliveryBeforeCreation,
    ];
    expected.sort();
    assert_eq!(ks, expected);
}

#[test]
fn alias_resolved_without_mint_is_flagged() {
    let mut r = CheckReport::new("seeded");
    check_events(
        vec![ev(100, 0, KernelEvent::AliasResolved { key: key(2), latency_ns: 900 })],
        &mut r,
    );
    assert_eq!(kinds(&r), vec![ViolationKind::AliasResolvedWithoutCreate]);
}

#[test]
fn duplicate_reliable_release_is_flagged() {
    let mut r = CheckReport::new("seeded");
    check_events(
        vec![
            ev(100, 3, KernelEvent::RelDelivered { src: 1, seq: 4 }),
            ev(200, 3, KernelEvent::RelDelivered { src: 1, seq: 4 }),
            // Same seq on a *different* link is fine.
            ev(300, 3, KernelEvent::RelDelivered { src: 2, seq: 4 }),
        ],
        &mut r,
    );
    assert_eq!(kinds(&r), vec![ViolationKind::DuplicateRelDelivery]);
}

#[test]
fn charged_clock_skew_is_not_a_violation() {
    // The shape that broke the naive time-sorted scan: a handler
    // charges simulated cost, so the install it records is *stamped*
    // t=54300 while a delivery already queued behind it is stamped
    // t=54000 — yet the install executed first (it is earlier in the
    // node's seq order). The replay must follow execution order and
    // stay clean.
    let k = key(11);
    let mut r = CheckReport::new("seeded");
    check_events(
        vec![
            ev(53_900, 0, KernelEvent::MessageSent { id: 3, key: k, remote: true }),
            // Node 1's list order (= execution order): install, then
            // delivery, despite the inverted timestamps.
            ev(54_300, 1, KernelEvent::ActorCreated { key: k }),
            ev(54_000, 1, delivered(3)),
        ],
        &mut r,
    );
    assert!(r.is_clean(), "{}", r.summary());
}

#[test]
fn truncated_traces_downgrade_absence_checks() {
    // With ring wraparound, "never sent", "never created", "never
    // answered" and "never rescanned" are unknowable — but set-based
    // duplicate checks still hold.
    let k = key(5);
    let mk = |seq: u64, ns: u64, event: KernelEvent| TraceEvent {
        time: VirtualTime::from_nanos(ns),
        node: 1,
        seq,
        span: 0,
        parent: 0,
        event,
    };
    let trace = TraceReport {
        events: vec![
            mk(10, 100, delivered(7)), // send lost to wraparound
            mk(11, 150, KernelEvent::PendingEnqueued { id: 9 }),
            mk(12, 200, KernelEvent::FirSent { key: k, to: 0 }),
            mk(13, 300, delivered(8)),
            mk(14, 350, delivered(8)), // still a hard duplicate
        ],
        dropped: 3,
        ..Default::default()
    };
    let mut r = CheckReport::new("seeded");
    check_trace(&trace, &mut r);
    assert!(r.trace_truncated);
    assert_eq!(kinds(&r), vec![ViolationKind::DoubleDelivery]);
}
