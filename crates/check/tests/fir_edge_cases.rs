//! FIR edge cases, checked end to end: real simulations (migrating
//! actors, link outages, chaos faults) whose flight-recorder traces are
//! fed through the protocol checker. The checker must hold its
//! invariants — forward chains acyclic after repeated migration,
//! duplicate chases suppressed under an outage, the birthplace repaired
//! after a chase — without false positives, sequentially and under the
//! parallel executor.

use hal::prelude::*;
use hal_kernel::{KernelEvent, LinkOutage, SimMachine};
use hal_check::{CheckReport, ViolationKind};
use hal_des::VirtualTime;
use hal_kernel::kernel::Ctx;
use std::sync::Arc;

/// Walks a fixed hop list, then reports every probe it receives.
struct Nomad {
    hops: Vec<u16>,
    probes: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("probe_delivered", Value::Int(self.probes));
                ctx.report("probed_on", Value::Int(i64::from(ctx.node())));
            }
            _ => unreachable!(),
        }
    }
}

fn empty_registry() -> Arc<BehaviorRegistry> {
    Arc::new(BehaviorRegistry::new())
}

/// Run the checker over a finished simulation and return the report.
fn checked(label: &str, r: &SimReport) -> CheckReport {
    let mut report = CheckReport::new(label);
    hal_check::check_sim_report(label, r, &mut report);
    report
}

fn assert_clean(report: &CheckReport) {
    assert!(report.is_clean(), "checker found violations:\n{}", report.summary());
}

#[test]
fn forward_chains_stay_acyclic_after_repeated_migration() {
    // A nomad walks 1 -> 2 -> 3 -> 4 -> 5; a probe from node 0 then
    // chases it through the birthplace's forward knowledge. The request
    // path may revisit nodes, but the checker must see no re-traversed
    // hop (no orbit) and a repaired table behind every reply.
    let cfg = MachineConfig::builder(6).trace().build().unwrap();
    let mut m = SimMachine::new(cfg, empty_registry());
    let nomad = m.with_ctx(1, |ctx| {
        let nomad = ctx.create_local(Box::new(Nomad { hops: vec![5, 4, 3, 2], probes: 0 }));
        ctx.send(nomad, 0, vec![]);
        nomad
    });
    let walk = m.run().unwrap();
    assert_eq!(walk.stats.get("migrations.in"), 4, "all four hops completed");

    m.with_ctx(0, |ctx| ctx.send(nomad, 1, vec![]));
    let r = m.run().unwrap();
    assert_eq!(r.value("probed_on"), Some(&Value::Int(5)), "probe caught the nomad");
    assert_clean(&checked("acyclic_after_migration", &r));
}

#[test]
fn duplicate_fir_suppression_under_link_outage() {
    // The reverse link 2 -> 1 is dead for 2ms: it eats the migration
    // announcement and then every FirFound reply, so the chase stays
    // open across watchdog re-issues. Two probes target the nomad while
    // the chase is wedged — the second must join the running chase
    // (FirSuppressed), never open a competing one, and the checker must
    // not mistake the watchdog's re-chase for a duplicate or a cycle.
    let outage_end = VirtualTime::from_nanos(2_000_000);
    let faults = FaultPlan::none().with_reliable(false).with_outage(LinkOutage {
        src: 2,
        dst: 1,
        from: VirtualTime::from_nanos(0),
        until: outage_end,
    });
    let cfg = MachineConfig::builder(3)
        .faults(faults)
        .flow_control(false)
        .trace()
        .build()
        .unwrap();
    let mut m = SimMachine::new(cfg, empty_registry());

    let nomad = m.with_ctx(1, |ctx| {
        let nomad = ctx.create_local(Box::new(Nomad { hops: vec![2], probes: 0 }));
        ctx.send(nomad, 0, vec![]);
        nomad
    });
    m.run().unwrap();

    m.with_ctx(0, |ctx| {
        ctx.send(nomad, 1, vec![]);
        ctx.send(nomad, 1, vec![]);
    });
    let r = m.run().unwrap();

    assert_eq!(r.values("probe_delivered").len(), 2, "both probes delivered exactly once");
    assert!(
        r.stats.get("fir.suppressed") >= 1,
        "second probe must have joined the running chase (suppressed = {})",
        r.stats.get("fir.suppressed")
    );
    assert!(
        r.stats.get("fir.reissued") >= 1,
        "the watchdog re-issued the wedged chase (reissued = {})",
        r.stats.get("fir.reissued")
    );
    let report = checked("suppression_under_outage", &r);
    assert!(
        !report.violations.iter().any(|v| v.kind == ViolationKind::DuplicateFirNotSuppressed),
        "watchdog re-chase misread as duplicate:\n{}",
        report.summary()
    );
    assert_clean(&report);
}

#[test]
fn birthplace_repaired_after_chase() {
    // After the walk and a successful chase, §4.3 requires the new
    // location "cached in its birthplace node as well as in the old
    // node": the trace must show the birthplace's table repaired, and
    // the checker's migration audit must agree.
    let cfg = MachineConfig::builder(4).trace().build().unwrap();
    let mut m = SimMachine::new(cfg, empty_registry());
    let nomad = m.with_ctx(1, |ctx| {
        let nomad = ctx.create_local(Box::new(Nomad { hops: vec![3, 2], probes: 0 }));
        ctx.send(nomad, 0, vec![]);
        nomad
    });
    m.run().unwrap();

    m.with_ctx(0, |ctx| ctx.send(nomad, 1, vec![]));
    let r = m.run().unwrap();
    assert_eq!(r.value("probed_on"), Some(&Value::Int(3)));

    let trace = r.trace.as_ref().expect("tracing was enabled");
    let birthplace_repairs = trace
        .events
        .iter()
        .filter(|e| {
            e.node == 1
                && matches!(&e.event,
                    KernelEvent::NameRepaired { key, node, .. }
                        if key.birthplace == 1 && *node == 3)
        })
        .count();
    assert!(
        birthplace_repairs >= 1,
        "the birthplace's name table never learned the final location"
    );
    assert_clean(&checked("birthplace_repaired", &r));
}

/// A fleet of nomads walking pseudo-random tours while a sprayer keeps
/// probes in flight — enough concurrent chases, parks, and repairs to
/// exercise every trace invariant.
fn busy_run(parallelism: usize, faults: FaultPlan) -> SimReport {
    let cfg = MachineConfig::builder(8)
        .seed(42)
        .parallelism(parallelism)
        .faults(faults)
        .trace()
        .build()
        .unwrap();
    let mut m = SimMachine::new(cfg, empty_registry());
    let nomads: Vec<_> = (0..4u16)
        .map(|i| {
            let born = 1 + (2 * i) % 7;
            m.with_ctx(born, |ctx| {
                let hops = (0..4u16).map(|h| ((i + h) * 3) % 8).collect();
                let nomad = ctx.create_local(Box::new(Nomad { hops, probes: 0 }));
                ctx.send(nomad, 0, vec![]);
                nomad
            })
        })
        .collect();
    m.run().unwrap();
    for (i, nomad) in (0u16..).zip(nomads.iter()) {
        let prober = (7 - i) % 8;
        m.with_ctx(prober, |ctx| {
            ctx.send(*nomad, 1, vec![]);
            ctx.send(*nomad, 1, vec![]);
        });
    }
    m.run().unwrap()
}

#[test]
fn clean_runs_fault_free_across_parallelism() {
    for k in [1, 7] {
        let r = busy_run(k, FaultPlan::none());
        assert_eq!(r.values("probe_delivered").len(), 8, "K={k}: every probe lands once");
        assert_clean(&checked(&format!("fault_free_k{k}"), &r));
    }
}

#[test]
fn clean_runs_under_drop_faults_across_parallelism() {
    // 10% drop/reorder (5% duplicate) with the reliable layer on: the
    // protocol invariants must hold through retransmits and holdback,
    // at K = 1 and K = 7.
    for k in [1, 7] {
        let r = busy_run(k, FaultPlan::chaos(0.10));
        assert_eq!(r.values("probe_delivered").len(), 8, "K={k}: exactly-once survived chaos");
        assert_clean(&checked(&format!("chaos10_k{k}"), &r));
    }
}
