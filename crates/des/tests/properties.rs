//! Property tests for the discrete-event engine: the total order of the
//! event queue, RNG stream independence, histogram/merge algebra.

use hal_des::{EventQueue, Histogram, Pcg32, SplitMix64, StatSet, VirtualTime};
use proptest::prelude::*;

proptest! {
    /// Pops come out sorted by time; ties preserve insertion order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(VirtualTime::from_nanos(t), i);
        }
        let mut last: Option<(VirtualTime, usize)> = None;
        let mut seen = vec![false; times.len()];
        while let Some((t, idx)) = q.pop() {
            prop_assert_eq!(t.as_nanos(), times[idx]);
            prop_assert!(!seen[idx], "event {idx} popped twice");
            seen[idx] = true;
            if let Some((lt, lidx)) = last {
                prop_assert!(lt <= t, "time order violated");
                if lt == t {
                    prop_assert!(lidx < idx, "FIFO tie-break violated");
                }
            }
            last = Some((t, idx));
        }
        prop_assert!(seen.iter().all(|&s| s), "every event popped");
    }

    /// Interleaved push/pop never loses or duplicates events.
    #[test]
    fn event_queue_interleaved(ops in prop::collection::vec((any::<bool>(), 0u64..100), 0..200)) {
        let mut q = EventQueue::new();
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for (push, t) in ops {
            if push {
                q.push(VirtualTime::from_nanos(t), ());
                pushed += 1;
            } else if q.pop().is_some() {
                popped += 1;
            }
        }
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(pushed, popped);
        prop_assert_eq!(q.scheduled_total(), pushed);
        prop_assert_eq!(q.dispatched_total(), popped);
    }

    /// SplitMix64 streams from distinct seeds diverge quickly.
    #[test]
    fn splitmix_seeds_diverge(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let mut ra = SplitMix64::new(a);
        let mut rb = SplitMix64::new(b);
        let same = (0..8).filter(|_| ra.next_u64() == rb.next_u64()).count();
        prop_assert!(same <= 1, "streams collide suspiciously often");
    }

    /// PCG bounded draws stay in range for arbitrary bounds.
    #[test]
    fn pcg_bounded(seed in any::<u64>(), stream in any::<u64>(), bound in 1u32..u32::MAX) {
        let mut rng = Pcg32::new(seed, stream);
        for _ in 0..32 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Histogram merge equals observing the union of samples.
    #[test]
    fn histogram_merge_is_union(
        xs in prop::collection::vec(any::<u32>(), 0..100),
        ys in prop::collection::vec(any::<u32>(), 0..100),
    ) {
        let mut hx = Histogram::default();
        let mut hy = Histogram::default();
        let mut hu = Histogram::default();
        for &x in &xs {
            hx.observe(x as u64);
            hu.observe(x as u64);
        }
        for &y in &ys {
            hy.observe(y as u64);
            hu.observe(y as u64);
        }
        hx.merge(&hy);
        prop_assert_eq!(hx.count(), hu.count());
        prop_assert_eq!(hx.sum(), hu.sum());
        prop_assert_eq!(hx.max(), hu.max());
    }

    /// StatSet merge is additive on counters.
    #[test]
    fn statset_merge_additive(
        a in prop::collection::vec(0usize..4, 0..50),
        b in prop::collection::vec(0usize..4, 0..50),
    ) {
        const NAMES: [&str; 4] = ["w", "x", "y", "z"];
        let mut sa = StatSet::new();
        let mut sb = StatSet::new();
        for &i in &a {
            sa.bump(NAMES[i]);
        }
        for &i in &b {
            sb.bump(NAMES[i]);
        }
        sa.merge(&sb);
        for (i, name) in NAMES.iter().enumerate() {
            let expect = a.iter().filter(|&&x| x == i).count() as u64
                + b.iter().filter(|&&x| x == i).count() as u64;
            prop_assert_eq!(sa.get(name), expect);
        }
    }
}
