//! Randomized property tests for the discrete-event engine: the total
//! order of the event queue, RNG stream independence, histogram/merge
//! algebra.
//!
//! Inputs come from the engine's own deterministic [`SplitMix64`]
//! streams (seeded per case) rather than an external property-testing
//! framework, so the suite needs no network access and each failure is
//! reproducible from the printed case number.

use hal_des::{EventQueue, Histogram, Pcg32, SplitMix64, StatSet, VirtualTime};

fn range(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + rng.next_u64() % (hi - lo)
}

/// Pops come out sorted by time; ties preserve insertion order.
#[test]
fn event_queue_total_order() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0xE0_0001 + case);
        let n = range(&mut rng, 0, 300) as usize;
        let times: Vec<u64> = (0..n).map(|_| range(&mut rng, 0, 1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(VirtualTime::from_nanos(t), i);
        }
        let mut last: Option<(VirtualTime, usize)> = None;
        let mut seen = vec![false; times.len()];
        while let Some((t, idx)) = q.pop() {
            assert_eq!(t.as_nanos(), times[idx]);
            assert!(!seen[idx], "case {case}: event {idx} popped twice");
            seen[idx] = true;
            if let Some((lt, lidx)) = last {
                assert!(lt <= t, "case {case}: time order violated");
                if lt == t {
                    assert!(lidx < idx, "case {case}: FIFO tie-break violated");
                }
            }
            last = Some((t, idx));
        }
        assert!(seen.iter().all(|&s| s), "case {case}: every event popped");
    }
}

/// Interleaved push/pop never loses or duplicates events.
#[test]
fn event_queue_interleaved() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0xE0_0002 + case);
        let n_ops = range(&mut rng, 0, 200) as usize;
        let mut q = EventQueue::new();
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for _ in 0..n_ops {
            let push = rng.next_u64() & 1 == 1;
            let t = range(&mut rng, 0, 100);
            if push {
                q.push(VirtualTime::from_nanos(t), ());
                pushed += 1;
            } else if q.pop().is_some() {
                popped += 1;
            }
        }
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(pushed, popped);
        assert_eq!(q.scheduled_total(), pushed);
        assert_eq!(q.dispatched_total(), popped);
    }
}

/// SplitMix64 streams from distinct seeds diverge quickly.
#[test]
fn splitmix_seeds_diverge() {
    let mut meta = SplitMix64::new(0xE0_0003);
    for case in 0..256u64 {
        let a = meta.next_u64();
        let b = meta.next_u64();
        if a == b {
            continue;
        }
        let mut ra = SplitMix64::new(a);
        let mut rb = SplitMix64::new(b);
        let same = (0..8).filter(|_| ra.next_u64() == rb.next_u64()).count();
        assert!(same <= 1, "case {case}: streams collide suspiciously often");
    }
}

/// PCG bounded draws stay in range for arbitrary bounds.
#[test]
fn pcg_bounded() {
    let mut meta = SplitMix64::new(0xE0_0004);
    for case in 0..256u64 {
        let seed = meta.next_u64();
        let stream = meta.next_u64();
        let bound = (meta.next_u64() as u32).max(1);
        let mut rng = Pcg32::new(seed, stream);
        for _ in 0..32 {
            assert!(rng.next_below(bound) < bound, "case {case}");
        }
    }
}

/// Histogram merge equals observing the union of samples.
#[test]
fn histogram_merge_is_union() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0xE0_0005 + case);
        let xs: Vec<u32> = (0..range(&mut rng, 0, 100)).map(|_| rng.next_u64() as u32).collect();
        let ys: Vec<u32> = (0..range(&mut rng, 0, 100)).map(|_| rng.next_u64() as u32).collect();
        let mut hx = Histogram::default();
        let mut hy = Histogram::default();
        let mut hu = Histogram::default();
        for &x in &xs {
            hx.observe(x as u64);
            hu.observe(x as u64);
        }
        for &y in &ys {
            hy.observe(y as u64);
            hu.observe(y as u64);
        }
        hx.merge(&hy);
        assert_eq!(hx.count(), hu.count(), "case {case}");
        assert_eq!(hx.sum(), hu.sum(), "case {case}");
        assert_eq!(hx.max(), hu.max(), "case {case}");
    }
}

/// StatSet merge is additive on counters.
#[test]
fn statset_merge_additive() {
    const NAMES: [&str; 4] = ["w", "x", "y", "z"];
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0xE0_0006 + case);
        let a: Vec<usize> = (0..range(&mut rng, 0, 50)).map(|_| range(&mut rng, 0, 4) as usize).collect();
        let b: Vec<usize> = (0..range(&mut rng, 0, 50)).map(|_| range(&mut rng, 0, 4) as usize).collect();
        let mut sa = StatSet::new();
        let mut sb = StatSet::new();
        for &i in &a {
            sa.bump(NAMES[i]);
        }
        for &i in &b {
            sb.bump(NAMES[i]);
        }
        sa.merge(&sb);
        for (i, name) in NAMES.iter().enumerate() {
            let expect = a.iter().filter(|&&x| x == i).count() as u64
                + b.iter().filter(|&&x| x == i).count() as u64;
            assert_eq!(sa.get(name), expect, "case {case}: counter {name}");
        }
    }
}
