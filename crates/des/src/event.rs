//! Time-ordered event queue with deterministic tie-breaking.
//!
//! The entire multicomputer simulation is driven from one of these queues:
//! network packet arrivals, node wake-ups, and timer expirations are all
//! events. Determinism is essential — the benchmark harness reruns the
//! same seed and must observe bit-identical virtual times — so ties at the
//! same timestamp are broken by insertion order (a monotone sequence
//! number), never by heap internals.

use crate::clock::VirtualTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue ordered by `(VirtualTime, insertion sequence)`.
///
/// `E` is the caller's event payload; the queue imposes no trait bounds on
/// it beyond what `BinaryHeap` needs internally (payloads never compare).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
}

struct Entry<E> {
    time: VirtualTime,
    seq: u64,
    payload: E,
}

// Manual impls: order entries by (time, seq) ascending; the payload is
// deliberately excluded so `E` needs no Ord bound. `BinaryHeap` is a
// max-heap, so comparisons are reversed.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
        }
    }

    /// An empty queue with pre-allocated capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            popped: 0,
        }
    }

    /// Schedule `payload` to fire at `time`.
    ///
    /// Events pushed with equal times pop in push order (FIFO), which makes
    /// per-link network FIFO ordering fall out naturally.
    #[inline]
    pub fn push(&mut self, time: VirtualTime, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Schedule `payload` at `time` under a caller-supplied sequence
    /// number.
    ///
    /// This is the re-insertion path for executors that split one global
    /// queue across shards: the original global sequence numbers must be
    /// preserved so that `(time, seq)` ordering — and therefore FIFO
    /// tie-breaking — is identical no matter how the queue was sharded.
    /// The internal counter is advanced past `seq` so later [`push`]
    /// calls stay unique.
    ///
    /// [`push`]: EventQueue::push
    #[inline]
    pub fn push_at(&mut self, time: VirtualTime, seq: u64, payload: E) {
        self.seq = self.seq.max(seq + 1);
        self.heap.push(Entry { time, seq, payload });
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.payload))
    }

    /// Remove the earliest event together with its sequence number.
    #[inline]
    pub fn pop_seq(&mut self) -> Option<(VirtualTime, u64, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.seq, e.payload))
    }

    /// Timestamp of the earliest pending event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// `(time, seq)` of the earliest pending event without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(VirtualTime, u64)> {
        self.heap.peek().map(|e| (e.time, e.seq))
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// Total number of events ever dispatched (diagnostics).
    pub fn dispatched_total(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualTime as T;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(T::from_nanos(30), "c");
        q.push(T::from_nanos(10), "a");
        q.push(T::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(T::from_nanos(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.push(T::from_nanos(2), "t2-first");
        q.push(T::from_nanos(1), "t1");
        q.push(T::from_nanos(2), "t2-second");
        assert_eq!(q.pop().unwrap().1, "t1");
        assert_eq!(q.pop().unwrap().1, "t2-first");
        assert_eq!(q.pop().unwrap().1, "t2-second");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(T::from_nanos(7), ());
        q.push(T::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(T::from_nanos(3)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn push_at_preserves_external_sequence_order() {
        // Distribute a FIFO burst across two "shard" queues and re-merge:
        // the original global order must survive.
        let mut global = EventQueue::new();
        for i in 0..10 {
            global.push(T::from_nanos(5), i);
        }
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        while let Some((t, s, p)) = global.pop_seq() {
            if p % 2 == 0 {
                a.push_at(t, s, p);
            } else {
                b.push_at(t, s, p);
            }
        }
        let mut merged = EventQueue::new();
        for q in [&mut a, &mut b] {
            while let Some((t, s, p)) = q.pop_seq() {
                merged.push_at(t, s, p);
            }
        }
        let order: Vec<_> = std::iter::from_fn(|| merged.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
        // New auto-seq pushes stay unique after push_at.
        merged.push(T::from_nanos(5), 100);
        merged.push(T::from_nanos(5), 101);
        assert_eq!(merged.pop().unwrap().1, 100);
        assert_eq!(merged.pop().unwrap().1, 101);
    }

    #[test]
    fn peek_reports_time_and_seq() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek(), None);
        q.push(T::from_nanos(9), "x");
        q.push(T::from_nanos(4), "y");
        let (t, s) = q.peek().unwrap();
        assert_eq!(t, T::from_nanos(4));
        assert_eq!(s, 1);
        assert_eq!(q.pop_seq().unwrap(), (T::from_nanos(4), 1, "y"));
    }

    #[test]
    fn counters_track_throughput() {
        let mut q = EventQueue::new();
        q.push(T::ZERO, ());
        q.push(T::ZERO, ());
        let _ = q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.dispatched_total(), 1);
    }
}
