//! Virtual time for the discrete-event multicomputer simulation.
//!
//! The paper reports runtime-primitive costs in microseconds on 33 MHz
//! SPARC nodes (Table 2). We keep virtual time in **integer nanoseconds**
//! so that cost-model arithmetic is exact and the simulation is
//! deterministic across hosts (no floating-point accumulation).

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in nanoseconds since simulation start.
///
/// `VirtualTime` is a totally ordered, copyable scalar. All simulation
/// events are stamped with one; ties are broken by a monotone sequence
/// number inside [`crate::event::EventQueue`], never by wall clock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(u64);

/// A span of virtual time (also integer nanoseconds).
///
/// Separate from [`VirtualTime`] so that the type system distinguishes
/// *instants* from *durations*: you can add a `VirtualDuration` to a
/// `VirtualTime` but not two instants together.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualDuration(u64);

impl VirtualTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        VirtualTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating), the paper's reporting unit.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds, for table output.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional microseconds, for table output.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self` — that always indicates a
    /// causality bug in the simulation, so we fail loudly.
    #[inline]
    pub fn since(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("VirtualTime::since: `earlier` is in the future"),
        )
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl VirtualDuration {
    /// A zero-length span.
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        VirtualDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        VirtualDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        VirtualDuration(ms * 1_000_000)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scale by an integer factor (e.g. per-byte network cost × length).
    #[inline]
    pub const fn scaled(self, factor: u64) -> VirtualDuration {
        VirtualDuration(self.0 * factor)
    }

    /// Saturating addition of two spans.
    #[inline]
    pub const fn saturating_add(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_add(other.0))
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, rhs: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    #[inline]
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 += rhs.0;
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualDuration {
    #[inline]
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtualTime {
    type Output = VirtualDuration;
    #[inline]
    fn sub(self, rhs: VirtualTime) -> VirtualDuration {
        self.since(rhs)
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_advances_time() {
        let t = VirtualTime::from_nanos(100);
        let t2 = t + VirtualDuration::from_nanos(50);
        assert_eq!(t2.as_nanos(), 150);
    }

    #[test]
    fn since_measures_elapsed() {
        let a = VirtualTime::from_nanos(1_000);
        let b = VirtualTime::from_nanos(4_500);
        assert_eq!(b.since(a).as_nanos(), 3_500);
        assert_eq!((b - a).as_nanos(), 3_500);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_causality_violation() {
        let a = VirtualTime::from_nanos(10);
        let b = VirtualTime::from_nanos(5);
        let _ = b.since(a);
    }

    #[test]
    fn micros_conversions_are_exact() {
        let d = VirtualDuration::from_micros(5);
        assert_eq!(d.as_nanos(), 5_000);
        let t = VirtualTime::from_nanos(20_830); // paper: 20.83 us actual remote creation
        assert_eq!(t.as_micros(), 20);
        assert!((t.as_micros_f64() - 20.83).abs() < 1e-9);
    }

    #[test]
    fn scaled_multiplies() {
        let per_byte = VirtualDuration::from_nanos(8);
        assert_eq!(per_byte.scaled(1024).as_nanos(), 8 * 1024);
    }

    #[test]
    fn max_picks_later() {
        let a = VirtualTime::from_nanos(10);
        let b = VirtualTime::from_nanos(20);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn display_formats_microseconds() {
        let t = VirtualTime::from_nanos(5_830);
        assert_eq!(format!("{t}"), "5.830us");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(VirtualTime::from_nanos(1) < VirtualTime::from_nanos(2));
        assert!(VirtualDuration::from_nanos(1) < VirtualDuration::from_micros(1));
    }
}
