//! Lightweight counters and histograms for simulation diagnostics.
//!
//! Every experiment in the paper's evaluation is ultimately a table of
//! times plus derived quantities (MFLOPS, actor counts). The kernels and
//! the network layer record raw facts — messages sent, FIR hops, bulk
//! grants, actors created — into a `StatSet`, which the bench harnesses
//! read back. Counters are plain `u64`s keyed by static names: the
//! recording path is a `HashMap` bump, cheap enough for hot paths in a
//! simulator.

use std::collections::BTreeMap;
use std::fmt;

/// A named set of counters and log2-bucketed histograms.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct StatSet {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl StatSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (creating it at zero first).
    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Increment counter `name` by one.
    #[inline]
    pub fn bump(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record `value` into histogram `name`.
    #[inline]
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// Read back a histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order (stable output for goldens).
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Merge another set into this one (counters add, histograms merge).
    pub fn merge(&mut self, other: &StatSet) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }
}

impl fmt::Debug for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_map();
        for (k, v) in &self.counters {
            d.entry(k, v);
        }
        d.finish()
    }
}

/// A histogram with power-of-two buckets: bucket `i` counts values `v`
/// with `2^(i-1) <= v < 2^i` (bucket 0 counts zeros and ones).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        let idx = 64 - value.leading_zeros() as usize; // 0 for v==0, 1 for v==1, ...
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw log2 bucket counts: bucket `i` counts values `v` with
    /// `2^(i-1) <= v < 2^i` (bucket 0 counts zeros). Exposed so
    /// exporters (spans/metrics JSON) can serialize the distribution,
    /// not just its moments.
    pub fn bucket_counts(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = StatSet::new();
        s.bump("msgs");
        s.add("msgs", 4);
        assert_eq!(s.get("msgs"), 5);
        assert_eq!(s.get("never"), 0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = StatSet::new();
        a.add("x", 2);
        a.observe("h", 8);
        let mut b = StatSet::new();
        b.add("x", 3);
        b.add("y", 1);
        b.observe("h", 16);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 24);
    }

    #[test]
    fn counter_iteration_is_sorted() {
        let mut s = StatSet::new();
        s.bump("zeta");
        s.bump("alpha");
        let names: Vec<_> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
