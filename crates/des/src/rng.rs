//! Small deterministic RNGs for the simulation.
//!
//! The simulator must be bit-reproducible for a fixed seed, independent of
//! the `rand` crate's version or platform, so the engine carries its own
//! tiny generators: SplitMix64 (for seeding / stream splitting) and PCG32
//! (for per-node streams such as the random-polling load balancer of
//! paper §7.2). Both are well-known public-domain algorithms.

/// SplitMix64 — used to expand one user seed into many well-distributed
/// sub-seeds (one per node, per subsystem).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG32 (XSH-RR 64/32) — fast, small-state generator for simulation
/// decision streams.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Create a generator from a seed and a stream id. Distinct stream ids
    /// give statistically independent sequences for the same seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        let _ = rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        let _ = rng.next_u32();
        rng
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64-bit value (two 32-bit draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform value in `0..bound` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "Pcg32::next_below: bound must be positive");
        // Lemire's nearly-divisionless method.
        let mut m = (self.next_u32() as u64) * (bound as u64);
        let mut lo = m as u32;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = (self.next_u32() as u64) * (bound as u64);
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform choice of one element index from `0..len`, or `None` if the
    /// range is empty. Convenience for victim selection.
    #[inline]
    pub fn choose_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.next_below(len as u32) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_by_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn pcg_is_deterministic_per_stream() {
        let mut a = Pcg32::new(7, 3);
        let mut b = Pcg32::new(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = Pcg32::new(7, 4);
        let first_a = Pcg32::new(7, 3).next_u32();
        assert_ne!(first_a, c.next_u32());
    }

    #[test]
    fn next_below_stays_in_bounds_and_covers() {
        let mut rng = Pcg32::new(123, 0);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Pcg32::new(99, 1);
        for _ in 0..1_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn choose_index_handles_empty() {
        let mut rng = Pcg32::new(5, 5);
        assert_eq!(rng.choose_index(0), None);
        assert_eq!(rng.choose_index(1), Some(0));
        assert!(rng.choose_index(10).unwrap() < 10);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Pcg32::new(0, 0).next_below(0);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = Pcg32::new(2024, 0);
        let n = 100_000;
        let buckets = 10u32;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[rng.next_below(buckets) as usize] += 1;
        }
        let expect = n / buckets;
        for &c in &counts {
            assert!(
                (c as i64 - expect as i64).abs() < (expect as i64) / 10,
                "bucket count {c} too far from {expect}"
            );
        }
    }
}
