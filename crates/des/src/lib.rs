//! # hal-des — deterministic discrete-event simulation engine
//!
//! The substrate that stands in for the Thinking Machines **CM-5** in this
//! reproduction of Kim & Agha, *Efficient Support of Location Transparency
//! in Concurrent Object-Oriented Programming Languages* (SC '95).
//!
//! The paper's evaluation ran on real CM-5 partitions (33 MHz SPARC nodes,
//! a fat-tree network, and the CMAM active-message layer). We do not have
//! that hardware, so the benchmark substrate is a discrete-event simulator:
//!
//! * [`clock::VirtualTime`] — integer-nanosecond virtual clocks, one per
//!   simulated node;
//! * [`event::EventQueue`] — a total ordering over simulation events with
//!   deterministic FIFO tie-breaking;
//! * [`rng`] — tiny self-contained deterministic RNGs (SplitMix64, PCG32)
//!   so that runs are bit-reproducible for a fixed seed;
//! * [`stats`] — counters/histograms the bench harnesses read back.
//!
//! The actor kernel (`hal-kernel`) charges each runtime primitive a cost
//! from a CM-5-calibrated cost model against its node's virtual clock, and
//! the network layer (`hal-am`) schedules packet deliveries through the
//! event queue. The resulting virtual times reproduce the *shape* of the
//! paper's tables deterministically on a single host CPU.

#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod rng;
pub mod stats;

pub use clock::{VirtualDuration, VirtualTime};
pub use event::EventQueue;
pub use rng::{Pcg32, SplitMix64};
pub use stats::{Histogram, StatSet};
