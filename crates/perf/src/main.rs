//! `hal-perf` — summarize host-time profiles and gate perf artifacts.
//!
//! ```bash
//! hal-perf summarize results/PROF_table4_fib.json [...]
//! hal-perf diff --baselines results/baselines --fresh scratch/results \
//!          [--max-drop 0.75] [--max-stall-rise 0.30] [--no-sim-exact]
//! ```
//!
//! `diff` exits nonzero when any regression is found — `ci.sh`'s
//! `perf-gate` step is built on that.

use hal_perf::{diff_dirs, stall_frac_means, summarize_prof, Json, Thresholds};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage:
  hal-perf summarize <PROF_file.json>...
  hal-perf diff --baselines <dir> --fresh <dir> [--max-drop X] [--max-stall-rise X] \
[--max-speedup-drop X] [--no-sim-exact]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("summarize") => summarize(&args[1..]),
        Some("diff") => diff(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn summarize(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for (i, path) in files.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let summary = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| Json::parse(&s))
            .and_then(|doc| summarize_prof(&doc));
        match summary {
            Ok(s) => print!("{s}"),
            Err(e) => {
                eprintln!("hal-perf: {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn diff(args: &[String]) -> ExitCode {
    let mut baselines: Option<PathBuf> = None;
    let mut fresh: Option<PathBuf> = None;
    let mut thr = Thresholds::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| panic!("{flag} needs a value\n{USAGE}"))
        };
        match a.as_str() {
            "--baselines" => baselines = Some(PathBuf::from(val("--baselines"))),
            "--fresh" => fresh = Some(PathBuf::from(val("--fresh"))),
            "--max-drop" => {
                thr.max_drop = val("--max-drop").parse().expect("--max-drop: a fraction in [0,1)")
            }
            "--max-stall-rise" => {
                thr.max_stall_rise = val("--max-stall-rise")
                    .parse()
                    .expect("--max-stall-rise: a fraction in [0,1)")
            }
            "--max-speedup-drop" => {
                thr.max_speedup_drop = val("--max-speedup-drop")
                    .parse()
                    .expect("--max-speedup-drop: a fraction in [0,1)")
            }
            "--no-sim-exact" => thr.sim_exact = false,
            other => {
                eprintln!("hal-perf: unknown flag {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(baselines), Some(fresh)) = (baselines, fresh) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let regs = diff_dirs(&baselines, &fresh, &thr);
    if regs.is_empty() {
        // Stall movement is the ROADMAP's headline number — show where
        // it went even when nothing trips a threshold.
        let stall = match stall_frac_means(&baselines, &fresh) {
            Some((b, f)) => format!(", stall_frac mean {b:.3} -> {f:.3} ({:+.3})", f - b),
            None => String::new(),
        };
        println!(
            "perf gate: OK — {} vs {} (max_drop={:.2}, max_stall_rise={:.2}, \
             max_speedup_drop={:.2}, sim_exact={}){stall}",
            fresh.display(),
            baselines.display(),
            thr.max_drop,
            thr.max_stall_rise,
            thr.max_speedup_drop,
            thr.sim_exact
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("perf gate: {} regression(s) vs {}:", regs.len(), baselines.display());
        for r in &regs {
            eprintln!("  REGRESSION {r}");
        }
        ExitCode::FAILURE
    }
}
