//! # hal-perf — perf-artifact summarizing and regression gating
//!
//! The benchmark bins leave two artifact families behind:
//!
//! * `BENCH_<bin>.json` — per-run virtual time, event counts, and host
//!   throughput (`events_per_sec`);
//! * `PROF_<bin>.json` — the host-time executor profile (where the wall
//!   milliseconds went: coordinated-boundary stall, fused-boundary sync,
//!   injection staging, execution, queue maintenance), written under
//!   `--prof`/`HAL_PROF`.
//!
//! This crate reads both (with its own dependency-free JSON parser — the
//! workspace has no serde) and provides the two operations the `hal-perf`
//! binary and `ci.sh`'s `perf-gate` step are built on:
//!
//! * [`summarize_prof`] — reduce a `PROF_` file to a phase breakdown per
//!   run, naming the top overhead source;
//! * [`diff_dirs`] — compare fresh artifacts against committed baselines
//!   under `results/baselines/` with per-metric thresholds
//!   ([`Thresholds`]), returning the list of [`Regression`]s.
//!
//! The comparison philosophy matches the repo's determinism split:
//! virtual facts (`events`, `virtual_ns`) are deterministic, so any
//! drift is a correctness change and is flagged **exactly**; host facts
//! (`events_per_sec`, stall fractions) are noisy — especially on the
//! 1-core CI container — so they get generous ratio thresholds that only
//! catch order-of-magnitude rot, not jitter.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

// ---------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers are kept as `f64` — every artifact
/// number this crate compares fits without precision loss at the
/// tolerances involved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.i
            )),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            fields.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at offset {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at offset {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (artifacts contain em
                    // dashes and arrows in labels).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|e| format!("invalid utf-8 in string: {e}"))?;
                    let c = rest.chars().next().ok_or("empty")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at offset {start}: {e}"))
    }
}

// ---------------------------------------------------------------------
// Regression gating
// ---------------------------------------------------------------------

/// Per-metric thresholds for [`diff_dirs`]. The defaults are tuned for
/// the 1-core CI container, where host throughput can swing wildly
/// between runs: only order-of-magnitude rot trips the gate.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Maximum tolerated fractional drop in `events_per_sec` versus the
    /// baseline (`0.75` = fail only below 25% of baseline throughput).
    pub max_drop: f64,
    /// Maximum tolerated absolute rise in a `PROF_` run's stall, sync,
    /// or other fraction (e.g. `0.30` = stall may grow by 30 percentage
    /// points of shard wall time before failing).
    pub max_stall_rise: f64,
    /// Maximum tolerated fractional drop in a `BENCH_repro_all.json`
    /// bin's sequential-vs-parallel speedup versus baseline (`0.20` =
    /// fail when a bin's fresh speedup falls below 80% of its baseline
    /// speedup).
    pub max_speedup_drop: f64,
    /// Compare the deterministic virtual facts (`events`, `virtual_ns`)
    /// exactly. Drift there is a simulation-semantics change, not noise.
    /// Documents or runs tagged `"backend": "live"` are exempt — their
    /// `virtual_ns` is host time and never reproduces exactly.
    pub sim_exact: bool,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            max_drop: 0.75,
            max_stall_rise: 0.30,
            max_speedup_drop: 0.20,
            sim_exact: true,
        }
    }
}

/// One detected regression (or comparison failure).
#[derive(Clone, Debug)]
pub struct Regression {
    /// Artifact file name (e.g. `BENCH_table4_fib.json`).
    pub artifact: String,
    /// Run label inside the artifact, or `"<file>"` for file-level
    /// problems.
    pub run: String,
    /// Metric that tripped.
    pub metric: String,
    /// Baseline value (display form).
    pub baseline: String,
    /// Fresh value (display form).
    pub fresh: String,
    /// What rule failed.
    pub detail: String,
}

impl Regression {
    fn file(artifact: &str, detail: impl Into<String>) -> Self {
        Regression {
            artifact: artifact.to_string(),
            run: "<file>".to_string(),
            metric: "artifact".to_string(),
            baseline: String::new(),
            fresh: String::new(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.baseline.is_empty() && self.fresh.is_empty() {
            write!(f, "{} [{}] {}: {}", self.artifact, self.run, self.metric, self.detail)
        } else {
            write!(
                f,
                "{} [{}] {}: baseline {} -> fresh {} ({})",
                self.artifact, self.run, self.metric, self.baseline, self.fresh, self.detail
            )
        }
    }
}

fn runs_by_label(doc: &Json) -> BTreeMap<String, Json> {
    let mut map = BTreeMap::new();
    if let Some(runs) = doc.get("runs").and_then(Json::as_arr) {
        for r in runs {
            if let Some(label) = r.get("label").and_then(Json::as_str) {
                map.insert(label.to_string(), r.clone());
            }
        }
    }
    map
}

fn num(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_f64)
}

/// True when a `BENCH_` document (or one run inside it) came from the
/// live backend. Live runs carry host-time facts in `virtual_ns`, so
/// exact comparison against a (simulated) baseline is meaningless and
/// the gate falls back to the throughput thresholds only.
fn is_live(doc: &Json) -> bool {
    doc.get("backend").and_then(Json::as_str) == Some("live")
}

/// Compare one fresh `BENCH_` document against its baseline.
pub fn diff_bench(artifact: &str, baseline: &Json, fresh: &Json, thr: &Thresholds) -> Vec<Regression> {
    let mut out = Vec::new();
    let sim_exact = thr.sim_exact && !is_live(baseline) && !is_live(fresh);
    let base_runs = runs_by_label(baseline);
    let fresh_runs = runs_by_label(fresh);
    for (label, b) in &base_runs {
        let Some(f) = fresh_runs.get(label) else {
            out.push(Regression {
                artifact: artifact.to_string(),
                run: label.clone(),
                metric: "run".to_string(),
                baseline: "present".to_string(),
                fresh: "missing".to_string(),
                detail: "baseline run disappeared from the fresh artifact".to_string(),
            });
            continue;
        };
        if sim_exact && !is_live(b) && !is_live(f) {
            for metric in ["events", "virtual_ns"] {
                let (bv, fv) = (num(b, metric), num(f, metric));
                if bv != fv {
                    out.push(Regression {
                        artifact: artifact.to_string(),
                        run: label.clone(),
                        metric: metric.to_string(),
                        baseline: format!("{}", bv.unwrap_or(f64::NAN)),
                        fresh: format!("{}", fv.unwrap_or(f64::NAN)),
                        detail: "deterministic virtual fact changed (exact match required)"
                            .to_string(),
                    });
                }
            }
        }
        if let (Some(bv), Some(fv)) = (num(b, "events_per_sec"), num(f, "events_per_sec")) {
            if bv > 0.0 && fv < bv * (1.0 - thr.max_drop) {
                out.push(Regression {
                    artifact: artifact.to_string(),
                    run: label.clone(),
                    metric: "events_per_sec".to_string(),
                    baseline: format!("{bv:.0}"),
                    fresh: format!("{fv:.0}"),
                    detail: format!(
                        "throughput fell below {:.0}% of baseline",
                        100.0 * (1.0 - thr.max_drop)
                    ),
                });
            }
        }
    }
    if let (Some(bv), Some(fv)) = (
        num(baseline, "total_events_per_sec"),
        num(fresh, "total_events_per_sec"),
    ) {
        if bv > 0.0 && fv < bv * (1.0 - thr.max_drop) {
            out.push(Regression {
                artifact: artifact.to_string(),
                run: "<total>".to_string(),
                metric: "total_events_per_sec".to_string(),
                baseline: format!("{bv:.0}"),
                fresh: format!("{fv:.0}"),
                detail: format!(
                    "total throughput fell below {:.0}% of baseline",
                    100.0 * (1.0 - thr.max_drop)
                ),
            });
        }
    }
    out
}

/// Compare one fresh `PROF_` document against its baseline: the stall
/// and other (unattributed) fractions may not *rise* by more than
/// [`Thresholds::max_stall_rise`] absolute. Falling is always fine —
/// that's the direction the ROADMAP wants.
pub fn diff_prof(artifact: &str, baseline: &Json, fresh: &Json, thr: &Thresholds) -> Vec<Regression> {
    let mut out = Vec::new();
    let base_runs = runs_by_label(baseline);
    let fresh_runs = runs_by_label(fresh);
    for (label, b) in &base_runs {
        let Some(f) = fresh_runs.get(label) else {
            out.push(Regression {
                artifact: artifact.to_string(),
                run: label.clone(),
                metric: "run".to_string(),
                baseline: "present".to_string(),
                fresh: "missing".to_string(),
                detail: "baseline run disappeared from the fresh artifact".to_string(),
            });
            continue;
        };
        let totals = |v: &Json| v.get("prof").and_then(|p| p.get("totals")).cloned();
        let (Some(bt), Some(ft)) = (totals(b), totals(f)) else {
            continue;
        };
        // `sync_frac` is absent from profiles written before fused
        // windows existed — the `if let` skips the comparison gracefully
        // for such baselines instead of failing the gate.
        for metric in ["stall_frac", "sync_frac", "other_frac"] {
            if let (Some(bv), Some(fv)) = (num(&bt, metric), num(&ft, metric)) {
                if fv > bv + thr.max_stall_rise {
                    out.push(Regression {
                        artifact: artifact.to_string(),
                        run: label.clone(),
                        metric: metric.to_string(),
                        baseline: format!("{bv:.3}"),
                        fresh: format!("{fv:.3}"),
                        detail: format!(
                            "overhead fraction rose by more than {:.0} points",
                            100.0 * thr.max_stall_rise
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Wall-clock floor below which per-bin speedup comparisons are
/// skipped. A leg that finishes in a few milliseconds is dominated by
/// process start-up and timer noise on the CI container, and its
/// sequential/parallel ratio carries no signal.
pub const SPEEDUP_MIN_WALL_MS: f64 = 20.0;

/// Compare the sequential-vs-parallel speedup table
/// (`BENCH_repro_all.json`, per-bin rows under `bins`): a bin whose
/// fresh speedup falls more than [`Thresholds::max_speedup_drop`]
/// below its baseline speedup regressed the parallel executor, even if
/// raw throughput still clears the generous `max_drop` budget. Rows
/// where either side's sequential wall is under [`SPEEDUP_MIN_WALL_MS`]
/// are skipped (dead band for timer noise).
pub fn diff_speedup(
    artifact: &str,
    baseline: &Json,
    fresh: &Json,
    thr: &Thresholds,
) -> Vec<Regression> {
    let mut out = Vec::new();
    let rows = |doc: &Json| -> BTreeMap<String, Json> {
        let mut m = BTreeMap::new();
        if let Some(bins) = doc.get("bins").and_then(Json::as_arr) {
            for b in bins {
                if let Some(name) = b.get("bin").and_then(Json::as_str) {
                    m.insert(name.to_string(), b.clone());
                }
            }
        }
        m
    };
    let fresh_rows = rows(fresh);
    for (bin, b) in rows(baseline) {
        let Some(f) = fresh_rows.get(&bin) else {
            out.push(Regression {
                artifact: artifact.to_string(),
                run: bin.clone(),
                metric: "bin".to_string(),
                baseline: "present".to_string(),
                fresh: "missing".to_string(),
                detail: "baseline bin disappeared from the fresh speedup table".to_string(),
            });
            continue;
        };
        let walls = [
            num(&b, "seq_wall_ms"),
            num(&b, "par_wall_ms"),
            num(f, "seq_wall_ms"),
            num(f, "par_wall_ms"),
        ];
        if walls.iter().any(|w| w.unwrap_or(0.0) < SPEEDUP_MIN_WALL_MS) {
            continue;
        }
        if let (Some(bv), Some(fv)) = (num(&b, "speedup"), num(f, "speedup")) {
            if bv > 0.0 && fv < bv * (1.0 - thr.max_speedup_drop) {
                out.push(Regression {
                    artifact: artifact.to_string(),
                    run: bin,
                    metric: "speedup".to_string(),
                    baseline: format!("{bv:.3}"),
                    fresh: format!("{fv:.3}"),
                    detail: format!(
                        "parallel speedup fell below {:.0}% of baseline",
                        100.0 * (1.0 - thr.max_speedup_drop)
                    ),
                });
            }
        }
    }
    if let (Some(bv), Some(fv)) = (num(baseline, "total_speedup"), num(fresh, "total_speedup")) {
        let big_enough = num(baseline, "total_seq_wall_ms").unwrap_or(0.0) >= SPEEDUP_MIN_WALL_MS
            && num(fresh, "total_seq_wall_ms").unwrap_or(0.0) >= SPEEDUP_MIN_WALL_MS;
        if big_enough && bv > 0.0 && fv < bv * (1.0 - thr.max_speedup_drop) {
            out.push(Regression {
                artifact: artifact.to_string(),
                run: "<total>".to_string(),
                metric: "total_speedup".to_string(),
                baseline: format!("{bv:.3}"),
                fresh: format!("{fv:.3}"),
                detail: format!(
                    "total parallel speedup fell below {:.0}% of baseline",
                    100.0 * (1.0 - thr.max_speedup_drop)
                ),
            });
        }
    }
    out
}

/// Mean `stall_frac` across every profiled run in one `PROF_` document
/// (unweighted — every run is one data point). `None` when the file has
/// no run with a stall fraction.
fn mean_stall_frac(doc: &Json) -> Option<f64> {
    let runs = doc.get("runs").and_then(Json::as_arr)?;
    let vals: Vec<f64> = runs
        .iter()
        .filter_map(|r| r.get("prof").and_then(|p| p.get("totals")))
        .filter_map(|t| num(t, "stall_frac"))
        .collect();
    if vals.is_empty() {
        return None;
    }
    Some(vals.iter().sum::<f64>() / vals.len() as f64)
}

/// The mean stall fraction across every `PROF_*.json` present in
/// *both* directories: `(baseline mean, fresh mean)`. The perf gate
/// prints the delta on its PASS line so stall movement stays visible
/// even when nothing trips a threshold. `None` when no comparable
/// profile pair exists.
pub fn stall_frac_means(baseline_dir: &Path, fresh_dir: &Path) -> Option<(f64, f64)> {
    let entries = std::fs::read_dir(baseline_dir).ok()?;
    let (mut bsum, mut fsum, mut n) = (0.0f64, 0.0f64, 0u32);
    for name in entries
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| {
            n.starts_with("PROF_")
                && std::path::Path::new(n)
                    .extension()
                    .is_some_and(|ext| ext.eq_ignore_ascii_case("json"))
                && !n.ends_with("_hosttrace.json")
        })
    {
        let parse = |p: &Path| {
            std::fs::read_to_string(p)
                .ok()
                .and_then(|s| Json::parse(&s).ok())
        };
        let (Some(b), Some(f)) = (parse(&baseline_dir.join(&name)), parse(&fresh_dir.join(&name)))
        else {
            continue;
        };
        if let (Some(bm), Some(fm)) = (mean_stall_frac(&b), mean_stall_frac(&f)) {
            bsum += bm;
            fsum += fm;
            n += 1;
        }
    }
    if n == 0 {
        return None;
    }
    Some((bsum / f64::from(n), fsum / f64::from(n)))
}

/// Diff every `BENCH_*.json` / `PROF_*.json` baseline in `baseline_dir`
/// against its counterpart in `fresh_dir`. A baseline without a fresh
/// counterpart, or either side failing to parse, is itself a
/// regression — the gate must not silently pass on missing data.
/// `PROF_*_hosttrace.json` files (Chrome traces) are skipped.
pub fn diff_dirs(baseline_dir: &Path, fresh_dir: &Path, thr: &Thresholds) -> Vec<Regression> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(baseline_dir) {
        Ok(d) => d,
        Err(e) => {
            return vec![Regression::file(
                &baseline_dir.display().to_string(),
                format!("cannot read baseline directory: {e}"),
            )]
        }
    };
    let mut names: Vec<String> = entries
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| {
            (n.starts_with("BENCH_") || n.starts_with("PROF_"))
                && std::path::Path::new(n)
                    .extension()
                    .is_some_and(|ext| ext.eq_ignore_ascii_case("json"))
                && !n.ends_with("_hosttrace.json")
        })
        .collect();
    names.sort();
    if names.is_empty() {
        out.push(Regression::file(
            &baseline_dir.display().to_string(),
            "no BENCH_/PROF_ baselines found",
        ));
        return out;
    }
    for name in names {
        let base_path = baseline_dir.join(&name);
        let fresh_path = fresh_dir.join(&name);
        let baseline = match std::fs::read_to_string(&base_path)
            .map_err(|e| e.to_string())
            .and_then(|s| Json::parse(&s))
        {
            Ok(v) => v,
            Err(e) => {
                out.push(Regression::file(&name, format!("baseline unreadable: {e}")));
                continue;
            }
        };
        let fresh = match std::fs::read_to_string(&fresh_path)
            .map_err(|e| e.to_string())
            .and_then(|s| Json::parse(&s))
        {
            Ok(v) => v,
            Err(e) => {
                out.push(Regression::file(
                    &name,
                    format!("fresh artifact missing or unreadable ({}): {e}", fresh_path.display()),
                ));
                continue;
            }
        };
        if name.starts_with("BENCH_") {
            // The repro_all sweep writes a speedup table (`bins` rows)
            // instead of per-run throughput — route it to the speedup
            // check. Plain bench records keep the throughput diff.
            if baseline.get("bins").is_some() {
                out.extend(diff_speedup(&name, &baseline, &fresh, thr));
            } else {
                out.extend(diff_bench(&name, &baseline, &fresh, thr));
            }
        } else {
            out.extend(diff_prof(&name, &baseline, &fresh, thr));
        }
    }
    out
}

// ---------------------------------------------------------------------
// PROF summarizing
// ---------------------------------------------------------------------

/// Render a `PROF_<bin>.json` document as a per-run phase breakdown,
/// naming the top overhead source of each run — `hal-perf summarize`.
pub fn summarize_prof(doc: &Json) -> Result<String, String> {
    let bench = doc.get("bench").and_then(Json::as_str).unwrap_or("?");
    let cores = doc.get("host_cores").and_then(Json::as_f64).unwrap_or(0.0);
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("PROF file has no runs array")?;
    let mut out = format!("{bench}: {} profiled run(s), host_cores={cores:.0}\n", runs.len());
    let _ = writeln!(
        out,
        "{:<44} {:>4} {:>9} {:>7} {:>6} {:>7} {:>7} {:>7} {:>7}  top",
        "run", "k", "wall(ms)", "stall%", "sync%", "inject%", "exec%", "queue%", "other%"
    );
    for r in runs {
        let label = r.get("label").and_then(Json::as_str).unwrap_or("?");
        let p = r.get("prof").ok_or("run without prof object")?;
        let t = p.get("totals").ok_or("prof without totals")?;
        let k = p.get("k").and_then(Json::as_f64).unwrap_or(0.0);
        let wall = p.get("wall_ns").and_then(Json::as_f64).unwrap_or(0.0) / 1e6;
        let pct = |m: &str| 100.0 * num(t, m).unwrap_or(0.0);
        let top = t.get("top_overhead").and_then(Json::as_str).unwrap_or("?");
        let top_frac = 100.0 * num(t, "top_overhead_frac").unwrap_or(0.0);
        let mut l = label.to_string();
        if l.chars().count() > 44 {
            l = l.chars().take(41).collect::<String>() + "...";
        }
        let _ = writeln!(
            out,
            "{l:<44} {k:>4.0} {wall:>9.3} {:>7.1} {:>6.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}  {top} ({top_frac:.1}%)",
            pct("stall_frac"),
            pct("sync_frac"),
            pct("inject_frac"),
            pct("execute_frac"),
            pct("queue_frac"),
            pct("other_frac"),
        );
    }
    // Whole-file verdict: the phase that dominates overhead across runs,
    // weighted by shard wall time.
    let mut sums: BTreeMap<&str, f64> = BTreeMap::new();
    let mut wall_total = 0.0;
    for r in runs {
        let Some(t) = r.get("prof").and_then(|p| p.get("totals")) else {
            continue;
        };
        let w = num(t, "wall_ns").unwrap_or(0.0);
        wall_total += w;
        for m in ["stall_frac", "sync_frac", "inject_frac", "queue_frac", "other_frac"] {
            *sums.entry(m).or_default() += w * num(t, m).unwrap_or(0.0);
        }
    }
    if wall_total > 0.0 {
        let (top, ns) = sums
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, v)| (*k, *v))
            .unwrap_or(("stall_frac", 0.0));
        let _ = writeln!(
            out,
            "top overhead source: {} ({:.1}% of summed shard wall time)",
            top.trim_end_matches("_frac"),
            100.0 * ns / wall_total
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH: &str = r#"{
      "bench": "t", "parallelism": 7,
      "runs": [
        {"label": "a", "virtual_ns": 100, "events": 50, "wall_ns": 1000, "events_per_sec": 50000},
        {"label": "b", "virtual_ns": 200, "events": 80, "wall_ns": 2000, "events_per_sec": 40000}
      ],
      "total_events": 130, "total_wall_ns": 3000, "total_events_per_sec": 43333
    }"#;

    const PROF: &str = r#"{
      "bench": "t", "parallelism": 7, "host_cores": 1,
      "runs": [
        {"label": "a", "prof": {
          "mode": "windowed", "k": 7, "host_cores": 1, "wall_ns": 5000000,
          "totals": {"wall_ns": 30000000, "stall_frac": 0.60, "inject_frac": 0.05,
                     "execute_frac": 0.20, "queue_frac": 0.05, "other_frac": 0.10,
                     "top_overhead": "stall", "top_overhead_frac": 0.60},
          "coordinator": {"replay_ns": 10, "plan_ns": 10, "windows": 3, "injections": 4},
          "shards": []
        }}
      ]
    }"#;

    fn patched(src: &str, from: &str, to: &str) -> Json {
        Json::parse(&src.replace(from, to)).unwrap()
    }

    #[test]
    fn parser_round_trips_artifact_shapes() {
        let v = Json::parse(BENCH).unwrap();
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("t"));
        assert_eq!(v.get("parallelism").and_then(Json::as_f64), Some(7.0));
        let runs = v.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("label").and_then(Json::as_str), Some("a"));
        // Escapes and unicode survive.
        let s = Json::parse(r#"{"x": "a→b — \"q\""}"#).unwrap();
        assert_eq!(s.get("x").and_then(Json::as_str), Some("a→b — \"q\""));
        assert!(Json::parse("{\"x\": 1,}").is_err(), "trailing comma rejected");
        assert!(Json::parse("[1, 2] junk").is_err(), "trailing bytes rejected");
    }

    #[test]
    fn identical_artifacts_pass() {
        let b = Json::parse(BENCH).unwrap();
        let p = Json::parse(PROF).unwrap();
        let thr = Thresholds::default();
        assert!(diff_bench("BENCH_t.json", &b, &b, &thr).is_empty());
        assert!(diff_prof("PROF_t.json", &p, &p, &thr).is_empty());
    }

    #[test]
    fn throughput_collapse_is_flagged_but_noise_is_not() {
        let base = Json::parse(BENCH).unwrap();
        let thr = Thresholds::default();
        // 2x slower than baseline: within the generous 75% drop budget.
        let noisy = patched(BENCH, "\"events_per_sec\": 50000", "\"events_per_sec\": 25000");
        assert!(diff_bench("BENCH_t.json", &base, &noisy, &thr).is_empty());
        // 100x slower: synthetic regression must trip the gate.
        let dead = patched(BENCH, "\"events_per_sec\": 50000", "\"events_per_sec\": 500");
        let regs = diff_bench("BENCH_t.json", &base, &dead, &thr);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "events_per_sec");
        assert_eq!(regs[0].run, "a");
    }

    #[test]
    fn virtual_fact_drift_is_exact() {
        let base = Json::parse(BENCH).unwrap();
        let thr = Thresholds::default();
        let drifted = patched(BENCH, "\"events\": 50", "\"events\": 51");
        let regs = diff_bench("BENCH_t.json", &base, &drifted, &thr);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "events");
        // With sim_exact off it passes.
        let lax = Thresholds { sim_exact: false, ..thr };
        assert!(diff_bench("BENCH_t.json", &base, &drifted, &lax).is_empty());
    }

    #[test]
    fn live_artifacts_skip_exact_virtual_facts() {
        let thr = Thresholds::default();
        let live = |src: &str| src.replace("\"bench\": \"t\",", "\"bench\": \"t\", \"backend\": \"live\",");
        // Live-tagged artifacts carry host time in virtual_ns, so
        // run-to-run drift there must not trip the exact gate…
        let live_base = Json::parse(&live(BENCH)).unwrap();
        let drifted = Json::parse(&live(
            &BENCH
                .replace("\"virtual_ns\": 100, \"events\": 50,", "\"virtual_ns\": 117, \"events\": 55,"),
        ))
        .unwrap();
        assert!(
            diff_bench("BENCH_t.json", &live_base, &drifted, &thr).is_empty(),
            "live runs compare by throughput only"
        );
        // …but a throughput collapse still trips it.
        let dead =
            Json::parse(&live(&BENCH.replace("\"events_per_sec\": 50000", "\"events_per_sec\": 500"))).unwrap();
        let regs = diff_bench("BENCH_t.json", &live_base, &dead, &thr);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "events_per_sec");
        // A sim-tagged pair stays exact.
        let sim_base = Json::parse(BENCH).unwrap();
        let sim_drift = patched(BENCH, "\"events\": 50", "\"events\": 51");
        assert_eq!(diff_bench("BENCH_t.json", &sim_base, &sim_drift, &thr).len(), 1);
    }

    #[test]
    fn missing_run_is_a_regression() {
        let base = Json::parse(BENCH).unwrap();
        let fresh = patched(BENCH, "\"label\": \"b\"", "\"label\": \"renamed\"");
        let regs = diff_bench("BENCH_t.json", &base, &fresh, &Thresholds::default());
        assert!(regs.iter().any(|r| r.run == "b" && r.metric == "run"), "{regs:?}");
    }

    #[test]
    fn stall_rise_is_flagged_only_beyond_threshold() {
        let base = Json::parse(PROF).unwrap();
        let thr = Thresholds::default();
        // +20 points: tolerated.
        let up20 = patched(PROF, "\"stall_frac\": 0.60", "\"stall_frac\": 0.80");
        assert!(diff_prof("PROF_t.json", &base, &up20, &thr).is_empty());
        // +35 points: flagged.
        let up35 = patched(PROF, "\"stall_frac\": 0.60", "\"stall_frac\": 0.95");
        let regs = diff_prof("PROF_t.json", &base, &up35, &thr);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "stall_frac");
        // Falling stall is never a regression.
        let down = patched(PROF, "\"stall_frac\": 0.60", "\"stall_frac\": 0.01");
        assert!(diff_prof("PROF_t.json", &base, &down, &thr).is_empty());
    }

    const REPRO: &str = r#"{
      "bench": "repro_all", "host_cores": 1, "seq_parallelism": 1, "par_parallelism": 2,
      "quick": false,
      "bins": [
        {"bin": "big", "seq_wall_ms": 500.0, "par_wall_ms": 250.0, "speedup": 2.0, "runs": []},
        {"bin": "tiny", "seq_wall_ms": 3.0, "par_wall_ms": 1.0, "speedup": 3.0, "runs": []}
      ],
      "total_seq_wall_ms": 503.0, "total_par_wall_ms": 251.0, "total_speedup": 2.004
    }"#;

    #[test]
    fn speedup_regression_is_flagged_with_dead_band() {
        let base = Json::parse(REPRO).unwrap();
        let thr = Thresholds::default();
        assert!(diff_speedup("BENCH_repro_all.json", &base, &base, &thr).is_empty());
        // big bin: 2.0 -> 1.5 is a 25% drop, past the 20% budget.
        let slow = patched(
            REPRO,
            "\"par_wall_ms\": 250.0, \"speedup\": 2.0",
            "\"par_wall_ms\": 333.0, \"speedup\": 1.5",
        );
        let regs = diff_speedup("BENCH_repro_all.json", &base, &slow, &thr);
        assert!(regs.iter().any(|r| r.run == "big" && r.metric == "speedup"), "{regs:?}");
        // tiny bin: sub-dead-band walls never trip, however wild the ratio.
        let tiny = patched(REPRO, "\"speedup\": 3.0", "\"speedup\": 0.1");
        assert!(diff_speedup("BENCH_repro_all.json", &base, &tiny, &thr).is_empty());
        // A bin disappearing from the table is itself a regression.
        let gone = patched(REPRO, "\"bin\": \"big\"", "\"bin\": \"renamed\"");
        let regs = diff_speedup("BENCH_repro_all.json", &base, &gone, &thr);
        assert!(regs.iter().any(|r| r.run == "big" && r.metric == "bin"), "{regs:?}");
        // Faster than baseline is never a regression.
        let fast = patched(
            REPRO,
            "\"par_wall_ms\": 250.0, \"speedup\": 2.0",
            "\"par_wall_ms\": 100.0, \"speedup\": 5.0",
        );
        assert!(diff_speedup("BENCH_repro_all.json", &base, &fast, &thr).is_empty());
    }

    #[test]
    fn sync_frac_rise_flagged_but_absent_baseline_is_graceful() {
        let thr = Thresholds::default();
        // Fresh profile carries sync_frac; this old-style baseline does
        // not — the comparison must skip, not fail.
        let base = Json::parse(PROF).unwrap();
        let fresh = patched(PROF, "\"stall_frac\": 0.60,", "\"stall_frac\": 0.60, \"sync_frac\": 0.90,");
        assert!(diff_prof("PROF_t.json", &base, &fresh, &thr).is_empty());
        // Both sides carrying it: a big rise trips the gate.
        let base2 = patched(PROF, "\"stall_frac\": 0.60,", "\"stall_frac\": 0.10, \"sync_frac\": 0.05,");
        let fresh2 = patched(PROF, "\"stall_frac\": 0.60,", "\"stall_frac\": 0.10, \"sync_frac\": 0.70,");
        let regs = diff_prof("PROF_t.json", &base2, &fresh2, &thr);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "sync_frac");
    }

    #[test]
    fn diff_dirs_routes_speedup_tables_and_reports_stall_means() {
        let dir = std::env::temp_dir().join(format!("hal-perf-spd-{}", std::process::id()));
        let bdir = dir.join("baselines");
        let fdir = dir.join("fresh");
        std::fs::create_dir_all(&bdir).unwrap();
        std::fs::create_dir_all(&fdir).unwrap();
        std::fs::write(bdir.join("BENCH_repro_all.json"), REPRO).unwrap();
        std::fs::write(
            fdir.join("BENCH_repro_all.json"),
            REPRO.replace("\"par_wall_ms\": 250.0, \"speedup\": 2.0", "\"par_wall_ms\": 500.0, \"speedup\": 1.0"),
        )
        .unwrap();
        std::fs::write(bdir.join("PROF_t.json"), PROF).unwrap();
        std::fs::write(
            fdir.join("PROF_t.json"),
            PROF.replace("\"stall_frac\": 0.60", "\"stall_frac\": 0.20"),
        )
        .unwrap();
        let regs = diff_dirs(&bdir, &fdir, &Thresholds::default());
        assert!(
            regs.iter().any(|r| r.artifact == "BENCH_repro_all.json" && r.metric == "speedup"),
            "speedup table must route through diff_speedup: {regs:?}"
        );
        let (bm, fm) = stall_frac_means(&bdir, &fdir).unwrap();
        assert!((bm - 0.60).abs() < 1e-9 && (fm - 0.20).abs() < 1e-9, "{bm} {fm}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn diff_dirs_end_to_end_with_synthetic_regression() {
        let dir = std::env::temp_dir().join(format!("hal-perf-test-{}", std::process::id()));
        let bdir = dir.join("baselines");
        let fdir = dir.join("fresh");
        std::fs::create_dir_all(&bdir).unwrap();
        std::fs::create_dir_all(&fdir).unwrap();
        std::fs::write(bdir.join("BENCH_t.json"), BENCH).unwrap();
        std::fs::write(bdir.join("PROF_t.json"), PROF).unwrap();
        // Hosttrace files must be ignored even when malformed-for-diff.
        std::fs::write(bdir.join("PROF_t_hosttrace.json"), "[]").unwrap();
        std::fs::write(fdir.join("BENCH_t.json"), BENCH).unwrap();
        std::fs::write(fdir.join("PROF_t.json"), PROF).unwrap();
        let thr = Thresholds::default();
        assert!(diff_dirs(&bdir, &fdir, &thr).is_empty());
        // Inflate the baseline throughput 100x — the fresh run now looks
        // collapsed, exactly what ci.sh's synthetic-regression check does.
        std::fs::write(
            bdir.join("BENCH_t.json"),
            BENCH.replace("\"events_per_sec\": 50000", "\"events_per_sec\": 5000000"),
        )
        .unwrap();
        let regs = diff_dirs(&bdir, &fdir, &thr);
        assert!(
            regs.iter().any(|r| r.metric == "events_per_sec"),
            "synthetic regression must be caught: {regs:?}"
        );
        // Missing fresh artifact is a regression, not a silent pass.
        std::fs::remove_file(fdir.join("PROF_t.json")).unwrap();
        std::fs::write(bdir.join("BENCH_t.json"), BENCH).unwrap();
        let regs = diff_dirs(&bdir, &fdir, &thr);
        assert!(regs.iter().any(|r| r.artifact == "PROF_t.json"), "{regs:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summarize_names_the_top_overhead() {
        let p = Json::parse(PROF).unwrap();
        let s = summarize_prof(&p).unwrap();
        assert!(s.contains("stall"), "{s}");
        assert!(s.contains("top overhead source: stall"), "{s}");
        assert!(s.contains('7'), "{s}");
    }
}
