//! Systolic (Cannon's) matrix multiplication (Table 5).
//!
//! "The systolic matrix multiplication algorithm involves first skewing
//! the blocks within a square processor grid, and then, cyclicly
//! shifting the blocks at each step. No global synchronization is used
//! in the implementation. Instead, per actor basis local synchronization
//! is used to enforce the necessary synchronization."
//!
//! One actor per block on a g×g grid (a `grpnew` group, one member per
//! node when P = g²). Each member starts with the *skewed* blocks
//! `A[i][(j+i) mod g]` and `B[(i+j) mod g][j]`, multiplies, and shifts A
//! left / B up, tagging blocks with the step number. The **local
//! synchronization constraint** (§6.1) disables block messages from a
//! future step until the actor reaches it — the pending queue is the
//! only synchronization in the program, exactly as the paper describes.

use hal::messages;
use hal::prelude::*;
use hal_baselines::gemm;
use hal_des::VirtualDuration;

messages! {
    /// Systolic protocol.
    pub enum MmMsg {
        /// Kick a member off (broadcast).
        Start {} = 0,
        /// An A block arriving for `step`.
        ABlock { step: i64, data: hal_am::Bytes } = 1,
        /// A B block arriving for `step`.
        BBlock { step: i64, data: hal_am::Bytes } = 2,
        /// A finished C block (to the collector; validation runs).
        Done { idx: i64, data: hal_am::Bytes } = 3,
        /// A finished block's sum of squares (benchmark runs — shipping
        /// every block to one node would serialize at its ejection port
        /// and measure the gather, not the multiply).
        DoneSum { idx: i64, sum: f64 } = 4,
    }
}

/// Deterministic logical block `(bi, bj)` of a block matrix.
pub fn logical_block(seed: u64, g: usize, bs: usize, bi: usize, bj: usize) -> Vec<f64> {
    gemm::random_matrix(bs, seed ^ ((bi * g + bj) as u64).wrapping_mul(0x9E37_79B9))
}

/// Assemble the full n×n matrix (n = g·bs) from its logical blocks.
pub fn assemble(seed: u64, g: usize, bs: usize) -> Vec<f64> {
    let n = g * bs;
    let mut m = vec![0.0; n * n];
    for bi in 0..g {
        for bj in 0..g {
            let blk = logical_block(seed, g, bs, bi, bj);
            for r in 0..bs {
                let dst = (bi * bs + r) * n + bj * bs;
                m[dst..dst + bs].copy_from_slice(&blk[r * bs..r * bs + bs]);
            }
        }
    }
    m
}

/// Matmul workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct MatmulConfig {
    /// Processor/block grid dimension (g×g members).
    pub grid: usize,
    /// Block size (the full matrix is (g·bs)×(g·bs)).
    pub block: usize,
    /// Virtual cost per floating-point operation in the block kernel.
    /// The paper's CM-5 nodes sustained ~6.8 MFLOPS each at the Table 5
    /// peak (434 MFLOPS / 64 nodes), i.e. ~147 ns/flop end to end; the
    /// kernel itself is charged a bit less since messaging overhead is
    /// accounted separately.
    pub per_flop_ns: u64,
    /// Seeds for the A and B matrices.
    pub seed_a: u64,
    /// Seed for B.
    pub seed_b: u64,
}

impl MatmulConfig {
    /// Matrix dimension n = grid · block.
    pub fn n(&self) -> usize {
        self.grid * self.block
    }
}

struct MmMember {
    g: usize,
    bs: usize,
    i: usize,
    j: usize,
    group: GroupId,
    collector: MailAddr,
    per_flop_ns: u64,
    step: i64,
    a: Option<Vec<f64>>,
    b: Option<Vec<f64>>,
    c: Vec<f64>,
    started: bool,
    publish: bool,
}

impl MmMember {
    fn member_index(&self, i: usize, j: usize) -> u32 {
        (i * self.g + j) as u32
    }

    fn try_step(&mut self, ctx: &mut Ctx<'_>) {
        while self.started && self.a.is_some() && self.b.is_some() {
            let a = self.a.take().unwrap();
            let b = self.b.take().unwrap();
            // The real block multiply (validated against the sequential
            // baseline) plus its virtual cost.
            let flops = gemm::matmul_flops(self.bs);
            ctx.charge(VirtualDuration::from_nanos(flops * self.per_flop_ns));
            gemm::matmul_ikj_acc(&a, &b, &mut self.c, self.bs);
            if self.publish {
                let done = ctx.now().as_micros() as i64;
                ctx.report(
                    format!("mul_{}_{}_s{}", self.i, self.j, self.step),
                    Value::Int(done),
                );
            }

            let next = self.step + 1;
            if (next as usize) < self.g {
                // Cyclic shift: A one step left, B one step up.
                let left = self.member_index(self.i, (self.j + self.g - 1) % self.g);
                let up = self.member_index((self.i + self.g - 1) % self.g, self.j);
                let (sel_a, args_a) = MmMsg::ABlock {
                    step: next,
                    data: crate::pack_f64(&a),
                }
                .encode();
                ctx.send_member(self.group, left, sel_a, args_a);
                let (sel_b, args_b) = MmMsg::BBlock {
                    step: next,
                    data: crate::pack_f64(&b),
                }
                .encode();
                ctx.send_member(self.group, up, sel_b, args_b);
                self.step = next;
                // Blocks for `next` may already be waiting in the pending
                // queue; the kernel's rescan redelivers them after this
                // method returns.
            } else {
                let idx = self.member_index(self.i, self.j) as i64;
                let (sel, args) = if self.publish {
                    MmMsg::Done {
                        idx,
                        data: crate::pack_f64(&self.c),
                    }
                    .encode()
                } else {
                    MmMsg::DoneSum {
                        idx,
                        sum: self.c.iter().map(|x| x * x).sum(),
                    }
                    .encode()
                };
                ctx.send(self.collector, sel, args);
                self.step = next; // terminal
            }
        }
    }
}

impl Behavior for MmMember {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match MmMsg::take(msg) {
            MmMsg::Start {} => {
                assert!(!self.started, "double start");
                self.started = true;
                self.try_step(ctx);
            }
            MmMsg::ABlock { step, data } => {
                debug_assert_eq!(step, self.step, "constraint admitted a wrong-step block");
                assert!(self.a.is_none(), "two A blocks in one step");
                self.a = Some(crate::unpack_f64(&data));
                self.try_step(ctx);
            }
            MmMsg::BBlock { step, data } => {
                debug_assert_eq!(step, self.step, "constraint admitted a wrong-step block");
                assert!(self.b.is_none(), "two B blocks in one step");
                self.b = Some(crate::unpack_f64(&data));
                self.try_step(ctx);
            }
            MmMsg::Done { .. } | MmMsg::DoneSum { .. } => {
                unreachable!("Done goes to the collector")
            }
        }
    }

    /// §6.1 disabling condition: only blocks for the *current* step may
    /// be dispatched; future-step blocks wait in the pending queue. (A
    /// block also waits if this step's slot is already filled but the
    /// multiply has not happened — cannot occur with one sender per
    /// direction, but the guard keeps the constraint locally checkable.)
    fn enabled(&self, selector: Selector, args: &[Value]) -> bool {
        match selector {
            1 | 2 => args[0].as_int() == self.step,
            _ => true,
        }
    }

    fn name(&self) -> &'static str {
        "mm-member"
    }
}

fn make_member(args: &[Value]) -> Box<dyn Behavior> {
    // init args ++ [Group(id), Int(index), Int(count)] appended by grpnew.
    let collector = args[0].as_addr();
    let bs = args[1].as_int() as usize;
    let per_flop_ns = args[2].as_int() as u64;
    let seed_a = args[3].as_int() as u64;
    let seed_b = args[4].as_int() as u64;
    let publish = args[5].as_int() != 0;
    let group = args[6].as_group();
    let idx = args[7].as_int() as usize;
    let count = args[8].as_int() as usize;
    let g = (count as f64).sqrt().round() as usize;
    assert_eq!(g * g, count, "member count must be a perfect square");
    let (i, j) = (idx / g, idx % g);
    // Cannon's initial skew, generated in place.
    let a = logical_block(seed_a, g, bs, i, (j + i) % g);
    let b = logical_block(seed_b, g, bs, (i + j) % g, j);
    Box::new(MmMember {
        g,
        bs,
        i,
        j,
        group,
        collector,
        per_flop_ns,
        step: 0,
        a: Some(a),
        b: Some(b),
        c: vec![0.0; bs * bs],
        started: false,
        publish,
    })
}

/// Gathers finished C blocks, reports the Frobenius norm (as
/// `"matmul_fro"`) and each block (as `"c_<idx>"`), then stops.
struct Collector {
    expected: usize,
    received: usize,
    fro: f64,
    publish_blocks: bool,
    stop_when_done: bool,
}

impl Behavior for Collector {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match MmMsg::take(msg) {
            MmMsg::Done { idx, data } => {
                self.received += 1;
                let block = crate::unpack_f64(&data);
                self.fro += block.iter().map(|x| x * x).sum::<f64>();
                if self.publish_blocks {
                    ctx.report(format!("c_{idx}"), Value::Bytes(data));
                }
            }
            MmMsg::DoneSum { idx: _, sum } => {
                self.received += 1;
                self.fro += sum;
            }
            _ => unreachable!("collector only receives Done/DoneSum"),
        }
        if self.received == self.expected {
            ctx.report("matmul_fro", Value::Float(self.fro.sqrt()));
            ctx.report("matmul_done_at_ns", Value::Int(ctx.now().as_nanos() as i64));
            if self.stop_when_done {
                ctx.stop();
            }
        }
    }

    fn name(&self) -> &'static str {
        "mm-collector"
    }
}

/// Register the member behavior.
pub fn register(program: &mut Program) -> BehaviorId {
    program.behavior("mm-member", make_member)
}

/// Bootstrap the systolic multiply. `publish_blocks` additionally
/// reports every C block (tests use this to validate the full result).
pub fn bootstrap(
    ctx: &mut Ctx<'_>,
    behavior: BehaviorId,
    cfg: MatmulConfig,
    publish_blocks: bool,
) {
    bootstrap_opts(ctx, behavior, cfg, publish_blocks, true);
}

/// Like [`bootstrap`], optionally without stopping the machine (for
/// multi-program runs).
pub fn bootstrap_opts(
    ctx: &mut Ctx<'_>,
    behavior: BehaviorId,
    cfg: MatmulConfig,
    publish_blocks: bool,
    stop_when_done: bool,
) {
    let members = (cfg.grid * cfg.grid) as u32;
    let collector = ctx.create_local(Box::new(Collector {
        expected: members as usize,
        received: 0,
        fro: 0.0,
        publish_blocks,
        stop_when_done,
    }));
    let group = ctx.grpnew(
        behavior,
        members,
        vec![
            Value::Addr(collector),
            Value::Int(cfg.block as i64),
            Value::Int(cfg.per_flop_ns as i64),
            Value::Int(cfg.seed_a as i64),
            Value::Int(cfg.seed_b as i64),
            Value::Int(publish_blocks as i64),
        ],
    );
    let (sel, args) = MmMsg::Start {}.encode();
    ctx.broadcast(group, sel, args);
}

/// Run on a fresh machine for `machine.backend`; returns
/// `(frobenius_norm, report)`.
pub fn run_sim(machine: MachineConfig, cfg: MatmulConfig, publish: bool) -> (f64, SimReport) {
    let mut program = Program::new();
    let id = register(&mut program);
    let report = hal::run(machine, program, |ctx| bootstrap(ctx, id, cfg, publish));
    let fro = report
        .value("matmul_fro")
        .expect("matmul did not complete")
        .as_float();
    (fro, report)
}

/// Extract the assembled C matrix from a `publish_blocks` report.
pub fn extract_c(report: &SimReport, cfg: MatmulConfig) -> Vec<f64> {
    let (g, bs) = (cfg.grid, cfg.block);
    let n = cfg.n();
    let mut c = vec![f64::NAN; n * n];
    for idx in 0..g * g {
        let data = report
            .value(&format!("c_{idx}"))
            .unwrap_or_else(|| panic!("missing block {idx}"))
            .as_bytes();
        let blk = crate::unpack_f64(&data);
        let (bi, bj) = (idx / g, idx % g);
        for r in 0..bs {
            let dst = (bi * bs + r) * n + bj * bs;
            c[dst..dst + bs].copy_from_slice(&blk[r * bs..r * bs + bs]);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use hal_baselines::gemm::{matmul_naive, max_abs_diff};

    fn small_cfg(grid: usize, block: usize) -> MatmulConfig {
        MatmulConfig {
            grid,
            block,
            per_flop_ns: 100,
            seed_a: 11,
            seed_b: 22,
        }
    }

    #[test]
    fn result_matches_sequential_reference() {
        let cfg = small_cfg(2, 4);
        let (_, report) = run_sim(MachineConfig::new(4), cfg, true);
        let c = extract_c(&report, cfg);
        let n = cfg.n();
        let a = assemble(cfg.seed_a, cfg.grid, cfg.block);
        let b = assemble(cfg.seed_b, cfg.grid, cfg.block);
        let mut expect = vec![0.0; n * n];
        matmul_naive(&a, &b, &mut expect, n);
        assert!(
            max_abs_diff(&c, &expect) < 1e-10,
            "systolic result disagrees with reference"
        );
    }

    #[test]
    fn larger_grid_still_correct() {
        let cfg = small_cfg(4, 3);
        let (_, report) = run_sim(MachineConfig::new(16), cfg, true);
        let c = extract_c(&report, cfg);
        let n = cfg.n();
        let a = assemble(cfg.seed_a, cfg.grid, cfg.block);
        let b = assemble(cfg.seed_b, cfg.grid, cfg.block);
        let mut expect = vec![0.0; n * n];
        matmul_naive(&a, &b, &mut expect, n);
        assert!(max_abs_diff(&c, &expect) < 1e-10);
    }

    #[test]
    fn fewer_nodes_than_members_works() {
        // 4x4 member grid on 4 nodes: 4 members per node.
        let cfg = small_cfg(4, 2);
        let (fro1, _) = run_sim(MachineConfig::new(4), cfg, false);
        let (fro16, _) = run_sim(MachineConfig::new(16), cfg, false);
        assert!((fro1 - fro16).abs() < 1e-10, "result independent of P");
    }

    #[test]
    fn local_sync_defers_future_steps() {
        // Three nodes for sixteen members: uneven load guarantees some
        // members run ahead and their blocks arrive at laggards early.
        let cfg = small_cfg(4, 2);
        let (_, report) = run_sim(MachineConfig::new(3), cfg, false);
        // With asynchronous shifting some step-s+1 blocks inevitably
        // arrive while a member is still at step s.
        assert!(
            report.stats.get("sync.deferred") > 0,
            "expected pending-queue traffic, got none"
        );
        assert_eq!(
            report.stats.get("sync.deferred"),
            report.stats.get("sync.resumed"),
            "every deferred block was eventually dispatched"
        );
    }

    #[test]
    fn more_nodes_reduce_virtual_time() {
        // Block 16 puts the run in the compute-dominated regime (819 us
        // of kernel per step vs ~200 us of wire per block) where the
        // paper's near-linear scaling appears; tiny blocks are honestly
        // communication-bound and scale poorly.
        let cfg = MatmulConfig {
            grid: 4,
            block: 24,
            per_flop_ns: 100,
            seed_a: 1,
            seed_b: 2,
        };
        let (_, r1) = run_sim(MachineConfig::new(1), cfg, false);
        let (_, r16) = run_sim(MachineConfig::new(16), cfg, false);
        assert!(
            r16.makespan.as_nanos() * 4 < r1.makespan.as_nanos(),
            "16 nodes should be >4x faster than 1: {} vs {}",
            r16.makespan,
            r1.makespan
        );
    }
}
