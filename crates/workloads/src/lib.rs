//! # hal-workloads — the paper's evaluation workloads as actor programs
//!
//! * [`fib`] — the Table 4 Fibonacci generator (load imbalance +
//!   dynamic load balancing);
//! * [`matmul`] — the Table 5 systolic (Cannon) matrix multiplication
//!   with per-actor local synchronization;
//! * [`cholesky`] — the Table 1 column-Cholesky variants (BP/CP
//!   pipelined with local sync, Seq/Bcast with global sync);
//! * [`synth`] — synthetic micro-workloads driving the Table 2/3
//!   primitive-cost harnesses;
//! * [`uts`] — unbalanced tree search, the "dynamic, irregular
//!   application" the paper's introduction argues the runtime's
//!   flexibility exists for (extension beyond the paper's own
//!   evaluation).

#![warn(missing_docs)]

pub mod cholesky;
pub mod fib;
pub mod matmul;
pub mod synth;
pub mod uts;

/// Pack a f64 slice into a wire payload.
pub fn pack_f64(data: &[f64]) -> hal_am::Bytes {
    let mut out = Vec::with_capacity(data.len() * 8);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    hal_am::Bytes::from(out)
}

/// Unpack a wire payload into f64s.
pub fn unpack_f64(b: &hal_am::Bytes) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "payload not a multiple of 8 bytes");
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let v = vec![1.5, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(unpack_f64(&pack_f64(&v)), v);
    }

    #[test]
    fn empty_roundtrip() {
        assert!(unpack_f64(&pack_f64(&[])).is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn ragged_payload_rejected() {
        unpack_f64(&hal_am::Bytes::from(vec![1u8, 2, 3]));
    }
}
