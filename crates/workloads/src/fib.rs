//! The Fibonacci workload (Table 4).
//!
//! "Although the Fibonacci number generator is a very simple program, it
//! is extremely concurrent: executing the Fibonacci of 33 results in the
//! creation of 11,405,773 actors. Moreover, its computation tree has a
//! great deal of load imbalance."
//!
//! One actor per call-tree node above the *grain* threshold; below it
//! the subtree is computed sequentially, with its cost charged to the
//! virtual clock — the analog of the paper's "actor creations were
//! optimized away" for purely functional actors. Two distribution
//! strategies reproduce the with/without-load-balancing comparison:
//!
//! * [`Placement::Local`] — children are created locally; the
//!   receiver-initiated random-polling balancer (§7.2) moves work;
//! * [`Placement::Random`] / [`Placement::RoundRobin`] — static child
//!   placement with no runtime balancing.

use hal::prelude::*;
use hal::messages;

messages! {
    /// The fib protocol.
    pub enum FibMsg {
        /// Compute fib(n); reply with the value.
        Compute { n: i64 } = 0,
    }
}

/// Where a fib actor places its children.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Create locally and rely on dynamic load balancing.
    Local,
    /// Static round-robin over all nodes.
    RoundRobin,
    /// Static pseudo-random node choice.
    Random,
}

impl Placement {
    fn encode(self) -> i64 {
        match self {
            Placement::Local => 0,
            Placement::RoundRobin => 1,
            Placement::Random => 2,
        }
    }
    fn decode(v: i64) -> Self {
        match v {
            0 => Placement::Local,
            1 => Placement::RoundRobin,
            2 => Placement::Random,
            other => panic!("bad placement code {other}"),
        }
    }
}

/// Per-call-node sequential cost: the paper's optimized C fib(33) takes
/// 8.49 s for 11,405,773 call-tree nodes ≈ 744 ns per node on the 33 MHz
/// SPARC.
pub const SEQ_NODE_COST_NS: u64 = 744;

/// Fib workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct FibConfig {
    /// The argument.
    pub n: u64,
    /// Subtrees of at most this size are computed sequentially inside
    /// one actor ("creation elision"). `grain = 0` or `1` gives the pure
    /// one-actor-per-node tree.
    pub grain: u64,
    /// Child placement strategy.
    pub placement: Placement,
}

struct FibActor {
    behavior: BehaviorId,
    grain: i64,
    placement: Placement,
    rr_next: u16,
}

impl FibActor {
    fn place(&mut self, ctx: &Ctx<'_>, salt: u64) -> u16 {
        let p = ctx.nodes() as u16;
        match self.placement {
            Placement::Local => ctx.node(),
            Placement::RoundRobin => {
                let n = self.rr_next % p;
                self.rr_next = self.rr_next.wrapping_add(1);
                n
            }
            Placement::Random => {
                // Deterministic hash of (node, own address, salt).
                let mut x = (ctx.node() as u64) << 48
                    ^ (ctx.me().key.index.0 as u64) << 16
                    ^ salt;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (x % p as u64) as u16
            }
        }
    }

    fn init_args(&self) -> Vec<Value> {
        vec![
            Value::Int(self.behavior.0 as i64),
            Value::Int(self.grain),
            Value::Int(self.placement.encode()),
        ]
    }
}

impl Behavior for FibActor {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let FibMsg::Compute { n } = FibMsg::take(msg);
        if n < 2 || n <= self.grain {
            // Sequential leaf: charge the real subtree cost.
            let nodes = hal_baselines::call_tree_nodes(n as u64);
            ctx.charge(hal_des::VirtualDuration::from_nanos(nodes * SEQ_NODE_COST_NS));
            let v = hal_baselines::fib_iter(n as u64) as i64;
            hal::maybe_reply(ctx, Value::Int(v));
            return;
        }
        let customer = SavedCustomer::take(ctx);
        let p1 = self.place(ctx, n as u64);
        let p2 = self.place(ctx, n as u64 + 1);
        let c1 = ctx.create_on(p1, self.behavior, self.init_args());
        let c2 = ctx.create_on(p2, self.behavior, self.init_args());
        JoinBuilder::new()
            .call(c1, 0, vec![Value::Int(n - 1)])
            .call(c2, 0, vec![Value::Int(n - 2)])
            .then(ctx, move |ctx, vals| {
                let sum = vals[0].as_int() + vals[1].as_int();
                customer.reply(ctx, Value::Int(sum));
            });
    }

    fn name(&self) -> &'static str {
        "fib"
    }
}

fn make_fib(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(FibActor {
        behavior: BehaviorId(args[0].as_int() as u32),
        grain: args[1].as_int(),
        placement: Placement::decode(args[2].as_int()),
        rr_next: 0,
    })
}

/// Register the fib behavior in a program.
pub fn register(program: &mut Program) -> BehaviorId {
    program.behavior("fib", make_fib)
}

/// Bootstrap the fib computation: create the root on node 0 and arrange
/// for the result to be reported as `"fib"` before stopping the machine.
pub fn bootstrap(ctx: &mut Ctx<'_>, behavior: BehaviorId, cfg: FibConfig) {
    bootstrap_opts(ctx, behavior, cfg, true);
}

/// Like [`bootstrap`], but optionally without stopping the machine on
/// completion — lets several programs share one partition ("the kernel
/// does not discriminate between actors created by different programs",
/// §3).
pub fn bootstrap_opts(ctx: &mut Ctx<'_>, behavior: BehaviorId, cfg: FibConfig, stop: bool) {
    let root = ctx.create_on(
        0,
        behavior,
        vec![
            Value::Int(behavior.0 as i64),
            Value::Int(cfg.grain as i64),
            Value::Int(cfg.placement.encode()),
        ],
    );
    hal::call_then(ctx, root, 0, vec![Value::Int(cfg.n as i64)], move |ctx, v| {
        ctx.report("fib", v);
        if stop {
            ctx.stop();
        }
    });
}

/// Run fib on a fresh machine for `machine.backend` (the deterministic
/// simulator by default, the live thread runtime under
/// `BackendKind::Live`); returns `(value, report)`.
pub fn run_sim(machine: MachineConfig, cfg: FibConfig) -> (u64, SimReport) {
    let mut program = Program::new();
    let id = register(&mut program);
    let report = hal::run(machine, program, |ctx| bootstrap(ctx, id, cfg));
    let v = report
        .value("fib")
        .unwrap_or_else(|| panic!("fib did not complete"))
        .as_int() as u64;
    (v, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_actor_tree_computes_fib() {
        let cfg = FibConfig {
            n: 12,
            grain: 1,
            placement: Placement::Local,
        };
        let (v, r) = run_sim(MachineConfig::new(1), cfg);
        assert_eq!(v, hal_baselines::fib_iter(12));
        // One actor per call node plus the bootstrap continuation's root.
        assert!(r.actors_created >= hal_baselines::call_tree_nodes(12));
    }

    #[test]
    fn grained_tree_matches_and_creates_fewer_actors() {
        let fine = run_sim(
            MachineConfig::new(1),
            FibConfig {
                n: 14,
                grain: 1,
                placement: Placement::Local,
            },
        );
        let coarse = run_sim(
            MachineConfig::new(1),
            FibConfig {
                n: 14,
                grain: 8,
                placement: Placement::Local,
            },
        );
        assert_eq!(fine.0, coarse.0);
        assert!(coarse.1.actors_created < fine.1.actors_created / 4);
    }

    #[test]
    fn static_random_placement_distributes() {
        let (v, r) = run_sim(
            MachineConfig::new(4),
            FibConfig {
                n: 13,
                grain: 4,
                placement: Placement::Random,
            },
        );
        assert_eq!(v, hal_baselines::fib_iter(13));
        assert!(r.stats.get("actors.remote_created") > 0, "work crossed nodes");
    }

    #[test]
    fn load_balancing_beats_no_balancing_on_multiple_nodes() {
        let n = 16;
        let no_lb = run_sim(
            MachineConfig::builder(4).seed(1).build().unwrap(),
            FibConfig {
                n,
                grain: 6,
                placement: Placement::Local, // everything stays on node 0
            },
        );
        let lb = run_sim(
            MachineConfig::builder(4).load_balancing(true).seed(1).build().unwrap(),
            FibConfig {
                n,
                grain: 6,
                placement: Placement::Local,
            },
        );
        assert_eq!(no_lb.0, lb.0);
        assert!(
            lb.1.makespan < no_lb.1.makespan,
            "LB {} should beat single-node pile-up {}",
            lb.1.makespan,
            no_lb.1.makespan
        );
        assert!(lb.1.stats.get("steal.granted") > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = FibConfig {
            n: 13,
            grain: 4,
            placement: Placement::Random,
        };
        let a = run_sim(MachineConfig::builder(4).seed(9).build().unwrap(), cfg);
        let b = run_sim(MachineConfig::builder(4).seed(9).build().unwrap(), cfg);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.makespan, b.1.makespan);
        assert_eq!(a.1.events, b.1.events);
    }
}
