//! Synthetic micro-workloads driving the Table 2/3 primitive-cost
//! harnesses: probes that exercise exactly one runtime path each so the
//! harness can read its cost off the virtual clock.

use hal::messages;
use hal::prelude::*;

messages! {
    /// Probe protocol.
    pub enum SynthMsg {
        /// Do nothing (measures dispatch + invoke overhead).
        Nop {} = 0,
        /// Reply with the argument (measures call/return).
        Echo { v: i64 } = 1,
        /// Create `k` local children, then reply Unit-like 0.
        CreateLocal { k: i64 } = 2,
        /// Create `k` children on `node`, then reply 0.
        CreateRemote { k: i64, node: i64 } = 3,
        /// Send `k` messages to `target`, then reply 0.
        SendStorm { k: i64, target: MailAddr } = 4,
    }
}

/// A probe actor exercising individual kernel primitives.
pub struct Probe {
    /// Behavior id for child creations.
    pub behavior: BehaviorId,
}

impl Behavior for Probe {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match SynthMsg::take(msg) {
            SynthMsg::Nop {} => {}
            SynthMsg::Echo { v } => hal::maybe_reply(ctx, Value::Int(v)),
            SynthMsg::CreateLocal { k } => {
                for _ in 0..k {
                    let b = self.behavior;
                    ctx.create_local(Box::new(Probe { behavior: b }));
                }
                hal::maybe_reply(ctx, Value::Int(0));
            }
            SynthMsg::CreateRemote { k, node } => {
                for _ in 0..k {
                    ctx.create_on(
                        node as u16,
                        self.behavior,
                        vec![Value::Int(self.behavior.0 as i64)],
                    );
                }
                hal::maybe_reply(ctx, Value::Int(0));
            }
            SynthMsg::SendStorm { k, target } => {
                for i in 0..k {
                    let (sel, args) = SynthMsg::Echo { v: i }.encode();
                    ctx.send(target, sel, args);
                }
                hal::maybe_reply(ctx, Value::Int(0));
            }
        }
    }

    fn name(&self) -> &'static str {
        "probe"
    }
}

/// Probe factory (init args: `[Int(own behavior id)]`).
pub fn make_probe(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Probe {
        behavior: BehaviorId(args[0].as_int() as u32),
    })
}

/// Register the probe behavior.
pub fn register(program: &mut Program) -> BehaviorId {
    program.behavior("probe", make_probe)
}

/// A do-nothing behavior with a no-argument factory — used to measure
/// the paper's "remote creation with no initialization message".
pub struct Nil;

impl Behavior for Nil {
    fn dispatch(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}
    fn name(&self) -> &'static str {
        "nil"
    }
}

/// Nil factory (ignores args).
pub fn make_nil(_args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Nil)
}

/// Register the nil behavior.
pub fn register_nil(program: &mut Program) -> BehaviorId {
    program.behavior("nil", make_nil)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_primitives_run() {
        let mut program = Program::new();
        let id = register(&mut program);
        let report = hal::sim_run(MachineConfig::new(2), program, |ctx| {
            let p = ctx.create_on(0, id, vec![Value::Int(id.0 as i64)]);
            let (sel, args) = SynthMsg::CreateLocal { k: 5 }.encode();
            ctx.send(p, sel, args);
            let (sel, args) = SynthMsg::CreateRemote { k: 3, node: 1 }.encode();
            ctx.send(p, sel, args);
        });
        // 1 root + 5 local + 3 remote probes.
        assert_eq!(report.actors_created, 9);
        assert_eq!(report.stats.get("actors.remote_created"), 3);
    }

    #[test]
    fn echo_roundtrip() {
        let mut program = Program::new();
        let id = register(&mut program);
        let report = hal::sim_run(MachineConfig::new(2), program, |ctx| {
            let p = ctx.create_on(1, id, vec![Value::Int(id.0 as i64)]);
            let (sel, args) = SynthMsg::Echo { v: 7 }.encode();
            hal::call_then(ctx, p, sel, args, |ctx, v| {
                ctx.report("echo", v);
                ctx.stop();
            });
        });
        assert_eq!(report.value("echo"), Some(&Value::Int(7)));
    }
}
