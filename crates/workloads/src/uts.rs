//! Unbalanced tree search (UTS) — the "dynamic, irregular application"
//! of the paper's introduction.
//!
//! The paper's opening argument: location transparency, dynamic
//! placement, and migration are "essential for scalable execution of
//! dynamic, irregular applications over sparse data structures". fib's
//! imbalance is mild and predictable; UTS (Olivier et al.'s classic
//! load-balancing stress test, here in its binomial variant) is the
//! adversarial case: each node of a random tree has `m` children with
//! probability `q` and none otherwise, so subtree sizes follow a heavy-
//! tailed distribution no static placement can anticipate. Dynamic load
//! balancing is the only thing that helps — exactly the claim the
//! runtime exists to support.
//!
//! One actor per tree node (created locally, so the §7.2 balancer does
//! *all* distribution); each node replies with its subtree size through
//! a join continuation, and the root reports the total, which must
//! equal the deterministic sequential traversal.

use hal::messages;
use hal::prelude::*;
use hal_des::VirtualDuration;

messages! {
    /// UTS protocol.
    pub enum UtsMsg {
        /// Explore the subtree rooted at node `id` at `depth`.
        Explore { id: i64, depth: i64 } = 0,
    }
}

/// UTS parameters (binomial variant).
#[derive(Clone, Copy, Debug)]
pub struct UtsConfig {
    /// Tree seed.
    pub seed: u64,
    /// Root branching factor (the root always has this many children).
    pub root_children: u32,
    /// Non-root nodes have `m` children with probability `q`…
    pub m: u32,
    /// …expressed as a fixed-point threshold `q_fp / 2^32` (keep
    /// `m * q < 1` for finite trees).
    pub q_fp: u32,
    /// Hard depth limit (safety valve; deep tails are truncated
    /// identically in the actor and sequential versions).
    pub max_depth: i64,
    /// Virtual compute charged per visited node (models the per-node
    /// "work" of a real irregular application).
    pub node_cost_ns: u64,
}

impl UtsConfig {
    /// A moderately heavy-tailed default: expected subtree size ~10 per
    /// non-root child, a few thousand nodes total.
    pub fn standard(seed: u64) -> Self {
        UtsConfig {
            seed,
            root_children: 128,
            m: 8,
            // q = 0.115 -> m*q = 0.92: branchy and shallow, so the
            // tree's own critical path does not cap speedup too early.
            q_fp: (0.115 * 4294967296.0) as u32,
            max_depth: 100,
            node_cost_ns: 20_000,
        }
    }
}

/// SplitMix64 hash used for child-id derivation and branching decisions
/// (self-contained so the sequential reference and the actors agree
/// bit-for-bit).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Child `i`'s node id.
pub fn child_id(cfg: &UtsConfig, parent: i64, i: u32) -> i64 {
    mix(cfg.seed ^ (parent as u64).wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (i as u64) << 32) as i64
}

/// Number of children of tree node `id` at `depth`.
pub fn num_children(cfg: &UtsConfig, id: i64, depth: i64) -> u32 {
    if depth >= cfg.max_depth {
        return 0;
    }
    if depth == 0 {
        return cfg.root_children;
    }
    let draw = (mix(id as u64) >> 32) as u32;
    if draw < cfg.q_fp {
        cfg.m
    } else {
        0
    }
}

/// Sequential reference: exact tree size.
pub fn sequential_size(cfg: &UtsConfig) -> u64 {
    fn rec(cfg: &UtsConfig, id: i64, depth: i64) -> u64 {
        let k = num_children(cfg, id, depth);
        let mut total = 1;
        for i in 0..k {
            total += rec(cfg, child_id(cfg, id, i), depth + 1);
        }
        total
    }
    rec(cfg, 0, 0)
}

struct UtsActor {
    behavior: BehaviorId,
    cfg: UtsConfig,
}

fn cfg_args(behavior: BehaviorId, cfg: &UtsConfig) -> Vec<Value> {
    vec![
        Value::Int(behavior.0 as i64),
        Value::Int(cfg.seed as i64),
        Value::Int(cfg.root_children as i64),
        Value::Int(cfg.m as i64),
        Value::Int(cfg.q_fp as i64),
        Value::Int(cfg.max_depth),
        Value::Int(cfg.node_cost_ns as i64),
    ]
}

fn make_uts(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(UtsActor {
        behavior: BehaviorId(args[0].as_int() as u32),
        cfg: UtsConfig {
            seed: args[1].as_int() as u64,
            root_children: args[2].as_int() as u32,
            m: args[3].as_int() as u32,
            q_fp: args[4].as_int() as u32,
            max_depth: args[5].as_int(),
            node_cost_ns: args[6].as_int() as u64,
        },
    })
}

impl Behavior for UtsActor {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let UtsMsg::Explore { id, depth } = UtsMsg::take(msg);
        ctx.charge(VirtualDuration::from_nanos(self.cfg.node_cost_ns));
        let k = num_children(&self.cfg, id, depth);
        if k == 0 {
            hal::maybe_reply(ctx, Value::Int(1));
            return;
        }
        let customer = SavedCustomer::take(ctx);
        let mut join = JoinBuilder::new();
        for i in 0..k {
            // Children are created *locally*: only the dynamic load
            // balancer distributes this tree.
            let child = ctx.create_local(Box::new(UtsActor {
                behavior: self.behavior,
                cfg: self.cfg,
            }));
            let (sel, args) = UtsMsg::Explore {
                id: child_id(&self.cfg, id, i),
                depth: depth + 1,
            }
            .encode();
            join = join.call(child, sel, args);
        }
        join.then(ctx, move |ctx, vals| {
            let total: i64 = 1 + vals.iter().map(|v| v.as_int()).sum::<i64>();
            customer.reply(ctx, Value::Int(total));
        });
    }

    fn name(&self) -> &'static str {
        "uts"
    }
}

/// Register the UTS behavior.
pub fn register(program: &mut Program) -> BehaviorId {
    program.behavior("uts", make_uts)
}

/// Bootstrap: explore from the root, report `"uts_size"`, stop.
pub fn bootstrap(ctx: &mut Ctx<'_>, behavior: BehaviorId, cfg: UtsConfig) {
    bootstrap_opts(ctx, behavior, cfg, true);
}

/// Like [`bootstrap`], optionally without stopping the machine (for
/// multi-program runs).
pub fn bootstrap_opts(ctx: &mut Ctx<'_>, behavior: BehaviorId, cfg: UtsConfig, stop: bool) {
    let root = ctx.create_on(0, behavior, cfg_args(behavior, &cfg));
    let (sel, args) = UtsMsg::Explore { id: 0, depth: 0 }.encode();
    hal::call_then(ctx, root, sel, args, move |ctx, v| {
        ctx.report("uts_size", v);
        if stop {
            ctx.stop();
        }
    });
}

/// Run on a fresh machine for `machine.backend`; returns
/// `(tree_size, report)`.
pub fn run_sim(machine: MachineConfig, cfg: UtsConfig) -> (u64, SimReport) {
    let mut program = Program::new();
    let id = register(&mut program);
    let report = hal::run(machine, program, |ctx| bootstrap(ctx, id, cfg));
    let size = report
        .value("uts_size")
        .expect("uts did not complete")
        .as_int() as u64;
    (size, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> UtsConfig {
        UtsConfig {
            seed,
            root_children: 8,
            m: 3,
            q_fp: (0.28 * 4294967296.0) as u32,
            max_depth: 40,
            // Per-node work well above the steal round trip, so dynamic
            // balancing can pay for itself even on a small test tree.
            node_cost_ns: 50_000,
        }
    }

    #[test]
    fn actor_tree_size_matches_sequential() {
        for seed in [1u64, 2, 3] {
            let cfg = tiny(seed);
            let expect = sequential_size(&cfg);
            let (size, _) = run_sim(MachineConfig::builder(2).load_balancing(true).build().unwrap(), cfg);
            assert_eq!(size, expect, "seed {seed}");
        }
    }

    #[test]
    fn trees_are_actually_unbalanced() {
        // Distinct root subtrees should differ wildly in size.
        let cfg = tiny(7);
        let sizes: Vec<u64> = (0..cfg.root_children)
            .map(|i| {
                fn rec(cfg: &UtsConfig, id: i64, depth: i64) -> u64 {
                    let k = num_children(cfg, id, depth);
                    1 + (0..k).map(|i| rec(cfg, child_id(cfg, id, i), depth + 1)).sum::<u64>()
                }
                rec(&cfg, child_id(&cfg, 0, i), 1)
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max >= 8 * min.max(1), "not unbalanced enough: {sizes:?}");
    }

    #[test]
    fn load_balancing_helps_on_irregular_trees() {
        let cfg = tiny(5);
        let (s1, no_lb) = run_sim(MachineConfig::builder(8).seed(1).build().unwrap(), cfg);
        let (s2, lb) = run_sim(
            MachineConfig::builder(8).seed(1).load_balancing(true).build().unwrap(),
            cfg,
        );
        assert_eq!(s1, s2);
        assert!(
            lb.makespan.as_nanos() * 2 < no_lb.makespan.as_nanos(),
            "LB should be >2x faster on an unbalanced tree: {} vs {}",
            lb.makespan,
            no_lb.makespan
        );
        assert!(lb.stats.get("steal.granted") > 0);
    }

    #[test]
    fn deterministic_tree_shape() {
        let cfg = tiny(9);
        assert_eq!(sequential_size(&cfg), sequential_size(&cfg));
        assert_ne!(sequential_size(&tiny(9)), sequential_size(&tiny(10)));
    }
}
