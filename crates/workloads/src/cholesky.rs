//! Column-oriented Cholesky decomposition — the Table 1 workload.
//!
//! Table 1 compares four parallel implementations of the same
//! factorization:
//!
//! * **BP** — block column mapping, *pipelined*: "start the execution of
//!   iteration i+1 before the execution of iteration i has completed by
//!   only using local synchronization";
//! * **CP** — identical but with *cyclic* column mapping;
//! * **Seq** — global synchronization: iteration i completes before
//!   iteration i+1 starts, updates sent point-to-point;
//! * **Bcast** — global synchronization with spanning-tree broadcast of
//!   each finished column.
//!
//! One actor per matrix column, created as a `grpnew` group so the
//! mapping (block vs cyclic) is a one-argument change — exactly the
//! paper's "implementations are identical except for the mapping".
//! Column payloads are kilobyte-scale `Bytes`, so every update rides the
//! three-phase bulk protocol; the pipelined variants are the workload
//! where §6.5's minimal flow control earns its keep.

use hal::messages;
use hal::prelude::*;
use hal_baselines::linalg;
use hal_des::VirtualDuration;

messages! {
    /// Cholesky protocol.
    pub enum ChMsg {
        /// Kick off (broadcast to the group; only column 0 acts — and,
        /// in the global variants, the coordinator drives instead).
        Start {} = 0,
        /// Finished column `k` (rows k..n), to be applied as a cmod.
        Update { k: i64, data: hal_am::Bytes } = 1,
        /// Global variants: the coordinator tells column `j` to cdiv.
        DoColumn { j: i64 } = 2,
        /// Global variants: a column acknowledges applying an update.
        Ack {} = 3,
        /// A factored column for the collector.
        Result { j: i64, data: hal_am::Bytes } = 4,
    }
}

/// Synchronization discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sync {
    /// Local synchronization only: fully pipelined (BP/CP).
    Pipelined,
    /// Coordinator-gated iterations, point-to-point updates (Seq).
    GlobalSeq,
    /// Coordinator-gated iterations, broadcast updates (Bcast).
    GlobalBcast,
}

impl Sync {
    fn encode(self) -> i64 {
        match self {
            Sync::Pipelined => 0,
            Sync::GlobalSeq => 1,
            Sync::GlobalBcast => 2,
        }
    }
    fn decode(v: i64) -> Self {
        match v {
            0 => Sync::Pipelined,
            1 => Sync::GlobalSeq,
            2 => Sync::GlobalBcast,
            other => panic!("bad sync code {other}"),
        }
    }
}

/// The four Table 1 variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Block mapping, pipelined.
    BP,
    /// Cyclic mapping, pipelined.
    CP,
    /// Global synchronization, point-to-point.
    Seq,
    /// Global synchronization, broadcast.
    Bcast,
}

impl Variant {
    /// The variant's column mapping.
    pub fn mapping(self) -> Mapping {
        match self {
            Variant::CP => Mapping::Cyclic,
            // The globally synchronized baselines use block mapping like
            // BP; only CP differs.
            _ => Mapping::Block,
        }
    }

    /// The variant's synchronization discipline.
    pub fn sync(self) -> Sync {
        match self {
            Variant::BP | Variant::CP => Sync::Pipelined,
            Variant::Seq => Sync::GlobalSeq,
            Variant::Bcast => Sync::GlobalBcast,
        }
    }

    /// All four, in Table 1 column order.
    pub fn all() -> [Variant; 4] {
        [Variant::BP, Variant::CP, Variant::Seq, Variant::Bcast]
    }
}

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct CholeskyConfig {
    /// Matrix dimension.
    pub n: usize,
    /// Which Table 1 variant to run.
    pub variant: Variant,
    /// Virtual cost per floating-point operation.
    pub per_flop_ns: u64,
    /// Matrix seed.
    pub seed: u64,
}

struct Column {
    j: usize,
    n: usize,
    group: GroupId,
    collector: MailAddr,
    coordinator: Option<MailAddr>,
    sync: Sync,
    per_flop_ns: u64,
    /// Rows j..n of column j (the only part the factorization touches).
    col: Vec<f64>,
    applied: usize,
    factored: bool,
}

impl Column {
    /// Apply `cmod(j, k)`: subtract the outer-product contribution of
    /// finished column k. `data` is rows k..n of L's column k.
    fn cmod(&mut self, ctx: &mut Ctx<'_>, k: usize, data: &[f64]) {
        debug_assert!(k < self.j);
        let ljk = data[self.j - k];
        let rows = self.n - self.j;
        ctx.charge(VirtualDuration::from_nanos(2 * rows as u64 * self.per_flop_ns));
        for i in 0..rows {
            // global row index = j + i; data index = (j + i) - k.
            self.col[i] -= data[self.j + i - k] * ljk;
        }
        self.applied += 1;
    }

    /// `cdiv(j)`: scale by the pivot square root, publish the column.
    fn cdiv(&mut self, ctx: &mut Ctx<'_>) {
        debug_assert!(!self.factored && self.applied == self.j);
        self.factored = true;
        let rows = self.n - self.j;
        ctx.charge(VirtualDuration::from_nanos(
            (rows as u64 + 16) * self.per_flop_ns,
        ));
        let pivot = self.col[0];
        assert!(pivot > 0.0, "lost positive definiteness at column {}", self.j);
        let d = pivot.sqrt();
        self.col[0] = d;
        for v in &mut self.col[1..] {
            *v /= d;
        }
        let data = crate::pack_f64(&self.col);
        // Publish the finished column to later columns. The pipelined
        // variants and Bcast distribute over the spanning tree (one
        // network traversal); Seq sends point-to-point per column — the
        // naive flat fan-out whose sender-side serialization Table 1
        // penalizes. What makes BP/CP fast is that multiple column
        // broadcasts are in flight at once (local synchronization only),
        // while Bcast's coordinator admits one iteration at a time.
        match self.sync {
            Sync::Pipelined | Sync::GlobalBcast => {
                let (sel, args) = ChMsg::Update {
                    k: self.j as i64,
                    data: data.clone(),
                }
                .encode();
                ctx.broadcast(self.group, sel, args);
            }
            Sync::GlobalSeq => {
                for k in (self.j + 1)..self.n {
                    let (sel, args) = ChMsg::Update {
                        k: self.j as i64,
                        data: data.clone(),
                    }
                    .encode();
                    ctx.send_member(self.group, k as u32, sel, args);
                }
            }
        }
        let (sel, args) = ChMsg::Result {
            j: self.j as i64,
            data,
        }
        .encode();
        ctx.send(self.collector, sel, args);
    }
}

impl Behavior for Column {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match ChMsg::take(msg) {
            ChMsg::Start {} => {
                // Pipelined: column 0 needs no updates, so it starts the
                // wavefront. (Global variants are driven by DoColumn.)
                if self.sync == Sync::Pipelined && self.j == 0 && !self.factored {
                    self.cdiv(ctx);
                }
            }
            ChMsg::Update { k, data } => {
                let k = k as usize;
                if k >= self.j {
                    // Broadcast variants deliver every column to every
                    // member; columns ≤ j ignore them (incl. self-copy).
                    return;
                }
                if self.factored {
                    return; // stale broadcast copy
                }
                let col_k = crate::unpack_f64(&data);
                self.cmod(ctx, k, &col_k);
                match self.sync {
                    Sync::Pipelined => {
                        if self.applied == self.j {
                            self.cdiv(ctx);
                        }
                    }
                    Sync::GlobalSeq | Sync::GlobalBcast => {
                        let coord = self.coordinator.expect("global sync has a coordinator");
                        let (sel, args) = ChMsg::Ack {}.encode();
                        ctx.send(coord, sel, args);
                    }
                }
            }
            ChMsg::DoColumn { j } => {
                assert_eq!(j as usize, self.j, "DoColumn routed to wrong column");
                assert_eq!(
                    self.applied, self.j,
                    "global ordering violated: column {} told to cdiv early",
                    self.j
                );
                self.cdiv(ctx);
            }
            _ => unreachable!("column received a coordinator/collector message"),
        }
    }

    fn name(&self) -> &'static str {
        "chol-column"
    }
}

fn make_column(args: &[Value]) -> Box<dyn Behavior> {
    let n = args[0].as_int() as usize;
    let seed = args[1].as_int() as u64;
    let per_flop_ns = args[2].as_int() as u64;
    let sync = Sync::decode(args[3].as_int());
    let collector = args[4].as_addr();
    let coordinator = match &args[5] {
        Value::Addr(a) => Some(*a),
        _ => None,
    };
    let group = args[6].as_group();
    let j = args[7].as_int() as usize;
    // args[8] is the member count (== n).
    let full = linalg::spd_column(n, seed, j);
    Box::new(Column {
        j,
        n,
        group,
        collector,
        coordinator,
        sync,
        per_flop_ns,
        col: full[j..].to_vec(),
        applied: 0,
        factored: false,
    })
}

/// Global-sync coordinator: serializes iterations.
struct Coordinator {
    n: usize,
    group: GroupId,
    j: usize,
    acks_needed: usize,
}

impl Coordinator {
    fn kick(&mut self, ctx: &mut Ctx<'_>) {
        // Tell column j to cdiv; expect acks from columns j+1..n.
        self.acks_needed = self.n - self.j - 1;
        let (sel, args) = ChMsg::DoColumn { j: self.j as i64 }.encode();
        ctx.send_member(self.group, self.j as u32, sel, args);
    }
}

impl Behavior for Coordinator {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            // Start carries the group id (minted after the coordinator
            // was created, so it arrives by message).
            0 => {
                self.group = msg.args[0].as_group();
                self.kick(ctx);
            }
            // Ack
            3 => {
                self.acks_needed -= 1;
                if self.acks_needed == 0 {
                    self.j += 1;
                    if self.j < self.n {
                        self.kick(ctx);
                    }
                    // The collector stops the machine once all Results
                    // arrive (the last column acks nobody).
                }
            }
            other => unreachable!("coordinator received selector {other}"),
        }
    }

    fn name(&self) -> &'static str {
        "chol-coordinator"
    }
}

/// Collects factored columns; reports the Frobenius norm of L (as
/// `"chol_fro"`), optionally each column, then stops the machine.
struct Collector {
    n: usize,
    received: usize,
    fro: f64,
    publish: bool,
    stop_when_done: bool,
}

impl Behavior for Collector {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let ChMsg::Result { j, data } = ChMsg::take(msg) else {
            unreachable!("collector only receives Result");
        };
        self.received += 1;
        let col = crate::unpack_f64(&data);
        self.fro += col.iter().map(|x| x * x).sum::<f64>();
        if self.publish {
            ctx.report(format!("l_{j}"), Value::Bytes(data));
        }
        if self.received == self.n {
            ctx.report("chol_fro", Value::Float(self.fro.sqrt()));
            ctx.report("chol_done_at_ns", Value::Int(ctx.now().as_nanos() as i64));
            if self.stop_when_done {
                ctx.stop();
            }
        }
    }

    fn name(&self) -> &'static str {
        "chol-collector"
    }
}

/// Register the column behavior.
pub fn register(program: &mut Program) -> BehaviorId {
    program.behavior("chol-column", make_column)
}

/// Bootstrap a Cholesky run; `publish` additionally reports every column
/// of L for validation.
pub fn bootstrap(ctx: &mut Ctx<'_>, behavior: BehaviorId, cfg: CholeskyConfig, publish: bool) {
    bootstrap_opts(ctx, behavior, cfg, publish, true);
}

/// Like [`bootstrap`], optionally without stopping the machine (for
/// multi-program runs).
pub fn bootstrap_opts(
    ctx: &mut Ctx<'_>,
    behavior: BehaviorId,
    cfg: CholeskyConfig,
    publish: bool,
    stop_when_done: bool,
) {
    let sync = cfg.variant.sync();
    let collector = ctx.create_local(Box::new(Collector {
        n: cfg.n,
        received: 0,
        fro: 0.0,
        publish,
        stop_when_done,
    }));
    // The members need the coordinator's address at construction, and
    // the coordinator needs the group id — so the coordinator is created
    // first and learns the group id from its Start message (no member
    // can ack before the coordinator's first DoColumn, so there is no
    // race).
    if sync != Sync::Pipelined {
        let coordinator = ctx.create_local(Box::new(Coordinator {
            n: cfg.n,
            group: GroupId(0), // patched by the Start handler
            j: 0,
            acks_needed: 0,
        }));
        let group = ctx.grpnew_mapped(
            behavior,
            cfg.n as u32,
            vec![
                Value::Int(cfg.n as i64),
                Value::Int(cfg.seed as i64),
                Value::Int(cfg.per_flop_ns as i64),
                Value::Int(sync.encode()),
                Value::Addr(collector),
                Value::Addr(coordinator),
            ],
            cfg.variant.mapping(),
        );
        // Patch the coordinator's group via a Start that carries it: we
        // extend Start for this purpose with a group argument.
        let (sel, _) = ChMsg::Start {}.encode();
        ctx.send(coordinator, sel, vec![Value::Group(group)]);
    } else {
        let group = ctx.grpnew_mapped(
            behavior,
            cfg.n as u32,
            vec![
                Value::Int(cfg.n as i64),
                Value::Int(cfg.seed as i64),
                Value::Int(cfg.per_flop_ns as i64),
                Value::Int(sync.encode()),
                Value::Addr(collector),
                Value::Int(0), // no coordinator
            ],
            cfg.variant.mapping(),
        );
        let (sel, args) = ChMsg::Start {}.encode();
        ctx.broadcast(group, sel, args);
    }
}

/// Run on a fresh machine for `machine.backend` (simulated by default,
/// live under `BackendKind::Live`); returns `(frobenius_norm_of_L,
/// report)`.
pub fn run_sim(machine: MachineConfig, cfg: CholeskyConfig, publish: bool) -> (f64, SimReport) {
    let mut program = Program::new();
    let id = register(&mut program);
    let report = hal::run(machine, program, |ctx| bootstrap(ctx, id, cfg, publish));
    let fro = report
        .value("chol_fro")
        .expect("cholesky did not complete")
        .as_float();
    (fro, report)
}

/// Reassemble L (lower triangle, row-major full matrix) from a
/// `publish` report.
pub fn extract_l(report: &SimReport, n: usize) -> Vec<f64> {
    let mut l = vec![0.0; n * n];
    for j in 0..n {
        let data = report
            .value(&format!("l_{j}"))
            .unwrap_or_else(|| panic!("missing column {j}"))
            .as_bytes();
        let col = crate::unpack_f64(&data);
        assert_eq!(col.len(), n - j);
        for (i, v) in col.iter().enumerate() {
            l[(j + i) * n + j] = *v;
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use hal_baselines::{cholesky_seq, random_spd};

    fn reference_l(n: usize, seed: u64) -> Vec<f64> {
        let mut a = random_spd(n, seed);
        cholesky_seq(&mut a, n);
        // Zero the upper triangle for comparison.
        for i in 0..n {
            for j in i + 1..n {
                a[i * n + j] = 0.0;
            }
        }
        a
    }

    fn check_variant(variant: Variant, n: usize, nodes: usize) {
        let cfg = CholeskyConfig {
            n,
            variant,
            per_flop_ns: 100,
            seed: 17,
        };
        let (_, report) = run_sim(MachineConfig::new(nodes), cfg, true);
        let l = extract_l(&report, n);
        let expect = reference_l(n, 17);
        let max = l
            .iter()
            .zip(&expect)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max < 1e-9, "{variant:?}: max error {max}");
    }

    #[test]
    fn bp_matches_reference() {
        check_variant(Variant::BP, 12, 4);
    }

    #[test]
    fn cp_matches_reference() {
        check_variant(Variant::CP, 12, 4);
    }

    #[test]
    fn seq_matches_reference() {
        check_variant(Variant::Seq, 12, 4);
    }

    #[test]
    fn bcast_matches_reference() {
        check_variant(Variant::Bcast, 12, 4);
    }

    #[test]
    fn single_node_works() {
        check_variant(Variant::BP, 8, 1);
    }

    #[test]
    fn pipelined_beats_global_sync() {
        // The Table 1 headline: local synchronization (BP/CP) outperforms
        // completing each iteration globally (Seq/Bcast).
        let mk = |variant| CholeskyConfig {
            n: 32,
            variant,
            per_flop_ns: 100,
            seed: 3,
        };
        let bp = run_sim(MachineConfig::new(4), mk(Variant::BP), false).1;
        let seq = run_sim(MachineConfig::new(4), mk(Variant::Seq), false).1;
        assert!(
            bp.makespan < seq.makespan,
            "BP {} should beat Seq {}",
            bp.makespan,
            seq.makespan
        );
    }
}
