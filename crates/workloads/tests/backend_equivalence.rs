//! Cross-backend equivalence: the simulated and live backends run the
//! *same* kernels over different transports, so application-level
//! results must agree exactly — fib's value, Cholesky's Frobenius norm,
//! and a migration chase's exactly-once probe delivery. Host timing
//! (makespans, event counts) legitimately differs; correctness may not.
//!
//! Every live run also goes through the `hal-check` protocol invariant
//! checker with the flight recorder on: the reliable layer is the live
//! wire protocol, and a duplicate or lost delivery would surface here
//! as a violation or a wrong final value.

use hal::prelude::*;
use hal_kernel::SimReport;
use hal_workloads::{cholesky, fib};

const SEEDS: [u64; 3] = [1, 0x5EED, 42];
/// Live partition sizes — one real kernel thread per node.
const LIVE_NODES: [usize; 2] = [2, 4];

fn cfg(nodes: usize, seed: u64, backend: BackendKind) -> MachineConfig {
    MachineConfig::builder(nodes)
        .seed(seed)
        .backend(backend)
        .observe(ObserveOpts::none().trace(true))
        .build()
        .unwrap()
}

fn assert_clean(label: &str, report: &SimReport) {
    let mut cr = hal_check::CheckReport::new("backend-equivalence");
    hal_check::check_sim_report(label, report, &mut cr);
    assert!(cr.is_clean(), "{label}: {}", cr.summary());
}

#[test]
fn fib_value_agrees_across_backends() {
    for seed in SEEDS {
        for nodes in LIVE_NODES {
            let fc = fib::FibConfig {
                n: 13,
                grain: 4,
                placement: fib::Placement::RoundRobin,
            };
            let (v_sim, r_sim) = fib::run_sim(cfg(nodes, seed, BackendKind::Sim), fc);
            let (v_live, r_live) = fib::run_sim(cfg(nodes, seed, BackendKind::Live), fc);
            assert_eq!(v_sim, 233, "fib(13) wrong on sim (seed {seed} K={nodes})");
            assert_eq!(
                v_sim, v_live,
                "fib value diverged between backends (seed {seed} K={nodes})"
            );
            assert!(r_sim.events > 0);
            assert_clean(&format!("fib seed={seed} K={nodes}"), &r_live);
        }
    }
}

#[test]
fn cholesky_norm_agrees_across_backends() {
    for seed in SEEDS {
        for nodes in LIVE_NODES {
            let cc = cholesky::CholeskyConfig {
                n: 8,
                variant: cholesky::Variant::BP,
                per_flop_ns: 50,
                seed,
            };
            let (f_sim, _) = cholesky::run_sim(cfg(nodes, seed, BackendKind::Sim), cc, false);
            let (f_live, r_live) = cholesky::run_sim(cfg(nodes, seed, BackendKind::Live), cc, false);
            assert!(f_sim.is_finite() && f_sim > 0.0, "factorization failed");
            // The norm reduction sums block contributions in message-
            // arrival order, which the live transport does not replay
            // exactly — identical factors, reduction-order ulps apart.
            assert!(
                (f_sim - f_live).abs() <= 1e-12 * f_sim,
                "Cholesky norm diverged between backends (seed {seed} K={nodes}): {f_sim} vs {f_live}"
            );
            assert_clean(&format!("cholesky seed={seed} K={nodes}"), &r_live);
        }
    }
}

// ---- migration chase: a nomad walks a hop chain while a sprayer races
// it with probes that arrive through FIR chases and forward chains.
// Unlike the parallel-equivalence chase, this one stops the machine
// itself (the live runtime has no global quiescence detection), so the
// same program drives both backends. ----

struct Nomad {
    hops: Vec<u16>,
    probes: i64,
    expected: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("probe_delivered", Value::Int(self.probes));
                if self.probes == self.expected {
                    ctx.stop();
                }
            }
            _ => unreachable!(),
        }
    }
}

struct Spray {
    target: MailAddr,
    n: i64,
}
impl Behavior for Spray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for _ in 0..self.n {
            ctx.send(self.target, 1, vec![]);
        }
    }
}

fn run_chase(nodes: usize, seed: u64, backend: BackendKind) -> SimReport {
    const CHAIN: usize = 8;
    const PROBES: i64 = 20;
    let mut program = Program::new();
    let spray = program.behavior("spray", |args: &[Value]| {
        Box::new(Spray {
            target: args[0].as_addr(),
            n: args[1].as_int(),
        }) as Box<dyn Behavior>
    });
    let mut m = Machine::from_config(cfg(nodes, seed, backend), program.build());
    m.with_ctx(0, |ctx| {
        let hops: Vec<u16> = (0..CHAIN).rev().map(|i| ((i % (nodes - 1)) + 1) as u16).collect();
        let nomad = ctx.create_local(Box::new(Nomad {
            hops,
            probes: 0,
            expected: PROBES,
        }));
        ctx.send(nomad, 0, vec![]);
        let s = ctx.create_on((nodes - 1) as u16, spray, vec![Value::Addr(nomad), Value::Int(PROBES)]);
        ctx.send(s, 0, vec![]);
    });
    m.run().unwrap()
}

#[test]
fn migration_chase_delivers_exactly_once_on_both_backends() {
    for seed in SEEDS {
        for nodes in LIVE_NODES {
            let r_sim = run_chase(nodes, seed, BackendKind::Sim);
            let r_live = run_chase(nodes, seed, BackendKind::Live);
            // The live backend has no quiescence detection, so the
            // explicit stop at the 20th probe can truncate an FIR chase
            // still in flight — the liveness audit's UnansweredFir is
            // inherent to that shutdown, not a delivery bug. Every
            // other invariant (exactly-once per link seq, acyclic
            // chains, alias ordering) must still hold.
            let mut cr = hal_check::CheckReport::new("backend-equivalence");
            hal_check::check_sim_report(&format!("chase seed={seed} K={nodes}"), &r_live, &mut cr);
            cr.violations
                .retain(|v| v.kind != hal_check::ViolationKind::UnansweredFir);
            assert!(cr.is_clean(), "chase seed={seed} K={nodes}: {}", cr.summary());
            for (backend, r) in [("sim", &r_sim), ("live", &r_live)] {
                let delivered = r.values("probe_delivered");
                assert_eq!(
                    delivered.len(),
                    20,
                    "{backend}: exactly-once delivery violated (seed {seed} K={nodes})"
                );
                let max = delivered.iter().map(|v| v.as_int()).max().unwrap();
                assert_eq!(
                    max, 20,
                    "{backend}: probe counter ended wrong (seed {seed} K={nodes})"
                );
            }
        }
    }
}
