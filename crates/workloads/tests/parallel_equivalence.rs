//! Parallel determinism: for a fixed seed, the windowed executor must
//! produce a **bit-identical** `SimReport` at every parallelism level —
//! same counters, same final virtual times, same reported values, same
//! merged trace event sequence. `K = 1` is the reference; `K = 2` and
//! `K = 7` (deliberately not a divisor of the node count) must match it
//! exactly, across workloads that stress different kernel machinery:
//! fib (join continuations + load balancing), Cholesky (groups +
//! broadcast + bulk transfers), and a migration chase (FIRs + forward
//! chains + racing probes).

use hal::prelude::*;
use hal_kernel::{SimMachine, SimReport};
use hal_workloads::{cholesky, fib};

const PARALLELISMS: [usize; 2] = [2, 7];
const SEEDS: [u64; 3] = [1, 0x5EED, 42];

/// Run `build` at K = 1 and at each parallelism level; every report must
/// equal the reference exactly.
fn assert_equivalent(label: &str, build: impl Fn(usize) -> SimReport) {
    let reference = build(1);
    assert!(
        reference.events > 0,
        "{label}: reference run executed nothing"
    );
    for k in PARALLELISMS {
        let parallel = build(k);
        assert_eq!(
            reference, parallel,
            "{label}: K={k} report diverged from sequential reference"
        );
    }
}

#[test]
fn fib_with_load_balancing_is_identical() {
    for seed in SEEDS {
        assert_equivalent(&format!("fib-lb seed={seed}"), |k| {
            let cfg = fib::FibConfig {
                n: 13,
                grain: 3,
                placement: fib::Placement::Local,
            };
            let machine = MachineConfig::builder(8)
                .seed(seed)
                .load_balancing(true)
                .parallelism(k).build().unwrap();
            let (v, report) = fib::run_sim(machine, cfg);
            assert_eq!(v, 233, "fib(13) wrong");
            report
        });
    }
}

#[test]
fn fib_static_placement_with_trace_is_identical() {
    // Trace recording on: the merged flight-recorder event sequence is
    // part of the equality.
    assert_equivalent("fib-static-trace", |k| {
        let cfg = fib::FibConfig {
            n: 12,
            grain: 2,
            placement: fib::Placement::RoundRobin,
        };
        let machine = MachineConfig::builder(8)
            .seed(0x5EED)
            .trace()
            .parallelism(k).build().unwrap();
        let (v, report) = fib::run_sim(machine, cfg);
        assert_eq!(v, 144, "fib(12) wrong");
        assert!(
            report.trace.as_ref().is_some_and(|t| !t.events.is_empty()),
            "trace should have recorded events"
        );
        report
    });
}

#[test]
fn cholesky_is_identical() {
    for seed in SEEDS {
        assert_equivalent(&format!("cholesky seed={seed}"), |k| {
            let cfg = cholesky::CholeskyConfig {
                n: 8,
                variant: cholesky::Variant::BP,
                per_flop_ns: 50,
                seed,
            };
            let machine = MachineConfig::builder(6).seed(seed).parallelism(k).build().unwrap();
            let (fro, report) = cholesky::run_sim(machine, cfg, false);
            assert!(fro.is_finite() && fro > 0.0, "factorization failed");
            report
        });
    }
}

// ---- migration chase (the Fig. 3 pattern: a nomad actor walks hops
// while probes race it through FIR chases and forward chains) ----

struct Nomad {
    hops: Vec<u16>,
    probes: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("probe_delivered", Value::Int(self.probes));
            }
            _ => unreachable!(),
        }
    }
}

struct Spray {
    target: MailAddr,
    n: i64,
}
impl Behavior for Spray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for _ in 0..self.n {
            ctx.send(self.target, 1, vec![]);
        }
    }
}

fn run_chase(seed: u64, k: usize) -> SimReport {
    const CHAIN: usize = 8;
    const PROBES: i64 = 20;
    let p = 8usize;
    let mut program = Program::new();
    let spray = program.behavior("spray", |args: &[Value]| {
        Box::new(Spray {
            target: args[0].as_addr(),
            n: args[1].as_int(),
        }) as Box<dyn Behavior>
    });
    let mut m = SimMachine::new(
        MachineConfig::builder(p)
            .seed(seed)
            .trace()
            .parallelism(k).build().unwrap(),
        program.build(),
    );
    m.with_ctx(0, |ctx| {
        let hops: Vec<u16> = (0..CHAIN).rev().map(|i| ((i % (p - 1)) + 1) as u16).collect();
        let nomad = ctx.create_local(Box::new(Nomad {
            hops,
            probes: 0,
        }));
        ctx.send(nomad, 0, vec![]);
        let s = ctx.create_on(4, spray, vec![Value::Addr(nomad), Value::Int(PROBES)]);
        ctx.send(s, 0, vec![]);
    });
    let report = m.run().unwrap();
    assert_eq!(
        report.values("probe_delivered").len(),
        20,
        "exactly-once delivery violated"
    );
    report
}

#[test]
fn migration_chase_is_identical() {
    for seed in SEEDS {
        assert_equivalent(&format!("migration-chase seed={seed}"), |k| {
            run_chase(seed, k)
        });
    }
}

// ---- fused/watermark executor paths ----

#[test]
fn fib_under_chaos_is_identical_on_fused_paths() {
    // Compute-heavy fib is where window fusion fires (long stretches
    // with no cross-shard injection in flight), and 10% chaos makes the
    // replayed fault draws part of the equality: a fused boundary that
    // skipped a replay it needed, or consumed a chaos draw out of
    // order, diverges here.
    for seed in SEEDS {
        assert_equivalent(&format!("fib-chaos seed={seed}"), |k| {
            let cfg = fib::FibConfig {
                n: 13,
                grain: 3,
                placement: fib::Placement::RoundRobin,
            };
            let machine = MachineConfig::builder(8)
                .seed(seed)
                .faults(FaultPlan::chaos(0.10))
                .parallelism(k)
                .build()
                .unwrap();
            let (v, report) = fib::run_sim(machine, cfg);
            assert_eq!(v, 233, "fib(13) wrong under chaos");
            assert!(
                report.stats.get("net.fault_dropped") > 0,
                "chaos at 10% dropped nothing — the plan is not live (seed {seed})"
            );
            report
        });
    }
}

// ---- directed test: an injection whose arrival lands exactly on a
// fused-batch boundary ----
//
// With every kernel cost zero except `method_invoke` = 1000 ns, and a
// link of `inject_overhead` 400 ns + `latency` 600 ns (+ 0 ns/byte),
// the lookahead is L = 1000 ns and *every* actor step lands on an
// exact multiple of L. A cross-shard send issued at step time `m·L`
// therefore arrives at exactly `(m+1)·L` — the closed boundary of the
// window that staged it. That is the fusion edge case: the watermark
// equals the window end, the window is still fusable (windows are
// half-open), and the arrival must be parked into the *next* window,
// never executed a window early or dropped at the boundary.

struct BoundaryTicker {
    remaining: u32,
}
impl Behavior for BoundaryTicker {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let me = ctx.me();
            ctx.send(me, 0, vec![]);
        } else {
            ctx.report("ticker_done", Value::Int(1));
        }
    }
}

struct BoundaryCounter {
    seen: i64,
}
impl Behavior for BoundaryCounter {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        self.seen += 1;
        ctx.report("boundary_probe", Value::Int(self.seen));
    }
}

struct BoundarySpray {
    target: MailAddr,
    remaining: i64,
}
impl Behavior for BoundarySpray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        if self.remaining > 0 {
            self.remaining -= 1;
            // One cross-shard probe per 1000 ns step: each arrival is
            // staged with a timestamp exactly on the next window
            // boundary.
            ctx.send(self.target, 0, vec![]);
            let me = ctx.me();
            ctx.send(me, 0, vec![]);
        }
    }
}

fn run_boundary(k: usize) -> SimReport {
    use hal_am::LinkModel;
    use hal_des::VirtualDuration;
    use hal_kernel::CostModel;

    const TICKS: u32 = 50;
    const PROBES: i64 = 10;
    let cost = CostModel {
        method_invoke: VirtualDuration::from_nanos(1_000),
        ..CostModel::zero()
    };
    let link = LinkModel {
        latency: VirtualDuration::from_nanos(600),
        per_byte: VirtualDuration::ZERO,
        inject_overhead: VirtualDuration::from_nanos(400),
        backpressure_window: VirtualDuration::from_millis(1),
    };
    let mut program = Program::new();
    let counter = program.behavior("counter", |_: &[Value]| {
        Box::new(BoundaryCounter { seen: 0 }) as Box<dyn Behavior>
    });
    let spray = program.behavior("spray", |args: &[Value]| {
        Box::new(BoundarySpray {
            target: args[0].as_addr(),
            remaining: args[1].as_int(),
        }) as Box<dyn Behavior>
    });
    let mut m = SimMachine::new(
        MachineConfig::builder(8)
            .seed(7)
            .cost(cost)
            .link(link)
            .parallelism(k)
            .prof()
            .build()
            .unwrap(),
        program.build(),
    );
    m.with_ctx(0, |ctx| {
        // Pure-local work on shard 0 keeps windows busy and fusable
        // while the probes race across shards.
        let ticker = ctx.create_local(Box::new(BoundaryTicker { remaining: TICKS }));
        ctx.send(ticker, 0, vec![]);
        // Receiver on node 2, sender on node 1: with K ∈ {2, 7} they
        // live on different shards, so every probe is a cross-shard
        // staged send.
        let c = ctx.create_on(2, counter, vec![]);
        let s = ctx.create_on(1, spray, vec![Value::Addr(c), Value::Int(PROBES)]);
        ctx.send(s, 0, vec![]);
    });
    let report = m.run().unwrap();
    assert_eq!(
        report.values("boundary_probe").len(),
        PROBES as usize,
        "a boundary-timestamped probe was lost or duplicated at K={k}"
    );
    assert_eq!(report.values("ticker_done").len(), 1, "ticker never finished at K={k}");
    // Everything in this system happens on exact multiples of the
    // 1000 ns lookahead, so the makespan must sit on the grid too.
    assert_eq!(
        report.makespan.as_nanos() % 1_000,
        0,
        "K={k}: makespan {} ns is off the 1000 ns boundary grid",
        report.makespan.as_nanos()
    );
    report
}

#[test]
fn injection_exactly_on_fused_batch_boundary_is_identical() {
    let reference = run_boundary(1);
    assert!(reference.events > 0);
    for k in PARALLELISMS {
        let parallel = run_boundary(k);
        assert_eq!(
            reference, parallel,
            "boundary-timestamped injections diverged at K={k}"
        );
        // The directed point: the ticker's long local-only stretches
        // must actually exercise the fused path while boundary-exact
        // arrivals are in flight.
        let prof = parallel.prof.as_ref().expect("prof requested");
        let fused: u64 = prof.shards.iter().map(|s| s.fused_windows).sum();
        assert!(
            fused >= 1,
            "K={k}: no window fused — the directed scenario no longer covers the fusion edge"
        );
    }
}
