//! Parallel determinism: for a fixed seed, the windowed executor must
//! produce a **bit-identical** `SimReport` at every parallelism level —
//! same counters, same final virtual times, same reported values, same
//! merged trace event sequence. `K = 1` is the reference; `K = 2` and
//! `K = 7` (deliberately not a divisor of the node count) must match it
//! exactly, across workloads that stress different kernel machinery:
//! fib (join continuations + load balancing), Cholesky (groups +
//! broadcast + bulk transfers), and a migration chase (FIRs + forward
//! chains + racing probes).

use hal::prelude::*;
use hal_kernel::SimReport;
use hal_workloads::{cholesky, fib};

const PARALLELISMS: [usize; 2] = [2, 7];
const SEEDS: [u64; 3] = [1, 0x5EED, 42];

/// Run `build` at K = 1 and at each parallelism level; every report must
/// equal the reference exactly.
fn assert_equivalent(label: &str, build: impl Fn(usize) -> SimReport) {
    let reference = build(1);
    assert!(
        reference.events > 0,
        "{label}: reference run executed nothing"
    );
    for k in PARALLELISMS {
        let parallel = build(k);
        assert_eq!(
            reference, parallel,
            "{label}: K={k} report diverged from sequential reference"
        );
    }
}

#[test]
fn fib_with_load_balancing_is_identical() {
    for seed in SEEDS {
        assert_equivalent(&format!("fib-lb seed={seed}"), |k| {
            let cfg = fib::FibConfig {
                n: 13,
                grain: 3,
                placement: fib::Placement::Local,
            };
            let machine = MachineConfig::builder(8)
                .seed(seed)
                .load_balancing(true)
                .parallelism(k).build().unwrap();
            let (v, report) = fib::run_sim(machine, cfg);
            assert_eq!(v, 233, "fib(13) wrong");
            report
        });
    }
}

#[test]
fn fib_static_placement_with_trace_is_identical() {
    // Trace recording on: the merged flight-recorder event sequence is
    // part of the equality.
    assert_equivalent("fib-static-trace", |k| {
        let cfg = fib::FibConfig {
            n: 12,
            grain: 2,
            placement: fib::Placement::RoundRobin,
        };
        let machine = MachineConfig::builder(8)
            .seed(0x5EED)
            .trace()
            .parallelism(k).build().unwrap();
        let (v, report) = fib::run_sim(machine, cfg);
        assert_eq!(v, 144, "fib(12) wrong");
        assert!(
            report.trace.as_ref().is_some_and(|t| !t.events.is_empty()),
            "trace should have recorded events"
        );
        report
    });
}

#[test]
fn cholesky_is_identical() {
    for seed in SEEDS {
        assert_equivalent(&format!("cholesky seed={seed}"), |k| {
            let cfg = cholesky::CholeskyConfig {
                n: 8,
                variant: cholesky::Variant::BP,
                per_flop_ns: 50,
                seed,
            };
            let machine = MachineConfig::builder(6).seed(seed).parallelism(k).build().unwrap();
            let (fro, report) = cholesky::run_sim(machine, cfg, false);
            assert!(fro.is_finite() && fro > 0.0, "factorization failed");
            report
        });
    }
}

// ---- migration chase (the Fig. 3 pattern: a nomad actor walks hops
// while probes race it through FIR chases and forward chains) ----

struct Nomad {
    hops: Vec<u16>,
    probes: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("probe_delivered", Value::Int(self.probes));
            }
            _ => unreachable!(),
        }
    }
}

struct Spray {
    target: MailAddr,
    n: i64,
}
impl Behavior for Spray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for _ in 0..self.n {
            ctx.send(self.target, 1, vec![]);
        }
    }
}

fn run_chase(seed: u64, k: usize) -> SimReport {
    const CHAIN: usize = 8;
    const PROBES: i64 = 20;
    let p = 8usize;
    let mut program = Program::new();
    let spray = program.behavior("spray", |args: &[Value]| {
        Box::new(Spray {
            target: args[0].as_addr(),
            n: args[1].as_int(),
        }) as Box<dyn Behavior>
    });
    let mut m = SimMachine::new(
        MachineConfig::builder(p)
            .seed(seed)
            .trace()
            .parallelism(k).build().unwrap(),
        program.build(),
    );
    m.with_ctx(0, |ctx| {
        let hops: Vec<u16> = (0..CHAIN).rev().map(|i| ((i % (p - 1)) + 1) as u16).collect();
        let nomad = ctx.create_local(Box::new(Nomad {
            hops,
            probes: 0,
        }));
        ctx.send(nomad, 0, vec![]);
        let s = ctx.create_on(4, spray, vec![Value::Addr(nomad), Value::Int(PROBES)]);
        ctx.send(s, 0, vec![]);
    });
    let report = m.run().unwrap();
    assert_eq!(
        report.values("probe_delivered").len(),
        20,
        "exactly-once delivery violated"
    );
    report
}

#[test]
fn migration_chase_is_identical() {
    for seed in SEEDS {
        assert_equivalent(&format!("migration-chase seed={seed}"), |k| {
            run_chase(seed, k)
        });
    }
}
