//! Observability determinism: the span report, the metrics timeseries,
//! and the critical-path analysis are all derived from virtual-time
//! facts, so their JSON serializations must be **byte-identical** at
//! every executor parallelism. `K = 1` is the reference; `K = 2` and
//! `K = 7` must match it exactly, across seeds, on both a
//! join-continuation workload (fib) and a migration chase (FIRs +
//! forward chains + racing probes).

use hal::prelude::*;
use hal_kernel::span::SpanReport;
use hal_kernel::{SimMachine, SimReport};
use hal_profile::critical_paths;
use hal_workloads::fib;

const PARALLELISMS: [usize; 2] = [2, 7];
const SEEDS: [u64; 3] = [1, 0x5EED, 42];

/// The three observability artifacts of one run, as serialized bytes.
fn artifacts(label: &str, report: &SimReport) -> (String, String, String) {
    let trace = report
        .trace
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: tracing was enabled"));
    let spans = SpanReport::build(trace);
    assert!(!spans.msgs.is_empty(), "{label}: no message spans");
    let makespan_ns = report.makespan.as_nanos();
    let cp = critical_paths(&spans, 5);
    if let Some(c) = cp.critical() {
        assert!(
            c.total_ns <= makespan_ns,
            "{label}: critical path {} ns exceeds makespan {} ns",
            c.total_ns,
            makespan_ns
        );
    }
    let metrics = report
        .metrics
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: metrics were enabled"));
    (
        spans.to_json(),
        metrics.to_json(makespan_ns),
        cp.to_json(makespan_ns),
    )
}

/// Run `build` at K = 1 and each parallelism level; every serialized
/// artifact must equal the reference byte-for-byte.
fn assert_byte_identical(label: &str, build: impl Fn(usize) -> SimReport) {
    let reference = build(1);
    let (spans1, metrics1, cp1) = artifacts(label, &reference);
    for k in PARALLELISMS {
        let parallel = build(k);
        let lk = format!("{label} K={k}");
        let (spans_k, metrics_k, cp_k) = artifacts(&lk, &parallel);
        assert_eq!(spans1, spans_k, "{lk}: span JSON diverged from K=1");
        assert_eq!(metrics1, metrics_k, "{lk}: metrics JSON diverged from K=1");
        assert_eq!(cp1, cp_k, "{lk}: critical-path JSON diverged from K=1");
    }
}

#[test]
fn fib_spans_and_metrics_are_byte_identical() {
    for seed in SEEDS {
        assert_byte_identical(&format!("fib seed={seed}"), |k| {
            let cfg = fib::FibConfig {
                n: 13,
                grain: 3,
                placement: fib::Placement::Local,
            };
            let machine = MachineConfig::builder(8)
                .seed(seed)
                .load_balancing(true)
                .trace()
                .metrics()
                .parallelism(k)
                .build()
                .unwrap();
            let (v, report) = fib::run_sim(machine, cfg);
            assert_eq!(v, 233, "fib(13) wrong");
            report
        });
    }
}

// ---- migration chase: FIR chases and forward chains give the span
// reconstructor its hardest inputs (chase spans spanning nodes, parked
// probes, Migrated-path deliveries) ----

struct Nomad {
    hops: Vec<u16>,
    probes: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("probe_delivered", Value::Int(self.probes));
            }
            _ => unreachable!(),
        }
    }
}

struct Spray {
    target: MailAddr,
    n: i64,
}
impl Behavior for Spray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for _ in 0..self.n {
            ctx.send(self.target, 1, vec![]);
        }
    }
}

fn run_chase(seed: u64, k: usize) -> SimReport {
    const CHAIN: usize = 8;
    const PROBES: i64 = 20;
    let p = 8usize;
    let mut program = Program::new();
    let spray = program.behavior("spray", |args: &[Value]| {
        Box::new(Spray {
            target: args[0].as_addr(),
            n: args[1].as_int(),
        }) as Box<dyn Behavior>
    });
    let mut m = SimMachine::new(
        MachineConfig::builder(p)
            .seed(seed)
            .trace()
            .metrics()
            .parallelism(k)
            .build()
            .unwrap(),
        program.build(),
    );
    m.with_ctx(0, |ctx| {
        let hops: Vec<u16> = (0..CHAIN).rev().map(|i| ((i % (p - 1)) + 1) as u16).collect();
        let nomad = ctx.create_local(Box::new(Nomad { hops, probes: 0 }));
        ctx.send(nomad, 0, vec![]);
        let s = ctx.create_on(4, spray, vec![Value::Addr(nomad), Value::Int(PROBES)]);
        ctx.send(s, 0, vec![]);
    });
    let report = m.run().unwrap();
    assert_eq!(
        report.values("probe_delivered").len(),
        PROBES as usize,
        "exactly-once delivery violated"
    );
    report
}

#[test]
fn migration_chase_spans_and_metrics_are_byte_identical() {
    for seed in SEEDS {
        assert_byte_identical(&format!("migration-chase seed={seed}"), |k| {
            run_chase(seed, k)
        });
    }
}
