//! Chaos integration: the migration-chase workload under seeded
//! drop/duplicate/reorder faults must still deliver every probe exactly
//! once (the reliable layer's contract), reach the same final actor
//! state as the fault-free run, and stay bit-identical across executor
//! parallelism levels — faults are ordinary staged link actions, so the
//! windowed executor replays them deterministically.

use hal::prelude::*;
use hal_kernel::{SimMachine, SimReport};

const PARALLELISMS: [usize; 2] = [2, 7];
const SEEDS: [u64; 3] = [1, 0x5EED, 42];
const RATES: [f64; 2] = [0.05, 0.15];
const CHAIN: usize = 8;
const PROBES: i64 = 20;

struct Nomad {
    hops: Vec<u16>,
    probes: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("probe_delivered", Value::Int(self.probes));
            }
            _ => unreachable!(),
        }
    }
}

struct Spray {
    target: MailAddr,
    n: i64,
}
impl Behavior for Spray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for _ in 0..self.n {
            ctx.send(self.target, 1, vec![]);
        }
    }
}

fn run_chase(seed: u64, rate: f64, k: usize) -> SimReport {
    let p = 8usize;
    let mut program = Program::new();
    let spray = program.behavior("spray", |args: &[Value]| {
        Box::new(Spray {
            target: args[0].as_addr(),
            n: args[1].as_int(),
        }) as Box<dyn Behavior>
    });
    let cfg = MachineConfig::builder(p)
        .seed(seed)
        .faults(FaultPlan::chaos(rate))
        .parallelism(k)
        .build()
        .unwrap();
    let mut m = SimMachine::new(cfg, program.build());
    m.with_ctx(0, |ctx| {
        let hops: Vec<u16> = (0..CHAIN).rev().map(|i| ((i % (p - 1)) + 1) as u16).collect();
        let nomad = ctx.create_local(Box::new(Nomad { hops, probes: 0 }));
        ctx.send(nomad, 0, vec![]);
        let s = ctx.create_on(4, spray, vec![Value::Addr(nomad), Value::Int(PROBES)]);
        ctx.send(s, 0, vec![]);
    });
    m.run().unwrap()
}

/// The nomad's reported probe sequence — its externally visible final
/// state (`probes` counts every delivery, duplicates included, so
/// equality with the fault-free run *is* the exactly-once property).
fn probe_seq(r: &SimReport) -> Vec<i64> {
    r.values("probe_delivered").into_iter().map(|v| v.as_int()).collect()
}

#[test]
fn chase_under_faults_delivers_exactly_once() {
    for seed in SEEDS {
        let clean = run_chase(seed, 0.0, 1);
        assert_eq!(
            probe_seq(&clean),
            (1..=PROBES).collect::<Vec<_>>(),
            "fault-free baseline broken (seed {seed})"
        );
        for rate in RATES {
            let faulty = run_chase(seed, rate, 1);
            assert!(
                faulty.stats.get("net.fault_dropped") > 0,
                "rate {rate} dropped nothing — the plan is not live (seed {seed})"
            );
            assert_eq!(
                probe_seq(&faulty),
                probe_seq(&clean),
                "final actor state diverged from the fault-free run \
                 (seed {seed}, rate {rate})"
            );
        }
    }
}

#[test]
fn chase_under_faults_is_identical_across_parallelism() {
    for seed in SEEDS {
        for rate in RATES {
            let reference = run_chase(seed, rate, 1);
            assert!(reference.events > 0);
            for k in PARALLELISMS {
                let parallel = run_chase(seed, rate, k);
                assert_eq!(
                    reference, parallel,
                    "chaos run diverged at K={k} (seed {seed}, rate {rate})"
                );
            }
        }
    }
}
