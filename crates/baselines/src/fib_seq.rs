//! Sequential Fibonacci — the "optimized C" baseline of Table 4.
//!
//! The paper reports 8.49 s for an optimized C fib(33) on one 33 MHz
//! SPARC node, against which the actor system's overhead is judged.

/// Plain recursive Fibonacci — deliberately the same doubly-recursive
/// algorithm the actor version runs, so the comparison isolates runtime
/// overhead rather than algorithmic differences.
pub fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

/// Iterative Fibonacci (for result validation only — O(n)).
pub fn fib_iter(n: u64) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..n {
        let c = a + b;
        a = b;
        b = c;
    }
    a
}

/// Number of call-tree nodes of the doubly recursive fib — the actor
/// version creates one actor per node, so this predicts actor counts.
/// Satisfies `nodes(n) = 2*fib(n+1) - 1`.
pub fn call_tree_nodes(n: u64) -> u64 {
    2 * fib_iter(n + 1) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        let expect = [0u64, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55];
        for (n, &e) in expect.iter().enumerate() {
            assert_eq!(fib(n as u64), e);
            assert_eq!(fib_iter(n as u64), e);
        }
    }

    #[test]
    fn recursive_matches_iterative() {
        for n in 0..25 {
            assert_eq!(fib(n), fib_iter(n));
        }
    }

    #[test]
    fn paper_tree_size_for_fib_33() {
        // "executing the Fibonacci of 33 results in the creation of
        // 11,405,773 actors" — the call-tree node count.
        assert_eq!(call_tree_nodes(33), 11_405_773);
    }

    #[test]
    fn tree_node_recurrence() {
        // nodes(n) = nodes(n-1) + nodes(n-2) + 1 for n >= 2.
        for n in 2..30 {
            assert_eq!(
                call_tree_nodes(n),
                call_tree_nodes(n - 1) + call_tree_nodes(n - 2) + 1
            );
        }
    }
}
