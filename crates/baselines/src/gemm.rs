//! Dense matrix kernels — the per-node compute of Table 5 and the
//! sequential baselines it is judged against.
//!
//! The paper's systolic matmul used a hand-written assembly block kernel
//! (von Eicken's, also used by Split-C); our stand-in is a tight `ikj`
//! loop, which any modern compiler vectorizes well. Matrices are
//! row-major `Vec<f64>`.

/// Naive ijk triple loop (reference semantics; slow).
pub fn matmul_naive(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// `C += A * B` with the cache-friendly ikj order — the workhorse block
/// kernel used inside the systolic algorithm.
pub fn matmul_ikj_acc(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            let brow = &b[k * n..k * n + n];
            let crow = &mut c[i * n..i * n + n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
}

/// Blocked (tiled) `C = A * B` for large n.
pub fn matmul_blocked(a: &[f64], b: &[f64], c: &mut [f64], n: usize, block: usize) {
    assert!(block >= 1);
    c.fill(0.0);
    let nb = n.div_ceil(block);
    for bi in 0..nb {
        for bk in 0..nb {
            for bj in 0..nb {
                let (i0, i1) = (bi * block, ((bi + 1) * block).min(n));
                let (k0, k1) = (bk * block, ((bk + 1) * block).min(n));
                let (j0, j1) = (bj * block, ((bj + 1) * block).min(n));
                for i in i0..i1 {
                    for k in k0..k1 {
                        let aik = a[i * n + k];
                        for j in j0..j1 {
                            c[i * n + j] += aik * b[k * n + j];
                        }
                    }
                }
            }
        }
    }
}

/// FLOP count of an n×n matmul (2·n³: one multiply + one add per term).
pub fn matmul_flops(n: usize) -> u64 {
    2 * (n as u64).pow(3)
}

/// Deterministic pseudo-random matrix (values in [-1, 1)).
pub fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n * n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Max absolute elementwise difference.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ikj_matches_naive() {
        let n = 17;
        let a = random_matrix(n, 1);
        let b = random_matrix(n, 2);
        let mut c1 = vec![0.0; n * n];
        let mut c2 = vec![0.0; n * n];
        matmul_naive(&a, &b, &mut c1, n);
        matmul_ikj_acc(&a, &b, &mut c2, n);
        assert!(max_abs_diff(&c1, &c2) < 1e-12);
    }

    #[test]
    fn blocked_matches_naive_including_ragged_edges() {
        let n = 23; // not a multiple of the block size
        let a = random_matrix(n, 3);
        let b = random_matrix(n, 4);
        let mut c1 = vec![0.0; n * n];
        let mut c2 = vec![0.0; n * n];
        matmul_naive(&a, &b, &mut c1, n);
        matmul_blocked(&a, &b, &mut c2, n, 8);
        assert!(max_abs_diff(&c1, &c2) < 1e-12);
    }

    #[test]
    fn ikj_accumulates() {
        let n = 4;
        let a = random_matrix(n, 5);
        let b = random_matrix(n, 6);
        let mut c = vec![1.0; n * n];
        let mut expect = vec![0.0; n * n];
        matmul_naive(&a, &b, &mut expect, n);
        for e in &mut expect {
            *e += 1.0;
        }
        matmul_ikj_acc(&a, &b, &mut c, n);
        assert!(max_abs_diff(&c, &expect) < 1e-12);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(matmul_flops(1024), 2 * 1024u64.pow(3));
    }

    #[test]
    fn random_matrix_is_deterministic_and_bounded() {
        let a = random_matrix(8, 42);
        let b = random_matrix(8, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (-1.0..1.0).contains(&x)));
        assert_ne!(a, random_matrix(8, 43));
    }
}
