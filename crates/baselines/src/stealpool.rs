//! A Chase–Lev work-stealing fork-join pool — the Cilk stand-in of
//! Table 4.
//!
//! The paper compares its actor runtime against Cilk (73.16 s for
//! fib(33) on one SPARC node). We reproduce that comparison point with a
//! minimal multithreaded work-stealing runtime of the same algorithmic
//! class: per-worker deques, random stealing, and a global injector —
//! all built on `std` primitives so the workspace stays free of
//! external dependencies.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A unit of work. Tasks may spawn more tasks through the [`Spawner`].
pub type Task = Box<dyn FnOnce(&Spawner) + Send>;

/// A mutex-guarded deque: back is the hot (LIFO) end for the owner,
/// front is the cold end thieves take from — the Chase–Lev access
/// pattern, with a lock standing in for the lock-free protocol.
type TaskDeque = Arc<Mutex<VecDeque<Task>>>;

/// Handle tasks use to spawn subtasks.
pub struct Spawner {
    injector: TaskDeque,
    outstanding: Arc<AtomicUsize>,
}

impl Spawner {
    /// Enqueue a subtask.
    pub fn spawn(&self, task: Task) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.injector.lock().expect("injector poisoned").push_back(task);
    }
}

/// A fixed-size work-stealing pool. All workers run until the task count
/// drains to zero, then exit.
pub struct StealPool {
    workers: usize,
}

impl StealPool {
    /// Pool with `workers` OS threads.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1);
        StealPool { workers }
    }

    /// Run `root` (plus everything it transitively spawns) to
    /// completion.
    pub fn run(&self, root: Task) {
        let injector: TaskDeque = Arc::new(Mutex::new(VecDeque::new()));
        let outstanding = Arc::new(AtomicUsize::new(1));
        injector.lock().expect("injector poisoned").push_back(root);

        let locals: Arc<Vec<TaskDeque>> = Arc::new(
            (0..self.workers)
                .map(|_| Arc::new(Mutex::new(VecDeque::new())))
                .collect(),
        );

        std::thread::scope(|scope| {
            for i in 0..self.workers {
                let injector = Arc::clone(&injector);
                let locals = Arc::clone(&locals);
                let outstanding = Arc::clone(&outstanding);
                scope.spawn(move || {
                    let spawner = Spawner {
                        injector: Arc::clone(&injector),
                        outstanding: Arc::clone(&outstanding),
                    };
                    let mut rng_state = 0x9E37_79B9u64.wrapping_add(i as u64);
                    loop {
                        // Local LIFO first (cache-friendly, Cilk-style),
                        // then a batch from the injector, then a random
                        // victim's cold (FIFO) end. Each phase is a
                        // separate statement so the previous guard drops
                        // before the next lock is taken (never hold two
                        // deque locks at once).
                        let mut task = locals[i].lock().expect("local poisoned").pop_back();
                        if task.is_none() {
                            let mut refill = Vec::new();
                            {
                                let mut inj = injector.lock().expect("injector poisoned");
                                task = inj.pop_front();
                                if task.is_some() {
                                    // Grab up to half of what remains
                                    // queued for the local deque.
                                    let batch = (inj.len() / 2).min(16);
                                    for _ in 0..batch {
                                        refill.push(inj.pop_front().expect("len checked"));
                                    }
                                }
                            }
                            if !refill.is_empty() {
                                locals[i].lock().expect("local poisoned").extend(refill);
                            }
                        }
                        if task.is_none() {
                            // xorshift victim choice
                            rng_state ^= rng_state << 13;
                            rng_state ^= rng_state >> 7;
                            rng_state ^= rng_state << 17;
                            let v = (rng_state as usize) % locals.len();
                            if v != i {
                                task = locals[v].lock().expect("victim poisoned").pop_front();
                            }
                        }
                        match task {
                            Some(t) => {
                                t(&spawner);
                                outstanding.fetch_sub(1, Ordering::SeqCst);
                            }
                            None => {
                                if outstanding.load(Ordering::SeqCst) == 0 {
                                    return;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                });
            }
        });
    }
}

/// Fork-join Fibonacci on the pool: one task per call-tree node above
/// the cutoff, results combined through atomic join nodes — the Cilk
/// program of Table 4.
pub fn parallel_fib(n: u64, workers: usize, sequential_cutoff: u64) -> u64 {
    struct JoinNode {
        remaining: AtomicUsize,
        slots: [AtomicU64; 2],
        parent: Option<(Arc<JoinNode>, usize)>,
        root_out: Option<Arc<AtomicU64>>,
    }

    fn complete(node: &Arc<JoinNode>, value: u64, slot: usize) {
        node.slots[slot].store(value, Ordering::SeqCst);
        if node.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            let sum =
                node.slots[0].load(Ordering::SeqCst) + node.slots[1].load(Ordering::SeqCst);
            match (&node.parent, &node.root_out) {
                (Some((p, s)), _) => complete(p, sum, *s),
                (None, Some(out)) => out.store(sum, Ordering::SeqCst),
                _ => unreachable!(),
            }
        }
    }

    fn task(
        n: u64,
        cutoff: u64,
        parent: Arc<JoinNode>,
        slot: usize,
        spawner: &Spawner,
    ) {
        if n < 2 || n <= cutoff {
            complete(&parent, crate::fib_seq::fib(n), slot);
        } else {
            let join = Arc::new(JoinNode {
                remaining: AtomicUsize::new(2),
                slots: [AtomicU64::new(0), AtomicU64::new(0)],
                parent: Some((parent, slot)),
                root_out: None,
            });
            let j1 = Arc::clone(&join);
            let j2 = join;
            let c = cutoff;
            spawner.spawn(Box::new(move |s| task(n - 1, c, j1, 0, s)));
            spawner.spawn(Box::new(move |s| task(n - 2, c, j2, 1, s)));
        }
    }

    if n < 2 {
        return n;
    }
    let out = Arc::new(AtomicU64::new(u64::MAX));
    let root = Arc::new(JoinNode {
        remaining: AtomicUsize::new(2),
        slots: [AtomicU64::new(0), AtomicU64::new(0)],
        parent: None,
        root_out: Some(Arc::clone(&out)),
    });
    let pool = StealPool::new(workers);
    let r1 = Arc::clone(&root);
    let r2 = root;
    let c = sequential_cutoff;
    pool.run(Box::new(move |s| {
        let rb = Arc::clone(&r2);
        s.spawn(Box::new(move |s2| task(n - 2, c, rb, 1, s2)));
        task(n - 1, c, r1, 0, s);
    }));
    out.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib_seq::fib_iter;

    #[test]
    fn pool_runs_a_single_task() {
        let out = Arc::new(AtomicU64::new(0));
        let o = Arc::clone(&out);
        StealPool::new(2).run(Box::new(move |_| {
            o.store(42, Ordering::SeqCst);
        }));
        assert_eq!(out.load(Ordering::SeqCst), 42);
    }

    #[test]
    fn pool_drains_spawned_tasks() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        StealPool::new(3).run(Box::new(move |s| {
            for _ in 0..100 {
                let c2 = Arc::clone(&c);
                s.spawn(Box::new(move |_| {
                    c2.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }));
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn parallel_fib_matches_sequential() {
        for n in [0u64, 1, 2, 5, 10, 18] {
            assert_eq!(parallel_fib(n, 2, 4), fib_iter(n), "fib({n})");
        }
    }

    #[test]
    fn parallel_fib_fine_grained() {
        // Cutoff 0: one task per tree node, max scheduler stress.
        assert_eq!(parallel_fib(12, 4, 0), fib_iter(12));
    }
}
