//! Sequential linear-algebra references for validating the actor
//! workloads: column-oriented Cholesky factorization and helpers for
//! generating well-conditioned inputs.

/// Row `i` of the random factor `B` used by the SPD generators —
/// regenerable in O(n) anywhere, so distributed column actors can build
/// their own column without shipping the matrix.
pub fn b_row(n: usize, seed: u64, i: usize) -> Vec<f64> {
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((i as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03))
        | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Column `j` of the deterministic SPD matrix `A = B·Bᵀ + n·I`.
/// `random_spd` assembles the same matrix from these columns.
pub fn spd_column(n: usize, seed: u64, j: usize) -> Vec<f64> {
    let bj = b_row(n, seed, j);
    (0..n)
        .map(|i| {
            let bi = b_row(n, seed, i);
            let dot: f64 = bi.iter().zip(&bj).map(|(x, y)| x * y).sum();
            dot + if i == j { n as f64 } else { 0.0 }
        })
        .collect()
}

/// Generate a deterministic symmetric positive-definite n×n matrix:
/// `A = B·Bᵀ + n·I` with random B — always SPD, well conditioned.
pub fn random_spd(n: usize, seed: u64) -> Vec<f64> {
    let rows: Vec<Vec<f64>> = (0..n).map(|i| b_row(n, seed, i)).collect();
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let acc: f64 = rows[i].iter().zip(&rows[j]).map(|(x, y)| x * y).sum();
            a[i * n + j] = acc;
        }
        a[i * n + i] += n as f64;
    }
    a
}

/// In-place column-oriented (left-looking) Cholesky: `A = L·Lᵀ`, lower
/// triangle of `a` replaced by `L`, upper triangle left untouched.
///
/// This is the algorithm the paper's Table 1 implementations all
/// compute; the four variants differ only in how column updates are
/// scheduled and synchronized across nodes.
///
/// # Panics
/// Panics if a pivot is non-positive (matrix not positive definite).
pub fn cholesky_seq(a: &mut [f64], n: usize) {
    assert_eq!(a.len(), n * n);
    for j in 0..n {
        // cdiv prologue: apply updates from all previous columns.
        for k in 0..j {
            let ljk = a[j * n + k];
            for i in j..n {
                a[i * n + j] -= a[i * n + k] * ljk;
            }
        }
        // cdiv: scale column j.
        let pivot = a[j * n + j];
        assert!(pivot > 0.0, "matrix not positive definite at column {j}");
        let d = pivot.sqrt();
        a[j * n + j] = d;
        for i in j + 1..n {
            a[i * n + j] /= d;
        }
    }
}

/// Reconstruct `L·Lᵀ` from a factored lower triangle (for validation).
pub fn llt(a: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            let kmax = i.min(j) + 1;
            for k in 0..kmax {
                acc += a[i * n + k] * a[j * n + k];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// FLOP count of an n×n Cholesky: n³/3 + O(n²).
pub fn cholesky_flops(n: usize) -> u64 {
    let n = n as u64;
    n * n * n / 3 + 2 * n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::max_abs_diff;

    #[test]
    fn factorization_reconstructs_input() {
        let n = 24;
        let a0 = random_spd(n, 7);
        let mut a = a0.clone();
        cholesky_seq(&mut a, n);
        let recon = llt(&a, n);
        // Compare lower triangles (upper of `a` is untouched garbage for
        // the reconstruction, llt only reads lower).
        let mut max = 0.0f64;
        for i in 0..n {
            for j in 0..=i {
                max = max.max((recon[i * n + j] - a0[i * n + j]).abs());
            }
        }
        assert!(max < 1e-9, "reconstruction error {max}");
    }

    #[test]
    fn l_is_lower_triangular_with_positive_diagonal() {
        let n = 10;
        let mut a = random_spd(n, 3);
        cholesky_seq(&mut a, n);
        for i in 0..n {
            assert!(a[i * n + i] > 0.0);
        }
    }

    #[test]
    fn known_3x3() {
        // A = [[4,12,-16],[12,37,-43],[-16,-43,98]] has L =
        // [[2,0,0],[6,1,0],[-8,5,3]] (classic textbook example).
        let mut a = vec![4.0, 12.0, -16.0, 12.0, 37.0, -43.0, -16.0, -43.0, 98.0];
        cholesky_seq(&mut a, 3);
        let l = [2.0, 6.0, 1.0, -8.0, 5.0, 3.0];
        let got = [a[0], a[3], a[4], a[6], a[7], a[8]];
        assert!(max_abs_diff(&l, &got) < 1e-12, "{got:?}");
    }

    #[test]
    #[should_panic(expected = "not positive definite")]
    fn non_spd_is_rejected() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        cholesky_seq(&mut a, 2);
    }

    #[test]
    fn spd_columns_match_full_matrix() {
        let n = 16;
        let seed = 5;
        let a = random_spd(n, seed);
        for j in 0..n {
            let col = spd_column(n, seed, j);
            for i in 0..n {
                assert!(
                    (col[i] - a[i * n + j]).abs() < 1e-12,
                    "column {j} row {i} disagrees"
                );
            }
        }
    }

    #[test]
    fn spd_generator_is_symmetric() {
        let n = 12;
        let a = random_spd(n, 9);
        for i in 0..n {
            for j in 0..n {
                assert!((a[i * n + j] - a[j * n + i]).abs() < 1e-12);
            }
        }
    }
}
