//! # hal-baselines — the comparison systems of the paper's evaluation
//!
//! Table 4 judges the actor runtime against an optimized sequential C
//! fib and against Cilk; Table 5 against Split-C's dense kernels. This
//! crate provides honest Rust equivalents:
//!
//! * [`fib_seq`] — sequential recursive Fibonacci ("optimized C");
//! * [`stealpool`] — a Chase–Lev work-stealing fork-join pool ("Cilk");
//! * [`gemm`] — dense matmul kernels (per-node compute of the systolic
//!   algorithm + validation references);
//! * [`linalg`] — sequential Cholesky factorization and SPD generators
//!   validating the Table 1 variants.

#![warn(missing_docs)]

pub mod fib_seq;
pub mod gemm;
pub mod linalg;
pub mod stealpool;

pub use fib_seq::{call_tree_nodes, fib, fib_iter};
pub use gemm::{matmul_flops, matmul_ikj_acc, matmul_naive, max_abs_diff, random_matrix};
pub use linalg::{b_row, cholesky_flops, cholesky_seq, llt, random_spd, spd_column};
pub use stealpool::{parallel_fib, StealPool};
