//! # hal-profile — critical-path analysis over message-lifecycle spans
//!
//! The span reconstructor ([`hal_kernel::span`]) turns a flight-recorder
//! trace into a causal DAG: every [`MsgSpan`]'s `parent` is the span of
//! the message whose handler issued the send. This crate walks that DAG
//! backwards from each chain terminal to find the **critical path** —
//! the longest causal chain in charged virtual time — and attributes
//! each hop's contribution to lifecycle stages (wire, queue, pending
//! wait, handler execution).
//!
//! The headline number answers the question every parallel-makespan
//! table begs: *how much of the run was a serial dependency chain that
//! no amount of nodes could have compressed?* By construction a chain's
//! total is `completion(terminal) − sent_at(root)`, both virtual
//! timestamps of real recorded events, so the critical path can never
//! exceed the makespan — the `ratio` against it is a well-defined
//! serial fraction.
//!
//! Everything here is derived from virtual-time facts recorded
//! identically at any `--parallel K`, so [`CriticalPathReport::to_json`]
//! is byte-identical across executor parallelism.

#![warn(missing_docs)]

use hal_am::NodeId;
use hal_des::VirtualTime;
use hal_kernel::span::{MsgSpan, SpanReport};
use std::collections::{HashMap, HashSet};

/// One hop (message) on a causal chain, with its stage attribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hop {
    /// The message span id.
    pub id: u64,
    /// Sending node.
    pub src: NodeId,
    /// Executing node (None if the message never landed in the trace).
    pub dst: Option<NodeId>,
    /// Send → enqueue virtual ns (includes FIR-chase buffering).
    pub wire_ns: u64,
    /// Enqueue → dispatch virtual ns.
    pub queue_ns: u64,
    /// Virtual ns parked in the pending queue (§6.1).
    pub pending_ns: u64,
    /// Charged handler virtual ns on the chain: the full `run_ns` for
    /// the terminal hop, time-until-the-child-send for inner hops.
    pub exec_ns: u64,
}

impl Hop {
    /// Total virtual ns this hop contributes to its chain's stages.
    pub fn total_ns(&self) -> u64 {
        self.wire_ns + self.queue_ns + self.pending_ns + self.exec_ns
    }
}

/// Stage totals summed over a chain's hops.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTotals {
    /// Summed wire (send → enqueue) time.
    pub wire_ns: u64,
    /// Summed mail-queue wait.
    pub queue_ns: u64,
    /// Summed pending-queue residency.
    pub pending_ns: u64,
    /// Summed charged handler time.
    pub exec_ns: u64,
}

/// One causal chain, root hop first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    /// End-to-end virtual ns: `completion(terminal) − sent_at(root)`.
    pub total_ns: u64,
    /// Virtual time the root message was sent.
    pub started_at: VirtualTime,
    /// Virtual time the terminal handler completed.
    pub finished_at: VirtualTime,
    /// The hops, causally ordered (root first, terminal last).
    pub hops: Vec<Hop>,
    /// Per-stage attribution summed over hops. Inline fast-path
    /// execution can nest a child inside its parent's handler, so the
    /// stage sum may exceed `total_ns`; the chain endpoints, not the
    /// stage sum, are the ground truth.
    pub stages: StageTotals,
}

/// The top-k causal chains of one run, longest first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPathReport {
    /// Chains, longest total first. Chains are disjoint: once a
    /// message is on a reported chain it is not reused as a terminal
    /// for a later one.
    pub chains: Vec<Chain>,
}

impl CriticalPathReport {
    /// The critical path itself (the longest chain), if any.
    pub fn critical(&self) -> Option<&Chain> {
        self.chains.first()
    }

    /// Critical-path total over the makespan — the run's serial
    /// fraction. 0 when there are no chains.
    pub fn ratio(&self, makespan_ns: u64) -> f64 {
        match (self.critical(), makespan_ns) {
            (Some(c), m) if m > 0 => c.total_ns as f64 / m as f64,
            _ => 0.0,
        }
    }

    /// One-screen human summary of the top chains.
    pub fn summary(&self, makespan_ns: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.chains.is_empty() {
            out.push_str("critical path: no spans (trace empty?)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "critical path: {} ns over {} hop(s) — {:.1}% of the {} ns makespan",
            self.chains[0].total_ns,
            self.chains[0].hops.len(),
            100.0 * self.ratio(makespan_ns),
            makespan_ns
        );
        for (i, c) in self.chains.iter().enumerate() {
            let _ = writeln!(
                out,
                "  #{:<2} {:>12} ns  hops {:>4}  wire {:>10}  queue {:>8}  pending {:>8}  exec {:>10}",
                i + 1,
                c.total_ns,
                c.hops.len(),
                c.stages.wire_ns,
                c.stages.queue_ns,
                c.stages.pending_ns,
                c.stages.exec_ns
            );
        }
        out
    }

    /// Serialize as JSON (dependency-free, virtual-time facts only —
    /// byte-identical across `--parallel K`).
    pub fn to_json(&self, makespan_ns: u64) -> String {
        use std::fmt::Write as _;
        let mut chains = String::new();
        for (i, c) in self.chains.iter().enumerate() {
            if i > 0 {
                chains.push_str(",\n");
            }
            let mut hops = String::new();
            for (j, h) in c.hops.iter().enumerate() {
                if j > 0 {
                    hops.push_str(", ");
                }
                let dst = h.dst.map_or_else(|| "null".to_string(), |d| d.to_string());
                let _ = write!(
                    hops,
                    "[{}, {}, {}, {}, {}, {}, {}]",
                    h.id, h.src, dst, h.wire_ns, h.queue_ns, h.pending_ns, h.exec_ns
                );
            }
            let _ = write!(
                chains,
                "    {{\n      \"total_ns\": {},\n      \"started_at_ns\": {},\n      \
                 \"finished_at_ns\": {},\n      \"wire_ns\": {},\n      \"queue_ns\": {},\n      \
                 \"pending_ns\": {},\n      \"exec_ns\": {},\n      \"hops\": [{}]\n    }}",
                c.total_ns,
                c.started_at.as_nanos(),
                c.finished_at.as_nanos(),
                c.stages.wire_ns,
                c.stages.queue_ns,
                c.stages.pending_ns,
                c.stages.exec_ns,
                hops
            );
        }
        let critical_ns = self.critical().map_or(0, |c| c.total_ns);
        format!(
            "{{\n  \"makespan_ns\": {},\n  \"critical_ns\": {},\n  \"serial_fraction\": {:.6},\n  \
             \"hop_fields\": [\"id\", \"src\", \"dst\", \"wire_ns\", \"queue_ns\", \"pending_ns\", \"exec_ns\"],\n  \
             \"chains\": [\n{}\n  ]\n}}\n",
            makespan_ns,
            critical_ns,
            self.ratio(makespan_ns),
            chains
        )
    }
}

/// Walk the span DAG and return the top-`k` causal chains by total
/// charged virtual time, longest first.
///
/// Every executed message is a candidate terminal; its chain is the
/// unique parent walk back to a root (a span sent from outside any
/// handler, or one whose parent was lost to ring truncation — both are
/// roots for this purpose). Terminals already covered by a selected
/// chain are skipped, so the reported chains are disjoint.
pub fn critical_paths(spans: &SpanReport, k: usize) -> CriticalPathReport {
    let by_id: HashMap<u64, &MsgSpan> = spans.msgs.iter().map(|m| (m.id, m)).collect();
    // Rank candidate terminals by chain total, descending; id ascending
    // as the deterministic tie-break.
    let mut candidates: Vec<(u64, u64)> = spans
        .msgs
        .iter()
        .filter(|m| m.exec_end.is_some())
        .map(|m| {
            let root = walk_root(m, &by_id);
            let total = m
                .completion()
                .as_nanos()
                .saturating_sub(root.sent_at.as_nanos());
            (total, m.id)
        })
        .collect();
    candidates.sort_by_key(|&(total, id)| (std::cmp::Reverse(total), id));

    let mut used: HashSet<u64> = HashSet::new();
    let mut chains = Vec::new();
    for (total, id) in candidates {
        if chains.len() >= k {
            break;
        }
        if used.contains(&id) {
            continue;
        }
        let terminal = by_id[&id];
        let chain = build_chain(terminal, total, &by_id);
        if chain.hops.iter().any(|h| used.contains(&h.id)) {
            continue; // shares a prefix with a longer selected chain
        }
        used.extend(chain.hops.iter().map(|h| h.id));
        chains.push(chain);
    }
    CriticalPathReport { chains }
}

/// Follow parent links to the chain's root span. Parent ids that don't
/// resolve (untraced senders, ring truncation) terminate the walk; a
/// visited set guards against malformed cyclic input.
fn walk_root<'a>(m: &'a MsgSpan, by_id: &HashMap<u64, &'a MsgSpan>) -> &'a MsgSpan {
    let mut cur = m;
    let mut seen = HashSet::new();
    while cur.parent != 0 && seen.insert(cur.id) {
        match by_id.get(&cur.parent) {
            Some(p) => cur = p,
            None => break,
        }
    }
    cur
}

/// Materialize the chain ending at `terminal`, root hop first, with
/// per-hop stage attribution.
fn build_chain(terminal: &MsgSpan, total: u64, by_id: &HashMap<u64, &MsgSpan>) -> Chain {
    // Collect terminal → root, then reverse.
    let mut rev: Vec<&MsgSpan> = vec![terminal];
    let mut seen: HashSet<u64> = [terminal.id].into();
    let mut cur = terminal;
    while cur.parent != 0 {
        match by_id.get(&cur.parent) {
            Some(p) if seen.insert(p.id) => {
                rev.push(p);
                cur = p;
            }
            _ => break,
        }
    }
    rev.reverse();
    let mut stages = StageTotals::default();
    let mut hops = Vec::with_capacity(rev.len());
    for (i, m) in rev.iter().enumerate() {
        // Inner hops charge handler time only up to the moment they
        // issued the next hop's send — the rest of the handler ran off
        // the chain. The terminal charges its full run.
        let exec_ns = match rev.get(i + 1) {
            Some(child) => m.exec_start().map_or(0, |start| {
                child.sent_at.as_nanos().saturating_sub(start.as_nanos())
            }),
            None => m.run_ns,
        };
        let hop = Hop {
            id: m.id,
            src: m.src,
            dst: m.dst,
            wire_ns: m.wire_ns,
            queue_ns: m.queued_ns,
            pending_ns: m.pending_ns,
            exec_ns,
        };
        stages.wire_ns += hop.wire_ns;
        stages.queue_ns += hop.queue_ns;
        stages.pending_ns += hop.pending_ns;
        stages.exec_ns += hop.exec_ns;
        hops.push(hop);
    }
    Chain {
        total_ns: total,
        started_at: rev[0].sent_at,
        finished_at: terminal.completion(),
        hops,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hal_kernel::trace::DeliveryPath;
    use hal_kernel::{AddrKey, DescriptorId};

    fn key(i: u32) -> AddrKey {
        AddrKey { birthplace: 0, index: DescriptorId(i) }
    }

    /// A message span: sent at `sent`, wire `wire`, executed with
    /// `run` ns ending at `end`.
    #[allow(clippy::too_many_arguments)]
    fn span(id: u64, parent: u64, sent: u64, wire: u64, run: u64, end: u64) -> MsgSpan {
        MsgSpan {
            id,
            parent,
            src: 0,
            key: key(id as u32),
            sent_at: VirtualTime::from_nanos(sent),
            remote: false,
            delivered_at: Some(VirtualTime::from_nanos(sent + wire)),
            wire_ns: wire,
            path: Some(DeliveryPath::Local),
            dst: Some(1),
            queued_ns: 0,
            pending_ns: 0,
            exec_end: Some(VirtualTime::from_nanos(end)),
            run_ns: run,
            retransmits: 0,
        }
    }

    fn report(msgs: Vec<MsgSpan>) -> SpanReport {
        SpanReport { msgs, ..SpanReport::default() }
    }

    #[test]
    fn longest_chain_wins_and_telescopes() {
        // 1 → 2 → 3 is the long chain; 4 is a short independent one.
        let rep = report(vec![
            span(1, 0, 0, 10, 50, 100),   // handler 60..100, child sent at 70
            span(2, 1, 70, 10, 100, 200), // handler 100..200, child sent at 150
            span(3, 2, 150, 10, 40, 300), // terminal: completes at 300
            span(4, 0, 0, 5, 10, 20),
        ]);
        let cp = critical_paths(&rep, 2);
        assert_eq!(cp.chains.len(), 2);
        let c = cp.critical().unwrap();
        assert_eq!(c.total_ns, 300); // completion(3) − sent_at(1)
        assert_eq!(c.hops.iter().map(|h| h.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        // Inner hops charge exec only until the child send left.
        assert_eq!(c.hops[0].exec_ns, 20); // 70 − exec_start(1)=50
        assert_eq!(c.hops[1].exec_ns, 50); // 150 − exec_start(2)=100
        assert_eq!(c.hops[2].exec_ns, 40); // terminal run_ns
        assert_eq!(cp.chains[1].total_ns, 20);
        assert!(cp.ratio(600) > 0.49 && cp.ratio(600) < 0.51);
    }

    #[test]
    fn chains_are_disjoint() {
        // Two terminals sharing the same root: the shorter chain is
        // dropped rather than double-counting the shared prefix.
        let rep = report(vec![
            span(1, 0, 0, 10, 50, 100),
            span(2, 1, 70, 10, 100, 400),
            span(3, 1, 80, 10, 40, 200),
        ]);
        let cp = critical_paths(&rep, 5);
        assert_eq!(cp.chains.len(), 1);
        assert_eq!(cp.critical().unwrap().total_ns, 400);
    }

    #[test]
    fn unresolvable_parent_is_a_root() {
        let rep = report(vec![span(9, 777, 50, 10, 30, 120)]);
        let cp = critical_paths(&rep, 1);
        assert_eq!(cp.critical().unwrap().total_ns, 70); // 120 − 50
        assert_eq!(cp.critical().unwrap().hops.len(), 1);
    }

    #[test]
    fn json_is_balanced_and_bounded_by_makespan() {
        let rep = report(vec![span(1, 0, 0, 10, 50, 100), span(2, 1, 70, 10, 100, 200)]);
        let cp = critical_paths(&rep, 3);
        assert!(cp.critical().unwrap().total_ns <= 200);
        let json = cp.to_json(200);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"critical_ns\": 200"), "{json}");
        assert!(json.contains("\"serial_fraction\": 1.000000"), "{json}");
        let again = cp.to_json(200);
        assert_eq!(json, again);
    }
}
