//! Call/return sugar: the join-continuation builder (§6.2).
//!
//! "The HAL compiler transforms a request send to an asynchronous send
//! and separates out its continuation through dependence analysis.
//! Message sends which have no dependence among them are grouped together
//! to share the same continuation."
//!
//! [`JoinBuilder`] is the hand-written form of that transformation:
//! collect the independent request sends, state the continuation, and the
//! builder wires the reply slots.

use crate::value::IntoValue;
use hal_kernel::kernel::Ctx;
use hal_kernel::{ContRef, GroupId, MailAddr, Selector, Value};

/// One pending request to be issued under a shared join continuation.
enum Call {
    /// To an ordinary mail address.
    Addr(MailAddr, Selector, Vec<Value>),
    /// To a group member.
    Member(GroupId, u32, Selector, Vec<Value>),
}

/// Builder for a group of `request` sends sharing one continuation.
///
/// ```ignore
/// JoinBuilder::new()
///     .call(left,  FIB, vec![Value::Int(n - 1)])
///     .call(right, FIB, vec![Value::Int(n - 2)])
///     .known(Value::Addr(customer))
///     .then(ctx, |ctx, vals| { /* vals[0], vals[1] are the replies,
///                                 vals[2] the known value */ });
/// ```
#[derive(Default)]
pub struct JoinBuilder {
    calls: Vec<Call>,
    known: Vec<Value>,
}

impl JoinBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a request whose reply fills the next slot.
    pub fn call(mut self, to: MailAddr, selector: Selector, args: Vec<Value>) -> Self {
        self.calls.push(Call::Addr(to, selector, args));
        self
    }

    /// Add a request to a group member whose reply fills the next slot.
    pub fn call_member(
        mut self,
        group: GroupId,
        index: u32,
        selector: Selector,
        args: Vec<Value>,
    ) -> Self {
        self.calls.push(Call::Member(group, index, selector, args));
        self
    }

    /// Attach a value already known at continuation-creation time
    /// (Fig. 4's pre-filled argument slots). Known values occupy the
    /// slots *after* all replies, in the order added.
    pub fn known(mut self, v: impl IntoValue) -> Self {
        self.known.push(v.into_value());
        self
    }

    /// Issue every request and register the continuation. `f` receives
    /// the slot values: replies first (in call order), then known values.
    ///
    /// # Panics
    /// Panics if no calls were added — a join with nothing to wait for
    /// should be ordinary straight-line code.
    pub fn then(
        self,
        ctx: &mut Ctx<'_>,
        f: impl FnOnce(&mut Ctx<'_>, Vec<Value>) + Send + 'static,
    ) {
        let n_calls = self.calls.len();
        assert!(n_calls > 0, "JoinBuilder::then with no calls");
        let arity = n_calls + self.known.len();
        assert!(arity <= u16::MAX as usize, "join arity overflow");
        let prefilled = self
            .known
            .into_iter()
            .enumerate()
            .map(|(i, v)| ((n_calls + i) as u16, v))
            .collect();
        let jc = ctx.create_join(arity as u16, prefilled, Box::new(f));
        for (i, call) in self.calls.into_iter().enumerate() {
            let cont = ctx.cont_slot(jc, i as u16);
            match call {
                Call::Addr(to, sel, args) => ctx.request(to, sel, args, cont),
                Call::Member(g, idx, sel, args) => ctx.request_member(g, idx, sel, args, cont),
            }
        }
    }
}

/// Convenience: a single request whose reply runs `f` — the simplest
/// call/return shape.
pub fn call_then(
    ctx: &mut Ctx<'_>,
    to: MailAddr,
    selector: Selector,
    args: Vec<Value>,
    f: impl FnOnce(&mut Ctx<'_>, Value) + Send + 'static,
) {
    JoinBuilder::new()
        .call(to, selector, args)
        .then(ctx, move |ctx, mut vals| {
            let v = vals.pop().expect("one slot");
            f(ctx, v);
        });
}

/// Reply shorthand used by server behaviors: answer the customer of the
/// current message if there is one (no-op otherwise).
pub fn maybe_reply(ctx: &mut Ctx<'_>, value: Value) {
    if let Some(cont) = ctx.customer() {
        ctx.reply_to(cont, value);
    }
}

/// A stored continuation reference plus helpers — lets a server park a
/// customer and answer later (e.g. after its own sub-requests resolve).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SavedCustomer(pub ContRef);

impl SavedCustomer {
    /// Capture the current message's customer.
    ///
    /// # Panics
    /// Panics if there is none — servers that promise replies must be
    /// called with `request`.
    pub fn take(ctx: &Ctx<'_>) -> Self {
        SavedCustomer(ctx.customer().expect("message carried no customer"))
    }

    /// Answer the saved customer.
    pub fn reply(self, ctx: &mut Ctx<'_>, value: Value) {
        ctx.reply_to(self.0, value);
    }
}
