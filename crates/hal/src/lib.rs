//! # hal — the language-layer facade over the HAL runtime kernel
//!
//! HAL (Houck & Agha) is the actor language whose runtime Kim & Agha's
//! SC '95 paper describes. The language itself compiled to C; here the
//! typed Rust API plays the compiler's role:
//!
//! * [`messages!`] generates marshalling between typed message enums and
//!   the untyped wire (the compiler's type-inference-driven marshalling);
//! * [`callret::JoinBuilder`] is the `request`/`reply` transformation —
//!   independent sends grouped under one join continuation (§6.2);
//! * [`program::Program`] assembles behavior factories into the loadable
//!   image every node shares;
//! * `Ctx::send_fast` (re-exported from the kernel) is the
//!   compiler-controlled static dispatch fast path (§6.3) — call it when
//!   the receiver's type and location are statically plausible, exactly
//!   as the HAL compiler emitted it when type inference succeeded.
//!
//! ```
//! use hal::prelude::*;
//!
//! struct Greeter;
//! impl Behavior for Greeter {
//!     fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
//!         ctx.reply(Value::Int(msg.args[0].as_int() * 2));
//!     }
//! }
//!
//! let program = Program::new();
//! let report = sim_run(MachineConfig::builder(2).build().unwrap(), program, |ctx| {
//!     let g = ctx.create_local(Box::new(Greeter));
//!     call_then(ctx, g, 0, vec![Value::Int(21)], |ctx, v| {
//!         ctx.report("answer", v);
//!         ctx.stop();
//!     });
//! });
//! assert_eq!(report.value("answer"), Some(&Value::Int(42)));
//! ```

#![warn(missing_docs)]

pub mod callret;
pub mod collectives;
pub mod messages;
pub mod program;
pub mod sync;
pub mod value;

pub use callret::{call_then, maybe_reply, JoinBuilder, SavedCustomer};
pub use program::{run, sim_run, thread_run, try_run, try_sim_run, Program};

// The handful of kernel names harness code reaches for at the crate
// root (`hal::MachineConfig`, `hal::Machine`, ...). Everything a
// *workload* needs lives in [`prelude`]; kernel internals beyond this
// list are imported from `hal_kernel` explicitly.
pub use hal_kernel::{
    Backend, BackendKind, Job, Machine, MachineConfig, MachineConfigBuilder, MachineError,
    ObserveOpts, OptFlags, SimMachine, SimReport,
};
// `Msg`/`Selector`/`Value` must stay at the root: the `messages!` macro
// expands `$crate::Msg` etc. in downstream crates.
pub use hal_kernel::{Msg, Selector, Value};

/// The single documented entry point: everything a workload module
/// needs, and nothing that is really a kernel internal. Diagnostics
/// types (trace events, chaos fault windows, the concrete machines)
/// are imported from `hal_kernel` by the harnesses that poke at them.
pub mod prelude {
    pub use crate::callret::{call_then, maybe_reply, JoinBuilder, SavedCustomer};
    pub use crate::program::{run, sim_run, thread_run, try_run, try_sim_run, Program};
    pub use crate::sync::{BoundedCounter, Gates};
    pub use crate::value::{FromValue, IntoValue};
    pub use hal_kernel::kernel::Ctx;
    pub use hal_kernel::{
        Backend, BackendKind, Behavior, BehaviorId, BehaviorRegistry, ConfigError, CostModel,
        FaultPlan, GroupId, Job, Machine, MachineConfig, MachineConfigBuilder, MachineError,
        MailAddr, Mapping, Msg, ObserveOpts, OptFlags, Selector, SimReport, Value,
    };
}
