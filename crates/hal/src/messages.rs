//! The `messages!` macro: typed message enums over the untyped wire.
//!
//! HAL programs are untyped but *statically type-checked*: the compiler
//! infers types and emits marshalling code. In Rust the natural analog is
//! an enum per protocol whose variants map to selectors, with generated
//! encode/decode — that is what [`crate::messages!`] expands to.

/// Define a typed message enum with per-variant selectors.
///
/// ```
/// use hal::messages;
/// use hal_kernel::MailAddr;
///
/// messages! {
///     /// The fib protocol.
///     pub enum FibMsg {
///         /// Compute fib(n) and reply to the customer.
///         Compute { n: i64 } = 0,
///         /// A subresult.
///         Sub { v: i64 } = 1,
///     }
/// }
///
/// let (sel, args) = FibMsg::Compute { n: 30 }.encode();
/// assert_eq!(sel, 0);
/// let msg = hal_kernel::Msg::new(sel, args);
/// match FibMsg::decode(&msg) {
///     FibMsg::Compute { n } => assert_eq!(n, 30),
///     _ => unreachable!(),
/// }
/// ```
#[macro_export]
macro_rules! messages {
    (
        $(#[$m:meta])*
        $v:vis enum $name:ident {
            $(
                $(#[$vm:meta])*
                $variant:ident { $( $f:ident : $t:ty ),* $(,)? } = $sel:expr
            ),* $(,)?
        }
    ) => {
        $(#[$m])*
        #[derive(Debug, Clone, PartialEq)]
        #[allow(missing_docs)] // variant fields mirror the protocol args
        $v enum $name {
            $(
                $(#[$vm])*
                $variant { $( $f : $t ),* }
            ),*
        }

        impl $name {
            /// The protocol's tag table: `(variant name, selector)` for
            /// every variant, in declaration order. The protocol
            /// checker's static pass verifies tags are unique and dense.
            pub const TAGS: &'static [(&'static str, $crate::Selector)] =
                &[ $( (stringify!($variant), $sel) ),* ];

            /// The wire selector of this message.
            #[allow(unused_variables)]
            pub fn selector(&self) -> $crate::Selector {
                match self {
                    $( Self::$variant { .. } => $sel ),*
                }
            }

            /// Marshal into `(selector, args)` for the kernel send path.
            #[allow(clippy::vec_init_then_push)]
            pub fn encode(self) -> ($crate::Selector, ::std::vec::Vec<$crate::Value>) {
                match self {
                    $(
                        Self::$variant { $( $f ),* } => {
                            #[allow(unused_mut)]
                            let mut args = ::std::vec::Vec::new();
                            $( args.push($crate::value::IntoValue::into_value($f)); )*
                            ($sel, args)
                        }
                    ),*
                }
            }

            /// Unmarshal from a received message.
            ///
            /// # Panics
            /// Panics on unknown selectors or arity/type mismatches —
            /// marshalling bugs must not be silent.
            pub fn decode(msg: &$crate::Msg) -> Self {
                match msg.selector {
                    $(
                        $sel => {
                            #[allow(unused_mut, unused_variables)]
                            let mut it = msg.args.iter().cloned();
                            Self::$variant {
                                $(
                                    $f: <$t as $crate::value::FromValue>::from_value(
                                        it.next().unwrap_or_else(|| panic!(
                                            "arity mismatch decoding {}::{}",
                                            stringify!($name), stringify!($variant)
                                        ))
                                    )
                                ),*
                            }
                        }
                    ),*
                    other => panic!(
                        "unknown selector {other} for {}",
                        stringify!($name)
                    ),
                }
            }

            /// Unmarshal by *consuming* a received message: field values
            /// are moved out of the args vector, never cloned. This is
            /// the right call in `Behavior::dispatch`, which owns its
            /// `Msg` — on the compiler fast path (§6.3) the message is
            /// dispatched inline on the sender's stack and a clone here
            /// would be the only heap traffic of the whole send.
            ///
            /// # Panics
            /// Panics on unknown selectors or arity/type mismatches —
            /// marshalling bugs must not be silent.
            pub fn take(msg: $crate::Msg) -> Self {
                match msg.selector {
                    $(
                        $sel => {
                            #[allow(unused_mut, unused_variables)]
                            let mut it = msg.args.into_iter();
                            Self::$variant {
                                $(
                                    $f: <$t as $crate::value::FromValue>::from_value(
                                        it.next().unwrap_or_else(|| panic!(
                                            "arity mismatch decoding {}::{}",
                                            stringify!($name), stringify!($variant)
                                        ))
                                    )
                                ),*
                            }
                        }
                    ),*
                    other => panic!(
                        "unknown selector {other} for {}",
                        stringify!($name)
                    ),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use hal_am::Bytes;
    use hal_kernel::{DescriptorId, MailAddr, Msg};

    messages! {
        /// Test protocol.
        pub enum TestMsg {
            /// Empty variant.
            Ping {} = 0,
            /// Mixed fields.
            Work { n: i64, who: MailAddr, scale: f64 } = 1,
            /// Bulk payload.
            Blob { data: Bytes } = 2,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let who = MailAddr::ordinary(2, DescriptorId(7));
        let m = TestMsg::Work {
            n: 5,
            who,
            scale: 0.5,
        };
        let (sel, args) = m.clone().encode();
        assert_eq!(sel, 1);
        let wire = Msg::new(sel, args);
        assert_eq!(TestMsg::decode(&wire), m);
    }

    #[test]
    fn take_moves_fields_out() {
        let data = Bytes::from(vec![1u8, 2, 3]);
        let (sel, args) = TestMsg::Blob { data: data.clone() }.encode();
        match TestMsg::take(Msg::new(sel, args)) {
            TestMsg::Blob { data: d } => assert_eq!(d, data),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn empty_variant() {
        let (sel, args) = TestMsg::Ping {}.encode();
        assert_eq!(sel, 0);
        assert!(args.is_empty());
        assert_eq!(TestMsg::decode(&Msg::new(0, vec![])), TestMsg::Ping {});
    }

    #[test]
    fn tag_table_is_dense_and_in_declaration_order() {
        assert_eq!(
            TestMsg::TAGS,
            &[("Ping", 0), ("Work", 1), ("Blob", 2)]
        );
    }

    #[test]
    fn selector_reported_without_encoding() {
        assert_eq!(TestMsg::Ping {}.selector(), 0);
        assert_eq!(
            TestMsg::Blob {
                data: Bytes::new()
            }
            .selector(),
            2
        );
    }

    #[test]
    #[should_panic(expected = "unknown selector")]
    fn unknown_selector_panics() {
        TestMsg::decode(&Msg::new(99, vec![]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        TestMsg::decode(&Msg::new(1, vec![]));
    }
}
